//! Route-map verification — the control-plane half of the paper's
//! Fig. 10: find an announcement that falls through to the last clause of
//! a randomly generated route map, on both backends. The same 75-line
//! model drives both (the paper's point: one encoding, many solvers).
//!
//! Run with:
//! `cargo run --release -p rzen-integration --example route_map_analysis \[clauses\]`

use std::time::Instant;

use rzen::{FindOptions, Zen, ZenFunction};
use rzen_net::gen::random_route_map;
use rzen_net::routing::AnnouncementFields;

fn main() {
    let clauses: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(60);
    println!("random route map with {clauses} clauses (seed 3)\n");
    let rm = random_route_map(clauses, 3);
    let n = rm.clauses.len() as u16;

    let model = rm.clone();
    let f = ZenFunction::new(move |a| model.matched_clause(a));

    for opts in [FindOptions::bdd(), FindOptions::smt()] {
        let opts = opts.with_list_bound(4);
        let t0 = Instant::now();
        let w = f.find(|_, line| line.eq(Zen::val(n)), &opts);
        let dt = t0.elapsed();
        match &w {
            Some(a) => {
                for (i, c) in rm.clauses.iter().enumerate().take(n as usize - 1) {
                    assert!(!c.matches_concrete(a), "clause {i} should not match");
                }
                println!("zen {:?}: witness in {dt:?}", opts.backend);
                println!(
                    "  prefix={}/{} as_path={:?} communities={:?} lp={} med={}",
                    rzen_net::ip::fmt_ip(a.prefix),
                    a.prefix_len,
                    a.as_path,
                    a.communities,
                    a.local_pref,
                    a.med
                );
            }
            None => println!("zen {:?}: last clause unreachable ({dt:?})", opts.backend),
        }
    }

    // Also demonstrate the transformation semantics: apply the map to the
    // witness and show what changed.
    let apply_model = rm.clone();
    let apply = ZenFunction::new(move |a| apply_model.apply(a));
    if let Some(a) = f.find(
        |_, line| line.eq(Zen::val(1u16)),
        &FindOptions::smt().with_list_bound(4),
    ) {
        println!("\nannouncement deciding at clause 1: {a:?}");
        match apply.evaluate(&a) {
            Some(out) => println!("  permitted; transformed to {out:?}"),
            None => println!("  denied by clause 1"),
        }
    }

    // Symbolic invariant: the map never *lowers* local-pref below 100 for
    // announcements that started at 100... unless some clause sets it.
    let inv_model = rm.clone();
    let inv = ZenFunction::new(move |a| inv_model.apply(a));
    let t0 = Instant::now();
    let lowered = inv.find(
        |a, out| {
            a.local_pref()
                .eq(Zen::val(100))
                .and(out.is_some())
                .and(out.value().local_pref().lt(Zen::val(100)))
        },
        &FindOptions::smt().with_list_bound(4),
    );
    println!(
        "\ninvariant probe ({:?}): some clause lowers local-pref below 100? {}",
        t0.elapsed(),
        lowered.is_some()
    );
}
