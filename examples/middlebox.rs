//! Middlebox composition: a stateful firewall behind a NAT, verified as
//! one model. Shows two things the paper argues for: stateful network
//! functions are just functions over modeled state (Fig. 2's
//! "Middleboxes"), and policy bugs at the boundary of composed functions
//! (here: an egress ACL written against pre-NAT addresses) fall out of
//! `find` queries on the composition.
//!
//! Run with:
//! `cargo run --release -p rzen-integration --example middlebox`

use rzen::{FindOptions, Zen, ZenFunction2};
use rzen_net::acl::{Acl, AclRule};
use rzen_net::firewall::StatefulFirewall;
use rzen_net::headers::{Header, HeaderFields};
use rzen_net::ip::{fmt_ip, ip, Prefix};
use rzen_net::nat::{Nat, NatKind, NatRule};

fn main() {
    // Site: inside hosts 10/8, public address 203.0.113.1.
    let nat = Nat {
        rules: vec![NatRule {
            kind: NatKind::Snat,
            matches: Prefix::new(ip(10, 0, 0, 0), 8),
            rewrite_to: ip(203, 0, 113, 1),
        }],
    };
    // Policy: host 10.0.0.99 is quarantined (no egress).
    let quarantine = Acl {
        rules: vec![
            AclRule {
                permit: false,
                src: Prefix::new(ip(10, 0, 0, 99), 32),
                ..AclRule::any(false)
            },
            AclRule::any(true),
        ],
    };
    let fw = StatefulFirewall {
        egress_policy: quarantine.clone(),
    };

    println!("== middlebox pipeline: stateful firewall, then SNAT ==\n");

    // Correct order: the firewall sees inside addresses; NAT afterwards
    // only rewrites already-permitted traffic.
    let correct = {
        let fw = fw.clone();
        ZenFunction2::new(
            move |state: Zen<rzen_net::firewall::ConnTable>, h: Zen<Header>| {
                fw.outbound(state, h).accept
            },
        )
    };
    let escaped = correct.find(
        |_, h, accepted| h.src_ip().eq(Zen::val(ip(10, 0, 0, 99))).and(accepted),
        &FindOptions::bdd().with_list_bound(2),
    );
    println!(
        "firewall-then-NAT: quarantined host can reach the internet? {}",
        escaped.is_some()
    );

    // Buggy order: NAT first — the firewall's ACL checks the public
    // address, the quarantine never matches.
    let buggy = {
        let (fw, nat) = (fw.clone(), nat.clone());
        ZenFunction2::new(
            move |state: Zen<rzen_net::firewall::ConnTable>, h: Zen<Header>| {
                let translated = nat.apply(h);
                fw.outbound(state, translated).accept
            },
        )
    };
    match buggy.find(
        |_, h, accepted| h.src_ip().eq(Zen::val(ip(10, 0, 0, 99))).and(accepted),
        &FindOptions::bdd().with_list_bound(2),
    ) {
        Some((_, h)) => println!(
            "NAT-then-firewall: LEAK — {} escapes as {} (dst {})",
            fmt_ip(h.src_ip),
            fmt_ip(ip(203, 0, 113, 1)),
            fmt_ip(h.dst_ip),
        ),
        None => println!("NAT-then-firewall: no leak (unexpected)"),
    }

    // Stateful behavior: the reply to an allowed connection is accepted,
    // anything unsolicited is not — verified for all packets.
    println!("\n== stateful verification ==");
    let reply_ok = fw.script_model(vec![true, false]);
    let w = reply_ok
        .find(
            |_, accepted| accepted,
            &FindOptions::smt().with_list_bound(2),
        )
        .expect("established replies accepted");
    println!(
        "a two-packet witness: out {}→{} port {}->{}, then the reply is accepted",
        fmt_ip(w[0].src_ip),
        fmt_ip(w[0].dst_ip),
        w[0].src_port,
        w[0].dst_port
    );
    let cold = fw.script_model(vec![false]);
    let unsolicited_blocked = cold
        .verify(
            |_, accepted| !accepted,
            &FindOptions::bdd().with_list_bound(1),
        )
        .is_ok();
    println!("all unsolicited inbound packets blocked: {unsolicited_blocked}");
}
