//! The paper's Fig. 3 running example: a virtualized network where
//! overlay traffic (Va → Vb) is GRE-tunneled across a three-node
//! underlay — and the §2 motivating bug at the overlay/underlay boundary,
//! found only by verifying the *composed* model.
//!
//! Run with:
//! `cargo run --release -p rzen-integration --example virtual_network`

use rzen::{FindOptions, Zen, ZenFunction};
use rzen_integration::{addrs, fig3_network, overlay_header};
use rzen_net::device::forward_along;
use rzen_net::headers::{HeaderFields, Packet, PacketFields};
use rzen_net::ip::fmt_ip;

fn main() {
    println!("== Fig. 3: Va -- U1 ==== U2 ==== U3 -- Vb (GRE tunnel U1->U3) ==\n");

    for buggy in [false, true] {
        println!(
            "--- underlay transit filter: {} ---",
            if buggy {
                "present (buggy)"
            } else {
                "absent (healthy)"
            }
        );
        let net = fig3_network(buggy);
        let path = net.paths(0, 1, 2, 2).remove(0);
        let f = ZenFunction::new(move |p| forward_along(&path, p));

        // Simulate one packet end to end.
        let sent = Packet::plain(overlay_header(443, 51000));
        match f.evaluate(&sent) {
            Some(got) => println!(
                "  simulate 443/tcp: delivered; decapsulated={}",
                got.underlay_header.is_none()
            ),
            None => println!("  simulate 443/tcp: DROPPED"),
        }

        // Composed verification: is every Va->Vb overlay packet delivered?
        let result = f.verify(
            |p, out| {
                let va_to_vb = p
                    .overlay_header()
                    .dst_ip()
                    .eq(Zen::val(addrs::VB))
                    .and(p.underlay_header().is_none());
                va_to_vb.implies(out.is_some())
            },
            &FindOptions::bdd(),
        );
        match result {
            Ok(()) => println!("  verify: all overlay traffic delivered ✓"),
            Err(cex) => {
                let h = &cex.overlay_header;
                println!("  verify: FOUND BOUNDARY BUG — overlay packet dropped in transit:");
                println!(
                    "    dst={} src={} dst_port={} src_port={} proto={}",
                    fmt_ip(h.dst_ip),
                    fmt_ip(h.src_ip),
                    h.dst_port,
                    h.src_port,
                    h.protocol
                );
                println!("    cause: GRE copies overlay ports into the underlay header;");
                println!("    the transit ACL blocks underlay dst ports 5000-6000.");
            }
        }
        println!();
    }
}
