//! ACL verification — the data-plane half of the paper's Fig. 10: find a
//! packet matching the last line of a randomly generated ACL (which
//! requires reasoning about every line before it), on the BDD backend,
//! the SMT backend, and the hand-optimized baseline. Also demonstrates
//! shadowed-rule detection and model-based test generation (§8).
//!
//! Run with:
//! `cargo run --release -p rzen-integration --example acl_verification \[lines\]`

use std::time::Instant;

use rzen::{FindOptions, Zen, ZenFunction};
use rzen_baselines::AclVerifier;
use rzen_net::gen::random_acl;

fn main() {
    let lines: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1000);
    println!("random ACL with {lines} lines (seed 7)\n");
    let acl = random_acl(lines, 7);
    let n = acl.rules.len() as u16;

    // The model, with line tracking.
    let model = acl.clone();
    let f = ZenFunction::new(move |h| model.matched_line(h));

    for opts in [FindOptions::bdd(), FindOptions::smt()] {
        let t0 = Instant::now();
        let w = f.find(|_, line| line.eq(Zen::val(n)), &opts);
        let dt = t0.elapsed();
        match w {
            Some(h) => {
                assert_eq!(acl.matched_line_concrete(&h), n);
                println!(
                    "zen {:?}: witness found in {dt:?} (verified against reference)",
                    opts.backend
                );
            }
            None => println!("zen {:?}: last line unreachable ({dt:?})", opts.backend),
        }
    }

    let t0 = Instant::now();
    let mut baseline = AclVerifier::new(&acl);
    let b = baseline.find_first_match(n as usize - 1);
    println!(
        "hand-optimized baseline: {} in {:?}",
        if b.is_some() {
            "witness found"
        } else {
            "unreachable"
        },
        t0.elapsed()
    );

    // Shadowed-rule audit on a small prefix of the ACL.
    let audit = rzen_net::acl::Acl {
        rules: acl.rules[..acl.rules.len().min(50)].to_vec(),
    };
    let audit_model = audit.clone();
    let g = ZenFunction::new(move |h| audit_model.matched_line(h));
    let t0 = Instant::now();
    let shadowed: Vec<usize> = (1..=audit.rules.len() as u16)
        .filter(|&i| {
            g.find(|_, l| l.eq(Zen::val(i)), &FindOptions::bdd())
                .is_none()
        })
        .map(|i| i as usize)
        .collect();
    println!(
        "\nshadow audit (first {} lines, {:?}): {} unreachable rule(s) {:?}",
        audit.rules.len(),
        t0.elapsed(),
        shadowed.len(),
        shadowed
    );

    // §8: generate test packets covering the first rules.
    let tests = g.generate_inputs(&FindOptions::smt(), 20);
    println!(
        "\ngenerated {} covering test packets; first 5:",
        tests.len()
    );
    for h in tests.iter().take(5) {
        println!("  line {:>3}: {h:?}", audit.matched_line_concrete(h));
    }
}
