//! Header Space Analysis over the Fig. 3 network (the paper's Fig. 8
//! algorithm, built on state-set transformers), plus the Atomic
//! Predicates and Shapeshifter analyses on the same models — three of
//! Table 1's analyses sharing one set of network models.
//!
//! Run with:
//! `cargo run --release -p rzen-integration --example hsa_reachability`

use rzen::{TransformerSpace, Zen};
use rzen_integration::{addrs, fig3_network};
use rzen_net::analyses::{ap, hsa, shapeshifter};
use rzen_net::headers::{Header, HeaderFields, Packet, PacketFields};

fn main() {
    let net = fig3_network(true); // with the buggy transit filter
    let space = TransformerSpace::new();

    println!("== HSA exploration from U1 (Fig. 8) ==");
    let results = hsa::hsa(&net, &space, 0, 1, space.full::<Packet>());
    for ps in &results {
        let names: Vec<&str> = ps
            .path
            .iter()
            .map(|&(d, _)| net.devices[d].name.as_str())
            .collect();
        println!(
            "  path {:<16} carries 2^{:.1} packets (BDD: {} nodes)",
            names.join("->"),
            ps.set.count().log2(),
            ps.set.bdd_size()
        );
    }

    println!("\n== Reachable packet set U1 -> U3 ==");
    let reach = hsa::reachable_set(&net, &space, 0, 1, 2);
    println!("  2^{:.1} packets arrive at U3", reach.count().log2());
    let blocked = space.set_of::<Packet>(|p| {
        let up = p.underlay_header();
        up.is_some()
            .and(up.value().dst_port().ge(Zen::val(5000)))
            .and(up.value().dst_port().le(Zen::val(6000)))
    });
    println!(
        "  blocked-range packets among them: {}",
        reach.intersect(&blocked).count()
    );
    if let Some(sample) = reach.element() {
        println!("  sample arrival: {sample:?}");
    }

    println!("\n== Atomic predicates of the network's filters ==");
    let acl_set = space.set_of::<Header>(|h| {
        h.dst_port()
            .ge(Zen::val(5000))
            .and(h.dst_port().le(Zen::val(6000)))
    });
    let tunnel_set = space.set_of::<Header>(|h| h.dst_ip().eq(Zen::val(addrs::U3)));
    let atoms = ap::atomic_predicates(&space, &[acl_set.clone(), tunnel_set.clone()]);
    println!("  {} atoms partition the header space:", atoms.len());
    for (i, a) in atoms.iter().enumerate() {
        println!("    atom {i}: 2^{:.1} headers", a.count().log2());
    }
    println!("  filter as atom ids: {:?}", ap::label(&acl_set, &atoms));

    println!("\n== Shapeshifter: ternary abstract reachability ==");
    let h = shapeshifter::PartialHeader::dst(addrs::VB);
    let may = shapeshifter::may_reach(&net, 0, &h);
    let must = shapeshifter::must_reach(&net, 0, &h);
    let names = |ids: &[usize]| -> Vec<&str> {
        ids.iter().map(|&d| net.devices[d].name.as_str()).collect()
    };
    println!("  dst=Vb, rest unknown:");
    println!("    may reach:  {:?}", names(&may));
    println!("    must visit: {:?}", names(&must));
}
