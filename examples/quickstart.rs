//! Quickstart: model a firewall rule in plain Rust, then simulate,
//! verify (on two solver backends), generate tests, and compile it.
//!
//! Run with: `cargo run --release -p rzen-integration --example quickstart`

use rzen::{zen_struct, zif, FindOptions, Zen, ZenFunction};

zen_struct! {
    /// A toy packet: just the ports.
    pub struct Flow : FlowFields {
        dst_port, with_dst_port: u16;
        src_port, with_src_port: u16;
    }
}

fn main() {
    // 1. A model is ordinary Rust code over Zen values.
    let classify = ZenFunction::new(|f: Zen<Flow>| {
        zif(
            f.dst_port().eq(Zen::val(22)),
            Zen::val(1u8), // ssh
            zif(
                f.dst_port()
                    .eq(Zen::val(443))
                    .or(f.dst_port().eq(Zen::val(80))),
                Zen::val(2u8), // web
                Zen::val(0u8), // other
            ),
        )
    });

    // 2. Simulate: models are executable.
    let https = Flow {
        dst_port: 443,
        src_port: 51234,
    };
    println!(
        "simulate: class of {https:?} = {}",
        classify.evaluate(&https)
    );

    // 3. Verify: find inputs with a property, on either backend.
    for opts in [FindOptions::bdd(), FindOptions::smt()] {
        let w = classify
            .find(
                |f, class| class.eq(Zen::val(1u8)).and(f.src_port().lt(Zen::val(1024))),
                &opts,
            )
            .expect("an ssh flow with a low source port exists");
        println!("find [{:?}]: {w:?}", opts.backend);
    }

    // And prove a property for ALL inputs.
    let ok = classify.verify(
        |f, class| f.dst_port().eq(Zen::val(22)).iff(class.eq(Zen::val(1u8))),
        &FindOptions::bdd(),
    );
    println!("verify: class 1 ⟺ dst port 22: {:?}", ok.is_ok());

    // 4. Generate covering test inputs from the model's structure.
    let tests = classify.generate_inputs(&FindOptions::smt(), 10);
    println!("generated {} test flows:", tests.len());
    for t in &tests {
        println!("  {t:?} -> class {}", classify.evaluate(t));
    }

    // 5. Compile the model to an executable implementation.
    let compiled = classify.compile(0);
    println!(
        "compiled to {} VM instructions; class of {https:?} = {}",
        compiled.size(),
        compiled.call(&https)
    );
}
