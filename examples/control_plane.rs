//! Control-plane verification: a small BGP network analyzed three ways —
//! Minesweeper-style symbolic fault tolerance, Bonsai-style compression,
//! and plain simulation — all from one set of route-map models.
//!
//! Run with:
//! `cargo run --release -p rzen-integration --example control_plane`

use rzen::{FindOptions, TransformerSpace};
use rzen_net::analyses::{bonsai, minesweeper};
use rzen_net::ip::ip;
use rzen_net::routing::{Action, Announcement, BgpNetwork, Clause, MatchCond, RouteMap};

fn permit_all() -> RouteMap {
    RouteMap {
        clauses: vec![Clause {
            conds: vec![],
            actions: vec![],
            permit: true,
        }],
    }
}

fn main() {
    // A data-center-ish pod: one spine originating the default route,
    // four leaves, symmetric policies — except leaf 4, which deprefers
    // routes tagged 666.
    let mut net = BgpNetwork::default();
    let origin = Announcement::origin(ip(0, 0, 0, 0), 0, 65000);
    let spine = net.add_router("spine", Some(origin));
    let depref = RouteMap {
        clauses: vec![
            Clause {
                conds: vec![MatchCond::HasCommunity(666)],
                actions: vec![Action::SetLocalPref(50)],
                permit: true,
            },
            Clause {
                conds: vec![],
                actions: vec![],
                permit: true,
            },
        ],
    };
    let mut leaves = Vec::new();
    for i in 0..4 {
        let leaf = net.add_router(&format!("leaf{i}"), None);
        let import = if i == 3 { depref.clone() } else { permit_all() };
        net.add_adjacency(spine, leaf, permit_all(), import);
        leaves.push(leaf);
    }
    // A ring among the leaves for redundancy.
    for i in 0..4 {
        net.add_adjacency(leaves[i], leaves[(i + 1) % 4], permit_all(), permit_all());
    }

    println!("network: 1 spine + 4 leaves, {} links\n", net.num_links);

    // --- Simulation: converged routes with no failures.
    println!("== simulation (no failures) ==");
    for r in 0..net.routers.len() {
        let route = net.route_model(r).evaluate(&vec![false; net.num_links]);
        match route {
            Some(a) => println!(
                "  {:<6} route via as_path {:?} (lp {})",
                net.routers[r].name, a.as_path, a.local_pref
            ),
            None => println!("  {:<6} NO ROUTE", net.routers[r].name),
        }
    }

    // --- Minesweeper-style symbolic fault tolerance.
    println!("\n== symbolic fault tolerance ==");
    for k in 1..=3 {
        let mut all_ok = true;
        for &leaf in &leaves {
            match minesweeper::reachable_under_k_failures(&net, leaf, k, &FindOptions::bdd()) {
                Ok(()) => {}
                Err(cex) => {
                    all_ok = false;
                    let failed: Vec<usize> = cex
                        .iter()
                        .enumerate()
                        .filter(|(_, &b)| b)
                        .map(|(i, _)| i)
                        .collect();
                    println!(
                        "  k={k}: {} loses its route if links {:?} fail",
                        net.routers[leaf].name, failed
                    );
                }
            }
        }
        if all_ok {
            println!("  k={k}: every leaf keeps a route under any {k} failures ✓");
        }
    }

    // --- Bonsai-style compression.
    println!("\n== control-plane compression ==");
    let space = TransformerSpace::new();
    let c = bonsai::compress(&space, &net);
    println!(
        "  {} routers -> {} abstract classes ({} distinct policies)",
        net.routers.len(),
        c.num_classes,
        c.num_policy_classes
    );
    for (r, cls) in c.class.iter().enumerate() {
        println!("  {:<6} class {cls}", net.routers[r].name);
    }
    println!("  (leaf3's deprefer policy isolates it; leaf0 and leaf2 merge because");
    println!("   they sit symmetrically around leaf3 on the ring, while leaf1 — ");
    println!("   antipodal to leaf3 — refines into its own class.)");
}
