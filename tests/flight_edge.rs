//! Flight-recorder edge sizes: the `--flight-recorder-size 1` case.
//!
//! Runs in its own test binary because the flight recorder materializes
//! its ring lazily at the first record and the capacity is fixed from
//! then on — the configuration below must land before any other test
//! writes a record in this process.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use rzen_obs::flight::{self, SmallStr};
use rzen_obs::{RequestRecord, VerdictClass};

/// A request for capacity 1 floors to the documented minimum of 16 (the
/// CLI accepts `--flight-recorder-size 1`; a ring smaller than the
/// writer count would make every snapshot read torn), and the tiny ring
/// stays consistent under heavy concurrent wrap-around: every record a
/// reader keeps must be one a writer actually wrote, never a stitch of
/// two.
#[test]
fn size_one_floors_to_sixteen_and_wraps_consistently_under_writers() {
    flight::set_capacity(1);
    assert_eq!(
        flight::capacity(),
        16,
        "capacity 1 floors to the documented minimum"
    );

    // Writers stamp a redundant relation (latency = id * 7, generation =
    // id ^ TAG) that any torn read would violate.
    const TAG: u64 = 0xdead_beef;
    const WRITERS: usize = 8;
    const PER_WRITER: u64 = 4_000;
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..WRITERS as u64)
        .map(|w| {
            thread::spawn(move || {
                for i in 0..PER_WRITER {
                    let id = w * PER_WRITER + i + 1;
                    flight::record(RequestRecord {
                        id,
                        start_us: flight::now_us(),
                        latency_us: id * 7,
                        model: 1,
                        generation: id ^ TAG,
                        leader: 0,
                        op: SmallStr::new("wrap"),
                        src: SmallStr::default(),
                        dst: SmallStr::default(),
                        verdict: VerdictClass::Ok,
                        backend: Default::default(),
                        flags: 0,
                        alloc_bytes: id,
                        alloc_count: id,
                        shard: 0,
                    });
                }
            })
        })
        .collect();
    let reader = {
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut seen = 0usize;
            while !stop.load(Ordering::Relaxed) {
                for rec in flight::snapshot() {
                    assert!(rec.id >= 1 && rec.id <= (WRITERS as u64) * PER_WRITER);
                    assert_eq!(rec.latency_us, rec.id * 7, "torn record survived seqlock");
                    assert_eq!(rec.generation, rec.id ^ TAG, "torn record survived seqlock");
                    assert_eq!(rec.op.as_str(), "wrap");
                    assert_eq!(rec.alloc_bytes, rec.id);
                    seen += 1;
                }
            }
            seen
        })
    };
    for w in writers {
        w.join().expect("writer");
    }
    stop.store(true, Ordering::Relaxed);
    let validated = reader.join().expect("reader");
    assert!(validated > 0, "reader overlapped the writers");

    let after = flight::snapshot();
    assert!(
        after.len() <= 16,
        "a snapshot never exceeds the ring: {}",
        after.len()
    );
    assert!(!after.is_empty(), "the last lap of records is readable");
    assert!(
        flight::records_written() >= (WRITERS as u64) * PER_WRITER,
        "every write counted even though only 16 slots exist"
    );
}
