//! The six analyses of the paper's Table 1, run end-to-end on shared
//! models and cross-checked against one another. This is the evidence
//! behind the "Zen: all checkmarks" column.

use rzen::{FindOptions, TransformerSpace, Zen};
use rzen_integration::{addrs, fig3_network, overlay_header};
use rzen_net::acl::{Acl, AclRule};
use rzen_net::analyses::{anteater, ap, bonsai, hsa, minesweeper, shapeshifter};
use rzen_net::fwd::{FwdRule, FwdTable};
use rzen_net::headers::{Header, HeaderFields, Packet, PacketFields};
use rzen_net::ip::{ip, Prefix};
use rzen_net::routing::{Announcement, BgpNetwork, Clause, RouteMap};

fn permit_all() -> RouteMap {
    RouteMap {
        clauses: vec![Clause {
            conds: vec![],
            actions: vec![],
            permit: true,
        }],
    }
}

// ---------------------------------------------------------------- HSA --

#[test]
fn hsa_explores_fig3_and_matches_per_path_find() {
    let net = fig3_network(true);
    let space = TransformerSpace::new();
    let results = hsa::hsa(&net, &space, 0, 1, space.full::<Packet>());
    assert!(!results.is_empty());
    // The reachable set at U3 must exclude the blocked port range
    // (checked on the *underlay* header, which GRE filled from the
    // overlay ports) and include everything else Va sends.
    let at_u3 = hsa::reachable_set(&net, &space, 0, 1, 2);
    let blocked = space.set_of::<Packet>(|p| {
        let up = p.underlay_header();
        up.is_some().and(
            up.value()
                .dst_port()
                .ge(Zen::val(5000))
                .and(up.value().dst_port().le(Zen::val(6000))),
        )
    });
    assert!(
        at_u3.intersect(&blocked).is_empty(),
        "blocked range must not arrive"
    );
    let sample = at_u3.element().expect("something arrives");
    // Cross-check with simulation along the single path.
    assert!(!at_u3.is_empty());
    let u = sample.underlay_header.expect("arrives encapsulated");
    assert!(!(5000..=6000).contains(&u.dst_port));
}

#[test]
fn hsa_agrees_with_anteater_on_reachability() {
    for buggy in [false, true] {
        let net = fig3_network(buggy);
        let space = TransformerSpace::new();
        let hsa_reach = !hsa::reachable_set(&net, &space, 0, 1, 2).is_empty();
        let anteater_reach = anteater::reachable(&net, 0, 1, 2, 2).is_some();
        assert_eq!(hsa_reach, anteater_reach, "buggy={buggy}");
    }
}

// ------------------------------------------------- Atomic Predicates --

#[test]
fn atomic_predicates_partition_and_label() {
    let space = TransformerSpace::new();
    let acl1 = Acl {
        rules: vec![AclRule {
            permit: true,
            dst: Prefix::new(ip(10, 0, 0, 0), 8),
            ..AclRule::any(true)
        }],
    };
    let acl2 = Acl {
        rules: vec![AclRule {
            permit: true,
            dst_ports: (80, 80),
            ..AclRule::any(true)
        }],
    };
    let p1 = space.set_of::<Header>(|h| acl1.allows(h));
    let p2 = space.set_of::<Header>(|h| acl2.allows(h));
    let atoms = ap::atomic_predicates(&space, &[p1.clone(), p2.clone()]);
    // Independent predicates → 4 atoms.
    assert_eq!(atoms.len(), 4);
    // Atoms partition the space.
    let mut total = 0.0;
    for (i, a) in atoms.iter().enumerate() {
        total += a.count();
        for b in atoms.iter().skip(i + 1) {
            assert!(a.intersect(b).is_empty());
        }
    }
    assert_eq!(total, space.full::<Header>().count());
    // Label roundtrip: p1 rebuilt from its atoms.
    let l1 = ap::label(&p1, &atoms);
    assert!(ap::from_label(&space, &l1, &atoms).set_eq(&p1));
    // Label-space intersection equals set-space intersection.
    let l2 = ap::label(&p2, &atoms);
    let li = ap::intersect_labels(&l1, &l2);
    assert!(ap::from_label(&space, &li, &atoms).set_eq(&p1.intersect(&p2)));
    let lu = ap::union_labels(&l1, &l2);
    assert!(ap::from_label(&space, &lu, &atoms).set_eq(&p1.union(&p2)));
}

// ------------------------------------------------------------ Anteater --

#[test]
fn anteater_finds_witness_and_respects_predicates() {
    let net = fig3_network(true);
    // Generic reachability: OK.
    let w = anteater::reachable(&net, 0, 1, 2, 2).expect("reachable");
    assert_eq!(w.path.len(), 3);
    // Restricted to the blocked range: impossible.
    let none = anteater::reachable_such_that(&net, 0, 1, 2, 2, |p, out| {
        out.is_some()
            .and(p.overlay_header().dst_port().ge(Zen::val(5000)))
            .and(p.overlay_header().dst_port().le(Zen::val(6000)))
            .and(p.underlay_header().is_none())
    });
    assert!(none.is_none(), "blocked overlay ports cannot be delivered");
}

// --------------------------------------------------------- Minesweeper --

fn diamond() -> BgpNetwork {
    // r0 originates; r3 reachable via r1 and r2 (redundant).
    let mut n = BgpNetwork::default();
    let origin = Announcement::origin(ip(10, 0, 0, 0), 8, 65000);
    let r0 = n.add_router("r0", Some(origin));
    let r1 = n.add_router("r1", None);
    let r2 = n.add_router("r2", None);
    let r3 = n.add_router("r3", None);
    n.add_adjacency(r0, r1, permit_all(), permit_all());
    n.add_adjacency(r0, r2, permit_all(), permit_all());
    n.add_adjacency(r1, r3, permit_all(), permit_all());
    n.add_adjacency(r2, r3, permit_all(), permit_all());
    n
}

#[test]
fn minesweeper_fault_tolerance() {
    let net = diamond();
    // The diamond survives any single failure...
    assert!(minesweeper::reachable_under_k_failures(&net, 3, 1, &FindOptions::bdd()).is_ok());
    // ...but not all double failures; the counterexample is genuine.
    let cex = minesweeper::reachable_under_k_failures(&net, 3, 2, &FindOptions::bdd())
        .expect_err("two failures can disconnect the diamond");
    assert!(cex.iter().filter(|&&b| b).count() <= 2);
    assert!(!net.reachability_model(3).evaluate(&cex));
}

#[test]
fn minesweeper_path_length_and_community_properties() {
    let net = diamond();
    // Longest loop-free route: origin + 2 hops = AS-path length 3.
    assert!(minesweeper::path_length_bounded(&net, 3, 3, 2, &FindOptions::bdd()).is_ok());
    // Length 2 is impossible even without failures (r3 is 2 hops out).
    assert!(minesweeper::path_length_bounded(&net, 3, 2, 0, &FindOptions::bdd()).is_err());
    // No policy adds community 999 anywhere.
    assert!(minesweeper::never_carries_community(&net, 3, 999, 1, &FindOptions::bdd()).is_ok());
}

// -------------------------------------------------------------- Bonsai --

#[test]
fn bonsai_compresses_symmetric_diamond() {
    let space = TransformerSpace::new();
    let net = diamond();
    let c = bonsai::compress(&space, &net);
    // r1 and r2 are interchangeable; r0 (origin) and r3 (two-in-degree
    // sink) are not.
    assert_eq!(c.class[1], c.class[2]);
    assert_ne!(c.class[0], c.class[1]);
    assert_ne!(c.class[3], c.class[1]);
    assert_eq!(c.num_classes, 3);
    // One distinct policy (permit-all) across all edges.
    assert_eq!(c.num_policy_classes, 1);
}

#[test]
fn bonsai_policy_classes_are_semantic() {
    let space = TransformerSpace::new();
    // Same behavior, different syntax: permit-all vs. two complementary
    // permits.
    let split = RouteMap {
        clauses: vec![
            Clause {
                conds: vec![rzen_net::routing::MatchCond::MedEq(0)],
                actions: vec![],
                permit: true,
            },
            Clause {
                conds: vec![],
                actions: vec![],
                permit: true,
            },
        ],
    };
    let deny = RouteMap::default();
    let (classes, n) = bonsai::policy_classes(&space, &[permit_all(), split, deny, permit_all()]);
    assert_eq!(n, 2);
    assert_eq!(classes[0], classes[1]);
    assert_eq!(classes[0], classes[3]);
    assert_ne!(classes[0], classes[2]);
}

// ------------------------------------------------------------ Datalog --

#[test]
fn datalog_reachability_matches_hsa_and_anteater() {
    // A header-preserving line: d0 -- d1(acl: drop ssh) -- d2.
    use rzen_net::analyses::datalog;
    use rzen_net::device::Interface;

    let table = FwdTable::new(vec![FwdRule {
        prefix: Prefix::ANY,
        port: 2,
    }]);
    let acl = Acl {
        rules: vec![
            AclRule {
                permit: false,
                dst_ports: (22, 22),
                ..AclRule::any(false)
            },
            AclRule::any(true),
        ],
    };
    let mut net = rzen_net::topology::Network::default();
    for i in 0..3 {
        let mut in_intf = Interface::new(1, table.clone());
        if i == 1 {
            in_intf.acl_in = Some(acl.clone());
        }
        net.add_device(rzen_net::topology::Device {
            name: format!("d{i}"),
            interfaces: vec![in_intf, Interface::new(2, table.clone())],
        });
    }
    net.add_duplex(0, 2, 1, 1);
    net.add_duplex(1, 2, 2, 1);

    let space = TransformerSpace::new();
    let r = datalog::reachability(&net, &space, 0, 1);

    // Reachability agrees with Anteater per device.
    for d in 0..3 {
        let ant = anteater::reachable(&net, 0, 1, d, 2).is_some() || d == 0;
        assert_eq!(r.device_reachable(d), ant, "device {d}");
    }

    // The headers reaching d2 agree with HSA's exact set: no ssh.
    let dl_set = r.reachable_headers(&space, 2);
    let hsa_set = hsa::reachable_set(&net, &space, 0, 1, 2);
    // HSA works on packets; its overlay-header projection must match.
    let ssh = space.set_of::<Header>(|h| h.dst_port().eq(Zen::val(22)));
    assert!(dl_set.intersect(&ssh).is_empty());
    assert!(!dl_set.is_empty());
    assert_eq!(hsa_set.is_empty(), dl_set.is_empty());
    // Count check: everything except dst_port 22 gets through.
    let full = space.full::<Header>().count();
    assert_eq!(dl_set.count(), full - full / 65536.0);
}

#[test]
fn datalog_atom_sets_bitset_ops() {
    use rzen_net::analyses::datalog::AtomSet;
    let mut a = AtomSet::empty(130);
    a.insert(0);
    a.insert(64);
    a.insert(129);
    assert!(a.contains(64) && !a.contains(63));
    let mut b = AtomSet::empty(130);
    b.insert(64);
    assert_eq!(a.intersect(&b).iter().collect::<Vec<_>>(), vec![64]);
    assert!(!b.union_with(&b.clone()));
    let mut c = AtomSet::empty(130);
    assert!(c.union_with(&a));
    assert_eq!(c.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
    assert!(AtomSet::empty(10).is_empty());
}

// -------------------------------------------------------- Shapeshifter --

#[test]
fn shapeshifter_abstract_forwarding() {
    let table = FwdTable::new(vec![
        FwdRule {
            prefix: Prefix::new(ip(10, 0, 0, 0), 8),
            port: 1,
        },
        FwdRule {
            prefix: Prefix::ANY,
            port: 2,
        },
    ]);
    // Destination known: decision is definite.
    let known = shapeshifter::PartialHeader::dst(ip(10, 1, 2, 3));
    let ports = shapeshifter::abstract_ports(&table, &known);
    assert!(ports.contains(&(1, shapeshifter::Verdict::Always)));
    assert!(ports.contains(&(2, shapeshifter::Verdict::Never)));
    // Destination unknown: both possible.
    let unknown = shapeshifter::PartialHeader::default();
    let ports = shapeshifter::abstract_ports(&table, &unknown);
    assert!(ports.contains(&(1, shapeshifter::Verdict::Unknown)));
    assert!(ports.contains(&(2, shapeshifter::Verdict::Unknown)));
}

#[test]
fn shapeshifter_overapproximates_hsa() {
    // Soundness: every device HSA proves reachable is in the ternary
    // may-reach set.
    let net = fig3_network(true);
    let may = shapeshifter::may_reach(&net, 0, &shapeshifter::PartialHeader::default());
    let space = TransformerSpace::new();
    for target in 0..net.devices.len() {
        let exact = !hsa::reachable_set(&net, &space, 0, 1, target).is_empty();
        if exact {
            assert!(may.contains(&target), "device {target}");
        }
    }
}

#[test]
fn shapeshifter_must_reach_follows_definite_chain() {
    let net = fig3_network(false);
    // With the destination pinned to Vb's network, the chain U1→U2→U3 is
    // definite.
    let h = shapeshifter::PartialHeader::dst(addrs::VB);
    let must = shapeshifter::must_reach(&net, 0, &h);
    assert_eq!(must, vec![0, 1, 2]);
    let _ = overlay_header(1, 1); // fixture sanity
}
