//! The paper's §8 use cases beyond analysis: generating test inputs from
//! models and synthesizing implementations, then using the two together
//! (model-based testing: the model generates the tests that validate the
//! derived implementation).

use rzen::{FindOptions, Zen, ZenFunction};
use rzen_net::acl::Acl;
use rzen_net::gen::random_acl;
use rzen_net::headers::Header;

/// A hand-written "production" implementation of ACL matching — the kind
/// of artifact the model-based tests are supposed to validate. It
/// contains a subtle off-by-one a reviewer might miss.
fn production_acl_match(acl: &Acl, h: &Header, buggy: bool) -> u16 {
    for (i, r) in acl.rules.iter().enumerate() {
        let dst_hi = if buggy {
            // BUG: exclusive upper bound on the destination port.
            h.dst_port < r.dst_ports.1
        } else {
            h.dst_port <= r.dst_ports.1
        };
        if r.src.contains(h.src_ip)
            && r.dst.contains(h.dst_ip)
            && h.dst_port >= r.dst_ports.0
            && dst_hi
            && h.src_port >= r.src_ports.0
            && h.src_port <= r.src_ports.1
            && h.protocol >= r.protocols.0
            && h.protocol <= r.protocols.1
        {
            return i as u16 + 1;
        }
    }
    0
}

#[test]
fn generated_inputs_cover_every_reachable_rule() {
    // "we can generate test packets that match on every single rule in
    // the ACL" (§8).
    let acl = random_acl(20, 11);
    let model = acl.clone();
    let f = ZenFunction::new(move |h| model.matched_line(h));
    let inputs = f.generate_inputs(&FindOptions::smt(), 64);
    let covered: std::collections::BTreeSet<u16> = inputs
        .iter()
        .map(|h| acl.matched_line_concrete(h))
        .collect();
    // Which lines are reachable at all (checked symbolically)?
    let reachable: std::collections::BTreeSet<u16> = (1..=acl.rules.len() as u16)
        .filter(|&i| {
            f.find(|_, l| l.eq(Zen::val(i)), &FindOptions::smt())
                .is_some()
        })
        .collect();
    assert_eq!(
        covered, reachable,
        "inputs must cover exactly the reachable lines"
    );
}

#[test]
fn model_based_testing_catches_the_implementation_bug() {
    let acl = random_acl(30, 21);
    let model = acl.clone();
    let f = ZenFunction::new(move |h| model.matched_line(h));
    let inputs = f.generate_inputs(&FindOptions::smt(), 128);
    assert!(!inputs.is_empty());

    // The correct implementation passes every generated test.
    for h in &inputs {
        assert_eq!(
            production_acl_match(&acl, h, false),
            acl.matched_line_concrete(h)
        );
    }

    // The buggy implementation fails at least one: the generator emits
    // boundary packets (it solves for each rule's match condition, and
    // port-range bounds are part of those conditions).
    let disagreements = inputs
        .iter()
        .filter(|h| production_acl_match(&acl, h, true) != acl.matched_line_concrete(h))
        .count();
    assert!(
        disagreements > 0,
        "generated tests should expose the off-by-one"
    );
}

#[test]
fn synthesized_implementation_matches_model_everywhere_probed() {
    // §8 "Synthesizing implementations": the compiled function *is* the
    // implementation; validate it with both generated and random inputs.
    let acl = random_acl(25, 31);
    let model = acl.clone();
    let f = ZenFunction::new(move |h| model.matched_line(h));
    let compiled = f.compile(0);
    let mut probes = f.generate_inputs(&FindOptions::smt(), 64);
    for seed in 0..100 {
        probes.push(rzen_net::gen::random_header(seed));
    }
    for h in &probes {
        assert_eq!(compiled.call(h), acl.matched_line_concrete(h));
    }
}

#[test]
fn compiled_implementation_is_in_sync_after_model_change() {
    // The property §8 emphasizes: recompiling after a model change keeps
    // implementation and model in sync by construction.
    let acl_v1 = random_acl(10, 41);
    let mut acl_v2 = acl_v1.clone();
    acl_v2.rules.remove(3);

    let m1 = acl_v1.clone();
    let f1 = ZenFunction::new(move |h| m1.matched_line(h));
    let m2 = acl_v2.clone();
    let f2 = ZenFunction::new(move |h| m2.matched_line(h));
    let c1 = f1.compile(0);
    let c2 = f2.compile(0);
    for seed in 200..260 {
        let h = rzen_net::gen::random_header(seed);
        assert_eq!(c1.call(&h), acl_v1.matched_line_concrete(&h));
        assert_eq!(c2.call(&h), acl_v2.matched_line_concrete(&h));
    }
}
