//! Observability integration tests: the disabled-path overhead contract
//! on the substrate hot paths, cross-subsystem span coverage through the
//! batch engine, and metric accumulation.
//!
//! These tests flip the process-global trace flag, so everything that
//! does is serialized behind one mutex (the test harness runs each
//! `#[test]` on its own thread, so the thread-local buffer checks see a
//! fresh thread per test).

use rzen_bdd::BddManager;
use rzen_engine::{Engine, EngineConfig, Query, QueryBackend};
use rzen_net::gen::random_acl;
use rzen_sat::{Lit, SolveStatus, Solver};

/// Tests that touch the global enabled flag must not interleave.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Drive the BDD manager's `mk()` choke point hard: a blend of
/// conjunctions, disjunctions, and parities over 24 variables.
fn mk_heavy_workload() {
    let mut m = BddManager::new();
    let mut acc = m.constant(true);
    let mut parity = m.constant(false);
    for v in 0..24u32 {
        let x = m.var(v);
        let y = m.var((v * 7 + 3) % 24);
        let clause = m.or(x, y);
        acc = m.and(acc, clause);
        parity = m.xor(parity, x);
    }
    let both = m.and(acc, parity);
    assert!(m.stats().nodes > 24, "workload must exercise mk()");
    std::hint::black_box(both);
}

/// Drive CDCL `propagate()` hard: the pigeonhole principle PHP(5,4),
/// unsatisfiable with real conflict analysis.
fn propagate_heavy_workload() {
    let n_holes = 4usize;
    let n_pigeons = 5usize;
    let mut s = Solver::new();
    let vars: Vec<Vec<Lit>> = (0..n_pigeons)
        .map(|_| (0..n_holes).map(|_| Lit::pos(s.new_var())).collect())
        .collect();
    for p in &vars {
        s.add_clause(p);
    }
    for h in 0..n_holes {
        for (a, pa) in vars.iter().enumerate() {
            for pb in &vars[a + 1..] {
                s.add_clause(&[!pa[h], !pb[h]]);
            }
        }
    }
    assert_eq!(s.solve_limited(&[]), SolveStatus::Unsat);
    assert!(s.stats.propagations > 0);
}

#[test]
fn disabled_hot_paths_allocate_and_record_nothing() {
    let _g = lock();
    rzen_obs::trace::set_enabled(false);
    let recorded_before = rzen_obs::trace::events_recorded();

    mk_heavy_workload();
    propagate_heavy_workload();

    // The whole disabled-path cost is one relaxed load per hook: no event
    // was recorded anywhere, and this thread never allocated (or locked)
    // a trace ring buffer.
    assert_eq!(
        rzen_obs::trace::events_recorded(),
        recorded_before,
        "disabled tracing must record nothing"
    );
    assert!(
        !rzen_obs::trace::thread_buffer_allocated(),
        "disabled tracing must not allocate a ring buffer"
    );
}

#[test]
fn enabled_batch_records_spans_from_four_subsystems() {
    let _g = lock();
    rzen_obs::trace::set_enabled(true);
    rzen_obs::trace::clear();

    let acl = random_acl(40, 1);
    let last = acl.rules.len() as u16;
    let queries = [
        Query::AclFind {
            acl: acl.clone(),
            target_line: last,
        },
        Query::AclFind {
            acl,
            target_line: last + 1,
        },
    ];
    // Sequential per-backend batches: both substrates run to completion,
    // so their spans are recorded deterministically (a portfolio race
    // could cancel one side before its solve span opens).
    for backend in [QueryBackend::Bdd, QueryBackend::Smt] {
        Engine::new(EngineConfig {
            jobs: 2,
            backend,
            timeout: None,
            cache: false,
            sessions: false,
        })
        .run_batch(&queries);
    }

    rzen_obs::trace::set_enabled(false);
    let events = rzen_obs::trace::take_events();
    let subsystems: std::collections::BTreeSet<&str> = events
        .iter()
        .map(|e| e.name.split('.').next().unwrap())
        .collect();
    for want in ["bdd", "sat", "bitblast", "engine"] {
        assert!(
            subsystems.contains(want),
            "no spans from {want:?}; saw {subsystems:?}"
        );
    }
    // Spans carry real durations and the exporters accept the batch.
    assert!(events
        .iter()
        .any(|e| e.phase == rzen_obs::trace::Phase::Span && e.name == "engine.batch"));
    let trace = rzen_obs::export::chrome_trace(&events);
    rzen_obs::json::validate(&trace).expect("chrome trace must be valid JSON");
    let report = rzen_obs::export::phase_report(&events);
    assert!(report.contains("engine.batch"));
}

#[test]
fn metrics_accumulate_across_batches() {
    let _g = lock();
    let solves = rzen_obs::metrics::registry().counter("bdd.solves", "");
    let queries_counter = rzen_obs::metrics::registry().counter("engine.queries", "");
    let before_solves = solves.get();
    let before_queries = queries_counter.get();

    let acl = random_acl(30, 2);
    let last = acl.rules.len() as u16;
    Engine::new(EngineConfig {
        jobs: 1,
        backend: QueryBackend::Bdd,
        timeout: None,
        cache: false,
        sessions: false,
    })
    .run_batch(&[Query::AclFind {
        acl,
        target_line: last,
    }]);

    assert!(solves.get() > before_solves, "bdd.solves must advance");
    assert_eq!(queries_counter.get(), before_queries + 1);
    // The registry snapshot renders to valid JSON for --stats-json.
    let json = rzen_obs::metrics::registry().render_json();
    rzen_obs::json::validate(&json).expect("metrics JSON must be valid");
}

#[test]
fn query_latency_histogram_records_decision_time() {
    let _g = lock();
    let hist = rzen_obs::metrics::registry().histogram("engine.query_us", "");
    let before_count = hist.count();
    let before_sum = hist.sum();

    let acl = random_acl(40, 3);
    let last = acl.rules.len() as u16;
    let queries = [
        Query::AclFind {
            acl: acl.clone(),
            target_line: last,
        },
        Query::AclFind {
            acl,
            target_line: last + 1,
        },
    ];
    let report = Engine::new(EngineConfig {
        jobs: 2,
        backend: QueryBackend::Portfolio,
        timeout: None,
        cache: false,
        sessions: false,
    })
    .run_batch(&queries);

    // One observation per solved query, and the recorded latencies are
    // the decision-time stamps from the results — for a portfolio race
    // that is when the winner answered, not when the loser finished
    // draining.
    assert_eq!(hist.count(), before_count + queries.len() as u64);
    let observed: u64 = report
        .results
        .iter()
        .map(|r| r.latency.as_micros() as u64)
        .sum();
    assert_eq!(hist.sum() - before_sum, observed);
}

/// Assert one Prometheus text exposition is internally well formed:
/// every sample belongs to a family announced by a `# TYPE` line,
/// counter families end in `_total`, and every histogram series has
/// ascending `le` bounds, nondecreasing cumulative bucket values, and a
/// `+Inf` bucket equal to its `_count`.
fn assert_exposition_well_formed(text: &str) {
    use std::collections::HashMap;
    let mut kinds: HashMap<&str, &str> = HashMap::new();
    // Per histogram series (family + labels-without-le): the cumulative
    // bucket values in emission order, the last finite le bound, the
    // +Inf value, and the _count value.
    let mut last_cum: HashMap<String, u64> = HashMap::new();
    let mut last_le: HashMap<String, u64> = HashMap::new();
    let mut infs: HashMap<String, u64> = HashMap::new();
    let mut counts: HashMap<String, u64> = HashMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split(' ');
            kinds.insert(it.next().unwrap(), it.next().expect("TYPE carries a kind"));
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("malformed sample line {line:?}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
        let name = series.split('{').next().unwrap();
        // A histogram's samples carry _bucket/_sum/_count suffixes on
        // the family name; everything else samples the family directly.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| {
                name.strip_suffix(s)
                    .filter(|f| kinds.get(f) == Some(&"histogram"))
            })
            .unwrap_or(name);
        let kind = *kinds
            .get(family)
            .unwrap_or_else(|| panic!("sample before its # TYPE line: {line:?}"));
        match kind {
            "counter" => assert!(
                family.ends_with("_total"),
                "counter family {family} must end in _total"
            ),
            "gauge" => {}
            "histogram" => {
                let labels = &series[name.len()..];
                if name.ends_with("_bucket") {
                    let le_start = labels
                        .rfind("le=\"")
                        .unwrap_or_else(|| panic!("bucket sample without le: {line:?}"));
                    let le = &labels[le_start + 4..labels.len() - 2];
                    let key = format!(
                        "{family}{}",
                        labels[..le_start]
                            .trim_end_matches(',')
                            .trim_end_matches('{')
                    );
                    let cum = value as u64;
                    if le == "+Inf" {
                        infs.insert(key, cum);
                    } else {
                        let le: u64 = le
                            .parse()
                            .unwrap_or_else(|_| panic!("non-integer le in {line:?}"));
                        if let Some(&prev) = last_le.get(&key) {
                            assert!(le > prev, "le bounds must ascend: {line:?}");
                        }
                        if let Some(&prev) = last_cum.get(&key) {
                            assert!(
                                cum >= prev,
                                "cumulative buckets must not decrease: {line:?}"
                            );
                        }
                        last_le.insert(key.clone(), le);
                        last_cum.insert(key, cum);
                    }
                } else if name.ends_with("_count") {
                    counts.insert(
                        format!("{family}{}", labels.trim_end_matches('}')),
                        value as u64,
                    );
                }
            }
            other => panic!("unknown metric kind {other:?}"),
        }
    }
    for (key, inf) in &infs {
        if let Some(&last) = last_cum.get(key) {
            assert!(
                *inf >= last,
                "+Inf bucket below the last finite bucket: {key}"
            );
        }
        assert_eq!(
            counts.get(key),
            Some(inf),
            "+Inf bucket must equal _count for {key}"
        );
    }
    assert!(!infs.is_empty(), "exposition carries no histograms?");
}

#[test]
fn prometheus_exposition_stays_well_formed_under_concurrent_updates() {
    let _g = lock();
    let reg = rzen_obs::metrics::registry();
    // A label value needing every escape in the book.
    reg.counter_with(
        "obs_test.weird_labels",
        "label escaping fixture",
        &[("path", "a\\b\"c\nd")],
    )
    .inc();

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = (0..4)
        .map(|t: u64| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let reg = rzen_obs::metrics::registry();
                let h = reg.histogram("obs_test.expo_us", "exposition fixture histogram");
                let parity = if t.is_multiple_of(2) { "even" } else { "odd" };
                let c = reg.counter_with(
                    "obs_test.expo_events",
                    "exposition fixture counter",
                    &[("src", parity)],
                );
                let mut v: u64 = t + 1;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    h.observe(v % 100_000);
                    c.inc();
                    v = v
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                }
            })
        })
        .collect();

    // Render repeatedly *while* the writers hammer the registry: each
    // exposition must be internally consistent on its own — in
    // particular +Inf == _count, which the renderer guarantees by
    // deriving both from one read of the bucket array.
    for _ in 0..25 {
        assert_exposition_well_formed(&reg.render_prometheus());
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }

    let text = reg.render_prometheus();
    assert_exposition_well_formed(&text);
    assert!(text.contains("# HELP obs_test_expo_events_total exposition fixture counter"));
    assert!(text.contains("# TYPE obs_test_expo_events_total counter"));
    assert!(text.contains("obs_test_expo_events_total{src=\"even\"}"));
    assert!(text.contains("obs_test_expo_events_total{src=\"odd\"}"));
    assert!(text.contains("# TYPE obs_test_expo_us histogram"));
    assert!(
        text.contains("path=\"a\\\\b\\\"c\\nd\""),
        "label values must escape backslash, quote, and newline:\n{text}"
    );
}
