//! Round-trip property for the spec format over every checked-in spec:
//! parse → serialize → parse must reproduce a structurally equal model.
//! This is what guarantees a served model can be exported, archived, and
//! re-posted to `POST /model` without drift.

use rzen_net::spec;

fn spec_files() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("specs/ directory") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) == Some("net") {
            let name = path.file_name().unwrap().to_string_lossy().to_string();
            let text = std::fs::read_to_string(&path).unwrap();
            out.push((name, text));
        }
    }
    assert!(!out.is_empty(), "no .net files under specs/");
    out
}

#[test]
fn every_checked_in_spec_round_trips_structurally() {
    for (name, text) in spec_files() {
        let first = spec::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let serialized =
            spec::serialize(&first).unwrap_or_else(|e| panic!("{name}: unserializable: {e}"));
        let second = spec::parse(&serialized).unwrap_or_else(|e| {
            panic!("{name}: reparse of serialized form failed: {e}\n{serialized}")
        });
        assert_eq!(
            first.net, second.net,
            "{name}: round trip changed the model\n--- serialized ---\n{serialized}"
        );
        assert_eq!(
            first.device_index, second.device_index,
            "{name}: name index drifted"
        );
        // And the serializer is a fixpoint: serializing the reparse gives
        // the same text (canonical form is stable).
        let again = spec::serialize(&second).unwrap();
        assert_eq!(serialized, again, "{name}: serialization not canonical");
    }
}
