//! End-to-end verification of the paper's Fig. 3 virtualized network,
//! including the §2 motivating scenario: a bug at the overlay/underlay
//! boundary that neither isolated verification finds, but the composed
//! model does.

use rzen::{FindOptions, Zen, ZenFunction};
use rzen_integration::{addrs, fig3_network, overlay_header};
use rzen_net::device::forward_along;
use rzen_net::headers::{Header, HeaderFields, Packet, PacketFields};

fn delivery_model(buggy: bool) -> ZenFunction<Packet, Option<Packet>> {
    let net = fig3_network(buggy);
    let paths = net.paths(0, 1, 2, 2); // enter U1 from Va, exit U3 to Vb
    assert_eq!(paths.len(), 1, "the Fig. 3 line has one path");
    let path = paths.into_iter().next().unwrap();
    ZenFunction::new(move |p| forward_along(&path, p))
}

#[test]
fn healthy_network_delivers_overlay_traffic() {
    let f = delivery_model(false);
    let sent = Packet::plain(overlay_header(443, 51000));
    let got = f.evaluate(&sent).expect("delivered");
    // Decapsulated at U3: no underlay header remains, overlay intact.
    assert_eq!(got.underlay_header, None);
    assert_eq!(got.overlay_header, sent.overlay_header);
}

#[test]
fn tunnel_is_transparent_for_all_packets_when_healthy() {
    // Symbolic: every Va→Vb overlay packet is delivered unmodified.
    let f = delivery_model(false);
    let ok = f.verify(
        |p, out| {
            let va_to_vb = p
                .overlay_header()
                .dst_ip()
                .eq(Zen::val(addrs::VB))
                .and(p.overlay_header().src_ip().eq(Zen::val(addrs::VA)))
                .and(p.underlay_header().is_none());
            va_to_vb.implies(
                out.is_some()
                    .and(out.value().overlay_header().eq(p.overlay_header()))
                    .and(out.value().underlay_header().is_none()),
            )
        },
        &FindOptions::bdd(),
    );
    assert!(ok.is_ok(), "healthy network must deliver everything");
}

#[test]
fn composed_model_finds_the_boundary_bug() {
    // §2: "the underlay may have a buggy packet filter that drops some
    // types of overlay packets. This bug will not be found if we verify
    // the underlay and the overlay separately."
    let f = delivery_model(true);
    let dropped = f
        .find(
            |p, out| {
                let va_to_vb = p
                    .overlay_header()
                    .dst_ip()
                    .eq(Zen::val(addrs::VB))
                    .and(p.overlay_header().src_ip().eq(Zen::val(addrs::VA)))
                    .and(p.underlay_header().is_none());
                va_to_vb.and(out.is_none())
            },
            &FindOptions::bdd(),
        )
        .expect("the composed model exposes the bug");
    // The witness is exactly the interaction: an overlay port that the
    // underlay filter (matching the GRE-copied ports) blocks.
    assert!(
        (5000..=6000).contains(&dropped.overlay_header.dst_port),
        "witness {dropped:?} should be in the blocked range"
    );
    // Confirm by simulation.
    assert_eq!(f.evaluate(&dropped), None);
}

#[test]
fn overlay_only_verification_misses_the_bug() {
    // Overlay-in-isolation: assume the underlay is a perfect pipe (the
    // first method of §2). The overlay itself has no filters, so overlay
    // verification passes even in the buggy network.
    let overlay_only = ZenFunction::new(|h: Zen<Header>| {
        // Perfect-pipe underlay: delivery is unconditional.
        Zen::some(h)
    });
    assert!(overlay_only
        .verify(|h, out| out.value_or(h).eq(h), &FindOptions::bdd())
        .is_ok());
}

#[test]
fn underlay_only_verification_misses_the_bug() {
    // Underlay-in-isolation: is U3 reachable from U1 for *some* packet?
    // Yes — ports outside the blocked range pass, so a generic underlay
    // reachability check succeeds despite the bug.
    let f = delivery_model(true);
    let witness = f.find(|_, out| out.is_some(), &FindOptions::bdd());
    assert!(witness.is_some(), "underlay still carries most traffic");
}

#[test]
fn both_backends_agree_on_the_bug() {
    let f = delivery_model(true);
    for opts in [FindOptions::bdd(), FindOptions::smt()] {
        let dropped = f.find(
            |p, out| {
                p.overlay_header()
                    .dst_ip()
                    .eq(Zen::val(addrs::VB))
                    .and(p.underlay_header().is_none())
                    .and(out.is_none())
            },
            &opts,
        );
        let d = dropped.expect("bug visible on both backends");
        assert_eq!(f.evaluate(&d), None);
    }
}

#[test]
fn fixing_the_filter_restores_delivery() {
    // The fix: the healthy network (no transit filter) delivers the very
    // packet that was dropped.
    let buggy = delivery_model(true);
    let healthy = delivery_model(false);
    let dropped = buggy
        .find(
            |p, out| {
                p.overlay_header()
                    .dst_ip()
                    .eq(Zen::val(addrs::VB))
                    .and(p.underlay_header().is_none())
                    .and(out.is_none())
            },
            &FindOptions::bdd(),
        )
        .unwrap();
    assert!(healthy.evaluate(&dropped).is_some());
}

#[test]
fn encapsulation_happens_in_transit() {
    // A packet observed between U1 and U2 carries the underlay header
    // (paper Fig. 3's middle row). Model the first hop only.
    let net = fig3_network(false);
    let paths = net.paths(0, 1, 0, 2); // enter and leave U1
    let path = paths.into_iter().next().unwrap();
    let f = ZenFunction::new(move |p| forward_along(&path, p));
    let out = f
        .evaluate(&Packet::plain(overlay_header(443, 51000)))
        .expect("forwarded");
    let u = out.underlay_header.expect("encapsulated");
    assert_eq!(u.src_ip, addrs::U1);
    assert_eq!(u.dst_ip, addrs::U3);
    assert_eq!(out.overlay_header, overlay_header(443, 51000));
}
