//! Integration tests for the batch query engine: differential agreement
//! between portfolio and single-backend runs, cancellation soundness
//! (never a wrong verdict), and cache-hit fidelity.

use std::time::Duration;

use rzen::{Backend, Budget, FindOptions, FindOutcome, Zen, ZenFunction};
use rzen_engine::{Engine, EngineConfig, Query, QueryBackend, Verdict};
use rzen_net::gen::{random_acl, random_route_map, spine_leaf};

/// A mixed batch of seeded-random queries with a spread of Sat and Unsat
/// answers: last-line finds (reachable), beyond-last-line finds
/// (unsatisfiable), route-map clause finds, and fabric reachability.
fn mixed_queries() -> Vec<Query> {
    let mut queries = Vec::new();
    for seed in 0..7u64 {
        let acl = random_acl(60, seed);
        let last = acl.rules.len() as u16;
        queries.push(Query::AclFind {
            acl: acl.clone(),
            target_line: last,
        });
        // No rule with this index exists, so the query is Unsat.
        queries.push(Query::AclFind {
            acl,
            target_line: last + 1,
        });
    }
    for seed in 0..5u64 {
        let map = random_route_map(8, seed);
        let last = map.clauses.len() as u16;
        queries.push(Query::RouteMapFind {
            map: map.clone(),
            target_clause: last,
            list_bound: 3,
        });
        queries.push(Query::RouteMapFind {
            map,
            target_clause: last + 1,
            list_bound: 3,
        });
    }
    let net = spine_leaf(2, 3);
    for (src, dst) in [(2usize, 3usize), (3, 4), (4, 2)] {
        queries.push(Query::Reach {
            net: net.clone(),
            src: (src, 99),
            dst: (dst, 99),
        });
        queries.push(Query::Drops {
            net: net.clone(),
            src: (src, 99),
            dst: (dst, 99),
        });
    }
    assert_eq!(queries.len(), 30);
    queries
}

fn verdict_kind(v: &Verdict) -> &'static str {
    match v {
        Verdict::Sat(_) => "sat",
        Verdict::Unsat => "unsat",
        Verdict::Timeout => "timeout",
        Verdict::Cancelled => "cancelled",
        Verdict::Error(_) => "error",
    }
}

#[test]
fn portfolio_agrees_with_each_sequential_backend() {
    let queries = mixed_queries();
    let run = |backend: QueryBackend, jobs: usize| {
        Engine::new(EngineConfig {
            jobs,
            backend,
            timeout: None,
            cache: false,
            sessions: false,
        })
        .run_batch(&queries)
    };
    let bdd = run(QueryBackend::Bdd, 1);
    let smt = run(QueryBackend::Smt, 1);
    let portfolio = run(QueryBackend::Portfolio, 4);

    for (i, q) in queries.iter().enumerate() {
        let kb = verdict_kind(&bdd.results[i].verdict);
        let ks = verdict_kind(&smt.results[i].verdict);
        let kp = verdict_kind(&portfolio.results[i].verdict);
        assert_eq!(kb, ks, "query {i} ({}): bdd vs smt disagree", q.kind());
        assert_eq!(kb, kp, "query {i} ({}): portfolio disagrees", q.kind());
        // Witnesses may legitimately differ between backends; each must
        // check out against the concrete reference semantics.
        for report in [&bdd, &smt, &portfolio] {
            if let Verdict::Sat(w) = &report.results[i].verdict {
                assert!(q.check_witness(w), "query {i} ({}): bad witness", q.kind());
            }
        }
    }
    // The batch has both kinds of answers, so agreement is non-vacuous.
    assert!(portfolio.stats.sat > 0 && portfolio.stats.unsat > 0);
    // Portfolio attributes every decisive verdict to a winning backend.
    assert_eq!(
        portfolio.stats.bdd_wins + portfolio.stats.smt_wins,
        queries.len()
    );
}

#[test]
fn cancelled_find_is_never_a_wrong_verdict() {
    // A pre-cancelled budget must yield Cancelled from both backends —
    // deterministically, regardless of how satisfiable the query is.
    let budget = Budget::unlimited();
    budget.cancel();
    for opts in [FindOptions::bdd(), FindOptions::smt()] {
        for seed in 0..3u64 {
            let acl = random_acl(40, seed);
            let last = acl.rules.len() as u16;
            let f = ZenFunction::new(move |h| acl.clone().matched_line(h));
            let report = f.find_budgeted(|_, line| line.eq(Zen::val(last)), &opts, &budget);
            assert!(
                matches!(report.outcome, FindOutcome::Cancelled),
                "backend {:?} returned a verdict under a cancelled budget",
                opts.backend
            );
        }
    }
    rzen::reset_ctx();
}

#[test]
fn solver_stays_usable_after_cancellation() {
    // Cancellation must not poison later solves on the same thread.
    let cancelled = Budget::unlimited();
    cancelled.cancel();
    let acl = random_acl(40, 7);
    let last = acl.rules.len() as u16;
    let mk = {
        let acl = acl.clone();
        move || {
            let acl = acl.clone();
            ZenFunction::new(move |h| acl.clone().matched_line(h))
        }
    };
    for opts in [FindOptions::bdd(), FindOptions::smt()] {
        let report = mk().find_budgeted(|_, line| line.eq(Zen::val(last)), &opts, &cancelled);
        assert!(matches!(report.outcome, FindOutcome::Cancelled));
        let report = mk().find_budgeted(
            |_, line| line.eq(Zen::val(last)),
            &opts,
            &Budget::unlimited(),
        );
        let FindOutcome::Found(h) = report.outcome else {
            panic!("fresh budget must solve normally after a cancellation");
        };
        assert_eq!(acl.matched_line_concrete(&h), last);
    }
    rzen::reset_ctx();
}

#[test]
fn expired_timeout_degrades_to_timeout_without_wedging_the_batch() {
    let queries = mixed_queries();
    // Ground truth under an unlimited budget, for cross-checking any
    // verdict that sneaks in before the first budget poll.
    let truth = Engine::new(EngineConfig {
        jobs: 1,
        backend: QueryBackend::Bdd,
        timeout: None,
        cache: false,
        sessions: false,
    })
    .run_batch(&queries);

    let engine = Engine::new(EngineConfig {
        jobs: 4,
        backend: QueryBackend::Portfolio,
        timeout: Some(Duration::ZERO),
        cache: true,
        sessions: false,
    });
    let report = engine.run_batch(&queries);
    assert_eq!(report.results.len(), queries.len(), "batch must complete");
    for r in &report.results {
        // Queries small enough to be decided during compilation (constant
        // folding, empty path sets) may legitimately finish before the
        // first budget poll — but a decisive verdict must never be WRONG.
        match &r.verdict {
            Verdict::Timeout => {}
            Verdict::Sat(w) => {
                assert_eq!(verdict_kind(&truth.results[r.index].verdict), "sat");
                assert!(
                    queries[r.index].check_witness(w),
                    "timeout race gave a bogus witness"
                );
            }
            Verdict::Unsat => {
                assert_eq!(verdict_kind(&truth.results[r.index].verdict), "unsat");
            }
            Verdict::Cancelled => panic!("expired deadline should map to Timeout"),
            Verdict::Error(e) => panic!("no query in this batch panics: {e}"),
        }
    }
    assert!(report.stats.timeout > 0, "heavy queries must time out");
}

#[test]
fn cache_hits_reproduce_cold_verdicts() {
    let queries = mixed_queries();
    let engine = Engine::new(EngineConfig {
        jobs: 2,
        backend: QueryBackend::Portfolio,
        timeout: None,
        cache: true,
        sessions: false,
    });
    let cold = engine.run_batch(&queries);
    assert_eq!(cold.stats.cache_hits, 0, "first run is all misses");
    let warm = engine.run_batch(&queries);
    assert_eq!(
        warm.stats.cache_hits,
        queries.len(),
        "every decisive verdict must be served from cache on the second run"
    );
    for (c, w) in cold.results.iter().zip(&warm.results) {
        assert!(w.cache_hit);
        assert_eq!(c.verdict, w.verdict, "cache hit changed the verdict");
    }
    // Cache hits skip solving entirely: no substrate stats attached.
    assert!(warm
        .results
        .iter()
        .all(|r| r.sat_stats.is_none() && r.bdd_stats.is_none()));
}

#[test]
fn duplicate_queries_in_one_batch_share_the_cache() {
    let acl = random_acl(50, 11);
    let last = acl.rules.len() as u16;
    let q = Query::AclFind {
        acl,
        target_line: last,
    };
    let queries: Vec<Query> = std::iter::repeat_with(|| q.clone()).take(8).collect();
    let engine = Engine::new(EngineConfig {
        jobs: 1, // deterministic: the first solve populates the cache
        backend: QueryBackend::Portfolio,
        timeout: None,
        cache: true,
        sessions: false,
    });
    let report = engine.run_batch(&queries);
    assert_eq!(report.stats.cache_hits, 7);
    assert!(report
        .results
        .iter()
        .all(|r| matches!(r.verdict, Verdict::Sat(_))));
}

#[test]
fn engine_does_not_disturb_the_callers_context() {
    // Building a symbolic expression, then running a batch, then using the
    // expression must work: workers reset only their own thread contexts.
    let x = Zen::<u8>::symbolic(2);
    let expr = x.eq(Zen::val(42u8));
    let engine = Engine::new(EngineConfig::default());
    let acl = random_acl(30, 3);
    let last = acl.rules.len() as u16;
    engine.run_batch(&[Query::AclFind {
        acl,
        target_line: last,
    }]);
    // The caller's handles are still alive and solvable.
    let f = ZenFunction::new(move |_: Zen<u8>| expr);
    assert!(f.find(|_, r| r, &FindOptions::bdd()).is_some());
    rzen::reset_ctx();
}

#[test]
fn per_backend_stats_are_populated() {
    let acl = random_acl(80, 5);
    let last = acl.rules.len() as u16;
    let q = Query::AclFind {
        acl,
        target_line: last,
    };
    let run = |backend| {
        Engine::new(EngineConfig {
            jobs: 1,
            backend,
            timeout: None,
            cache: false,
            sessions: false,
        })
        .run_batch(std::slice::from_ref(&q))
    };
    let bdd = run(QueryBackend::Bdd);
    assert!(bdd.stats.bdd_nodes > 0);
    assert_eq!(bdd.stats.bdd_wins, 1);
    let smt = run(QueryBackend::Smt);
    assert!(smt.stats.sat_propagations > 0);
    assert_eq!(smt.stats.smt_wins, 1);
    // The solve happened under backend `Backend::Smt` — sanity-check the
    // public enum is what the result reports.
    assert_eq!(smt.results[0].winner, Some(Backend::Smt));
}

#[test]
fn poisoned_query_does_not_abort_the_batch() {
    // Regression: a panic inside one query used to unwind its worker and
    // abort the whole batch at slot collection. Device index 99 is out of
    // bounds for this 3-device fabric, so path enumeration panics.
    let mut queries = mixed_queries();
    let poison = Query::Reach {
        net: spine_leaf(1, 2),
        src: (99, 99),
        dst: (0, 99),
    };
    let idx = queries.len() / 2;
    queries.insert(idx, poison.clone());
    let engine = Engine::new(EngineConfig {
        jobs: 4,
        backend: QueryBackend::Portfolio,
        timeout: None,
        cache: true,
        sessions: false,
    });
    let report = engine.run_batch(&queries);
    assert_eq!(report.results.len(), queries.len(), "batch must complete");
    assert!(
        matches!(report.results[idx].verdict, Verdict::Error(_)),
        "the poisoned query must surface as an error, got {:?}",
        report.results[idx].verdict
    );
    assert_eq!(report.stats.errors, 1);
    for (i, r) in report.results.iter().enumerate() {
        if i == idx {
            continue;
        }
        assert!(
            matches!(r.verdict, Verdict::Sat(_) | Verdict::Unsat),
            "query {i} must still be decided despite the poisoned neighbor"
        );
    }
    // Errors are never cached: a rerun re-executes (and re-fails) the
    // poisoned query instead of replaying a bogus cached verdict.
    let rerun = engine.run_batch(std::slice::from_ref(&poison));
    assert!(matches!(rerun.results[0].verdict, Verdict::Error(_)));
    assert!(!rerun.results[0].cache_hit);
}

#[test]
fn empty_batch_yields_a_well_formed_report() {
    // The idle path: no queries must mean no worker spawn and a report
    // whose every statistic is defined (percentiles on zero samples used
    // to index into an empty vector).
    for sessions in [false, true] {
        let engine = Engine::new(EngineConfig {
            jobs: 4,
            backend: QueryBackend::Portfolio,
            timeout: None,
            cache: true,
            sessions,
        });
        let report = engine.run_batch(&[]);
        assert!(report.results.is_empty());
        assert_eq!(report.stats.total, 0);
        assert_eq!(report.stats.errors, 0);
        assert_eq!(report.stats.cache_hits, 0);
        assert_eq!(report.stats.latency_p50, Duration::ZERO);
        assert_eq!(report.stats.latency_p95, Duration::ZERO);
        assert_eq!(report.stats.latency_max, Duration::ZERO);
        // The human rendering must not divide by zero either.
        let _ = format!("{}", report.stats);
    }
}
