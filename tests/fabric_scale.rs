//! Scale test: the analyses on a spine-leaf data-center fabric, with the
//! exact (HSA, Datalog, Anteater) engines cross-checked against each
//! other and against the topology's intended behavior.

use rzen::TransformerSpace;
use rzen_net::analyses::{anteater, datalog, hsa};
use rzen_net::gen::{leaf_prefix, spine_leaf};
use rzen_net::headers::{Header, HeaderFields, Packet};

const SPINES: usize = 3;
const LEAVES: usize = 6;

fn leaf(i: usize) -> usize {
    SPINES + i
}

#[test]
fn anteater_cross_leaf_paths() {
    let net = spine_leaf(SPINES, LEAVES);
    // Host on leaf0 to host on leaf5: exactly the designated spine
    // carries it, and the witness must be addressed into leaf5's prefix.
    let w = anteater::reachable(&net, leaf(0), 99, leaf(5), 99).expect("reachable");
    assert_eq!(w.path.len(), 3, "leaf -> spine -> leaf");
    assert!(leaf_prefix(5).contains(w.packet.overlay_header.dst_ip));

    // Traffic for leaf0's own prefix never crosses the fabric to leaf1.
    let stay_home = anteater::reachable_such_that(&net, leaf(0), 99, leaf(1), 99, |p, out| {
        out.is_some()
            .and(leaf_prefix(0).matches(rzen_net::headers::routing_header(p).dst_ip()))
    });
    assert!(stay_home.is_none());
}

#[test]
fn hsa_fabric_reachability_is_prefix_partitioned() {
    let net = spine_leaf(SPINES, LEAVES);
    let space = TransformerSpace::new();
    // From leaf0's host port, what reaches leaf3?
    let reach = hsa::reachable_set(&net, &space, leaf(0), 99, leaf(3));
    assert!(!reach.is_empty());
    // Everything arriving at leaf3 is addressed to leaf3's prefix...
    let to_leaf3 = space.set_of::<Packet>(|p| {
        leaf_prefix(3).matches(rzen_net::headers::routing_header(p).dst_ip())
    });
    assert!(reach.subset_of(&to_leaf3));
    // ...and nothing addressed to leaf4's prefix lands there.
    let to_leaf4 = space.set_of::<Packet>(|p| {
        leaf_prefix(4).matches(rzen_net::headers::routing_header(p).dst_ip())
    });
    assert!(reach.intersect(&to_leaf4).is_empty());
}

#[test]
fn datalog_agrees_with_hsa_on_fabric() {
    let net = spine_leaf(SPINES, LEAVES);
    let space = TransformerSpace::new();
    let dl = datalog::reachability(&net, &space, leaf(0), 99);
    for target in 0..net.devices.len() {
        let hsa_reach = !hsa::reachable_set(&net, &space, leaf(0), 99, target).is_empty();
        if target == leaf(0) {
            continue; // source device: conventions differ, skip
        }
        assert_eq!(
            dl.device_reachable(target),
            hsa_reach,
            "device {} ({})",
            target,
            net.devices[target].name
        );
    }
    // Exact set agreement at a far leaf: headers reaching leaf5.
    let dl_set = dl.reachable_headers(&space, leaf(5));
    let expect = space.set_of::<Header>(|h| leaf_prefix(5).matches(h.dst_ip()));
    assert!(dl_set.set_eq(&expect));
}

#[test]
fn every_leaf_pair_connected() {
    let net = spine_leaf(SPINES, LEAVES);
    for a in 0..LEAVES {
        for b in 0..LEAVES {
            if a == b {
                continue;
            }
            assert!(
                anteater::reachable(&net, leaf(a), 99, leaf(b), 99).is_some(),
                "leaf{a} -> leaf{b}"
            );
        }
    }
}
