//! Session-mode engine tests: differential agreement between long-lived
//! per-worker solver sessions and fresh-per-query solving, reuse-counter
//! sanity, and cancellation-mid-session recovery.

use rzen::{Backend, Budget, FindOptions, FindOutcome, SolverSession, Zen, ZenFunction};
use rzen_engine::{Engine, EngineConfig, Query, QueryBackend, Verdict};
use rzen_net::gen::{random_acl, random_route_map, spine_leaf};

/// The same mixed 30-query batch as `tests/engine.rs`: per-model pairs of
/// Sat and Unsat ACL line finds, route-map clause finds, and fabric
/// reach/drops — every [`Query`] kind, with same-model groups so sessions
/// have something to reuse.
fn mixed_queries() -> Vec<Query> {
    let mut queries = Vec::new();
    for seed in 0..7u64 {
        let acl = random_acl(60, seed);
        let last = acl.rules.len() as u16;
        queries.push(Query::AclFind {
            acl: acl.clone(),
            target_line: last,
        });
        queries.push(Query::AclFind {
            acl,
            target_line: last + 1,
        });
    }
    for seed in 0..5u64 {
        let map = random_route_map(8, seed);
        let last = map.clauses.len() as u16;
        queries.push(Query::RouteMapFind {
            map: map.clone(),
            target_clause: last,
            list_bound: 3,
        });
        queries.push(Query::RouteMapFind {
            map,
            target_clause: last + 1,
            list_bound: 3,
        });
    }
    let net = spine_leaf(2, 3);
    for (src, dst) in [(2usize, 3usize), (3, 4), (4, 2)] {
        queries.push(Query::Reach {
            net: net.clone(),
            src: (src, 99),
            dst: (dst, 99),
        });
        queries.push(Query::Drops {
            net: net.clone(),
            src: (src, 99),
            dst: (dst, 99),
        });
    }
    assert_eq!(queries.len(), 30);
    queries
}

fn verdict_kind(v: &Verdict) -> &'static str {
    match v {
        Verdict::Sat(_) => "sat",
        Verdict::Unsat => "unsat",
        Verdict::Timeout => "timeout",
        Verdict::Cancelled => "cancelled",
        Verdict::Error(_) => "error",
    }
}

fn run(
    queries: &[Query],
    backend: QueryBackend,
    jobs: usize,
    sessions: bool,
) -> rzen_engine::BatchReport {
    Engine::new(EngineConfig {
        jobs,
        backend,
        timeout: None,
        cache: false, // force every query through a real solve
        sessions,
    })
    .run_batch(queries)
}

#[test]
fn sessions_agree_with_fresh_on_mixed_batch() {
    let queries = mixed_queries();
    for backend in [
        QueryBackend::Bdd,
        QueryBackend::Smt,
        QueryBackend::Portfolio,
    ] {
        let fresh = run(&queries, backend, 2, false);
        let session = run(&queries, backend, 2, true);
        for (i, q) in queries.iter().enumerate() {
            let kf = verdict_kind(&fresh.results[i].verdict);
            let ks = verdict_kind(&session.results[i].verdict);
            assert_eq!(
                kf,
                ks,
                "query {i} ({}) under {backend:?}: session mode disagrees with fresh",
                q.kind()
            );
            // Witnesses may differ (any model is a model) but both must
            // check out against the concrete semantics.
            for report in [&fresh, &session] {
                if let Verdict::Sat(w) = &report.results[i].verdict {
                    assert!(q.check_witness(w), "query {i} ({}): bad witness", q.kind());
                }
            }
        }
        assert!(session.stats.sat > 0 && session.stats.unsat > 0);
    }
}

#[test]
fn session_reuse_counters_advance() {
    let queries = mixed_queries();

    // One worker, SMT only: every query lands on the same session, so the
    // second query of each same-model pair must hit the bitblast cache,
    // and learnt clauses from earlier queries must still be loaded when
    // later ones start.
    let smt = run(&queries, QueryBackend::Smt, 1, true);
    assert!(
        smt.stats.session_bitblast_hits > 0,
        "same-model queries must reuse compiled bitblast nodes"
    );
    assert!(
        smt.stats.session_sat_carried > 0,
        "learnt clauses must carry over between queries in a session"
    );

    // BDD side: the shared manager's node table persists, so queries
    // after the first see a non-trivial arena.
    let bdd = run(&queries, QueryBackend::Bdd, 1, true);
    assert!(
        bdd.stats.session_bitblast_hits > 0,
        "BDD compilation must reuse the session's node cache"
    );
    assert!(
        bdd.stats.session_bdd_reused > 0,
        "the BDD unique table must persist across queries"
    );

    // Affinity: with more workers than model groups would fill, queries
    // over the same model are still routed to one worker, so reuse
    // survives parallel dispatch.
    let parallel = run(&queries, QueryBackend::Portfolio, 4, true);
    assert!(
        parallel.stats.session_bitblast_hits > 0,
        "fingerprint affinity must keep same-model queries on one session"
    );

    // Fresh mode attaches no session counters at all.
    let fresh = run(&queries, QueryBackend::Smt, 1, false);
    assert_eq!(fresh.stats.session_bitblast_hits, 0);
    assert_eq!(fresh.stats.session_sat_carried, 0);
    assert!(fresh.results.iter().all(|r| r.session.is_none()));
}

#[test]
fn cancellation_mid_session_leaves_session_usable() {
    // Mirrors tests/budget.rs at the session level: a cancelled query must
    // not poison the long-lived solver state behind it.
    for backend in [Backend::Bdd, Backend::Smt] {
        rzen::reset_ctx();
        let mut session = SolverSession::new(backend);
        let acl = random_acl(40, 7);
        let last = acl.rules.len() as u16;
        let mk = {
            let acl = acl.clone();
            move || {
                let acl = acl.clone();
                ZenFunction::new(move |h| acl.clone().matched_line(h))
            }
        };
        let opts = FindOptions::default();

        let cancelled = Budget::unlimited();
        cancelled.cancel();
        let report = mk().find_in_session(
            |_, line| line.eq(Zen::val(last)),
            &opts,
            &cancelled,
            &mut session,
        );
        assert!(
            matches!(report.outcome, FindOutcome::Cancelled),
            "{backend:?}: pre-cancelled budget must yield Cancelled"
        );

        // The same session must then solve normally — and produce a
        // correct witness, not a leftover of the interrupted solve.
        let report = mk().find_in_session(
            |_, line| line.eq(Zen::val(last)),
            &opts,
            &Budget::unlimited(),
            &mut session,
        );
        let FindOutcome::Found(h) = report.outcome else {
            panic!("{backend:?}: session must stay usable after a cancellation");
        };
        assert_eq!(acl.matched_line_concrete(&h), last);

        // And an unsatisfiable query on the same session stays Unsat.
        let report = mk().find_in_session(
            |_, line| line.eq(Zen::val(last + 1)),
            &opts,
            &Budget::unlimited(),
            &mut session,
        );
        assert!(matches!(report.outcome, FindOutcome::Unsat));
        assert_eq!(session.stats().queries, 3);
    }
    rzen::reset_ctx();
}
