//! Integration tests for the serve layer: coalescing, backlog shedding,
//! model hot-swap, and drain-under-load. The server runs in-process on a
//! kernel-assigned port; the tests speak the real wire protocols (NDJSON
//! and the HTTP shim) over real sockets.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use rzen_engine::QueryBackend;
use rzen_obs::json::{parse, Value};
use rzen_serve::{start, Model, ServerConfig};

const FIG3: &str = include_str!("../specs/fig3.net");
const REACH: &str = "{\"op\":\"reach\",\"src\":\"u1:1\",\"dst\":\"u3:2\"}";

fn cfg(jobs: usize, backlog: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs,
        backlog,
        timeout: Some(Duration::from_secs(30)),
        sessions: false,
        backend: QueryBackend::Portfolio,
        handle_signals: false,
        debug_ops: true,
        sample_hz: rzen_obs::profile::DEFAULT_SAMPLE_HZ,
    }
}

/// One-shot NDJSON request: connect, send one line, read one line.
fn request(addr: SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream.write_all(format!("{line}\n").as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("response");
    resp.trim().to_string()
}

/// Raw HTTP exchange on the same port; returns (status line, body).
fn http(addr: SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("http response");
    let status = raw.lines().next().unwrap_or("").to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    http(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    )
}

fn http_post_model(addr: SocketAddr, spec: &str) -> (String, String) {
    http(
        addr,
        &format!(
            "POST /model HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{spec}",
            spec.len()
        ),
    )
}

fn field<'v>(v: &'v Value, key: &str) -> &'v Value {
    v.get(key)
        .unwrap_or_else(|| panic!("response missing {key:?}: {v:?}"))
}

#[test]
fn identical_concurrent_queries_coalesce_onto_one_execution() {
    let handle = start(cfg(1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // Occupy the single worker so the N identical queries below are all
    // concurrent: the first to admit leads (and queues), the rest join.
    let blocker = thread::spawn(move || request(addr, "{\"op\":\"sleep\",\"ms\":800}"));
    thread::sleep(Duration::from_millis(150));

    let n = 6;
    let clients: Vec<_> = (0..n)
        .map(|_| thread::spawn(move || request(addr, REACH)))
        .collect();
    let responses: Vec<Value> = clients
        .into_iter()
        .map(|c| parse(&c.join().unwrap()).expect("valid json"))
        .collect();
    blocker.join().unwrap();

    // One leader actually executed; everyone else rode its verdict.
    let coalesced = responses
        .iter()
        .filter(|r| field(r, "coalesced").as_bool() == Some(true))
        .count();
    assert_eq!(coalesced, n - 1, "exactly one leader per identical burst");
    for r in &responses {
        assert_eq!(field(r, "verdict").as_str(), Some("sat"));
        assert_eq!(
            field(r, "witness").as_str(),
            field(&responses[0], "witness").as_str(),
            "every waiter must receive the *same* fanned-out verdict"
        );
        // Nobody was served by the result cache: the burst was in flight
        // together, which is exactly what the cache cannot cover.
        assert_eq!(field(r, "cache_hit").as_bool(), Some(false));
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn connection_churn_does_not_accumulate_tracked_sockets() {
    let handle = start(cfg(1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // Every request and health scrape below opens and closes its own
    // connection — exactly the churn a monitoring stack produces. The
    // server must drop each connection's drain-tracking entry (and with
    // it the duplicated file descriptor) when the client goes away, or a
    // long-lived process runs out of fds.
    for _ in 0..20 {
        request(addr, REACH);
        let (status, _) = http_get(addr, "/healthz");
        assert!(status.contains("200"));
    }

    // Removal happens when the connection thread notices EOF, which can
    // trail the client's close slightly; poll briefly.
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.open_conns() > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        handle.open_conns(),
        0,
        "closed connections must be untracked, not leaked until shutdown"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn joiner_respects_its_own_deadline_not_the_leaders() {
    let handle = start(cfg(1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // Occupy the single worker, then queue a leader with the default
    // (long) budget. While the leader waits for the worker, a joiner
    // arrives carrying a 100ms budget of its own.
    let blocker = thread::spawn(move || request(addr, "{\"op\":\"sleep\",\"ms\":900}"));
    thread::sleep(Duration::from_millis(150));
    let leader = thread::spawn(move || request(addr, REACH));
    thread::sleep(Duration::from_millis(150));

    let started = Instant::now();
    let resp = parse(&request(
        addr,
        "{\"id\":3,\"op\":\"reach\",\"src\":\"u1:1\",\"dst\":\"u3:2\",\"timeout_ms\":100}",
    ))
    .unwrap();
    assert_eq!(
        field(&resp, "verdict").as_str(),
        Some("timeout"),
        "a short-budget joiner must degrade to its own timeout"
    );
    assert_eq!(field(&resp, "coalesced").as_bool(), Some(true));
    assert!(
        started.elapsed() < Duration::from_millis(600),
        "the joiner must not wait out the leader's budget"
    );

    // The leader is unaffected by the joiner giving up.
    let leader_resp = parse(&leader.join().unwrap()).unwrap();
    assert_eq!(field(&leader_resp, "verdict").as_str(), Some("sat"));
    blocker.join().unwrap();

    handle.shutdown();
    handle.join();
}

#[test]
fn head_requests_get_headers_without_a_body() {
    let handle = start(cfg(1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    for path in ["/healthz", "/metrics"] {
        let (status, body) = http(
            addr,
            &format!("HEAD {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
        );
        assert!(status.contains("200"), "HEAD {path}: {status}");
        assert!(
            body.is_empty(),
            "HEAD {path} must not carry a body: {body:?}"
        );
    }
    // The advertised Content-Length is the length GET's body would have.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream
        .write_all(b"HEAD /healthz HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let advertised: usize = raw
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_string)
        })
        .expect("HEAD response carries Content-Length")
        .trim()
        .parse()
        .unwrap();
    let (_, get_body) = http_get(addr, "/healthz");
    assert_eq!(advertised, get_body.len());

    handle.shutdown();
    handle.join();
}

#[test]
fn full_backlog_sheds_with_explicit_overloaded() {
    // One worker, zero backlog: anything arriving while the worker is
    // busy must be shed immediately, never queued or hung.
    let handle = start(cfg(1, 0), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    let blocker = thread::spawn(move || request(addr, "{\"id\":1,\"op\":\"sleep\",\"ms\":900}"));
    thread::sleep(Duration::from_millis(150));

    let started = Instant::now();
    let resp = parse(&request(addr, "{\"id\":9,\"op\":\"sleep\",\"ms\":1}")).unwrap();
    assert_eq!(field(&resp, "error").as_str(), Some("overloaded"));
    assert_eq!(field(&resp, "id").as_u64(), Some(9), "id echoed on shed");
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "shedding must be immediate, not queued behind the busy worker"
    );

    let first = parse(&blocker.join().unwrap()).unwrap();
    assert_eq!(
        field(&first, "op").as_str(),
        Some("sleep"),
        "the admitted request still completes normally"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn model_hot_swap_is_atomic_and_correct() {
    let handle = start(cfg(1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    let before = parse(&request(addr, REACH)).unwrap();
    assert_eq!(field(&before, "verdict").as_str(), Some("sat"));
    let (_, health_before) = http_get(addr, "/healthz");
    let fp_before = field(&parse(&health_before).unwrap(), "model")
        .as_str()
        .unwrap()
        .to_string();

    // A same-shape network whose u2 ingress ACL denies everything: the
    // same reach query must flip to unsat under the new model.
    let blocked = FIG3.replace("acl-in deny-dport 5000 6000", "acl-in deny");
    assert_ne!(blocked, FIG3);

    // Occupy the worker, then admit a query against the *old* model; it
    // sits queued while the model is swapped underneath it.
    let blocker = thread::spawn(move || request(addr, "{\"op\":\"sleep\",\"ms\":800}"));
    thread::sleep(Duration::from_millis(150));
    let old_model_client = thread::spawn(move || request(addr, REACH));
    thread::sleep(Duration::from_millis(150));

    let (status, body) = http_post_model(addr, &blocked);
    assert!(status.contains("200"), "swap rejected: {status} {body}");

    // The in-flight request captured its model at admission: it must
    // answer with the old model's verdict even though it executed after
    // the swap.
    let old_resp = parse(&old_model_client.join().unwrap()).unwrap();
    assert_eq!(
        field(&old_resp, "verdict").as_str(),
        Some("sat"),
        "in-flight requests finish against the model they were admitted under"
    );
    blocker.join().unwrap();

    // Fresh requests see the new model (and don't hit stale cache).
    let after = parse(&request(addr, REACH)).unwrap();
    assert_eq!(field(&after, "verdict").as_str(), Some("unsat"));
    assert_eq!(field(&after, "cache_hit").as_bool(), Some(false));

    let (_, health_after) = http_get(addr, "/healthz");
    let fp_after = field(&parse(&health_after).unwrap(), "model")
        .as_str()
        .unwrap()
        .to_string();
    assert_ne!(fp_before, fp_after, "healthz reports the new fingerprint");

    // A malformed spec must be rejected without disturbing the model.
    let (status, _) = http_post_model(addr, "device u1\n  intf nonsense\n");
    assert!(status.contains("400"));
    let again = parse(&request(addr, REACH)).unwrap();
    assert_eq!(field(&again, "verdict").as_str(), Some("unsat"));

    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_drains_inflight_work_before_exiting() {
    let handle = start(cfg(1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    let started = Instant::now();
    let client = thread::spawn(move || request(addr, "{\"id\":5,\"op\":\"sleep\",\"ms\":700}"));
    thread::sleep(Duration::from_millis(150));

    handle.shutdown();
    // The in-flight request is answered, not dropped, even though the
    // shutdown arrived long before it finished.
    let resp = parse(&client.join().unwrap()).unwrap();
    assert_eq!(field(&resp, "op").as_str(), Some("sleep"));
    assert_eq!(field(&resp, "id").as_u64(), Some(5));
    assert!(
        started.elapsed() >= Duration::from_millis(650),
        "the drain must wait for the request, not cut it short"
    );

    // join() returns once every thread retired; afterwards the port is
    // closed for good.
    handle.join();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must be gone after join"
    );
}

#[test]
fn requests_during_drain_are_answered_shutting_down() {
    let handle = start(cfg(1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // Pipeline two requests on one connection: the first holds the
    // worker, the shutdown lands mid-flight, and the second must be
    // answered with an explicit refusal rather than silence.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream
        .write_all(
            b"{\"id\":1,\"op\":\"sleep\",\"ms\":600}\n{\"id\":2,\"op\":\"sleep\",\"ms\":1}\n",
        )
        .unwrap();
    thread::sleep(Duration::from_millis(150));
    handle.shutdown();

    let mut reader = BufReader::new(stream);
    let mut first = String::new();
    reader.read_line(&mut first).unwrap();
    let first = parse(first.trim()).unwrap();
    assert_eq!(field(&first, "id").as_u64(), Some(1));
    assert_eq!(field(&first, "op").as_str(), Some("sleep"));

    let mut second = String::new();
    // The second line races the socket teardown: a clean refusal and an
    // EOF are both acceptable, a hang or a dropped *in-flight* job is not.
    if reader.read_line(&mut second).is_ok() && !second.trim().is_empty() {
        let second = parse(second.trim()).unwrap();
        assert_eq!(field(&second, "error").as_str(), Some("shutting_down"));
    }
    handle.join();
}

#[test]
fn flight_recorder_follows_a_request_end_to_end() {
    let handle = start(cfg(2, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // A few fast queries, then one deliberately slow request: the sleep
    // dominates every latency in this server's lifetime.
    for _ in 0..3 {
        parse(&request(addr, REACH)).unwrap();
    }
    let slow = parse(&request(addr, "{\"op\":\"sleep\",\"ms\":150}")).unwrap();
    let slow_req = field(&slow, "req")
        .as_u64()
        .expect("responses carry the server-minted request id");
    assert!(slow_req > 0, "request ids start at 1");

    // The id from the response line finds the same request in the ring.
    let (status, body) = http_get(addr, "/debug/requests");
    assert!(status.contains("200"), "{status}");
    let records = match parse(&body).expect("valid JSON") {
        Value::Arr(records) => records,
        other => panic!("/debug/requests must be a JSON array: {other:?}"),
    };
    let rec = records
        .iter()
        .find(|r| field(r, "req").as_u64() == Some(slow_req))
        .expect("the slow request is in the flight ring");
    assert_eq!(field(rec, "op").as_str(), Some("sleep"));
    assert_eq!(field(rec, "verdict").as_str(), Some("ok"));
    assert!(field(rec, "latency_us").as_u64().unwrap() >= 150_000);
    let reach = records
        .iter()
        .find(|r| field(r, "op").as_str() == Some("reach"))
        .expect("reach queries are recorded too");
    assert_eq!(field(reach, "src").as_str(), Some("u1:1"));
    assert_eq!(field(reach, "dst").as_str(), Some("u3:2"));
    assert_eq!(field(reach, "verdict").as_str(), Some("sat"));

    // The slow table ranks the sleep first: nothing else took 150ms.
    let (status, body) = http_get(addr, "/debug/slow");
    assert!(status.contains("200"), "{status}");
    let Value::Arr(slow_records) = parse(&body).expect("valid JSON") else {
        panic!("/debug/slow must be a JSON array");
    };
    assert_eq!(
        field(&slow_records[0], "req").as_u64(),
        Some(slow_req),
        "the slowest request must lead the slow table: {body}"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn debug_trace_capture_carries_request_ids_through_the_stack() {
    let handle = start(cfg(2, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // Keep queries flowing while the capture window is open. Alternating
    // directions defeats the result cache often enough that backend
    // spans land inside the window.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let driver = {
        let stop = stop.clone();
        thread::spawn(move || {
            let pairs = [("u1:1", "u3:2"), ("u3:2", "u1:1"), ("u2:1", "u1:1")];
            let mut i = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let (src, dst) = pairs[i % pairs.len()];
                let line = format!("{{\"op\":\"reach\",\"src\":\"{src}\",\"dst\":\"{dst}\"}}");
                let _ = request(addr, &line);
                i += 1;
            }
        })
    };

    let (status, body) = http_get(addr, "/debug/trace?ms=400");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    driver.join().unwrap();
    assert!(status.contains("200"), "{status}");
    rzen_obs::json::validate(&body).expect("/debug/trace must return valid JSON");

    // The capture shows the request id at every layer: the serve span,
    // the engine worker span, and the backend solve span.
    for span in ["serve.request", "engine.query", "engine.backend"] {
        assert!(
            body.contains(&format!("\"name\":\"{span}\"")),
            "trace capture missing {span} spans:\n{body}"
        );
    }
    assert!(
        body.contains("\"req\":"),
        "trace spans must carry the request id as an argument"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn debug_trace_window_is_validated_and_clamped() {
    let handle = start(cfg(1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // Malformed windows are a client error, not a silent default.
    for bad in ["/debug/trace?ms=abc", "/debug/trace?ms=-5"] {
        let (status, body) = http_get(addr, bad);
        assert!(status.contains("400"), "{bad} -> {status}");
        assert!(
            body.contains("non-negative integer"),
            "the 400 names the problem: {body}"
        );
    }

    // The degenerate zero-length window is valid: an immediate, likely
    // empty capture, not an error. (The 10 s upper clamp is asserted at
    // the unit level in the serve crate — holding a connection open for
    // 10 s here would dominate the suite's runtime.)
    let (status, body) = http_get(addr, "/debug/trace?ms=0");
    assert!(status.contains("200"), "{status}");
    rzen_obs::json::validate(&body).expect("ms=0 returns valid (likely empty) JSON");

    handle.shutdown();
    handle.join();
}

#[test]
fn oversized_http_headers_are_answered_with_431() {
    let handle = start(cfg(1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // 16 KiB of header lines: double the server's budget.
    let mut req = String::from("GET /healthz HTTP/1.1\r\nHost: test\r\n");
    for i in 0..128 {
        req.push_str(&format!("X-Padding-{i}: {}\r\n", "x".repeat(120)));
    }
    req.push_str("Connection: close\r\n\r\n");
    let (status, body) = http(addr, &req);
    assert!(
        status.contains("431"),
        "oversized headers must get 431, got {status:?}"
    );
    assert!(body.contains("header fields too large"), "{body}");

    // A normal request on a fresh connection still works.
    let (status, _) = http_get(addr, "/healthz");
    assert!(status.contains("200"), "{status}");

    handle.shutdown();
    handle.join();
}

#[test]
fn serve_errors_are_counted_by_kind_in_prometheus_metrics() {
    // One worker, zero backlog: easy to provoke `overloaded`.
    let handle = start(cfg(1, 0), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    let blocker = thread::spawn(move || request(addr, "{\"op\":\"sleep\",\"ms\":700}"));
    thread::sleep(Duration::from_millis(150));
    let shed = parse(&request(addr, REACH)).unwrap();
    assert_eq!(field(&shed, "error").as_str(), Some("overloaded"));
    // An endpoint that does not resolve, and a line that does not parse.
    let unresolved = parse(&request(
        addr,
        "{\"op\":\"reach\",\"src\":\"nope:1\",\"dst\":\"u3:2\"}",
    ))
    .unwrap();
    assert!(field(&unresolved, "error").as_str().is_some());
    let bad = parse(&request(addr, "{\"op\":\"warp\"}")).unwrap();
    assert!(field(&bad, "error").as_str().is_some());
    blocker.join().unwrap();

    let (_, metrics) = http_get(addr, "/metrics");
    for series in [
        "serve_errors_total{kind=\"overloaded\"}",
        "serve_errors_total{kind=\"resolve_failed\"}",
        "serve_errors_total{kind=\"bad_request\"}",
    ] {
        assert!(metrics.contains(series), "/metrics missing {series}");
    }
    // The exposition speaks Prometheus: typed families, histogram
    // buckets cumulative up to +Inf.
    assert!(metrics.contains("# TYPE serve_requests_total counter"));
    assert!(metrics.contains("# TYPE serve_request_us histogram"));
    assert!(metrics.contains("serve_request_us_bucket{le=\"+Inf\"}"));

    handle.shutdown();
    handle.join();
}
