//! Integration tests for the serve layer: coalescing, backlog shedding,
//! model hot-swap, and drain-under-load. The server runs in-process on a
//! kernel-assigned port; the tests speak the real wire protocols (NDJSON
//! and the HTTP shim) over real sockets.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use rzen_engine::QueryBackend;
use rzen_obs::json::{parse, Value};
use rzen_serve::{start, Model, ServerConfig};

const FIG3: &str = include_str!("../specs/fig3.net");
const REACH: &str = "{\"op\":\"reach\",\"src\":\"u1:1\",\"dst\":\"u3:2\"}";

fn cfg(jobs: usize, backlog: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs,
        backlog,
        timeout: Some(Duration::from_secs(30)),
        sessions: false,
        backend: QueryBackend::Portfolio,
        handle_signals: false,
        debug_ops: true,
    }
}

/// One-shot NDJSON request: connect, send one line, read one line.
fn request(addr: SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream.write_all(format!("{line}\n").as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("response");
    resp.trim().to_string()
}

/// Raw HTTP exchange on the same port; returns (status line, body).
fn http(addr: SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("http response");
    let status = raw.lines().next().unwrap_or("").to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    http(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    )
}

fn http_post_model(addr: SocketAddr, spec: &str) -> (String, String) {
    http(
        addr,
        &format!(
            "POST /model HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{spec}",
            spec.len()
        ),
    )
}

fn field<'v>(v: &'v Value, key: &str) -> &'v Value {
    v.get(key)
        .unwrap_or_else(|| panic!("response missing {key:?}: {v:?}"))
}

#[test]
fn identical_concurrent_queries_coalesce_onto_one_execution() {
    let handle = start(cfg(1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // Occupy the single worker so the N identical queries below are all
    // concurrent: the first to admit leads (and queues), the rest join.
    let blocker = thread::spawn(move || request(addr, "{\"op\":\"sleep\",\"ms\":800}"));
    thread::sleep(Duration::from_millis(150));

    let n = 6;
    let clients: Vec<_> = (0..n)
        .map(|_| thread::spawn(move || request(addr, REACH)))
        .collect();
    let responses: Vec<Value> = clients
        .into_iter()
        .map(|c| parse(&c.join().unwrap()).expect("valid json"))
        .collect();
    blocker.join().unwrap();

    // One leader actually executed; everyone else rode its verdict.
    let coalesced = responses
        .iter()
        .filter(|r| field(r, "coalesced").as_bool() == Some(true))
        .count();
    assert_eq!(coalesced, n - 1, "exactly one leader per identical burst");
    for r in &responses {
        assert_eq!(field(r, "verdict").as_str(), Some("sat"));
        assert_eq!(
            field(r, "witness").as_str(),
            field(&responses[0], "witness").as_str(),
            "every waiter must receive the *same* fanned-out verdict"
        );
        // Nobody was served by the result cache: the burst was in flight
        // together, which is exactly what the cache cannot cover.
        assert_eq!(field(r, "cache_hit").as_bool(), Some(false));
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn connection_churn_does_not_accumulate_tracked_sockets() {
    let handle = start(cfg(1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // Every request and health scrape below opens and closes its own
    // connection — exactly the churn a monitoring stack produces. The
    // server must drop each connection's drain-tracking entry (and with
    // it the duplicated file descriptor) when the client goes away, or a
    // long-lived process runs out of fds.
    for _ in 0..20 {
        request(addr, REACH);
        let (status, _) = http_get(addr, "/healthz");
        assert!(status.contains("200"));
    }

    // Removal happens when the connection thread notices EOF, which can
    // trail the client's close slightly; poll briefly.
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.open_conns() > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        handle.open_conns(),
        0,
        "closed connections must be untracked, not leaked until shutdown"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn joiner_respects_its_own_deadline_not_the_leaders() {
    let handle = start(cfg(1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // Occupy the single worker, then queue a leader with the default
    // (long) budget. While the leader waits for the worker, a joiner
    // arrives carrying a 100ms budget of its own.
    let blocker = thread::spawn(move || request(addr, "{\"op\":\"sleep\",\"ms\":900}"));
    thread::sleep(Duration::from_millis(150));
    let leader = thread::spawn(move || request(addr, REACH));
    thread::sleep(Duration::from_millis(150));

    let started = Instant::now();
    let resp = parse(&request(
        addr,
        "{\"id\":3,\"op\":\"reach\",\"src\":\"u1:1\",\"dst\":\"u3:2\",\"timeout_ms\":100}",
    ))
    .unwrap();
    assert_eq!(
        field(&resp, "verdict").as_str(),
        Some("timeout"),
        "a short-budget joiner must degrade to its own timeout"
    );
    assert_eq!(field(&resp, "coalesced").as_bool(), Some(true));
    assert!(
        started.elapsed() < Duration::from_millis(600),
        "the joiner must not wait out the leader's budget"
    );

    // The leader is unaffected by the joiner giving up.
    let leader_resp = parse(&leader.join().unwrap()).unwrap();
    assert_eq!(field(&leader_resp, "verdict").as_str(), Some("sat"));
    blocker.join().unwrap();

    handle.shutdown();
    handle.join();
}

#[test]
fn head_requests_get_headers_without_a_body() {
    let handle = start(cfg(1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    for path in ["/healthz", "/metrics"] {
        let (status, body) = http(
            addr,
            &format!("HEAD {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
        );
        assert!(status.contains("200"), "HEAD {path}: {status}");
        assert!(
            body.is_empty(),
            "HEAD {path} must not carry a body: {body:?}"
        );
    }
    // The advertised Content-Length is the length GET's body would have.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream
        .write_all(b"HEAD /healthz HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let advertised: usize = raw
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_string)
        })
        .expect("HEAD response carries Content-Length")
        .trim()
        .parse()
        .unwrap();
    let (_, get_body) = http_get(addr, "/healthz");
    assert_eq!(advertised, get_body.len());

    handle.shutdown();
    handle.join();
}

#[test]
fn full_backlog_sheds_with_explicit_overloaded() {
    // One worker, zero backlog: anything arriving while the worker is
    // busy must be shed immediately, never queued or hung.
    let handle = start(cfg(1, 0), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    let blocker = thread::spawn(move || request(addr, "{\"id\":1,\"op\":\"sleep\",\"ms\":900}"));
    thread::sleep(Duration::from_millis(150));

    let started = Instant::now();
    let resp = parse(&request(addr, "{\"id\":9,\"op\":\"sleep\",\"ms\":1}")).unwrap();
    assert_eq!(field(&resp, "error").as_str(), Some("overloaded"));
    assert_eq!(field(&resp, "id").as_u64(), Some(9), "id echoed on shed");
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "shedding must be immediate, not queued behind the busy worker"
    );

    let first = parse(&blocker.join().unwrap()).unwrap();
    assert_eq!(
        field(&first, "op").as_str(),
        Some("sleep"),
        "the admitted request still completes normally"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn model_hot_swap_is_atomic_and_correct() {
    let handle = start(cfg(1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    let before = parse(&request(addr, REACH)).unwrap();
    assert_eq!(field(&before, "verdict").as_str(), Some("sat"));
    let (_, health_before) = http_get(addr, "/healthz");
    let fp_before = field(&parse(&health_before).unwrap(), "model")
        .as_str()
        .unwrap()
        .to_string();

    // A same-shape network whose u2 ingress ACL denies everything: the
    // same reach query must flip to unsat under the new model.
    let blocked = FIG3.replace("acl-in deny-dport 5000 6000", "acl-in deny");
    assert_ne!(blocked, FIG3);

    // Occupy the worker, then admit a query against the *old* model; it
    // sits queued while the model is swapped underneath it.
    let blocker = thread::spawn(move || request(addr, "{\"op\":\"sleep\",\"ms\":800}"));
    thread::sleep(Duration::from_millis(150));
    let old_model_client = thread::spawn(move || request(addr, REACH));
    thread::sleep(Duration::from_millis(150));

    let (status, body) = http_post_model(addr, &blocked);
    assert!(status.contains("200"), "swap rejected: {status} {body}");

    // The in-flight request captured its model at admission: it must
    // answer with the old model's verdict even though it executed after
    // the swap.
    let old_resp = parse(&old_model_client.join().unwrap()).unwrap();
    assert_eq!(
        field(&old_resp, "verdict").as_str(),
        Some("sat"),
        "in-flight requests finish against the model they were admitted under"
    );
    blocker.join().unwrap();

    // Fresh requests see the new model (and don't hit stale cache).
    let after = parse(&request(addr, REACH)).unwrap();
    assert_eq!(field(&after, "verdict").as_str(), Some("unsat"));
    assert_eq!(field(&after, "cache_hit").as_bool(), Some(false));

    let (_, health_after) = http_get(addr, "/healthz");
    let fp_after = field(&parse(&health_after).unwrap(), "model")
        .as_str()
        .unwrap()
        .to_string();
    assert_ne!(fp_before, fp_after, "healthz reports the new fingerprint");

    // A malformed spec must be rejected without disturbing the model.
    let (status, _) = http_post_model(addr, "device u1\n  intf nonsense\n");
    assert!(status.contains("400"));
    let again = parse(&request(addr, REACH)).unwrap();
    assert_eq!(field(&again, "verdict").as_str(), Some("unsat"));

    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_drains_inflight_work_before_exiting() {
    let handle = start(cfg(1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    let started = Instant::now();
    let client = thread::spawn(move || request(addr, "{\"id\":5,\"op\":\"sleep\",\"ms\":700}"));
    thread::sleep(Duration::from_millis(150));

    handle.shutdown();
    // The in-flight request is answered, not dropped, even though the
    // shutdown arrived long before it finished.
    let resp = parse(&client.join().unwrap()).unwrap();
    assert_eq!(field(&resp, "op").as_str(), Some("sleep"));
    assert_eq!(field(&resp, "id").as_u64(), Some(5));
    assert!(
        started.elapsed() >= Duration::from_millis(650),
        "the drain must wait for the request, not cut it short"
    );

    // join() returns once every thread retired; afterwards the port is
    // closed for good.
    handle.join();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must be gone after join"
    );
}

#[test]
fn requests_during_drain_are_answered_shutting_down() {
    let handle = start(cfg(1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // Pipeline two requests on one connection: the first holds the
    // worker, the shutdown lands mid-flight, and the second must be
    // answered with an explicit refusal rather than silence.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream
        .write_all(
            b"{\"id\":1,\"op\":\"sleep\",\"ms\":600}\n{\"id\":2,\"op\":\"sleep\",\"ms\":1}\n",
        )
        .unwrap();
    thread::sleep(Duration::from_millis(150));
    handle.shutdown();

    let mut reader = BufReader::new(stream);
    let mut first = String::new();
    reader.read_line(&mut first).unwrap();
    let first = parse(first.trim()).unwrap();
    assert_eq!(field(&first, "id").as_u64(), Some(1));
    assert_eq!(field(&first, "op").as_str(), Some("sleep"));

    let mut second = String::new();
    // The second line races the socket teardown: a clean refusal and an
    // EOF are both acceptable, a hang or a dropped *in-flight* job is not.
    if reader.read_line(&mut second).is_ok() && !second.trim().is_empty() {
        let second = parse(second.trim()).unwrap();
        assert_eq!(field(&second, "error").as_str(), Some("shutting_down"));
    }
    handle.join();
}
