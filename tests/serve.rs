//! Integration tests for the serve layer: coalescing, backlog shedding,
//! model hot-swap, and drain-under-load. The server runs in-process on a
//! kernel-assigned port; the tests speak the real wire protocols (NDJSON
//! and the HTTP shim) over real sockets.
//!
//! Every behavioral test runs twice — once against the original
//! thread-per-connection layer and once against the epoll reactor
//! (`LoopMode::Epoll`) — because the two layers promise the *same*
//! serving semantics behind the same handle.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use rzen_engine::QueryBackend;
use rzen_obs::json::{parse, Value};
use rzen_serve::{start, LoopMode, Model, ServerConfig};

const FIG3: &str = include_str!("../specs/fig3.net");
const REACH: &str = "{\"op\":\"reach\",\"src\":\"u1:1\",\"dst\":\"u3:2\"}";

fn cfg(mode: LoopMode, jobs: usize, backlog: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs,
        backlog,
        timeout: Some(Duration::from_secs(30)),
        sessions: false,
        backend: QueryBackend::Portfolio,
        handle_signals: false,
        debug_ops: true,
        sample_hz: rzen_obs::profile::DEFAULT_SAMPLE_HZ,
        loop_mode: mode,
        shards: 0,
        idle_timeout: None,
    }
}

/// Generate a `_threads` and an `_epoll` test from one `fn(LoopMode)`
/// body: the contract under test is identical across connection layers.
macro_rules! both_modes {
    ($threads:ident, $epoll:ident, $body:ident) => {
        #[test]
        fn $threads() {
            $body(LoopMode::Threads);
        }
        #[test]
        fn $epoll() {
            $body(LoopMode::Epoll);
        }
    };
}

/// One-shot NDJSON request: connect, send one line, read one line.
fn request(addr: SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream.write_all(format!("{line}\n").as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("response");
    resp.trim().to_string()
}

/// Raw HTTP exchange on the same port; returns (status line, body).
fn http(addr: SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("http response");
    let status = raw.lines().next().unwrap_or("").to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    http(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    )
}

fn http_post_model(addr: SocketAddr, spec: &str) -> (String, String) {
    http(
        addr,
        &format!(
            "POST /model HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{spec}",
            spec.len()
        ),
    )
}

fn field<'v>(v: &'v Value, key: &str) -> &'v Value {
    v.get(key)
        .unwrap_or_else(|| panic!("response missing {key:?}: {v:?}"))
}

fn identical_concurrent_queries_coalesce(mode: LoopMode) {
    let handle = start(cfg(mode, 1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // Occupy the single worker so the N identical queries below are all
    // concurrent: the first to admit leads (and queues), the rest join.
    let blocker = thread::spawn(move || request(addr, "{\"op\":\"sleep\",\"ms\":800}"));
    thread::sleep(Duration::from_millis(150));

    let n = 6;
    let clients: Vec<_> = (0..n)
        .map(|_| thread::spawn(move || request(addr, REACH)))
        .collect();
    let responses: Vec<Value> = clients
        .into_iter()
        .map(|c| parse(&c.join().unwrap()).expect("valid json"))
        .collect();
    blocker.join().unwrap();

    // One leader actually executed; everyone else rode its verdict.
    let coalesced = responses
        .iter()
        .filter(|r| field(r, "coalesced").as_bool() == Some(true))
        .count();
    assert_eq!(coalesced, n - 1, "exactly one leader per identical burst");
    for r in &responses {
        assert_eq!(field(r, "verdict").as_str(), Some("sat"));
        assert_eq!(
            field(r, "witness").as_str(),
            field(&responses[0], "witness").as_str(),
            "every waiter must receive the *same* fanned-out verdict"
        );
        // Nobody was served by the result cache: the burst was in flight
        // together, which is exactly what the cache cannot cover.
        assert_eq!(field(r, "cache_hit").as_bool(), Some(false));
    }

    handle.shutdown();
    handle.join();
}

both_modes!(
    identical_concurrent_queries_coalesce_onto_one_execution,
    identical_concurrent_queries_coalesce_onto_one_execution_epoll,
    identical_concurrent_queries_coalesce
);

fn connection_churn_does_not_accumulate(mode: LoopMode) {
    let handle = start(cfg(mode, 1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // Every request and health scrape below opens and closes its own
    // connection — exactly the churn a monitoring stack produces. The
    // server must drop each connection's drain-tracking entry (and with
    // it the duplicated file descriptor) when the client goes away, or a
    // long-lived process runs out of fds.
    for _ in 0..20 {
        request(addr, REACH);
        let (status, _) = http_get(addr, "/healthz");
        assert!(status.contains("200"));
    }

    // Removal happens when the server notices EOF, which can trail the
    // client's close slightly; poll briefly.
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.open_conns() > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        handle.open_conns(),
        0,
        "closed connections must be untracked, not leaked until shutdown"
    );

    handle.shutdown();
    handle.join();
}

both_modes!(
    connection_churn_does_not_accumulate_tracked_sockets,
    connection_churn_does_not_accumulate_tracked_sockets_epoll,
    connection_churn_does_not_accumulate
);

fn joiner_respects_its_own_deadline(mode: LoopMode) {
    let handle = start(cfg(mode, 1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // Occupy the single worker, then queue a leader with the default
    // (long) budget. While the leader waits for the worker, a joiner
    // arrives carrying a 100ms budget of its own.
    let blocker = thread::spawn(move || request(addr, "{\"op\":\"sleep\",\"ms\":900}"));
    thread::sleep(Duration::from_millis(150));
    let leader = thread::spawn(move || request(addr, REACH));
    thread::sleep(Duration::from_millis(150));

    let started = Instant::now();
    let resp = parse(&request(
        addr,
        "{\"id\":3,\"op\":\"reach\",\"src\":\"u1:1\",\"dst\":\"u3:2\",\"timeout_ms\":100}",
    ))
    .unwrap();
    assert_eq!(
        field(&resp, "verdict").as_str(),
        Some("timeout"),
        "a short-budget joiner must degrade to its own timeout"
    );
    assert_eq!(field(&resp, "coalesced").as_bool(), Some(true));
    assert!(
        started.elapsed() < Duration::from_millis(600),
        "the joiner must not wait out the leader's budget"
    );

    // The leader is unaffected by the joiner giving up.
    let leader_resp = parse(&leader.join().unwrap()).unwrap();
    assert_eq!(field(&leader_resp, "verdict").as_str(), Some("sat"));
    blocker.join().unwrap();

    handle.shutdown();
    handle.join();
}

both_modes!(
    joiner_respects_its_own_deadline_not_the_leaders,
    joiner_respects_its_own_deadline_not_the_leaders_epoll,
    joiner_respects_its_own_deadline
);

fn head_requests_get_headers_only(mode: LoopMode) {
    let handle = start(cfg(mode, 1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    for path in ["/healthz", "/metrics"] {
        let (status, body) = http(
            addr,
            &format!("HEAD {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
        );
        assert!(status.contains("200"), "HEAD {path}: {status}");
        assert!(
            body.is_empty(),
            "HEAD {path} must not carry a body: {body:?}"
        );
    }
    // The advertised Content-Length is the length GET's body would have.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream
        .write_all(b"HEAD /healthz HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let advertised: usize = raw
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::to_string)
        })
        .expect("HEAD response carries Content-Length")
        .trim()
        .parse()
        .unwrap();
    let (_, get_body) = http_get(addr, "/healthz");
    assert_eq!(advertised, get_body.len());

    handle.shutdown();
    handle.join();
}

both_modes!(
    head_requests_get_headers_without_a_body,
    head_requests_get_headers_without_a_body_epoll,
    head_requests_get_headers_only
);

fn full_backlog_sheds(mode: LoopMode) {
    // One worker, zero backlog: anything arriving while the worker is
    // busy must be shed immediately, never queued or hung.
    let handle = start(cfg(mode, 1, 0), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    let blocker = thread::spawn(move || request(addr, "{\"id\":1,\"op\":\"sleep\",\"ms\":900}"));
    thread::sleep(Duration::from_millis(150));

    let started = Instant::now();
    let resp = parse(&request(addr, "{\"id\":9,\"op\":\"sleep\",\"ms\":1}")).unwrap();
    assert_eq!(field(&resp, "error").as_str(), Some("overloaded"));
    assert_eq!(field(&resp, "id").as_u64(), Some(9), "id echoed on shed");
    assert!(
        started.elapsed() < Duration::from_millis(500),
        "shedding must be immediate, not queued behind the busy worker"
    );

    let first = parse(&blocker.join().unwrap()).unwrap();
    assert_eq!(
        field(&first, "op").as_str(),
        Some("sleep"),
        "the admitted request still completes normally"
    );

    handle.shutdown();
    handle.join();
}

both_modes!(
    full_backlog_sheds_with_explicit_overloaded,
    full_backlog_sheds_with_explicit_overloaded_epoll,
    full_backlog_sheds
);

fn model_hot_swap_is_atomic(mode: LoopMode) {
    let handle = start(cfg(mode, 1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    let before = parse(&request(addr, REACH)).unwrap();
    assert_eq!(field(&before, "verdict").as_str(), Some("sat"));
    let (_, health_before) = http_get(addr, "/healthz");
    let fp_before = field(&parse(&health_before).unwrap(), "model")
        .as_str()
        .unwrap()
        .to_string();

    // A same-shape network whose u2 ingress ACL denies everything: the
    // same reach query must flip to unsat under the new model.
    let blocked = FIG3.replace("acl-in deny-dport 5000 6000", "acl-in deny");
    assert_ne!(blocked, FIG3);

    // Occupy the worker, then admit a query against the *old* model; it
    // sits queued while the model is swapped underneath it.
    let blocker = thread::spawn(move || request(addr, "{\"op\":\"sleep\",\"ms\":800}"));
    thread::sleep(Duration::from_millis(150));
    let old_model_client = thread::spawn(move || request(addr, REACH));
    thread::sleep(Duration::from_millis(150));

    let (status, body) = http_post_model(addr, &blocked);
    assert!(status.contains("200"), "swap rejected: {status} {body}");

    // The in-flight request captured its model at admission: it must
    // answer with the old model's verdict even though it executed after
    // the swap.
    let old_resp = parse(&old_model_client.join().unwrap()).unwrap();
    assert_eq!(
        field(&old_resp, "verdict").as_str(),
        Some("sat"),
        "in-flight requests finish against the model they were admitted under"
    );
    blocker.join().unwrap();

    // Fresh requests see the new model (and don't hit stale cache).
    let after = parse(&request(addr, REACH)).unwrap();
    assert_eq!(field(&after, "verdict").as_str(), Some("unsat"));
    assert_eq!(field(&after, "cache_hit").as_bool(), Some(false));

    let (_, health_after) = http_get(addr, "/healthz");
    let fp_after = field(&parse(&health_after).unwrap(), "model")
        .as_str()
        .unwrap()
        .to_string();
    assert_ne!(fp_before, fp_after, "healthz reports the new fingerprint");

    // A malformed spec must be rejected without disturbing the model.
    let (status, _) = http_post_model(addr, "device u1\n  intf nonsense\n");
    assert!(status.contains("400"));
    let again = parse(&request(addr, REACH)).unwrap();
    assert_eq!(field(&again, "verdict").as_str(), Some("unsat"));

    handle.shutdown();
    handle.join();
}

both_modes!(
    model_hot_swap_is_atomic_and_correct,
    model_hot_swap_is_atomic_and_correct_epoll,
    model_hot_swap_is_atomic
);

fn shutdown_drains_inflight_work(mode: LoopMode) {
    let handle = start(cfg(mode, 1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    let started = Instant::now();
    let client = thread::spawn(move || request(addr, "{\"id\":5,\"op\":\"sleep\",\"ms\":700}"));
    thread::sleep(Duration::from_millis(150));

    handle.shutdown();
    // The in-flight request is answered, not dropped, even though the
    // shutdown arrived long before it finished.
    let resp = parse(&client.join().unwrap()).unwrap();
    assert_eq!(field(&resp, "op").as_str(), Some("sleep"));
    assert_eq!(field(&resp, "id").as_u64(), Some(5));
    assert!(
        started.elapsed() >= Duration::from_millis(650),
        "the drain must wait for the request, not cut it short"
    );

    // join() returns once every thread retired; afterwards the port is
    // closed for good.
    handle.join();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must be gone after join"
    );
}

both_modes!(
    shutdown_drains_inflight_work_before_exiting,
    shutdown_drains_inflight_work_before_exiting_epoll,
    shutdown_drains_inflight_work
);

fn requests_during_drain_are_refused(mode: LoopMode) {
    let handle = start(cfg(mode, 1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // Hold the worker with the first request, land the shutdown
    // mid-flight, then send a second request on the same connection: it
    // must be answered with an explicit refusal rather than silence.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream
        .write_all(b"{\"id\":1,\"op\":\"sleep\",\"ms\":600}\n")
        .unwrap();
    thread::sleep(Duration::from_millis(150));
    handle.shutdown();
    thread::sleep(Duration::from_millis(100));
    let _ = stream.write_all(b"{\"id\":2,\"op\":\"sleep\",\"ms\":1}\n");

    let mut reader = BufReader::new(stream);
    let mut first = String::new();
    reader.read_line(&mut first).unwrap();
    let first = parse(first.trim()).unwrap();
    assert_eq!(field(&first, "id").as_u64(), Some(1));
    assert_eq!(field(&first, "op").as_str(), Some("sleep"));

    let mut second = String::new();
    // The second line races the socket teardown: a clean refusal and an
    // EOF are both acceptable, a hang or a dropped *in-flight* job is not.
    if reader.read_line(&mut second).is_ok() && !second.trim().is_empty() {
        let second = parse(second.trim()).unwrap();
        assert_eq!(field(&second, "error").as_str(), Some("shutting_down"));
    }
    handle.join();
}

both_modes!(
    requests_during_drain_are_answered_shutting_down,
    requests_during_drain_are_answered_shutting_down_epoll,
    requests_during_drain_are_refused
);

fn flight_recorder_follows_requests(mode: LoopMode) {
    let handle = start(cfg(mode, 2, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // A few fast queries, then one deliberately slow request: the sleep
    // dominates every latency seen so far. The duration differs per
    // loop mode because the slow table is process-global — the later
    // (epoll) run must out-sleep the earlier (threads) run to lead it.
    let slow_ms: u64 = match mode {
        LoopMode::Threads => 150,
        LoopMode::Epoll => 170,
    };
    let mut reach_req = 0;
    for _ in 0..3 {
        let r = parse(&request(addr, REACH)).unwrap();
        reach_req = field(&r, "req").as_u64().unwrap();
    }
    let slow = parse(&request(
        addr,
        &format!("{{\"op\":\"sleep\",\"ms\":{slow_ms}}}"),
    ))
    .unwrap();
    let slow_req = field(&slow, "req")
        .as_u64()
        .expect("responses carry the server-minted request id");
    assert!(slow_req > 0, "request ids start at 1");

    // The id from the response line finds the same request in the ring.
    let (status, body) = http_get(addr, "/debug/requests");
    assert!(status.contains("200"), "{status}");
    let records = match parse(&body).expect("valid JSON") {
        Value::Arr(records) => records,
        other => panic!("/debug/requests must be a JSON array: {other:?}"),
    };
    let rec = records
        .iter()
        .find(|r| field(r, "req").as_u64() == Some(slow_req))
        .expect("the slow request is in the flight ring");
    assert_eq!(field(rec, "op").as_str(), Some("sleep"));
    assert_eq!(field(rec, "verdict").as_str(), Some("ok"));
    assert!(field(rec, "latency_us").as_u64().unwrap() >= slow_ms * 1000);
    // Look the reach query up by its own request id: the flight ring is
    // process-global, so "any reach record" could belong to another test.
    let reach = records
        .iter()
        .find(|r| field(r, "req").as_u64() == Some(reach_req))
        .expect("reach queries are recorded too");
    assert_eq!(field(reach, "src").as_str(), Some("u1:1"));
    assert_eq!(field(reach, "dst").as_str(), Some("u3:2"));
    assert_eq!(field(reach, "verdict").as_str(), Some("sat"));

    // The slow table ranks the sleep first: nothing else slept as long.
    let (status, body) = http_get(addr, "/debug/slow");
    assert!(status.contains("200"), "{status}");
    let Value::Arr(slow_records) = parse(&body).expect("valid JSON") else {
        panic!("/debug/slow must be a JSON array");
    };
    assert_eq!(
        field(&slow_records[0], "req").as_u64(),
        Some(slow_req),
        "the slowest request must lead the slow table: {body}"
    );

    handle.shutdown();
    handle.join();
}

both_modes!(
    flight_recorder_follows_a_request_end_to_end,
    flight_recorder_follows_a_request_end_to_end_epoll,
    flight_recorder_follows_requests
);

fn debug_trace_capture_carries_request_ids(mode: LoopMode) {
    let handle = start(cfg(mode, 2, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // Keep queries flowing while the capture window is open. Alternating
    // directions defeats the result cache often enough that backend
    // spans land inside the window.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let driver = {
        let stop = stop.clone();
        thread::spawn(move || {
            let pairs = [("u1:1", "u3:2"), ("u3:2", "u1:1"), ("u2:1", "u1:1")];
            let mut i = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let (src, dst) = pairs[i % pairs.len()];
                let line = format!("{{\"op\":\"reach\",\"src\":\"{src}\",\"dst\":\"{dst}\"}}");
                let _ = request(addr, &line);
                i += 1;
            }
        })
    };

    let (status, body) = http_get(addr, "/debug/trace?ms=400");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    driver.join().unwrap();
    assert!(status.contains("200"), "{status}");
    rzen_obs::json::validate(&body).expect("/debug/trace must return valid JSON");

    // The capture shows the request id at every layer: the serve span,
    // the engine worker span, and the backend solve span.
    for span in ["serve.request", "engine.query", "engine.backend"] {
        assert!(
            body.contains(&format!("\"name\":\"{span}\"")),
            "trace capture missing {span} spans:\n{body}"
        );
    }
    assert!(
        body.contains("\"req\":"),
        "trace spans must carry the request id as an argument"
    );

    handle.shutdown();
    handle.join();
}

both_modes!(
    debug_trace_capture_carries_request_ids_through_the_stack,
    debug_trace_capture_carries_request_ids_through_the_stack_epoll,
    debug_trace_capture_carries_request_ids
);

fn debug_trace_window_is_validated(mode: LoopMode) {
    let handle = start(cfg(mode, 1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // Malformed windows are a client error, not a silent default.
    for bad in ["/debug/trace?ms=abc", "/debug/trace?ms=-5"] {
        let (status, body) = http_get(addr, bad);
        assert!(status.contains("400"), "{bad} -> {status}");
        assert!(
            body.contains("non-negative integer"),
            "the 400 names the problem: {body}"
        );
    }

    // The degenerate zero-length window is valid: an immediate, likely
    // empty capture, not an error. (The 10 s upper clamp is asserted at
    // the unit level in the serve crate — holding a connection open for
    // 10 s here would dominate the suite's runtime.)
    let (status, body) = http_get(addr, "/debug/trace?ms=0");
    assert!(status.contains("200"), "{status}");
    rzen_obs::json::validate(&body).expect("ms=0 returns valid (likely empty) JSON");

    handle.shutdown();
    handle.join();
}

both_modes!(
    debug_trace_window_is_validated_and_clamped,
    debug_trace_window_is_validated_and_clamped_epoll,
    debug_trace_window_is_validated
);

fn oversized_http_headers_get_431(mode: LoopMode) {
    let handle = start(cfg(mode, 1, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // 16 KiB of header lines: double the server's budget.
    let mut req = String::from("GET /healthz HTTP/1.1\r\nHost: test\r\n");
    for i in 0..128 {
        req.push_str(&format!("X-Padding-{i}: {}\r\n", "x".repeat(120)));
    }
    req.push_str("Connection: close\r\n\r\n");
    let (status, body) = http(addr, &req);
    assert!(
        status.contains("431"),
        "oversized headers must get 431, got {status:?}"
    );
    assert!(body.contains("header fields too large"), "{body}");

    // A normal request on a fresh connection still works.
    let (status, _) = http_get(addr, "/healthz");
    assert!(status.contains("200"), "{status}");

    handle.shutdown();
    handle.join();
}

both_modes!(
    oversized_http_headers_are_answered_with_431,
    oversized_http_headers_are_answered_with_431_epoll,
    oversized_http_headers_get_431
);

fn serve_errors_are_counted_by_kind(mode: LoopMode) {
    // One worker, zero backlog: easy to provoke `overloaded`.
    let handle = start(cfg(mode, 1, 0), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    let blocker = thread::spawn(move || request(addr, "{\"op\":\"sleep\",\"ms\":700}"));
    thread::sleep(Duration::from_millis(150));
    let shed = parse(&request(addr, REACH)).unwrap();
    assert_eq!(field(&shed, "error").as_str(), Some("overloaded"));
    // An endpoint that does not resolve, and a line that does not parse.
    let unresolved = parse(&request(
        addr,
        "{\"op\":\"reach\",\"src\":\"nope:1\",\"dst\":\"u3:2\"}",
    ))
    .unwrap();
    assert!(field(&unresolved, "error").as_str().is_some());
    let bad = parse(&request(addr, "{\"op\":\"warp\"}")).unwrap();
    assert!(field(&bad, "error").as_str().is_some());
    blocker.join().unwrap();

    let (_, metrics) = http_get(addr, "/metrics");
    for series in [
        "serve_errors_total{kind=\"overloaded\"}",
        "serve_errors_total{kind=\"resolve_failed\"}",
        "serve_errors_total{kind=\"bad_request\"}",
    ] {
        assert!(metrics.contains(series), "/metrics missing {series}");
    }
    // The exposition speaks Prometheus: typed families, histogram
    // buckets cumulative up to +Inf.
    assert!(metrics.contains("# TYPE serve_requests_total counter"));
    assert!(metrics.contains("# TYPE serve_request_us histogram"));
    assert!(metrics.contains("serve_request_us_bucket{le=\"+Inf\"}"));

    handle.shutdown();
    handle.join();
}

both_modes!(
    serve_errors_are_counted_by_kind_in_prometheus_metrics,
    serve_errors_are_counted_by_kind_in_prometheus_metrics_epoll,
    serve_errors_are_counted_by_kind
);

// ------------------------------------------------- slow-client torture --

fn slow_clients_cannot_wedge_or_corrupt(mode: LoopMode) {
    let handle = start(cfg(mode, 2, 16), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // NDJSON plane, dripped: the request arrives one byte at a time with
    // a long stall mid-frame. The server must hold the partial frame
    // without wedging anything.
    let mut slow = TcpStream::connect(addr).unwrap();
    slow.set_nodelay(true).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let line = format!("{REACH}\n");
    let bytes = line.as_bytes();
    let half = bytes.len() / 2;
    for &b in &bytes[..half] {
        slow.write_all(&[b]).unwrap();
    }
    thread::sleep(Duration::from_millis(300));

    // While the slow client is mid-stall, other clients are served: a
    // half-written frame must never hold a worker hostage.
    let quick = parse(&request(addr, REACH)).unwrap();
    assert_eq!(field(&quick, "verdict").as_str(), Some("sat"));

    for &b in &bytes[half..] {
        slow.write_all(&[b]).unwrap();
        thread::sleep(Duration::from_millis(1));
    }
    // Read the response back one byte at a time.
    let mut raw = Vec::new();
    let mut one = [0u8; 1];
    loop {
        match slow.read(&mut one) {
            Ok(0) => break,
            Ok(_) => {
                raw.push(one[0]);
                if one[0] == b'\n' {
                    break;
                }
            }
            Err(e) => panic!("slow read failed: {e}"),
        }
    }
    let resp = parse(String::from_utf8(raw).unwrap().trim()).unwrap();
    assert_eq!(
        field(&resp, "verdict").as_str(),
        Some("sat"),
        "a dribbled request must parse to exactly the same verdict"
    );
    drop(slow);

    // HTTP plane, dripped: single-byte writes with a mid-header stall.
    let req = "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    let mut h = TcpStream::connect(addr).unwrap();
    h.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    for (i, &b) in req.as_bytes().iter().enumerate() {
        h.write_all(&[b]).unwrap();
        if i == 25 {
            thread::sleep(Duration::from_millis(250));
        }
    }
    let mut raw = String::new();
    h.read_to_string(&mut raw).unwrap();
    assert!(
        raw.starts_with("HTTP/1.1 200"),
        "dribbled HTTP request must still be answered: {raw:?}"
    );

    handle.shutdown();
    handle.join();
}

both_modes!(
    slow_clients_cannot_wedge_a_worker_or_corrupt_framing,
    slow_clients_cannot_wedge_a_worker_or_corrupt_framing_epoll,
    slow_clients_cannot_wedge_or_corrupt
);

fn pipelined_framing_survives_single_byte_reads(mode: LoopMode) {
    let handle = start(cfg(mode, 2, 32), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // Eight pipelined requests whose execution times *decrease*: in the
    // reactor, later requests finish first, and the per-connection
    // sequencing must still deliver responses in request order.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let n = 8u64;
    let mut batch = String::new();
    for i in 1..=n {
        batch.push_str(&format!(
            "{{\"id\":{i},\"op\":\"sleep\",\"ms\":{}}}\n",
            (n - i + 1) * 10
        ));
    }
    stream.write_all(batch.as_bytes()).unwrap();

    // Read every response one byte at a time: framing must survive the
    // worst consumer.
    let mut raw = Vec::new();
    let mut newlines = 0;
    let mut one = [0u8; 1];
    while newlines < n {
        match stream.read(&mut one) {
            Ok(0) => break,
            Ok(_) => {
                raw.push(one[0]);
                if one[0] == b'\n' {
                    newlines += 1;
                }
            }
            Err(e) => panic!("read failed after {newlines} responses: {e}"),
        }
    }
    let raw = String::from_utf8(raw).unwrap();
    let ids: Vec<u64> = raw
        .lines()
        .map(|l| {
            field(&parse(l.trim()).expect("each line is intact JSON"), "id")
                .as_u64()
                .expect("each response echoes its id")
        })
        .collect();
    assert_eq!(
        ids,
        (1..=n).collect::<Vec<_>>(),
        "responses must come back in request order, uncorrupted"
    );

    handle.shutdown();
    handle.join();
}

both_modes!(
    pipelined_responses_keep_request_order_under_single_byte_reads,
    pipelined_responses_keep_request_order_under_single_byte_reads_epoll,
    pipelined_framing_survives_single_byte_reads
);

// ---------------------------------------------------------- idle reaping --

fn idle_connections_are_reaped(mode: LoopMode) {
    let mut c = cfg(mode, 1, 16);
    c.idle_timeout = Some(Duration::from_millis(200));
    let handle = start(c, Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    // A connection that sends nothing is closed by the server once the
    // idle window passes.
    let mut silent = TcpStream::connect(addr).unwrap();
    silent
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = Instant::now();
    let mut one = [0u8; 1];
    match silent.read(&mut one) {
        Ok(0) => {}
        other => panic!("expected server-side close of an idle connection, got {other:?}"),
    }
    assert!(
        started.elapsed() >= Duration::from_millis(100),
        "the connection must live through (most of) the idle window"
    );
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "reaping must happen near the timeout, not at shutdown"
    );

    // An active connection is not reaped mid-request.
    let resp = parse(&request(addr, REACH)).unwrap();
    assert_eq!(field(&resp, "verdict").as_str(), Some("sat"));

    let (_, metrics) = http_get(addr, "/metrics");
    assert!(
        metrics.contains("serve_idle_reaped_total"),
        "/metrics must count reaped connections:\n{metrics}"
    );

    handle.shutdown();
    handle.join();
}

both_modes!(
    idle_connections_are_reaped_after_the_timeout,
    idle_connections_are_reaped_after_the_timeout_epoll,
    idle_connections_are_reaped
);

// ------------------------------------------------- loop observability --

#[test]
fn epoll_metrics_expose_loop_and_shard_series() {
    let mut c = cfg(LoopMode::Epoll, 2, 16);
    c.shards = 2;
    let handle = start(c, Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    let mut reach_req = 0;
    for _ in 0..3 {
        let r = parse(&request(addr, REACH)).unwrap();
        reach_req = field(&r, "req").as_u64().unwrap();
    }
    let (_, metrics) = http_get(addr, "/metrics");
    for series in [
        "loop_wakeups_total",
        "serve_open_connections",
        "serve_shard_queue_depth{shard=\"0\"}",
        "serve_shard_queue_depth{shard=\"1\"}",
    ] {
        assert!(
            metrics.contains(series),
            "/metrics missing {series}:\n{metrics}"
        );
    }

    // Flight records carry the shard that served each query.
    let (_, body) = http_get(addr, "/debug/requests");
    let Value::Arr(records) = parse(&body).unwrap() else {
        panic!("/debug/requests must be a JSON array");
    };
    let reach = records
        .iter()
        .find(|r| field(r, "req").as_u64() == Some(reach_req))
        .expect("reach queries are recorded");
    let shard = field(reach, "shard").as_u64().expect("sharded record");
    assert!(shard < 2, "shard id must be one of the two shards: {shard}");

    handle.shutdown();
    handle.join();
}
