//! The Fig. 10 verification pipeline end-to-end on random workloads:
//! the general framework (both backends) and the hand-optimized baseline
//! must agree with each other and with concrete simulation.

use rzen::{FindOptions, Zen, ZenFunction};
use rzen_baselines::AclVerifier;
use rzen_net::gen::{random_acl, random_route_map};

#[test]
fn acl_verification_agrees_across_all_three_engines() {
    for seed in 0..4 {
        let acl = random_acl(60, seed);
        let n = acl.rules.len() as u16;

        // Zen BDD + Zen SMT: find a packet whose first match is the last
        // line.
        let model_acl = acl.clone();
        let f = ZenFunction::new(move |h| model_acl.matched_line(h));
        let bdd = f.find(|_, line| line.eq(Zen::val(n)), &FindOptions::bdd());
        let smt = f.find(|_, line| line.eq(Zen::val(n)), &FindOptions::smt());

        // Baseline (hand-optimized BDD).
        let mut baseline = AclVerifier::new(&acl);
        let base = baseline.find_first_match(n as usize - 1);

        // All three agree on satisfiability.
        assert_eq!(bdd.is_some(), base.is_some(), "seed {seed}");
        assert_eq!(smt.is_some(), base.is_some(), "seed {seed}");

        // Each witness is genuine per the concrete reference semantics.
        for w in [bdd, smt, base].into_iter().flatten() {
            assert_eq!(acl.matched_line_concrete(&w), n, "seed {seed}");
        }
    }
}

#[test]
fn every_reachable_acl_line_agrees_with_baseline() {
    let acl = random_acl(25, 99);
    let model_acl = acl.clone();
    let f = ZenFunction::new(move |h| model_acl.matched_line(h));
    let mut baseline = AclVerifier::new(&acl);
    for i in 0..acl.rules.len() {
        let zen = f.find(
            |_, line| line.eq(Zen::val(i as u16 + 1)),
            &FindOptions::bdd(),
        );
        let base = baseline.find_first_match(i);
        assert_eq!(zen.is_some(), base.is_some(), "line {i}");
        if let Some(w) = zen {
            assert_eq!(acl.matched_line_concrete(&w), i as u16 + 1);
        }
    }
}

#[test]
fn route_map_verification_both_backends() {
    for seed in 0..4 {
        let rm = random_route_map(15, seed);
        let n = rm.clauses.len() as u16;
        let model = rm.clone();
        let f = ZenFunction::new(move |a| model.matched_clause(a));
        let bdd = f.find(
            |_, line| line.eq(Zen::val(n)),
            &FindOptions::bdd().with_list_bound(4),
        );
        let smt = f.find(
            |_, line| line.eq(Zen::val(n)),
            &FindOptions::smt().with_list_bound(4),
        );
        // Backends must agree on satisfiability; witnesses must be genuine.
        assert_eq!(bdd.is_some(), smt.is_some(), "seed {seed}");
        for w in [bdd, smt].into_iter().flatten() {
            for (i, c) in rm.clauses.iter().enumerate().take(n as usize - 1) {
                assert!(
                    !c.matches_concrete(&w),
                    "seed {seed}: clause {i} matched {w:?}"
                );
            }
        }
    }
}

#[test]
fn route_map_apply_symbolic_equals_concrete_on_witnesses() {
    let rm = random_route_map(12, 5);
    let model = rm.clone();
    let apply = ZenFunction::new(move |a| model.apply(a));
    // Use generated inputs as the probe set.
    let track = rm.clone();
    let tracked = ZenFunction::new(move |a| track.matched_clause(a));
    let inputs = tracked.generate_inputs(&FindOptions::smt().with_list_bound(3), 32);
    assert!(!inputs.is_empty());
    for a in inputs {
        assert_eq!(apply.evaluate(&a), rm.apply_concrete(&a), "input {a:?}");
    }
}

#[test]
fn simulation_matches_brute_force_on_random_headers() {
    let acl = random_acl(40, 7);
    let model = acl.clone();
    let f = ZenFunction::new(move |h| model.matched_line(h));
    let compiled = f.compile(0);
    for seed in 0..200 {
        let h = rzen_net::gen::random_header(seed);
        let expect = acl.matched_line_concrete(&h);
        assert_eq!(f.evaluate(&h), expect);
        assert_eq!(compiled.call(&h), expect);
    }
}

#[test]
fn unsatisfiable_query_unsat_everywhere() {
    // An ACL whose first rule shadows everything: line 2 unreachable.
    let mut acl = random_acl(10, 3);
    acl.rules[0] = rzen_net::acl::AclRule::any(true);
    let model = acl.clone();
    let f = ZenFunction::new(move |h| model.matched_line(h));
    assert!(f
        .find(|_, l| l.eq(Zen::val(2u16)), &FindOptions::bdd())
        .is_none());
    assert!(f
        .find(|_, l| l.eq(Zen::val(2u16)), &FindOptions::smt())
        .is_none());
    let mut baseline = AclVerifier::new(&acl);
    assert!(baseline.line_shadowed(1));
}
