//! Budget semantics under concurrency: deadline-expiry ordering against
//! explicit cancellation, cross-thread visibility of the shared flag, and
//! manager reusability after a cancelled BDD build.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use rzen::Budget;
use rzen_bdd::BddManager;

#[test]
fn deadline_expiry_and_cancellation_are_distinguishable_in_order() {
    // A future deadline: not exhausted, not passed.
    let b = Budget::with_timeout(Duration::from_secs(3600));
    assert!(!b.is_exhausted());
    assert!(!b.deadline_passed());

    // Explicit cancellation exhausts the budget while the deadline is
    // still in the future — the engine maps this to `Cancelled`.
    b.cancel();
    assert!(b.is_exhausted());
    assert!(
        !b.deadline_passed(),
        "cancellation must not masquerade as a timeout"
    );

    // The deadline passing exhausts the budget with no cancellation —
    // the engine maps this to `Timeout`.
    let t = Budget::with_deadline(Instant::now());
    assert!(t.is_exhausted());
    assert!(t.deadline_passed());
    assert!(
        !t.cancel_flag().load(Ordering::Relaxed),
        "deadline expiry must not raise the cancel flag"
    );
}

#[test]
fn cancellation_is_visible_across_threads() {
    let budget = Budget::unlimited();
    let clone = budget.clone();
    let worker = std::thread::spawn(move || {
        let deadline = Instant::now() + Duration::from_secs(30);
        while !clone.is_exhausted() {
            if Instant::now() > deadline {
                return false;
            }
            std::thread::yield_now();
        }
        true
    });
    std::thread::sleep(Duration::from_millis(10));
    budget.cancel();
    assert!(
        worker.join().unwrap(),
        "worker must observe cancellation through its clone"
    );
    // And directly through the shared flag handed to substrates.
    assert!(budget.cancel_flag().load(Ordering::Relaxed));
}

#[test]
fn cancelled_mk_loop_leaves_the_manager_reusable() {
    let budget = Budget::unlimited();
    let mut m = BddManager::new();
    m.set_budget(Some(budget.cancel_flag()), budget.deadline());

    // Build until the manager observes the flag (its mk() poll cadence is
    // coarse, so keep feeding it work after cancelling).
    budget.cancel();
    let mut acc = m.constant(false);
    for round in 0..1_000u32 {
        for v in 0..32u32 {
            let x = m.var(v);
            let y = m.var((v + round) % 32);
            let t = m.and(x, y);
            acc = m.or(acc, t);
        }
        if m.interrupted() {
            break;
        }
    }
    assert!(m.interrupted(), "the mk loop must observe the raised flag");

    // Installing a fresh budget clears the interrupt; the same manager
    // then solves normally and its tables were not corrupted.
    m.set_budget(None, None);
    assert!(!m.interrupted());
    let a = m.var(0);
    let b = m.var(1);
    let f = m.and(a, b);
    let sat = m.any_sat(f).expect("a ∧ b is satisfiable");
    assert!(sat.iter().all(|&(_, v)| v), "both literals set on the path");
    let g = m.xor(a, b);
    let both = m.and(f, g);
    assert_eq!(m.any_sat(both), None, "(a∧b) ∧ (a⊕b) is unsat");
}
