//! Integration tests for the continuous profiler: the span-stack CPU
//! sampler, heap attribution through the counting allocator, and the
//! serve layer's `/debug/profile` endpoint.
//!
//! This binary installs [`rzen_obs::CountingAlloc`] exactly as the
//! shipped binaries do, so heap attribution is exercised end to end.
//! Tests that flip the global profiling state serialize on a local
//! mutex.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use rzen_engine::{Engine, EngineConfig, Query, QueryBackend};
use rzen_net::spec;
use rzen_obs::profile;
use rzen_serve::{start, Model, ServerConfig};

#[global_allocator]
static ALLOC: rzen_obs::CountingAlloc = rzen_obs::CountingAlloc;

const FIG3: &str = include_str!("../specs/fig3.net");

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// All-pairs reach + drops queries over fig3 — the `rzen-cli batch` set.
fn batch_queries() -> Vec<Query> {
    let spec = spec::parse(FIG3).expect("spec");
    let edges = spec.edge_ports();
    let mut queries = Vec::new();
    for &src in &edges {
        for &dst in &edges {
            if src == dst {
                continue;
            }
            queries.push(Query::Reach {
                net: spec.net.clone(),
                src,
                dst,
            });
            queries.push(Query::Drops {
                net: spec.net.clone(),
                src,
                dst,
            });
        }
    }
    queries
}

fn engine(cache: bool) -> Engine {
    Engine::new(EngineConfig {
        jobs: 2,
        backend: QueryBackend::Portfolio,
        timeout: Some(Duration::from_secs(10)),
        cache,
        sessions: false,
    })
}

/// While profiling is disabled, instrumented code publishes no stack
/// slot and the allocator counts nothing — the observable half of the
/// one-relaxed-load contract.
#[test]
fn disabled_profiling_publishes_and_counts_nothing() {
    let _g = lock();
    let before = profile::global_heap_stats();
    let slot = thread::spawn(|| {
        {
            let _span = rzen_obs::span!("test.profile.disabled");
            std::hint::black_box(vec![0u8; 1 << 16]);
        }
        profile::thread_slot_allocated()
    })
    .join()
    .expect("worker");
    assert!(!slot, "no stack slot registered while profiling is off");
    assert_eq!(
        profile::global_heap_stats(),
        before,
        "allocator tallies do not advance while profiling is off"
    );
}

/// Double start is refused, stop-without-start is a no-op, and the
/// sampler winds down cleanly every time.
#[test]
fn sampler_start_stop_is_idempotent() {
    let _g = lock();
    assert!(!profile::stop(), "stop without start");
    assert!(profile::start(499));
    assert!(!profile::start(499), "second start refused");
    assert!(profile::is_running());
    assert!(profile::stop());
    assert!(!profile::stop(), "second stop refused");
    // A full second cycle works after the first.
    assert!(profile::start(499));
    assert!(profile::stop());
}

/// A cache-off batch run under the sampler yields folded stacks whose
/// leaf frames reach into the solver substrates (sat/bdd/bitblast) —
/// the profiler sees inside the engine, not just the outer spans.
#[test]
fn cpu_sampler_reaches_solver_leaf_frames() {
    let _g = lock();
    let queries = batch_queries();
    profile::reset();
    assert!(profile::start(1_997));
    let engine = engine(false);
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut solver_leaves = false;
    while !solver_leaves && Instant::now() < deadline {
        let report = engine.run_batch(&queries);
        assert_eq!(report.results.len(), queries.len());
        solver_leaves = profile::cpu_folded().iter().any(|(stack, _)| {
            let leaf = stack.rsplit(';').next().unwrap_or("");
            leaf.starts_with("sat.") || leaf.starts_with("bdd.") || leaf.starts_with("bitblast.")
        });
    }
    assert!(profile::stop());
    let folded = profile::render_folded_cpu();
    assert!(
        solver_leaves,
        "no solver-substrate leaf frame sampled; folded:\n{folded}"
    );
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!stack.is_empty());
        count.parse::<u64>().expect("sample count");
    }
}

/// Differential heap attribution: of the bytes the allocator counted
/// during a batch run, at least 90% land on named spans; the remainder
/// sits in the explicit `<untracked>` bucket, and tracked + untracked
/// exactly cover the allocator's window.
#[test]
fn heap_view_attributes_ninety_percent_of_batch_bytes() {
    let _g = lock();
    let queries = batch_queries();
    profile::reset();
    assert!(profile::start(99));
    let window_start = profile::global_heap_stats().alloc_bytes;
    let report = engine(false).run_batch(&queries);
    assert_eq!(report.results.len(), queries.len());
    let window = profile::global_heap_stats().alloc_bytes - window_start;
    assert!(profile::stop());
    let rows = profile::heap_folded();
    let named: u64 = rows
        .iter()
        .filter(|(stack, _, _)| !stack.contains(profile::UNTRACKED))
        .map(|(_, bytes, _)| bytes)
        .sum();
    assert!(window > 1 << 20, "a batch run allocates: {window} bytes");
    assert!(
        named as f64 >= 0.90 * window as f64,
        "named spans hold {named} of {window} bytes ({:.1}%)",
        100.0 * named as f64 / window as f64
    );
    let untracked: u64 = rows
        .iter()
        .filter(|(stack, _, _)| stack.contains(profile::UNTRACKED))
        .map(|(_, bytes, _)| bytes)
        .sum();
    assert!(
        named + untracked >= window,
        "named + <untracked> covers the window ({named} + {untracked} < {window})"
    );
}

// --- serve endpoint ------------------------------------------------------

fn cfg() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        backlog: 64,
        timeout: Some(Duration::from_secs(30)),
        sessions: false,
        backend: QueryBackend::Portfolio,
        handle_signals: false,
        debug_ops: true,
        sample_hz: 1_499,
        loop_mode: rzen_serve::LoopMode::Epoll,
        shards: 0,
        idle_timeout: None,
    }
}

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("http response");
    let status = raw.lines().next().unwrap_or("").to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Stream request lines back-to-back on one connection until told to
/// stop, so jobs keep starting *inside* any profile capture window.
fn stream_requests(addr: SocketAddr, line: &'static str, stop: &std::sync::atomic::AtomicBool) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
        writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        let mut resp = String::new();
        if reader.read_line(&mut resp).is_err() || resp.is_empty() {
            break;
        }
    }
}

/// `/debug/profile` end to end on a loaded server: folded stacks with
/// serve-side frames, a well-formed standalone SVG, a heap view, 400s
/// on malformed parameters, and nonzero allocation columns in the
/// flight records of requests that ran inside the window.
#[test]
fn debug_profile_endpoint_end_to_end() {
    let _g = lock();
    let handle = start(cfg(), Model::parse(FIG3).unwrap()).unwrap();
    let addr = handle.addr();

    static STOP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
    let loaders = [
        thread::spawn(move || stream_requests(addr, "{\"op\":\"sleep\",\"ms\":20}", &STOP)),
        thread::spawn(move || {
            stream_requests(
                addr,
                "{\"op\":\"reach\",\"src\":\"u1:1\",\"dst\":\"u3:2\"}",
                &STOP,
            )
        }),
    ];

    let (status, folded) = http_get(addr, "/debug/profile?ms=500&view=cpu&format=folded");
    assert!(status.contains("200"), "{status}");
    assert!(!folded.trim().is_empty(), "loaded server yields samples");
    for line in folded.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!stack.is_empty());
        count.parse::<u64>().expect("sample count");
    }
    assert!(
        folded.contains("serve.job"),
        "in-flight jobs visible in folded stacks:\n{folded}"
    );

    let (status, svg) = http_get(addr, "/debug/profile?ms=300&format=svg");
    assert!(status.contains("200"), "{status}");
    assert!(svg.starts_with("<svg xmlns=\"http://www.w3.org/2000/svg\""));
    assert!(svg.trim_end().ends_with("</svg>"));

    let (status, heap) = http_get(addr, "/debug/profile?ms=300&view=heap&format=folded");
    assert!(status.contains("200"), "{status}");
    assert!(
        !heap.trim().is_empty(),
        "heap view has named rows or the residual bucket"
    );

    for bad in [
        "/debug/profile?ms=abc",
        "/debug/profile?ms=-5",
        "/debug/profile?view=nope",
        "/debug/profile?format=gif",
    ] {
        let (status, _) = http_get(addr, bad);
        assert!(status.contains("400"), "{bad} -> {status}");
    }

    // Requests that ran inside a capture window carry allocation columns.
    let (status, requests) = http_get(addr, "/debug/requests");
    assert!(status.contains("200"), "{status}");
    assert!(requests.contains("\"alloc_bytes\":"));
    let attributed = requests
        .split("\"alloc_bytes\":")
        .skip(1)
        .filter_map(|rest| rest.split([',', '}']).next()?.parse::<u64>().ok())
        .any(|bytes| bytes > 0);
    assert!(
        attributed,
        "some profiled request allocated: {}",
        &requests[..requests.len().min(2000)]
    );

    STOP.store(true, std::sync::atomic::Ordering::Relaxed);
    handle.shutdown();
    for l in loaders {
        let _ = l.join();
    }
    handle.join();
}
