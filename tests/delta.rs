//! Delta subsystem integration tests: differential correctness of scripted
//! deltas against a fresh parse of the equivalent full spec (for every
//! checked-in spec), cone-of-influence eviction precision, session-state
//! survival across deltas, and the serve layer's `POST /delta` and no-op
//! `POST /model` behavior over real sockets.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use rzen::Budget;
use rzen_delta::composite_fingerprint;
use rzen_engine::{DeltaCacheStats, Engine, EngineConfig, Query, QueryBackend, Verdict};
use rzen_net::spec::{self, Spec};
use rzen_obs::json::{parse, Value};
use rzen_serve::{start, LoopMode, Model, ServerConfig};

fn specs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../specs")
}

/// The scripted delta for one checked-in spec. Every file in `specs/`
/// must have one — a new spec without a script fails the differential
/// test, which is the point: delta coverage stays total.
fn scripted_delta(name: &str) -> &'static str {
    match name {
        // Flip the transit ACL, then add and remove a middlebox: the
        // add/remove pair must cancel out structurally.
        "fig3.net" => concat!(
            "{\"op\":\"set-acl\",\"device\":\"u2\",\"intf\":1,\"dir\":\"in\",",
            "\"acl\":\"permit-dst 192.168.0.0/16\"}\n",
            "{\"op\":\"add-device\",\"name\":\"m1\",\"intfs\":[7]}\n",
            "{\"op\":\"remove-device\",\"name\":\"m1\"}\n",
        ),
        // Exercise every remaining op kind; the link flap restores the
        // topology so the edge-port set is unchanged.
        "spine_leaf.net" => concat!(
            "# drop l1's telnet filter, shield l2's hosts instead\n",
            "{\"op\":\"remove-acl\",\"device\":\"l1\",\"intf\":99,\"dir\":\"in\"}\n",
            "{\"op\":\"set-acl\",\"device\":\"l2\",\"intf\":99,\"dir\":\"out\",",
            "\"acl\":\"deny-dport 80 80\"}\n",
            "{\"op\":\"link-down\",\"a\":\"l1:2\",\"b\":\"s1:2\"}\n",
            "{\"op\":\"link-up\",\"a\":\"l1:2\",\"b\":\"s1:2\"}\n",
            "{\"op\":\"set-route\",\"device\":\"l1\",\"prefix\":\"10.2.0.0/16\",\"port\":2}\n",
        ),
        other => panic!(
            "no scripted delta for specs/{other}: add one to scripted_delta() \
             so the differential suite keeps covering every spec"
        ),
    }
}

fn verdict_kind(v: &Verdict) -> &'static str {
    match v {
        Verdict::Sat(_) => "sat",
        Verdict::Unsat => "unsat",
        Verdict::Timeout => "timeout",
        Verdict::Cancelled => "cancelled",
        Verdict::Error(_) => "error",
    }
}

/// All-pairs Reach + Drops over the spec's edge ports — the same query
/// set `rzen-cli batch` runs.
fn all_pairs(spec: &Spec) -> Vec<Query> {
    let ports = spec.edge_ports();
    let mut queries = Vec::new();
    for &src in &ports {
        for &dst in &ports {
            if src == dst {
                continue;
            }
            queries.push(Query::Reach {
                net: spec.net.clone(),
                src,
                dst,
            });
            queries.push(Query::Drops {
                net: spec.net.clone(),
                src,
                dst,
            });
        }
    }
    queries
}

fn engine(cache: bool) -> Engine {
    Engine::new(EngineConfig {
        jobs: 4,
        backend: QueryBackend::Portfolio,
        timeout: None,
        cache,
        sessions: false,
    })
}

#[test]
fn scripted_deltas_agree_with_fresh_parse_on_every_spec() {
    let mut names: Vec<String> = std::fs::read_dir(specs_dir())
        .expect("specs dir")
        .filter_map(|e| {
            let name = e.unwrap().file_name().into_string().unwrap();
            name.ends_with(".net").then_some(name)
        })
        .collect();
    names.sort();
    assert!(!names.is_empty(), "specs/ must hold at least one spec");

    for name in names {
        let text = std::fs::read_to_string(specs_dir().join(&name)).unwrap();
        let base = spec::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let ops = rzen_delta::parse_ops(scripted_delta(&name)).unwrap();
        let mut patched = base.clone();
        let applied = rzen_delta::apply_all(&mut patched, &ops).unwrap();
        assert!(!applied.touched.is_empty(), "{name}: delta touched nothing");

        // The serializer must close the loop: a fresh parse of the
        // rendered patched spec is the "equivalent full spec", and
        // re-rendering it must be a fixpoint.
        let rendered = spec::serialize(&patched).unwrap();
        let reparsed = spec::parse(&rendered)
            .unwrap_or_else(|e| panic!("{name}: patched spec does not reparse: {e}\n{rendered}"));
        assert_eq!(
            spec::serialize(&reparsed).unwrap(),
            rendered,
            "{name}: serializer must be a fixpoint on patched specs"
        );
        assert_eq!(
            composite_fingerprint(&patched.net),
            composite_fingerprint(&reparsed.net),
            "{name}: in-place patch and fresh parse must have one identity"
        );
        assert_eq!(patched.edge_ports(), reparsed.edge_ports());

        // Differential: all-pairs verdicts of the in-place patched model
        // against a from-scratch parse, solved by independent engines
        // with the cache off (every verdict is a real solve).
        let qp = all_pairs(&patched);
        let qr = all_pairs(&reparsed);
        let rp = engine(false).run_batch(&qp);
        let rr = engine(false).run_batch(&qr);
        for (i, q) in qp.iter().enumerate() {
            assert_eq!(
                verdict_kind(&rp.results[i].verdict),
                verdict_kind(&rr.results[i].verdict),
                "{name}: query {i} ({}) diverges between patched and reparsed",
                q.kind()
            );
            for (report, query) in [(&rp, q), (&rr, &qr[i])] {
                if let Verdict::Sat(w) = &report.results[i].verdict {
                    assert!(query.check_witness(w), "{name}: query {i}: bad witness");
                }
            }
        }
    }
}

#[test]
fn delta_evicts_exactly_the_cone_of_influence() {
    let text = std::fs::read_to_string(specs_dir().join("spine_leaf.net")).unwrap();
    let base = spec::parse(&text).unwrap();
    let l1 = *base.device_index.get("l1").unwrap();

    // Warm the cache with the full all-pairs set: 3 edge ports, 6
    // ordered pairs, Reach + Drops each.
    let eng = engine(true);
    let warm = eng.run_batch(&all_pairs(&base));
    assert!(warm.results.iter().all(|r| r.verdict.is_decisive()));
    assert_eq!(eng.cache_len(), 12);

    // One ACL line on l1's host port. Its cone of influence is every
    // pair with l1 as an endpoint — transit paths through l1 enter via
    // the spine-facing ports, never through intf 99.
    let ops = rzen_delta::parse_ops(
        "{\"op\":\"set-acl\",\"device\":\"l1\",\"intf\":99,\"dir\":\"in\",\"acl\":\"deny\"}",
    )
    .unwrap();
    let mut patched = base.clone();
    let applied = rzen_delta::apply_all(&mut patched, &ops).unwrap();
    let stats = eng.apply_delta(&base.net, &patched.net, &applied.steps);
    assert_eq!(
        stats,
        DeltaCacheStats {
            evicted: 8,
            retained: 4,
            unaffected: 0
        },
        "4 ordered pairs touch l1 (x Reach+Drops = 8); l0<->l2 survives"
    );
    assert_eq!(eng.cache_len(), 4);

    // Survivors were re-keyed to the new model: re-running the full set
    // against the patched net hits exactly the untouched pairs, and
    // every verdict agrees with an engine that saw only the new model.
    let queries = all_pairs(&patched);
    let rerun = eng.run_batch(&queries);
    let fresh = engine(false).run_batch(&queries);
    for (i, q) in queries.iter().enumerate() {
        let (Query::Reach { src, dst, .. } | Query::Drops { src, dst, .. }) = q else {
            unreachable!()
        };
        let involves_l1 = src.0 == l1 || dst.0 == l1;
        assert_eq!(
            rerun.results[i].cache_hit, !involves_l1,
            "query {i}: pairs off the cone must stay warm, on-cone must resolve"
        );
        assert_eq!(
            verdict_kind(&rerun.results[i].verdict),
            verdict_kind(&fresh.results[i].verdict),
            "query {i} ({}): a retained entry answered for the wrong model",
            q.kind()
        );
    }
}

#[test]
fn warm_session_state_survives_a_delta() {
    let text = std::fs::read_to_string(specs_dir().join("spine_leaf.net")).unwrap();
    let base = spec::parse(&text).unwrap();
    let src = base.endpoint("l0:99").unwrap();
    let dst = base.endpoint("l2:99").unwrap();

    // Sessions on, cache off: every run_one is a real solve through the
    // worker's persistent solver sessions.
    let eng = Engine::new(EngineConfig {
        jobs: 1,
        backend: QueryBackend::Smt,
        timeout: None,
        cache: false,
        sessions: true,
    });
    // Warm the session on the full all-pairs set: the unsat Drops
    // queries are what make the SAT side learn clauses worth carrying.
    let worker = eng.serve_worker();
    let mut first = None;
    for q in all_pairs(&base) {
        let r = eng.run_one(
            &q,
            Budget::unlimited(),
            &worker,
            rzen_obs::RequestCtx::mint(0, 0),
        );
        assert!(r.verdict.is_decisive());
        if matches!(&q, Query::Reach { src: s, dst: d, .. } if (*s, *d) == (src, dst)) {
            first = Some(r);
        }
    }
    let first = first.expect("the observed pair is in the all-pairs set");

    let ops = rzen_delta::parse_ops(
        "{\"op\":\"set-acl\",\"device\":\"l1\",\"intf\":99,\"dir\":\"in\",\"acl\":\"deny\"}",
    )
    .unwrap();
    let mut patched = base.clone();
    let applied = rzen_delta::apply_all(&mut patched, &ops).unwrap();
    eng.apply_delta(&base.net, &patched.net, &applied.steps);

    // The same pair against the patched model: only l1's sub-model
    // changed, so the session must reuse the bitblast nodes and carried
    // clauses it compiled before the delta — deltas never quiesce
    // sessions, that is the whole point of sub-model fingerprints.
    let after = eng.run_one(
        &Query::Reach {
            net: patched.net.clone(),
            src,
            dst,
        },
        Budget::unlimited(),
        &worker,
        rzen_obs::RequestCtx::mint(0, 0),
    );
    assert!(after.verdict.is_decisive());
    let session = after.session.expect("session mode attaches stats");
    assert!(
        session.bitblast_hits > 0,
        "post-delta query must reuse nodes compiled before the delta"
    );
    assert!(
        session.sat_clauses_carried > 0,
        "learnt clauses must survive the delta"
    );
    assert_eq!(
        verdict_kind(&first.verdict),
        verdict_kind(&after.verdict),
        "the untouched pair's verdict must not move"
    );
}

// ---------------------------------------------------------------- serve --

const REACH: &str = "{\"op\":\"reach\",\"src\":\"u1:1\",\"dst\":\"u3:2\"}";

fn cfg(sessions: bool, mode: LoopMode) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 1,
        backlog: 16,
        timeout: Some(Duration::from_secs(30)),
        sessions,
        backend: QueryBackend::Portfolio,
        handle_signals: false,
        debug_ops: false,
        sample_hz: rzen_obs::profile::DEFAULT_SAMPLE_HZ,
        loop_mode: mode,
        shards: 0,
        idle_timeout: None,
    }
}

fn fig3_text() -> String {
    std::fs::read_to_string(specs_dir().join("fig3.net")).unwrap()
}

fn request(addr: SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream.write_all(format!("{line}\n").as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("response");
    resp.trim().to_string()
}

fn http(addr: SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("http response");
    let status = raw.lines().next().unwrap_or("").to_string();
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    http(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"),
    )
}

fn http_post(addr: SocketAddr, path: &str, body: &str) -> (String, String) {
    http(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn field<'v>(v: &'v Value, key: &str) -> &'v Value {
    v.get(key)
        .unwrap_or_else(|| panic!("response missing {key:?}: {v:?}"))
}

fn healthz(addr: SocketAddr) -> Value {
    let (status, body) = http_get(addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    parse(&body).unwrap()
}

#[test]
fn post_delta_flips_verdicts_and_advances_the_generation() {
    post_delta_flips_verdicts(LoopMode::Threads);
}

#[test]
fn post_delta_flips_verdicts_and_advances_the_generation_epoll() {
    post_delta_flips_verdicts(LoopMode::Epoll);
}

fn post_delta_flips_verdicts(mode: LoopMode) {
    let fig3 = fig3_text();
    let handle = start(cfg(true, mode), Model::parse(&fig3).unwrap()).unwrap();
    let addr = handle.addr();

    let before = parse(&request(addr, REACH)).unwrap();
    assert_eq!(field(&before, "verdict").as_str(), Some("sat"));
    let health = healthz(addr);
    let fp_before = field(&health, "model").as_str().unwrap().to_string();
    let gen_before = field(&health, "generation").as_u64().unwrap();

    // A bad delta (unknown device) must change nothing.
    let (status, body) = http_post(
        addr,
        "/delta",
        "{\"op\":\"set-acl\",\"device\":\"nope\",\"intf\":1,\"dir\":\"in\",\"acl\":\"deny\"}",
    );
    assert!(status.contains("400"), "{status} {body}");
    assert_eq!(
        field(&healthz(addr), "model").as_str().unwrap(),
        fp_before,
        "a rejected delta must not move the model"
    );

    // One ACL line over the wire: the transit hop now denies everything.
    let (status, body) = http_post(
        addr,
        "/delta",
        "{\"op\":\"set-acl\",\"device\":\"u2\",\"intf\":1,\"dir\":\"in\",\"acl\":\"deny\"}",
    );
    assert!(status.contains("200"), "{status} {body}");
    let resp = parse(&body).unwrap();
    assert_eq!(field(&resp, "status").as_str(), Some("ok"));
    assert_eq!(field(&resp, "ops").as_u64(), Some(1));
    assert_eq!(field(&resp, "touched").as_str(), Some("u2"));
    assert_eq!(field(&resp, "generation").as_u64(), Some(gen_before + 1));
    // u2 is on the only u1->u3 path, so the cached pair is in the cone.
    assert!(field(&resp, "evicted").as_u64().unwrap() > 0);

    let after = parse(&request(addr, REACH)).unwrap();
    assert_eq!(
        field(&after, "verdict").as_str(),
        Some("unsat"),
        "the delta must be visible to the next query"
    );
    assert_eq!(field(&after, "cache_hit").as_bool(), Some(false));

    let health = healthz(addr);
    assert_ne!(
        field(&health, "model").as_str().unwrap(),
        fp_before,
        "healthz must report the new composite fingerprint"
    );
    assert_eq!(
        field(&health, "generation").as_u64(),
        Some(gen_before + 1),
        "each accepted mutation advances the generation exactly once"
    );

    // Cache observability rides along: the delta-eviction counters and
    // the entries gauge are live in /metrics (Prometheus names: dots
    // become underscores, counters gain `_total`).
    let (_, metrics) = http_get(addr, "/metrics");
    for name in [
        "engine_cache_entries",
        "engine_cache_delta_evicted_total",
        "engine_cache_delta_retained_total",
        "engine_cache_hits_total",
        "engine_cache_misses_total",
        "engine_deltas_total",
    ] {
        assert!(
            metrics.contains(name),
            "/metrics missing {name}:\n{metrics}"
        );
    }

    handle.shutdown();
    handle.join();
}

#[test]
fn equal_fingerprint_model_post_is_a_noop_that_keeps_the_cache() {
    noop_model_post_keeps_cache(LoopMode::Threads);
}

#[test]
fn equal_fingerprint_model_post_is_a_noop_that_keeps_the_cache_epoll() {
    noop_model_post_keeps_cache(LoopMode::Epoll);
}

fn noop_model_post_keeps_cache(mode: LoopMode) {
    let fig3 = fig3_text();
    let handle = start(cfg(false, mode), Model::parse(&fig3).unwrap()).unwrap();
    let addr = handle.addr();

    let miss = parse(&request(addr, REACH)).unwrap();
    assert_eq!(field(&miss, "cache_hit").as_bool(), Some(false));
    let hit = parse(&request(addr, REACH)).unwrap();
    assert_eq!(field(&hit, "cache_hit").as_bool(), Some(true));
    let gen_before = field(&healthz(addr), "generation").as_u64().unwrap();

    // The same network, textually reformatted: model identity is the
    // Merkle composite over the *structure*, so this must be a no-op
    // that leaves the warm cache alone.
    let reformatted = format!("# a cosmetic comment\n\n{fig3}\n");
    assert_ne!(reformatted, fig3);
    let (status, body) = http_post(addr, "/model", &reformatted);
    assert!(status.contains("200"), "{status} {body}");
    let resp = parse(&body).unwrap();
    assert_eq!(field(&resp, "swapped").as_bool(), Some(false));
    assert_eq!(field(&resp, "generation").as_u64(), Some(gen_before));

    let still_hit = parse(&request(addr, REACH)).unwrap();
    assert_eq!(
        field(&still_hit, "cache_hit").as_bool(),
        Some(true),
        "a no-op swap must not clear the result cache"
    );

    // A genuinely different model still swaps and clears.
    let blocked = fig3.replace("acl-in deny-dport 5000 6000", "acl-in deny");
    assert_ne!(blocked, fig3);
    let (status, body) = http_post(addr, "/model", &blocked);
    assert!(status.contains("200"), "{status} {body}");
    let resp = parse(&body).unwrap();
    assert_eq!(field(&resp, "swapped").as_bool(), Some(true));
    assert_eq!(field(&resp, "generation").as_u64(), Some(gen_before + 1));
    let after = parse(&request(addr, REACH)).unwrap();
    assert_eq!(field(&after, "verdict").as_str(), Some("unsat"));
    assert_eq!(field(&after, "cache_hit").as_bool(), Some(false));

    handle.shutdown();
    handle.join();
}
