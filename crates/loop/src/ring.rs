//! Bounded lock-free single-producer single-consumer ring.
//!
//! The reactor pushes jobs into one ring per shard and each shard pushes
//! completions back through a second ring, so the hot path never takes a
//! lock: one acquire load + one release store per side (the classic Lamport
//! queue). Capacity is rounded up to a power of two so index wrap is a mask.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Ring<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot to write; owned by the producer, read by the consumer.
    head: AtomicUsize,
    /// Next slot to read; owned by the consumer, read by the producer.
    tail: AtomicUsize,
}

// The slots are only touched by whichever side owns them per the head/tail
// protocol; the atomics publish ownership transfer.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

/// Producer half of an SPSC ring. Not `Clone`: exactly one producer.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
}

/// Consumer half of an SPSC ring. Not `Clone`: exactly one consumer.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
}

/// Create a ring with room for at least `capacity` items.
pub fn spsc<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Ring {
        slots,
        mask: cap - 1,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        Producer {
            ring: Arc::clone(&ring),
        },
        Consumer { ring },
    )
}

impl<T> Producer<T> {
    /// Push an item; returns it back if the ring is full.
    pub fn push(&self, item: T) -> Result<(), T> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        let tail = ring.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) > ring.mask {
            return Err(item);
        }
        unsafe {
            (*ring.slots[head & ring.mask].get()).write(item);
        }
        ring.head.store(head.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Number of items currently queued (approximate from the producer side).
    pub fn len(&self) -> usize {
        let head = self.ring.head.load(Ordering::Relaxed);
        let tail = self.ring.tail.load(Ordering::Acquire);
        head.wrapping_sub(tail)
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Consumer<T> {
    /// Pop the oldest item, if any.
    pub fn pop(&self) -> Option<T> {
        let ring = &*self.ring;
        let tail = ring.tail.load(Ordering::Relaxed);
        let head = ring.head.load(Ordering::Acquire);
        if tail == head {
            return None;
        }
        let item = unsafe { (*ring.slots[tail & ring.mask].get()).assume_init_read() };
        ring.tail.store(tail.wrapping_add(1), Ordering::Release);
        Some(item)
    }

    /// Number of items currently queued (approximate from the consumer side).
    pub fn len(&self) -> usize {
        let tail = self.ring.tail.load(Ordering::Relaxed);
        let head = self.ring.head.load(Ordering::Acquire);
        head.wrapping_sub(tail)
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Both halves are gone; drain whatever is still queued.
        let head = *self.head.get_mut();
        let mut tail = *self.tail.get_mut();
        while tail != head {
            unsafe {
                (*self.slots[tail & self.mask].get()).assume_init_drop();
            }
            tail = tail.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_full_detection() {
        let (tx, rx) = spsc::<u32>(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99));
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
        assert!(rx.is_empty());
    }

    #[test]
    fn cross_thread_stream_arrives_intact() {
        let (tx, rx) = spsc::<u64>(64);
        let n = 100_000u64;
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expect = 0u64;
        while expect < n {
            if let Some(v) = rx.pop() {
                assert_eq!(v, expect);
                expect += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }

    #[test]
    fn unconsumed_items_are_dropped_with_the_ring() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (tx, rx) = spsc::<D>(8);
        assert!(tx.push(D).is_ok());
        assert!(tx.push(D).is_ok());
        assert!(tx.push(D).is_ok());
        drop(rx.pop());
        let before = DROPS.load(Ordering::Relaxed);
        assert_eq!(before, 1);
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::Relaxed), 3);
    }
}
