//! Incremental wire framing for the reactor's two planes.
//!
//! Connections feed raw bytes in as they arrive; the decoders hold partial
//! state across reads so a request split into single-byte TCP segments parses
//! identically to one delivered whole. Both decoders enforce hard caps so a
//! hostile client cannot grow a buffer without bound.

/// Accumulates bytes and yields complete newline-terminated lines (the NDJSON
/// query plane). Lines longer than the cap poison the decoder.
pub struct LineDecoder {
    buf: Vec<u8>,
    /// Bytes before `scan_from` are known newline-free.
    scan_from: usize,
    cap: usize,
    poisoned: bool,
}

/// Default cap on a single NDJSON line (1 MiB).
pub const MAX_LINE_BYTES: usize = 1 << 20;

impl LineDecoder {
    /// New decoder with the default line cap.
    pub fn new() -> LineDecoder {
        LineDecoder::with_cap(MAX_LINE_BYTES)
    }

    /// New decoder with an explicit line cap.
    pub fn with_cap(cap: usize) -> LineDecoder {
        LineDecoder {
            buf: Vec::new(),
            scan_from: 0,
            cap,
            poisoned: false,
        }
    }

    /// Append newly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        if !self.poisoned {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Pop the next complete line (without the terminator), or report that the
    /// line cap was exceeded. `Ok(None)` means "need more bytes".
    pub fn next_line(&mut self) -> Result<Option<String>, LineTooLong> {
        if self.poisoned {
            return Err(LineTooLong);
        }
        match self.buf[self.scan_from..].iter().position(|&b| b == b'\n') {
            Some(rel) => {
                let end = self.scan_from + rel;
                let mut line: Vec<u8> = self.buf.drain(..=end).collect();
                line.pop(); // the \n
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                self.scan_from = 0;
                Ok(Some(String::from_utf8_lossy(&line).into_owned()))
            }
            None => {
                self.scan_from = self.buf.len();
                if self.buf.len() > self.cap {
                    self.poisoned = true;
                    self.buf = Vec::new();
                    return Err(LineTooLong);
                }
                Ok(None)
            }
        }
    }

    /// Whether any partial data is buffered.
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }
}

impl Default for LineDecoder {
    fn default() -> Self {
        LineDecoder::new()
    }
}

/// A single NDJSON line exceeded the cap; the connection should be dropped.
#[derive(Debug, PartialEq, Eq)]
pub struct LineTooLong;

/// Cap on accumulated HTTP header bytes, matching the threads-mode shim.
pub const MAX_HEADER_BYTES: usize = 8 << 10;
/// Cap on an HTTP request body, matching the threads-mode shim.
pub const MAX_BODY_BYTES: usize = 16 << 20;

/// A fully parsed HTTP/1.1 request.
pub struct HttpRequest {
    /// The request line, e.g. `POST /delta HTTP/1.1`.
    pub request_line: String,
    /// Value of Content-Length, if present and parseable.
    pub content_length: Option<usize>,
    /// The request body (empty when no Content-Length).
    pub body: Vec<u8>,
}

/// Decode failures that map to distinct HTTP error responses.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Headers grew past [`MAX_HEADER_BYTES`] → 431.
    HeadersTooLarge,
    /// Declared body is over [`MAX_BODY_BYTES`] → 400.
    BodyTooLarge,
}

enum HttpPhase {
    Headers,
    Body {
        request_line: String,
        content_length: Option<usize>,
    },
    Done,
}

/// Incremental HTTP/1.1 request parser: headers first (bounded), then a
/// Content-Length body (bounded). One request per decoder.
pub struct HttpDecoder {
    buf: Vec<u8>,
    phase: HttpPhase,
}

impl HttpDecoder {
    /// New decoder, optionally seeded with bytes already read while sniffing
    /// the protocol.
    pub fn new(seed: &[u8]) -> HttpDecoder {
        HttpDecoder {
            buf: seed.to_vec(),
            phase: HttpPhase::Headers,
        }
    }

    /// Append newly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Try to complete the request. `Ok(None)` means "need more bytes".
    pub fn poll(&mut self) -> Result<Option<HttpRequest>, HttpError> {
        loop {
            match &mut self.phase {
                HttpPhase::Headers => match find_header_end(&self.buf) {
                    Some(end) => {
                        // The budget applies even when the whole block
                        // arrived in one read: a complete-but-oversized
                        // header block is refused, not served.
                        if end > MAX_HEADER_BYTES {
                            self.phase = HttpPhase::Done;
                            return Err(HttpError::HeadersTooLarge);
                        }
                        let head = String::from_utf8_lossy(&self.buf[..end]).into_owned();
                        let request_line = head.lines().next().unwrap_or("").trim_end().to_string();
                        let content_length = head.lines().skip(1).find_map(|l| {
                            let (name, value) = l.split_once(':')?;
                            if name.trim().eq_ignore_ascii_case("content-length") {
                                value.trim().parse::<usize>().ok()
                            } else {
                                None
                            }
                        });
                        let body_start = end + body_sep_len(&self.buf, end);
                        self.buf.drain(..body_start);
                        if content_length.unwrap_or(0) > MAX_BODY_BYTES {
                            self.phase = HttpPhase::Done;
                            return Err(HttpError::BodyTooLarge);
                        }
                        self.phase = HttpPhase::Body {
                            request_line,
                            content_length,
                        };
                    }
                    None => {
                        if self.buf.len() > MAX_HEADER_BYTES {
                            self.phase = HttpPhase::Done;
                            return Err(HttpError::HeadersTooLarge);
                        }
                        return Ok(None);
                    }
                },
                HttpPhase::Body {
                    request_line,
                    content_length,
                } => {
                    let need = content_length.unwrap_or(0);
                    if self.buf.len() < need {
                        return Ok(None);
                    }
                    let body: Vec<u8> = self.buf.drain(..need).collect();
                    let req = HttpRequest {
                        request_line: std::mem::take(request_line),
                        content_length: *content_length,
                        body,
                    };
                    self.phase = HttpPhase::Done;
                    return Ok(Some(req));
                }
                HttpPhase::Done => return Ok(None),
            }
        }
    }
}

/// Index just past the header block's final line, i.e. the offset of the
/// blank-line separator, searching for `\r\n\r\n` or `\n\n`.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            // Look at what follows this newline.
            if buf.get(i + 1) == Some(&b'\n') {
                return Some(i + 1);
            }
            if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
                return Some(i + 1);
            }
        }
        i += 1;
    }
    None
}

fn body_sep_len(buf: &[u8], end: usize) -> usize {
    if buf.get(end) == Some(&b'\r') {
        2
    } else {
        1
    }
}

/// Outbound byte buffer with a moving read cursor. Bytes are queued with
/// [`WriteBuf::queue`] and pushed to the socket with [`WriteBuf::flush`];
/// consumed prefixes are compacted lazily to avoid O(n²) drains.
pub struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    /// New empty buffer.
    pub fn new() -> WriteBuf {
        WriteBuf {
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Queue bytes for sending.
    pub fn queue(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Unsent byte count.
    pub fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether everything queued has been sent.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Write as much as the sink will take. Returns `Ok(true)` when the
    /// buffer drained completely, `Ok(false)` when bytes remain (EAGAIN).
    pub fn flush(&mut self, w: &mut impl std::io::Write) -> std::io::Result<bool> {
        while self.pos < self.buf.len() {
            match w.write(&self.buf[self.pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            return Ok(true);
        }
        // Compact once the dead prefix dominates, so long-lived connections
        // do not retain every byte ever sent.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(false)
    }
}

impl Default for WriteBuf {
    fn default() -> Self {
        WriteBuf::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_reassemble_across_single_byte_feeds() {
        let mut d = LineDecoder::new();
        for b in b"{\"op\":\"reach\"}\r\nnext" {
            d.feed(&[*b]);
        }
        assert_eq!(
            d.next_line().unwrap().as_deref(),
            Some("{\"op\":\"reach\"}")
        );
        assert_eq!(d.next_line().unwrap(), None);
        assert!(d.has_partial());
        d.feed(b"\n");
        assert_eq!(d.next_line().unwrap().as_deref(), Some("next"));
        assert!(!d.has_partial());
    }

    #[test]
    fn oversized_line_poisons_the_decoder() {
        let mut d = LineDecoder::with_cap(8);
        d.feed(b"0123456789abcdef");
        assert_eq!(d.next_line(), Err(LineTooLong));
        d.feed(b"\n");
        assert_eq!(d.next_line(), Err(LineTooLong));
    }

    #[test]
    fn http_request_with_body_parses_across_fragments() {
        let raw = b"POST /delta HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let mut d = HttpDecoder::new(b"");
        for chunk in raw.chunks(3) {
            d.feed(chunk);
        }
        let req = d.poll().unwrap().unwrap();
        assert_eq!(req.request_line, "POST /delta HTTP/1.1");
        assert_eq!(req.content_length, Some(5));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn http_get_without_body_completes_at_blank_line() {
        let mut d = HttpDecoder::new(b"GET /healthz HTTP/1.1\r\n");
        assert!(d.poll().unwrap().is_none());
        d.feed(b"Host: x\r\n\r\n");
        let req = d.poll().unwrap().unwrap();
        assert_eq!(req.request_line, "GET /healthz HTTP/1.1");
        assert!(req.body.is_empty());
    }

    #[test]
    fn bare_lf_header_separator_is_accepted() {
        let mut d = HttpDecoder::new(b"GET /metrics HTTP/1.1\nHost: x\n\n");
        let req = d.poll().unwrap().unwrap();
        assert_eq!(req.request_line, "GET /metrics HTTP/1.1");
    }

    #[test]
    fn header_cap_and_body_cap_are_distinct_errors() {
        let mut d = HttpDecoder::new(b"GET / HTTP/1.1\r\n");
        d.feed(&vec![b'a'; MAX_HEADER_BYTES + 16]);
        match d.poll() {
            Err(HttpError::HeadersTooLarge) => {}
            other => panic!(
                "expected HeadersTooLarge, got {:?}",
                other.map(|o| o.is_some())
            ),
        }

        // The cap also fires when the oversized block arrives *complete*
        // in one feed — terminator present must not bypass the budget.
        let mut oversized = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        oversized.extend(std::iter::repeat_n(b'a', MAX_HEADER_BYTES));
        oversized.extend_from_slice(b"\r\n\r\n");
        let mut d = HttpDecoder::new(&oversized);
        match d.poll() {
            Err(HttpError::HeadersTooLarge) => {}
            other => panic!(
                "expected HeadersTooLarge on a complete block, got {:?}",
                other.map(|o| o.is_some())
            ),
        }

        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let mut d = HttpDecoder::new(huge.as_bytes());
        match d.poll() {
            Err(HttpError::BodyTooLarge) => {}
            other => panic!(
                "expected BodyTooLarge, got {:?}",
                other.map(|o| o.is_some())
            ),
        }
    }

    #[test]
    fn write_buf_survives_partial_sinks() {
        struct Trickle(Vec<u8>, usize);
        impl std::io::Write for Trickle {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.1 == 0 {
                    self.1 = 1;
                    return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "full"));
                }
                let n = buf.len().min(1);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut wb = WriteBuf::new();
        wb.queue(b"abcdef");
        let mut sink = Trickle(Vec::new(), 0);
        // First flush hits EAGAIN immediately.
        assert!(!wb.flush(&mut sink).unwrap());
        assert_eq!(wb.len(), 6);
        // Subsequent flushes trickle one byte per call.
        while !wb.flush(&mut sink).unwrap() {
            sink.1 = 1;
        }
        assert_eq!(sink.0, b"abcdef");
        assert!(wb.is_empty());
    }
}
