//! Raw Linux syscall bindings for epoll and pipes — no libc.
//!
//! The repo is zero-external-crates, so the reactor talks to the kernel
//! directly: a per-architecture `syscall` shim wraps the `syscall`/`svc 0`
//! instruction and the handful of syscall numbers we need. Everything is
//! gated on [`SUPPORTED`]; on other targets the stubs return
//! `ErrorKind::Unsupported` and callers fall back to the thread-per-connection
//! path.

use std::io;

/// Whether the raw epoll backend is available on this target.
pub const SUPPORTED: bool = cfg!(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
));

/// Readable event (data available / accept ready).
pub const EPOLLIN: u32 = 0x1;
/// Writable event (send buffer has room).
pub const EPOLLOUT: u32 = 0x4;
/// Error condition on the fd.
pub const EPOLLERR: u32 = 0x8;
/// Hangup (peer closed both directions).
pub const EPOLLHUP: u32 = 0x10;
/// Peer closed its write half (half-close detection without a read).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: u64 = 0x80000;
const O_NONBLOCK: u64 = 0x800;
const O_CLOEXEC: u64 = 0x80000;

/// One epoll event as the kernel lays it out. x86_64 uses the packed layout
/// (no padding between `events` and `data`); other architectures use natural
/// alignment, which matches the kernel's non-x86 definition.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// Bitmask of EPOLL* flags.
    pub events: u32,
    /// Caller token, returned verbatim on readiness.
    pub data: u64,
}

impl EpollEvent {
    /// The ready-event bitmask, read by value (the struct may be packed).
    pub fn mask(&self) -> u32 {
        self.events
    }

    /// The registration token, read by value (the struct may be packed).
    pub fn token(&self) -> u64 {
        self.data
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod nr {
    pub const READ: u64 = 0;
    pub const WRITE: u64 = 1;
    pub const CLOSE: u64 = 3;
    pub const EPOLL_WAIT: u64 = 232;
    pub const EPOLL_CTL: u64 = 233;
    pub const EPOLL_CREATE1: u64 = 291;
    pub const PIPE2: u64 = 293;
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod nr {
    pub const EPOLL_CREATE1: u64 = 20;
    pub const EPOLL_CTL: u64 = 21;
    pub const EPOLL_PWAIT: u64 = 22;
    pub const CLOSE: u64 = 57;
    pub const PIPE2: u64 = 59;
    pub const READ: u64 = 63;
    pub const WRITE: u64 = 64;
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
#[inline]
unsafe fn syscall6(n: u64, a: u64, b: u64, c: u64, d: u64, e: u64, f: u64) -> i64 {
    let ret: i64;
    std::arch::asm!(
        "syscall",
        inlateout("rax") n as i64 => ret,
        in("rdi") a,
        in("rsi") b,
        in("rdx") c,
        in("r10") d,
        in("r8") e,
        in("r9") f,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
#[inline]
unsafe fn syscall6(n: u64, a: u64, b: u64, c: u64, d: u64, e: u64, f: u64) -> i64 {
    let ret: i64;
    std::arch::asm!(
        "svc 0",
        in("x8") n,
        inlateout("x0") a as i64 => ret,
        in("x1") b,
        in("x2") c,
        in("x3") d,
        in("x4") e,
        in("x5") f,
        options(nostack),
    );
    ret
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
fn check(ret: i64) -> io::Result<i64> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret)
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::*;
    use std::os::fd::{FromRawFd, OwnedFd, RawFd};

    pub fn epoll_create1() -> io::Result<OwnedFd> {
        let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(unsafe { OwnedFd::from_raw_fd(fd as RawFd) })
    }

    pub fn epoll_ctl(
        epfd: RawFd,
        op: i32,
        fd: RawFd,
        event: Option<&mut EpollEvent>,
    ) -> io::Result<()> {
        let ptr = event.map_or(0u64, |e| e as *mut EpollEvent as u64);
        check(unsafe { syscall6(nr::EPOLL_CTL, epfd as u64, op as u64, fd as u64, ptr, 0, 0) })?;
        Ok(())
    }

    pub fn epoll_wait(
        epfd: RawFd,
        events: &mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<usize> {
        let ret = unsafe {
            #[cfg(target_arch = "x86_64")]
            {
                syscall6(
                    nr::EPOLL_WAIT,
                    epfd as u64,
                    events.as_mut_ptr() as u64,
                    events.len() as u64,
                    timeout_ms as i64 as u64,
                    0,
                    0,
                )
            }
            #[cfg(target_arch = "aarch64")]
            {
                // aarch64 has no plain epoll_wait; epoll_pwait with a NULL
                // sigmask is the same call.
                syscall6(
                    nr::EPOLL_PWAIT,
                    epfd as u64,
                    events.as_mut_ptr() as u64,
                    events.len() as u64,
                    timeout_ms as i64 as u64,
                    0,
                    8, // sigsetsize, ignored when the mask pointer is NULL
                )
            }
        };
        if ret < 0 {
            let err = io::Error::from_raw_os_error(-ret as i32);
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(ret as usize)
    }

    /// Create a nonblocking CLOEXEC pipe pair (read end, write end).
    pub fn pipe2_nonblocking() -> io::Result<(OwnedFd, OwnedFd)> {
        let mut fds = [0i32; 2];
        check(unsafe {
            syscall6(
                nr::PIPE2,
                fds.as_mut_ptr() as u64,
                O_NONBLOCK | O_CLOEXEC,
                0,
                0,
                0,
                0,
            )
        })?;
        Ok(unsafe { (OwnedFd::from_raw_fd(fds[0]), OwnedFd::from_raw_fd(fds[1])) })
    }

    /// Raw `read(2)`; EAGAIN surfaces as `ErrorKind::WouldBlock`.
    pub fn read(fd: RawFd, buf: &mut [u8]) -> io::Result<usize> {
        let ret = check(unsafe {
            syscall6(
                nr::READ,
                fd as u64,
                buf.as_mut_ptr() as u64,
                buf.len() as u64,
                0,
                0,
                0,
            )
        })?;
        Ok(ret as usize)
    }

    /// Raw `write(2)`; EAGAIN surfaces as `ErrorKind::WouldBlock`.
    pub fn write(fd: RawFd, buf: &[u8]) -> io::Result<usize> {
        let ret = check(unsafe {
            syscall6(
                nr::WRITE,
                fd as u64,
                buf.as_ptr() as u64,
                buf.len() as u64,
                0,
                0,
                0,
            )
        })?;
        Ok(ret as usize)
    }

    #[allow(dead_code)]
    pub fn close(fd: RawFd) -> io::Result<()> {
        check(unsafe { syscall6(nr::CLOSE, fd as u64, 0, 0, 0, 0, 0) })?;
        Ok(())
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use super::*;
    use std::os::fd::{OwnedFd, RawFd};

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "raw epoll backend requires linux x86_64/aarch64",
        ))
    }

    pub fn epoll_create1() -> io::Result<OwnedFd> {
        unsupported()
    }
    pub fn epoll_ctl(_: RawFd, _: i32, _: RawFd, _: Option<&mut EpollEvent>) -> io::Result<()> {
        unsupported()
    }
    pub fn epoll_wait(_: RawFd, _: &mut [EpollEvent], _: i32) -> io::Result<usize> {
        unsupported()
    }
    /// Unsupported on this target.
    pub fn pipe2_nonblocking() -> io::Result<(OwnedFd, OwnedFd)> {
        unsupported()
    }
    /// Unsupported on this target.
    pub fn read(_: RawFd, _: &mut [u8]) -> io::Result<usize> {
        unsupported()
    }
    /// Unsupported on this target.
    pub fn write(_: RawFd, _: &[u8]) -> io::Result<usize> {
        unsupported()
    }
    #[allow(dead_code)]
    pub fn close(_: RawFd) -> io::Result<()> {
        unsupported()
    }
}

pub use imp::{pipe2_nonblocking, read, write};

use std::os::fd::{AsRawFd, OwnedFd, RawFd};

/// An epoll instance. Registration is level-triggered; interest is expressed
/// per-fd with an opaque `u64` token that comes back in ready events.
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Create a new epoll instance (CLOEXEC).
    pub fn new() -> io::Result<Epoll> {
        Ok(Epoll {
            fd: imp::epoll_create1()?,
        })
    }

    /// Register `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        imp::epoll_ctl(self.fd.as_raw_fd(), EPOLL_CTL_ADD, fd, Some(&mut ev))
    }

    /// Change the interest mask for an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        imp::epoll_ctl(self.fd.as_raw_fd(), EPOLL_CTL_MOD, fd, Some(&mut ev))
    }

    /// Remove `fd` from the interest set.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        imp::epoll_ctl(self.fd.as_raw_fd(), EPOLL_CTL_DEL, fd, None)
    }

    /// Wait up to `timeout_ms` (-1 = forever) for ready events. EINTR is
    /// reported as zero events so callers just loop.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        imp::epoll_wait(self.fd.as_raw_fd(), events, timeout_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_readability_on_a_socket_pair() {
        if !SUPPORTED {
            return;
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent::default(); 4];
        // Nothing to read yet.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert_ne!(events[0].mask() & EPOLLIN, 0);

        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        ep.modify(server.as_raw_fd(), EPOLLIN | EPOLLOUT, 9)
            .unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 9);
        assert_ne!(events[0].mask() & EPOLLOUT, 0);

        ep.delete(server.as_raw_fd()).unwrap();
        client.write_all(b"more").unwrap();
        assert_eq!(ep.wait(&mut events, 50).unwrap(), 0);
    }

    #[test]
    fn pipe_read_write_round_trips_and_drains_to_eagain() {
        if !SUPPORTED {
            return;
        }
        let (r, w) = pipe2_nonblocking().unwrap();
        assert_eq!(write(w.as_raw_fd(), b"x").unwrap(), 1);
        let mut buf = [0u8; 16];
        assert_eq!(read(r.as_raw_fd(), &mut buf).unwrap(), 1);
        assert_eq!(buf[0], b'x');
        let err = read(r.as_raw_fd(), &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }
}
