//! rzen-loop: zero-dependency epoll reactor primitives.
//!
//! The serve tier's event-loop backend is built from four pieces, all
//! std-only with raw syscalls where std has no surface:
//!
//! * [`sys`] — direct `epoll_create1`/`epoll_ctl`/`epoll_wait` and
//!   `pipe2` via per-architecture inline-asm syscalls (no libc crate).
//! * [`ring`] — bounded lock-free SPSC rings carrying jobs to shards and
//!   completions back.
//! * [`framing`] — incremental NDJSON line and HTTP/1.1 decoders plus a
//!   bounded outbound [`framing::WriteBuf`], all safe against single-byte
//!   delivery.
//! * [`Doorbell`] — a nonblocking self-pipe shards ring to wake the
//!   reactor when completions land (the eventfd pattern, done with
//!   `pipe2` so one primitive covers every kernel we target).

#![warn(missing_docs)]

pub mod framing;
pub mod ring;
pub mod sys;

use std::io;
use std::os::fd::{AsRawFd, OwnedFd, RawFd};

/// Whether the epoll backend can run on this target. When false,
/// [`Doorbell::new`] and [`sys::Epoll::new`] return `Unsupported` and the
/// server falls back to its thread-per-connection mode.
pub const SUPPORTED: bool = sys::SUPPORTED;

/// A wakeup channel built on a nonblocking pipe. Any thread may [`ring`]
/// it; the reactor registers [`read_fd`] for EPOLLIN and [`drain`]s on
/// wakeup. Multiple rings before a drain coalesce into one readable event
/// (the pipe simply holds more bytes), and ringing a full pipe is a no-op —
/// the reactor is already guaranteed to wake.
///
/// [`ring`]: Doorbell::ring
/// [`read_fd`]: Doorbell::read_fd
/// [`drain`]: Doorbell::drain
pub struct Doorbell {
    read: OwnedFd,
    write: OwnedFd,
}

impl Doorbell {
    /// Create the pipe pair (both ends nonblocking, CLOEXEC).
    pub fn new() -> io::Result<Doorbell> {
        let (read, write) = sys::pipe2_nonblocking()?;
        Ok(Doorbell { read, write })
    }

    /// The fd to register for EPOLLIN.
    pub fn read_fd(&self) -> RawFd {
        self.read.as_raw_fd()
    }

    /// Wake the reactor. Never blocks; a full pipe already implies a
    /// pending wakeup, so EAGAIN is ignored.
    pub fn ring(&self) {
        let _ = sys::write(self.write.as_raw_fd(), &[1u8]);
    }

    /// Consume all pending wakeup bytes (call once readable).
    pub fn drain(&self) {
        let mut buf = [0u8; 256];
        loop {
            match sys::read(self.read.as_raw_fd(), &mut buf) {
                Ok(n) if n == buf.len() => continue,
                _ => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doorbell_rings_coalesce_and_drain() {
        if !SUPPORTED {
            return;
        }
        let bell = Doorbell::new().unwrap();
        for _ in 0..10 {
            bell.ring();
        }
        let ep = sys::Epoll::new().unwrap();
        ep.add(bell.read_fd(), sys::EPOLLIN, 1).unwrap();
        let mut events = [sys::EpollEvent::default(); 4];
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        bell.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        bell.ring();
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
    }
}
