//! Regenerate the paper's Table 1: which analyses the IVL can express.
//!
//! For the Zen column, a checkmark is *demonstrated*, not asserted: each
//! of the six analyses runs live on a small network built from the shared
//! models, and the checkmark is printed only if the analysis produced a
//! verified-correct result. The other columns reproduce the paper's
//! claims about prior IVLs for context.
//!
//! Usage: cargo run --release -p rzen-bench --bin table1

use rzen::{FindOptions, TransformerSpace, Zen};
use rzen_net::acl::{Acl, AclRule};
use rzen_net::analyses::{anteater, ap, bonsai, hsa, minesweeper, shapeshifter};
use rzen_net::device::Interface;
use rzen_net::fwd::{FwdRule, FwdTable};
use rzen_net::headers::{Header, HeaderFields, Packet};
use rzen_net::ip::{ip, Prefix};
use rzen_net::routing::{Announcement, BgpNetwork, Clause, RouteMap};
use rzen_net::topology::{Device, Network};

fn line_network() -> Network {
    let mut net = Network::default();
    let table = FwdTable::new(vec![FwdRule {
        prefix: Prefix::ANY,
        port: 2,
    }]);
    let acl = Acl {
        rules: vec![
            AclRule {
                permit: false,
                dst_ports: (22, 22),
                ..AclRule::any(false)
            },
            AclRule::any(true),
        ],
    };
    for i in 0..3 {
        let mut in_intf = Interface::new(1, table.clone());
        if i == 1 {
            in_intf.acl_in = Some(acl.clone());
        }
        net.add_device(Device {
            name: format!("d{i}"),
            interfaces: vec![in_intf, Interface::new(2, table.clone())],
        });
    }
    net.add_duplex(0, 2, 1, 1);
    net.add_duplex(1, 2, 2, 1);
    net
}

fn permit_all() -> RouteMap {
    RouteMap {
        clauses: vec![Clause {
            conds: vec![],
            actions: vec![],
            permit: true,
        }],
    }
}

fn bgp_diamond() -> BgpNetwork {
    let mut n = BgpNetwork::default();
    let origin = Announcement::origin(ip(10, 0, 0, 0), 8, 65000);
    let r0 = n.add_router("r0", Some(origin));
    let r1 = n.add_router("r1", None);
    let r2 = n.add_router("r2", None);
    let r3 = n.add_router("r3", None);
    n.add_adjacency(r0, r1, permit_all(), permit_all());
    n.add_adjacency(r0, r2, permit_all(), permit_all());
    n.add_adjacency(r1, r3, permit_all(), permit_all());
    n.add_adjacency(r2, r3, permit_all(), permit_all());
    n
}

fn check_hsa() -> bool {
    let net = line_network();
    let space = TransformerSpace::new();
    let reach = hsa::reachable_set(&net, &space, 0, 1, 2);
    // Exactly the non-ssh traffic gets through the middle ACL.
    let ssh = space.set_of::<Packet>(|p| {
        rzen_net::headers::routing_header(p)
            .dst_port()
            .eq(Zen::val(22))
    });
    !reach.is_empty() && reach.intersect(&ssh).is_empty()
}

fn check_ap() -> bool {
    let space = TransformerSpace::new();
    let p1 = space.set_of::<Header>(|h| h.dst_port().eq(Zen::val(22)));
    let p2 = space.set_of::<Header>(|h| h.dst_ip().lt(Zen::val(ip(128, 0, 0, 0))));
    let atoms = ap::atomic_predicates(&space, &[p1.clone(), p2.clone()]);
    let l1 = ap::label(&p1, &atoms);
    atoms.len() == 4 && ap::from_label(&space, &l1, &atoms).set_eq(&p1)
}

fn check_anteater() -> bool {
    let net = line_network();
    let w = anteater::reachable(&net, 0, 1, 2, 2);
    let ssh_blocked = anteater::reachable_such_that(&net, 0, 1, 2, 2, |p, out| {
        out.is_some().and(
            rzen_net::headers::routing_header(p)
                .dst_port()
                .eq(Zen::val(22)),
        )
    });
    matches!(w, Some(ref wit) if wit.packet.overlay_header.dst_port != 22) && ssh_blocked.is_none()
}

fn check_minesweeper() -> bool {
    let net = bgp_diamond();
    minesweeper::reachable_under_k_failures(&net, 3, 1, &FindOptions::bdd()).is_ok()
        && minesweeper::reachable_under_k_failures(&net, 3, 2, &FindOptions::bdd()).is_err()
}

fn check_bonsai() -> bool {
    let space = TransformerSpace::new();
    let c = bonsai::compress(&space, &bgp_diamond());
    c.num_classes == 3 && c.class[1] == c.class[2]
}

fn check_shapeshifter() -> bool {
    let table = FwdTable::new(vec![
        FwdRule {
            prefix: Prefix::new(ip(10, 0, 0, 0), 8),
            port: 1,
        },
        FwdRule {
            prefix: Prefix::ANY,
            port: 2,
        },
    ]);
    let known =
        shapeshifter::abstract_ports(&table, &shapeshifter::PartialHeader::dst(ip(10, 1, 1, 1)));
    let unknown = shapeshifter::abstract_ports(&table, &shapeshifter::PartialHeader::default());
    known.contains(&(1, shapeshifter::Verdict::Always))
        && unknown.contains(&(1, shapeshifter::Verdict::Unknown))
}

fn main() {
    // (analysis, [Rosette, Kaplan, Boogie, NV] from the paper's Table 1,
    // live Zen check)
    type Row = (&'static str, [bool; 4], Box<dyn Fn() -> bool>);
    let rows: Vec<Row> = vec![
        ("HSA", [false, false, false, true], Box::new(check_hsa)),
        ("AP", [false, false, false, false], Box::new(check_ap)),
        (
            "Anteater",
            [true, true, true, false],
            Box::new(check_anteater),
        ),
        (
            "Minesweeper",
            [true, true, true, true],
            Box::new(check_minesweeper),
        ),
        (
            "Bonsai",
            [false, false, false, false],
            Box::new(check_bonsai),
        ),
        (
            "Shapeshifter",
            [false, false, false, true],
            Box::new(check_shapeshifter),
        ),
    ];
    println!("Table 1: which IVLs can express example network analyses");
    println!("(prior-IVL columns as reported by the paper; Zen column demonstrated live)\n");
    println!(
        "{:<14} {:^8} {:^8} {:^8} {:^6} {:^6}",
        "Analysis", "Rosette", "Kaplan", "Boogie", "NV", "Zen"
    );
    let mark = |b: bool| if b { "✓" } else { "✗" };
    let mut all = true;
    for (name, prior, check) in rows {
        let (ok, ms) = rzen_bench::time_ms(check);
        all &= ok;
        println!(
            "{:<14} {:^8} {:^8} {:^8} {:^6} {:^6} ({ms:.0} ms)",
            name,
            mark(prior[0]),
            mark(prior[1]),
            mark(prior[2]),
            mark(prior[3]),
            mark(ok)
        );
        rzen::reset_ctx();
    }
    println!(
        "\nZen column: {}",
        if all {
            "all analyses expressed and verified ✓"
        } else {
            "SOME ANALYSES FAILED ✗"
        }
    );
    std::process::exit(if all { 0 } else { 1 });
}
