//! Session vs. fresh throughput: the same batched workload solved with
//! fresh per-query solvers and with long-lived per-worker sessions
//! (incremental SAT via activation literals, a persistent BDD manager,
//! and the cross-query bitblast cache).
//!
//! The workload is built from same-model query *families* — many target
//! lines of one ACL, all-pairs reach+drops over one fabric — because that
//! is what sessions accelerate: the model sub-DAG is compiled once per
//! worker and every later query pays only for its predicate. Verdicts are
//! cross-checked between the two modes on every row.
//!
//! Usage:
//!   cargo run --release -p rzen-bench --bin sessions -- [jobs] [acl_rules] [lines_per_acl]
//!       [--short] [--only BACKEND] [--families acl|fabric|all]
//!       [--gate-smt RATIO] [--profile PATH]
//!
//! `--short` shrinks the workload for CI smoke runs; `--only` restricts to
//! one backend; `--families` restricts to one query-family kind;
//! `--gate-smt R` exits non-zero unless the smt session speedup is ≥ R;
//! `--profile P` writes a folded CPU profile (or a flamegraph if P ends
//! in `.svg`) covering the measured runs.
//!
//! Emits CSV on stdout and into results/session_speedup.csv (skipped in
//! `--short`/`--only` runs, which measure a partial workload).

use std::time::Instant;

use rzen_bench::write_csv;
use rzen_engine::{BatchReport, Engine, EngineConfig, Query, QueryBackend, Verdict};
use rzen_net::gen::{random_acl, spine_leaf};

fn build_queries(acl_rules: usize, lines_per_acl: usize, families: &str) -> Vec<Query> {
    let mut queries = Vec::new();
    if families == "fabric" {
        return fabric_queries(queries);
    }
    // Three ACL families: each family shares one model and probes many
    // lines, so each family's 2nd..nth query can reuse the session.
    for seed in 0..3u64 {
        let acl = random_acl(acl_rules, seed);
        let last = acl.rules.len() as u16;
        for k in 0..lines_per_acl as u16 {
            queries.push(Query::AclFind {
                acl: acl.clone(),
                // Mix satisfiable lines with the unsatisfiable line past
                // the end, so both polarities ride the same session.
                target_line: if k % 4 == 3 { last + 1 } else { last - k },
            });
        }
    }
    if families == "acl" {
        return queries;
    }
    fabric_queries(queries)
}

/// All-pairs reach + drops over one spine-leaf fabric: every query
/// shares the forwarding model.
fn fabric_queries(mut queries: Vec<Query>) -> Vec<Query> {
    let n_spines = 2;
    let n_leaves = 4;
    let net = spine_leaf(n_spines, n_leaves);
    for a in 0..n_leaves {
        for b in 0..n_leaves {
            if a == b {
                continue;
            }
            queries.push(Query::Reach {
                net: net.clone(),
                src: (n_spines + a, 99),
                dst: (n_spines + b, 99),
            });
            queries.push(Query::Drops {
                net: net.clone(),
                src: (n_spines + a, 99),
                dst: (n_spines + b, 99),
            });
        }
    }
    queries
}

fn run(
    queries: &[Query],
    jobs: usize,
    backend: QueryBackend,
    sessions: bool,
) -> (f64, BatchReport) {
    let engine = Engine::new(EngineConfig {
        jobs,
        backend,
        timeout: None,
        cache: false, // measure solver reuse, not result-cache luck
        sessions,
    });
    let t0 = Instant::now();
    let report = engine.run_batch(queries);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    for r in &report.results {
        assert!(
            matches!(r.verdict, Verdict::Sat(_) | Verdict::Unsat),
            "unlimited-budget query must be decisive"
        );
    }
    (ms, report)
}

fn kind(v: &Verdict) -> &'static str {
    match v {
        Verdict::Sat(_) => "sat",
        Verdict::Unsat => "unsat",
        _ => "other",
    }
}

fn main() {
    rzen_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<usize> = Vec::new();
    let mut short = false;
    let mut families = "all".to_string();
    let mut only: Option<String> = None;
    let mut gate_smt: Option<f64> = None;
    let mut profile: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--short" => short = true,
            "--families" => families = it.next().expect("--families needs acl|fabric|all").clone(),
            "--only" => only = Some(it.next().expect("--only needs a backend").clone()),
            "--gate-smt" => {
                gate_smt = Some(
                    it.next()
                        .expect("--gate-smt needs a ratio")
                        .parse()
                        .expect("--gate-smt ratio must be a number"),
                )
            }
            "--profile" => profile = Some(it.next().expect("--profile needs a path").clone()),
            other => positional.push(other.parse().expect("positional args are numbers")),
        }
    }
    let (def_rules, def_lines) = if short { (120, 6) } else { (300, 12) };
    let jobs: usize = positional.first().copied().unwrap_or(2);
    let acl_rules: usize = positional.get(1).copied().unwrap_or(def_rules);
    let lines_per_acl: usize = positional.get(2).copied().unwrap_or(def_lines);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let queries = build_queries(acl_rules, lines_per_acl, &families);
    println!(
        "# Session reuse: {} queries, {} workers, host parallelism {}",
        queries.len(),
        jobs,
        cores
    );
    let header = "backend,mode,ms,speedup,bitblast_hits,sat_carried,bdd_reused";
    println!("{header}");

    // Warm up code paths and the allocator.
    run(&queries, jobs, QueryBackend::Bdd, false);

    if profile.is_some() {
        rzen_obs::profile::reset();
        rzen_obs::profile::start(499);
    }
    let backends: Vec<QueryBackend> = [
        QueryBackend::Bdd,
        QueryBackend::Smt,
        QueryBackend::Portfolio,
    ]
    .into_iter()
    .filter(|b| match only.as_deref() {
        None => true,
        Some("bdd") => *b == QueryBackend::Bdd,
        Some("smt") => *b == QueryBackend::Smt,
        Some("portfolio") => *b == QueryBackend::Portfolio,
        Some(other) => panic!("unknown --only backend: {other}"),
    })
    .collect();
    let mut smt_session_speedup: Option<f64> = None;
    let mut rows = Vec::new();
    for backend in backends {
        let (fresh_ms, fresh) = run(&queries, jobs, backend, false);
        let (sess_ms, sess) = run(&queries, jobs, backend, true);
        if backend == QueryBackend::Smt {
            smt_session_speedup = Some(fresh_ms / sess_ms);
        }
        for (f, s) in fresh.results.iter().zip(&sess.results) {
            assert_eq!(
                kind(&f.verdict),
                kind(&s.verdict),
                "session mode changed a verdict under {backend:?}"
            );
        }
        let name = match backend {
            QueryBackend::Bdd => "bdd",
            QueryBackend::Smt => "smt",
            QueryBackend::Portfolio => "portfolio",
        };
        for (mode, ms, report) in [("fresh", fresh_ms, &fresh), ("session", sess_ms, &sess)] {
            let row = format!(
                "{name},{mode},{ms:.1},{:.2},{},{},{}",
                fresh_ms / ms,
                report.stats.session_bitblast_hits,
                report.stats.session_sat_carried,
                report.stats.session_bdd_reused
            );
            println!("{row}");
            rows.push(row);
        }
        // The reuse the speedup comes from must actually be happening.
        assert!(sess.stats.session_bitblast_hits > 0, "no bitblast reuse");
        if backend != QueryBackend::Bdd {
            assert!(
                sess.stats.session_sat_carried > 0,
                "no learnt-clause carryover"
            );
        }
        if backend != QueryBackend::Smt {
            assert!(sess.stats.session_bdd_reused > 0, "no BDD node reuse");
        }
    }

    if let Some(path) = &profile {
        rzen_obs::profile::stop();
        let folded = rzen_obs::profile::cpu_folded();
        let samples: u64 = folded.iter().map(|(_, n)| n).sum();
        let out = if path.ends_with(".svg") {
            rzen_obs::flame::flamegraph_svg(
                &format!("sessions bench · {samples} span samples"),
                "samples",
                &folded,
            )
        } else {
            rzen_obs::profile::render_folded_cpu()
        };
        std::fs::write(path, out).expect("cannot write profile");
        eprintln!("cpu profile -> {path} ({samples} samples)");
    }

    // Partial runs measure a partial workload; don't overwrite the
    // committed full-workload CSV with them.
    if !short && only.is_none() && families == "all" {
        if let Ok(path) = write_csv("session_speedup.csv", header, &rows) {
            eprintln!("wrote {}", path.display());
        }
    }

    if let Some(gate) = gate_smt {
        let got = smt_session_speedup.expect("--gate-smt requires the smt backend to run");
        if got < gate {
            eprintln!("FAIL: smt session speedup {got:.2}x < gate {gate:.2}x");
            std::process::exit(1);
        }
        eprintln!("gate ok: smt session speedup {got:.2}x >= {gate:.2}x");
    }
}
