//! Closed-loop load generator for the serve layer.
//!
//! Starts an in-process server on a kernel-assigned port, then sweeps
//! client concurrency: each client opens one connection and issues
//! requests back-to-back (closed loop), drawing round-robin from the
//! all-pairs reach/drops query set over the spec's edge ports — the same
//! set `rzen-cli batch` runs. Latency quantiles come from an
//! [`rzen_obs::Histogram`]; before every sweep, the server's verdicts
//! are checked identical to the engine batch path on the same query set.
//!
//! Two modes:
//!
//! - default: sweeps both connection layers (thread-per-connection,
//!   then the epoll reactor) and prints the 8-client comparison — the
//!   reactor's acceptance gate is p99 no worse and qps no lower than
//!   the thread baseline. Writes `results/serve_throughput.csv` with a
//!   leading `mode` column.
//! - `shard-sweep`: sweeps the epoll reactor at 1/2/4 engine shards,
//!   each verdict-gated against batch. Writes
//!   `results/serve_shard_scaling.csv`. On a single-core host the
//!   scaling columns are flat — see KNOWN_FAILURES.md.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rzen_engine::{Engine, EngineConfig, Query, QueryBackend, Verdict};
use rzen_net::spec::Spec;
use rzen_obs::Histogram;
use rzen_serve::{start, LoopMode, Model, ServerConfig, ServerHandle};

const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let shard_sweep = args.iter().any(|a| a == "shard-sweep");
    let per_client: usize = args
        .iter()
        .find(|a| *a != "shard-sweep")
        .map_or(200, |a| a.parse().expect("REQS"));

    let spec_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/fig3.net");
    let text = std::fs::read_to_string(spec_path).expect("spec");
    let model = Model::parse(&text).expect("parse");
    let requests = Arc::new(request_set(&model.spec));
    println!(
        "{} distinct requests over the edge ports of fig3.net",
        requests.len()
    );

    if shard_sweep {
        run_shard_sweep(&text, &requests, per_client);
    } else {
        run_throughput(&text, &requests, per_client);
    }
}

fn serve(text: &str, mode: LoopMode, shards: usize) -> ServerHandle {
    start(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 2,
            backlog: 256,
            timeout: Some(Duration::from_secs(10)),
            sessions: false,
            backend: QueryBackend::Portfolio,
            handle_signals: false,
            debug_ops: false,
            sample_hz: rzen_obs::profile::DEFAULT_SAMPLE_HZ,
            loop_mode: mode,
            shards,
            idle_timeout: None,
        },
        Model::parse(text).expect("parse"),
    )
    .expect("bind")
}

#[derive(Clone, Copy)]
struct Sample {
    clients: usize,
    total: usize,
    qps: f64,
    p50: u64,
    p99: u64,
    shed: usize,
}

/// One client-count sweep against a running server.
fn sweep(addr: SocketAddr, requests: &Arc<Vec<(String, Query)>>, per_client: usize) -> Vec<Sample> {
    let mut out = Vec::new();
    for &clients in &CLIENT_COUNTS {
        let hist = Arc::new(Histogram::new());
        let t0 = Instant::now();
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let hist = hist.clone();
                let requests = requests.clone();
                thread::spawn(move || client_loop(addr, &requests, c, per_client, &hist))
            })
            .collect();
        let mut shed = 0usize;
        for w in workers {
            shed += w.join().expect("client");
        }
        let wall = t0.elapsed().as_secs_f64();
        let total = clients * per_client;
        out.push(Sample {
            clients,
            total,
            qps: total as f64 / wall,
            p50: hist.quantile(0.50),
            p99: hist.quantile(0.99),
            shed,
        });
    }
    out
}

/// Default mode: thread baseline, then the epoll reactor, then the
/// 8-client acceptance comparison.
fn run_throughput(text: &str, requests: &Arc<Vec<(String, Query)>>, per_client: usize) {
    let mut rows = Vec::new();
    let mut at8 = Vec::new();
    for (name, mode) in [("threads", LoopMode::Threads), ("epoll", LoopMode::Epoll)] {
        let handle = serve(text, mode, 0);
        let addr = handle.addr();
        println!("[{name}] server on {addr}");
        verify_against_batch(addr, requests);
        for s in sweep(addr, requests, per_client) {
            println!(
                "[{name}] clients={:<2} requests={:<5} qps={:>8.0} p50={:>6}us p99={:>6}us shed={}",
                s.clients, s.total, s.qps, s.p50, s.p99, s.shed
            );
            if s.clients == 8 {
                at8.push(s);
            }
            rows.push(format!(
                "{name},{},{},{:.1},{},{},{}",
                s.clients, s.total, s.qps, s.p50, s.p99, s.shed
            ));
        }
        handle.shutdown();
        handle.join();
    }

    // The reactor's bar: at 8 clients it must not regress the thread
    // baseline on either axis. Printed, not asserted — on a loaded or
    // single-core host the numbers carry noise (KNOWN_FAILURES.md §3).
    let (t8, e8) = (at8[0], at8[1]);
    let verdict = if e8.qps >= t8.qps && e8.p99 <= t8.p99 {
        "PASS"
    } else {
        "FAIL"
    };
    println!(
        "epoll vs threads @8 clients: qps {:.0} vs {:.0}, p99 {}us vs {}us -> {verdict}",
        e8.qps, t8.qps, e8.p99, t8.p99
    );

    let path = rzen_bench::write_csv(
        "serve_throughput.csv",
        "mode,clients,requests,qps,p50_us,p99_us,shed",
        &rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
}

/// `shard-sweep` mode: the epoll reactor at 1/2/4 engine shards, each
/// run verdict-gated against the batch path.
fn run_shard_sweep(text: &str, requests: &Arc<Vec<(String, Query)>>, per_client: usize) {
    let mut rows = Vec::new();
    for &shards in &[1usize, 2, 4] {
        let handle = serve(text, LoopMode::Epoll, shards);
        let addr = handle.addr();
        println!("[shards={shards}] server on {addr}");
        verify_against_batch(addr, requests);
        for s in sweep(addr, requests, per_client) {
            println!(
                "[shards={shards}] clients={:<2} requests={:<5} qps={:>8.0} p50={:>6}us p99={:>6}us shed={}",
                s.clients, s.total, s.qps, s.p50, s.p99, s.shed
            );
            rows.push(format!(
                "{shards},{},{},{:.1},{},{},{}",
                s.clients, s.total, s.qps, s.p50, s.p99, s.shed
            ));
        }
        handle.shutdown();
        handle.join();
    }
    let path = rzen_bench::write_csv(
        "serve_shard_scaling.csv",
        "shards,clients,requests,qps,p50_us,p99_us,shed",
        &rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
}

/// All-pairs reach + drops request lines over the spec's edge ports —
/// the same query set `rzen-cli batch` runs.
fn request_set(spec: &Spec) -> Vec<(String, Query)> {
    let edges = spec.edge_ports();
    let mut out = Vec::new();
    for &src in &edges {
        for &dst in &edges {
            if src == dst {
                continue;
            }
            let (s, d) = (spec.endpoint_name(src), spec.endpoint_name(dst));
            out.push((
                format!("{{\"op\":\"reach\",\"src\":\"{s}\",\"dst\":\"{d}\"}}"),
                Query::Reach {
                    net: spec.net.clone(),
                    src,
                    dst,
                },
            ));
            out.push((
                format!("{{\"op\":\"drops\",\"src\":\"{s}\",\"dst\":\"{d}\"}}"),
                Query::Drops {
                    net: spec.net.clone(),
                    src,
                    dst,
                },
            ));
        }
    }
    out
}

/// The acceptance gate: the server must answer the query set with
/// verdicts identical to the engine batch path (what `rzen-cli batch`
/// prints).
fn verify_against_batch(addr: SocketAddr, requests: &[(String, Query)]) {
    let engine = Engine::new(EngineConfig {
        jobs: 2,
        backend: QueryBackend::Portfolio,
        timeout: Some(Duration::from_secs(10)),
        cache: true,
        sessions: false,
    });
    let queries: Vec<Query> = requests.iter().map(|(_, q)| q.clone()).collect();
    let report = engine.run_batch(&queries);
    let batch: Vec<&str> = report
        .results
        .iter()
        .map(|r| verdict_str(&r.verdict))
        .collect();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut served = Vec::new();
    for (line, _) in requests {
        stream.write_all(format!("{line}\n").as_bytes()).unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("response");
        let v = rzen_obs::json::parse(resp.trim())
            .expect("valid response json")
            .get("verdict")
            .and_then(|v| v.as_str().map(str::to_string))
            .expect("verdict member");
        served.push(v);
    }
    assert_eq!(
        served, batch,
        "server verdicts must be identical to the batch path"
    );
    println!(
        "verdict equivalence: {} served verdicts match the batch path",
        served.len()
    );
}

fn verdict_str(v: &Verdict) -> &'static str {
    match v {
        Verdict::Sat(_) => "sat",
        Verdict::Unsat => "unsat",
        Verdict::Timeout => "timeout",
        Verdict::Cancelled => "cancelled",
        Verdict::Error(_) => "error",
    }
}

/// One closed-loop client: `n` requests back-to-back on one connection.
/// Returns how many were shed (`overloaded`).
fn client_loop(
    addr: SocketAddr,
    requests: &[(String, Query)],
    seed: usize,
    n: usize,
    hist: &Histogram,
) -> usize {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut shed = 0;
    for i in 0..n {
        // Stagger clients over the request set so identical concurrent
        // queries (and thus coalescing + cache hits) occur naturally.
        let (line, _) = &requests[(seed + i) % requests.len()];
        let t0 = Instant::now();
        writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("response");
        hist.observe(t0.elapsed().as_micros() as u64);
        if resp.contains("\"error\":\"overloaded\"") {
            shed += 1;
        }
    }
    shed
}
