//! Closed-loop load generator for the serve layer.
//!
//! Starts an in-process server on a kernel-assigned port, then sweeps
//! client concurrency: each client opens one connection and issues
//! requests back-to-back (closed loop), drawing round-robin from the
//! all-pairs reach/drops query set over the spec's edge ports — the same
//! set `rzen-cli batch` runs. Latency quantiles come from an
//! [`rzen_obs::Histogram`]; before the sweep, the server's verdicts are
//! checked identical to the engine batch path on the same query set.
//!
//! Writes `results/serve_throughput.csv`.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rzen_engine::{Engine, EngineConfig, Query, QueryBackend, Verdict};
use rzen_net::spec::Spec;
use rzen_obs::Histogram;
use rzen_serve::{start, Model, ServerConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let per_client: usize = args.first().map_or(200, |a| a.parse().expect("REQS"));

    let spec_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/fig3.net");
    let text = std::fs::read_to_string(spec_path).expect("spec");
    let model = Model::parse(&text).expect("parse");
    let requests = Arc::new(request_set(&model.spec));
    println!(
        "{} distinct requests over the edge ports of fig3.net",
        requests.len()
    );

    let handle = start(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 2,
            backlog: 256,
            timeout: Some(Duration::from_secs(10)),
            sessions: false,
            backend: QueryBackend::Portfolio,
            handle_signals: false,
            debug_ops: false,
            sample_hz: rzen_obs::profile::DEFAULT_SAMPLE_HZ,
        },
        model,
    )
    .expect("bind");
    let addr = handle.addr();
    println!("server on {addr}");

    verify_against_batch(addr, &text, &requests);

    let mut rows = Vec::new();
    for &clients in &[1usize, 2, 4, 8] {
        let hist = Arc::new(Histogram::new());
        let t0 = Instant::now();
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let hist = hist.clone();
                let requests = requests.clone();
                thread::spawn(move || client_loop(addr, &requests, c, per_client, &hist))
            })
            .collect();
        let mut shed = 0usize;
        for w in workers {
            shed += w.join().expect("client");
        }
        let wall = t0.elapsed().as_secs_f64();
        let total = clients * per_client;
        let qps = total as f64 / wall;
        let p50 = hist.quantile(0.50);
        let p99 = hist.quantile(0.99);
        println!(
            "clients={clients:<2} requests={total:<5} qps={qps:>8.0} p50={p50:>6}us p99={p99:>6}us shed={shed}"
        );
        rows.push(format!("{clients},{total},{qps:.1},{p50},{p99},{shed}"));
    }

    handle.shutdown();
    handle.join();

    let path = rzen_bench::write_csv(
        "serve_throughput.csv",
        "clients,requests,qps,p50_us,p99_us,shed",
        &rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
}

/// All-pairs reach + drops request lines over the spec's edge ports —
/// the same query set `rzen-cli batch` runs.
fn request_set(spec: &Spec) -> Vec<(String, Query)> {
    let edges = spec.edge_ports();
    let mut out = Vec::new();
    for &src in &edges {
        for &dst in &edges {
            if src == dst {
                continue;
            }
            let (s, d) = (spec.endpoint_name(src), spec.endpoint_name(dst));
            out.push((
                format!("{{\"op\":\"reach\",\"src\":\"{s}\",\"dst\":\"{d}\"}}"),
                Query::Reach {
                    net: spec.net.clone(),
                    src,
                    dst,
                },
            ));
            out.push((
                format!("{{\"op\":\"drops\",\"src\":\"{s}\",\"dst\":\"{d}\"}}"),
                Query::Drops {
                    net: spec.net.clone(),
                    src,
                    dst,
                },
            ));
        }
    }
    out
}

/// The acceptance gate: the server must answer the query set with
/// verdicts identical to the engine batch path (what `rzen-cli batch`
/// prints).
fn verify_against_batch(addr: SocketAddr, _spec_text: &str, requests: &[(String, Query)]) {
    let engine = Engine::new(EngineConfig {
        jobs: 2,
        backend: QueryBackend::Portfolio,
        timeout: Some(Duration::from_secs(10)),
        cache: true,
        sessions: false,
    });
    let queries: Vec<Query> = requests.iter().map(|(_, q)| q.clone()).collect();
    let report = engine.run_batch(&queries);
    let batch: Vec<&str> = report
        .results
        .iter()
        .map(|r| verdict_str(&r.verdict))
        .collect();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut served = Vec::new();
    for (line, _) in requests {
        stream.write_all(format!("{line}\n").as_bytes()).unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("response");
        let v = rzen_obs::json::parse(resp.trim())
            .expect("valid response json")
            .get("verdict")
            .and_then(|v| v.as_str().map(str::to_string))
            .expect("verdict member");
        served.push(v);
    }
    assert_eq!(
        served, batch,
        "server verdicts must be identical to the batch path"
    );
    println!(
        "verdict equivalence: {} served verdicts match the batch path: {:?}",
        served.len(),
        served
    );
}

fn verdict_str(v: &Verdict) -> &'static str {
    match v {
        Verdict::Sat(_) => "sat",
        Verdict::Unsat => "unsat",
        Verdict::Timeout => "timeout",
        Verdict::Cancelled => "cancelled",
        Verdict::Error(_) => "error",
    }
}

/// One closed-loop client: `n` requests back-to-back on one connection.
/// Returns how many were shed (`overloaded`).
fn client_loop(
    addr: SocketAddr,
    requests: &[(String, Query)],
    seed: usize,
    n: usize,
    hist: &Histogram,
) -> usize {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut shed = 0;
    for i in 0..n {
        // Stagger clients over the request set so identical concurrent
        // queries (and thus coalescing + cache hits) occur naturally.
        let (line, _) = &requests[(seed + i) % requests.len()];
        let t0 = Instant::now();
        writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("response");
        hist.observe(t0.elapsed().as_micros() as u64);
        if resp.contains("\"error\":\"overloaded\"") {
            shed += 1;
        }
    }
    shed
}
