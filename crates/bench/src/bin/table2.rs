//! Regenerate the paper's Table 2: lines of code to express common
//! network functionality in the IVL, next to what existing monolithic
//! tools need for the same functionality.
//!
//! The counts are measured from the actual sources: each component's
//! semantic core is delimited by `ZEN-LOC-BEGIN(<name>)` /
//! `ZEN-LOC-END(<name>)` markers in `rzen-net`, and this binary counts
//! the non-blank, non-comment, non-attribute lines in between.
//!
//! Usage: cargo run --release -p rzen-bench --bin table2

use std::path::PathBuf;

struct Component {
    name: &'static str,
    marker: &'static str,
    files: &'static [&'static str],
    paper_zen: u32,
    existing: &'static str,
}

const COMPONENTS: &[Component] = &[
    Component {
        name: "Access Control Lists",
        marker: "acl",
        files: &["acl.rs"],
        paper_zen: 28,
        existing: ">500 (Batfish)",
    },
    Component {
        name: "LPM-based Forwarding",
        marker: "fwd",
        files: &["fwd.rs"],
        paper_zen: 18,
        existing: ">900 (HSA)",
    },
    Component {
        name: "Route Map Filters",
        marker: "route_map",
        files: &["routing/route_map.rs"],
        paper_zen: 75,
        existing: ">1000 (Minesweeper, Bonsai)",
    },
    Component {
        name: "IP GRE tunnels",
        marker: "gre",
        files: &["gre.rs", "ip.rs"],
        paper_zen: 21,
        existing: "-",
    },
];

/// Count code lines between the markers: skips blanks, comment-only
/// lines, and doc comments, so the number reflects executable model code
/// the way the paper counts it.
fn count_marked(src: &str, marker: &str) -> u32 {
    let begin = format!("ZEN-LOC-BEGIN({marker})");
    let end = format!("ZEN-LOC-END({marker})");
    let mut counting = false;
    let mut count = 0;
    for line in src.lines() {
        if line.contains(&begin) {
            counting = true;
            continue;
        }
        if line.contains(&end) {
            counting = false;
            continue;
        }
        if !counting {
            continue;
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with("//") || t.starts_with("#[") {
            continue;
        }
        count += 1;
    }
    count
}

fn net_src_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../net/src")
}

fn main() {
    println!("Table 2: lines of code to express common network functionality");
    println!("(measured from this repository's sources; paper numbers for reference)\n");
    println!(
        "{:<24} {:>12} {:>11}   Existing systems",
        "Network Component", "rzen lines", "paper Zen"
    );
    let dir = net_src_dir();
    let mut ok = true;
    for c in COMPONENTS {
        let mut lines = 0;
        for f in c.files {
            let path = dir.join(f);
            let src = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            lines += count_marked(&src, c.marker);
        }
        // Same order of magnitude as the paper (within 2x) counts as a
        // successful reproduction of the expressiveness claim.
        let comparable = lines > 0 && lines <= c.paper_zen * 2;
        ok &= comparable;
        println!(
            "{:<24} {:>12} {:>11}   {}{}",
            c.name,
            lines,
            c.paper_zen,
            c.existing,
            if comparable { "" } else { "   <-- OUT OF BAND" }
        );
    }
    println!(
        "\n{}",
        if ok {
            "all components within 2x of the paper's Zen line counts ✓"
        } else {
            "SOME COMPONENTS OUT OF BAND ✗"
        }
    );
    std::process::exit(if ok { 0 } else { 1 });
}
