//! Incremental-delta speedup benchmark.
//!
//! For a sweep of spine-leaf fabric sizes, measures what one-line model
//! churn costs a live server two ways: a full `POST /model` hot-swap of
//! the equivalent patched spec (clears the result cache) versus a
//! `POST /delta` carrying the single ACL op (evicts only the changed
//! leaf's cone of influence). The cost metric is how many of the
//! all-pairs reach/drops queries have to actually re-solve afterwards,
//! plus the wall-clock of re-answering the full set; both paths must
//! produce identical verdicts or the run aborts.
//!
//! Writes `results/delta_speedup.csv`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use rzen_engine::QueryBackend;
use rzen_net::{gen, spec};
use rzen_serve::{start, Model, ServerConfig};

/// The one-line change under test: a telnet filter on leaf1's host port.
const DELTA_OP: &str =
    "{\"op\":\"set-acl\",\"device\":\"leaf1\",\"intf\":99,\"dir\":\"in\",\"acl\":\"deny-dport 23 23\"}";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let leaves: Vec<usize> = if args.is_empty() {
        vec![4, 8, 12]
    } else {
        args.iter().map(|a| a.parse().expect("LEAVES")).collect()
    };

    let mut rows = Vec::new();
    for &n_leaves in &leaves {
        rows.push(run_size(2, n_leaves));
    }

    let path = rzen_bench::write_csv(
        "delta_speedup.csv",
        "spec,spines,leaves,queries,resolves_full,wall_full_ms,resolves_delta,wall_delta_ms,resolve_ratio,wall_speedup",
        &rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
}

fn run_size(n_spines: usize, n_leaves: usize) -> String {
    let base = spec::Spec::from_network(gen::spine_leaf(n_spines, n_leaves)).expect("spec");
    let base_text = spec::serialize(&base).expect("serialize");

    // The full-swap arm posts the *equivalent* patched spec: same change,
    // expressed as a whole model.
    let ops = rzen_delta::parse_ops(DELTA_OP).expect("ops");
    let mut patched = base.clone();
    rzen_delta::apply_all(&mut patched, &ops).expect("apply");
    let patched_text = spec::serialize(&patched).expect("serialize patched");

    let handle = start(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 2,
            backlog: 1024,
            timeout: Some(Duration::from_secs(60)),
            sessions: false,
            backend: QueryBackend::Portfolio,
            handle_signals: false,
            debug_ops: false,
            sample_hz: rzen_obs::profile::DEFAULT_SAMPLE_HZ,
            loop_mode: rzen_serve::LoopMode::Threads,
            shards: 0,
            idle_timeout: None,
        },
        Model::parse(&base_text).expect("model"),
    )
    .expect("bind");
    let addr = handle.addr();

    let requests = request_set(&base);
    let n = requests.len();

    // Arm 1: warm cache, full hot-swap, re-answer everything.
    run_set(addr, &requests); // warm
    post(addr, "/model", &patched_text);
    let t0 = Instant::now();
    let (full_verdicts, resolves_full) = run_set(addr, &requests);
    let wall_full = t0.elapsed().as_secs_f64() * 1e3;

    // Arm 2: restore, re-warm, one-line delta, re-answer everything.
    post(addr, "/model", &base_text);
    run_set(addr, &requests); // re-warm
    post(addr, "/delta", DELTA_OP);
    let t0 = Instant::now();
    let (delta_verdicts, resolves_delta) = run_set(addr, &requests);
    let wall_delta = t0.elapsed().as_secs_f64() * 1e3;

    handle.shutdown();
    handle.join();

    assert_eq!(
        full_verdicts, delta_verdicts,
        "spine_leaf({n_spines},{n_leaves}): delta and full swap must agree on every verdict"
    );
    assert!(resolves_delta > 0, "the delta must invalidate something");

    let ratio = resolves_full as f64 / resolves_delta as f64;
    let speedup = wall_full / wall_delta;
    println!(
        "spine_leaf({n_spines},{n_leaves}): {n} queries | full swap re-solves {resolves_full} in {wall_full:.0}ms | \
         delta re-solves {resolves_delta} in {wall_delta:.0}ms | {ratio:.1}x fewer re-solves, {speedup:.1}x wall"
    );
    format!(
        "spine_leaf,{n_spines},{n_leaves},{n},{resolves_full},{wall_full:.1},{resolves_delta},{wall_delta:.1},{ratio:.2},{speedup:.2}"
    )
}

/// All-pairs reach + drops over the fabric's host ports.
fn request_set(spec: &spec::Spec) -> Vec<String> {
    let edges = spec.edge_ports();
    let mut out = Vec::new();
    for &src in &edges {
        for &dst in &edges {
            if src == dst {
                continue;
            }
            let (s, d) = (spec.endpoint_name(src), spec.endpoint_name(dst));
            out.push(format!(
                "{{\"op\":\"reach\",\"src\":\"{s}\",\"dst\":\"{d}\"}}"
            ));
            out.push(format!(
                "{{\"op\":\"drops\",\"src\":\"{s}\",\"dst\":\"{d}\"}}"
            ));
        }
    }
    out
}

/// Send every request on one connection; return the verdicts and how many
/// were real re-solves (not answered from the result cache).
fn run_set(addr: SocketAddr, requests: &[String]) -> (Vec<String>, usize) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut verdicts = Vec::with_capacity(requests.len());
    let mut resolves = 0usize;
    for line in requests {
        writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("response");
        let v = rzen_obs::json::parse(resp.trim()).expect("response json");
        let verdict = v
            .get("verdict")
            .and_then(|x| x.as_str().map(str::to_string))
            .unwrap_or_else(|| panic!("no verdict in {resp}"));
        if v.get("cache_hit").and_then(|x| x.as_bool()) != Some(true) {
            resolves += 1;
        }
        verdicts.push(verdict);
    }
    (verdicts, resolves)
}

/// One-shot HTTP POST; panics unless the server answers 200.
fn post(addr: SocketAddr, path: &str, body: &str) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!(
                "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("http response");
    let status = raw.lines().next().unwrap_or("");
    assert!(status.contains("200"), "POST {path} failed: {raw}");
}
