//! Regenerate the paper's Fig. 10: verification time vs. model size.
//!
//! Left plot: "time to verify an ACL (a data plane analysis) […] find
//! inputs that match the last line, which requires analyzing the complete
//! ACL", for Zen-BDD, Zen-SMT, and the hand-optimized baseline (the
//! paper's Batfish line).
//!
//! Right plot: the same query against route maps (a control plane
//! analysis), for Zen-BDD and Zen-SMT ("Batfish currently does not
//! support verification of route maps").
//!
//! Usage:
//!   cargo run --release -p rzen-bench --bin fig10 -- acl \[reps\]
//!   cargo run --release -p rzen-bench --bin fig10 -- routemap \[reps\]
//!   cargo run --release -p rzen-bench --bin fig10 -- all \[reps\]
//!
//! Emits CSV on stdout and into results/fig10_{acl,routemap}.csv.

use rzen::{FindOptions, Zen, ZenFunction};
use rzen_baselines::AclVerifier;
use rzen_bench::{mean_ms, write_csv};
use rzen_net::gen::{random_acl, random_route_map};

const ACL_SIZES: [usize; 7] = [1000, 2500, 5000, 7500, 10000, 12500, 15000];
const RM_SIZES: [usize; 5] = [20, 40, 60, 80, 100];

fn acl_series(reps: usize) {
    println!("# Fig. 10 (left): ACL verification — find a packet matching the last line");
    let header = "lines,zen_bdd_ms,zen_smt_ms,baseline_ms";
    println!("{header}");
    let mut rows = Vec::new();
    for &n in &ACL_SIZES {
        let acl = random_acl(n, 7);
        let last = acl.rules.len() as u16;

        let a = acl.clone();
        let bdd = mean_ms(reps, || {
            let model = a.clone();
            let f = ZenFunction::new(move |h| model.matched_line(h));
            let w = f.find(|_, line| line.eq(Zen::val(last)), &FindOptions::bdd());
            assert!(w.is_some());
        });

        let a = acl.clone();
        let smt = mean_ms(reps, || {
            let model = a.clone();
            let f = ZenFunction::new(move |h| model.matched_line(h));
            let w = f.find(|_, line| line.eq(Zen::val(last)), &FindOptions::smt());
            assert!(w.is_some());
        });

        let a = acl.clone();
        let base = mean_ms(reps, || {
            let mut v = AclVerifier::new(&a);
            assert!(v.find_first_match(last as usize - 1).is_some());
        });

        let row = format!("{n},{bdd:.2},{smt:.2},{base:.2}");
        println!("{row}");
        rows.push(row);
    }
    let path = write_csv("fig10_acl.csv", header, &rows).expect("write csv");
    eprintln!("wrote {}", path.display());
}

fn routemap_series(reps: usize) {
    println!("# Fig. 10 (right): route-map verification — find an announcement deciding at the last clause");
    let header = "clauses,zen_bdd_ms,zen_smt_ms";
    println!("{header}");
    let mut rows = Vec::new();
    for &n in &RM_SIZES {
        let rm = random_route_map(n, 3);
        let last = rm.clauses.len() as u16;

        let r = rm.clone();
        let bdd = mean_ms(reps, || {
            let model = r.clone();
            let f = ZenFunction::new(move |a| model.matched_clause(a));
            let w = f.find(
                |_, line| line.eq(Zen::val(last)),
                &FindOptions::bdd().with_list_bound(4),
            );
            assert!(w.is_some());
        });

        let r = rm.clone();
        let smt = mean_ms(reps, || {
            let model = r.clone();
            let f = ZenFunction::new(move |a| model.matched_clause(a));
            let w = f.find(
                |_, line| line.eq(Zen::val(last)),
                &FindOptions::smt().with_list_bound(4),
            );
            assert!(w.is_some());
        });

        let row = format!("{n},{bdd:.2},{smt:.2}");
        println!("{row}");
        rows.push(row);
    }
    let path = write_csv("fig10_routemap.csv", header, &rows).expect("write csv");
    eprintln!("wrote {}", path.display());
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let reps: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    match mode.as_str() {
        "acl" => acl_series(reps),
        "routemap" => routemap_series(reps),
        "all" => {
            acl_series(reps);
            println!();
            routemap_series(reps);
        }
        other => {
            eprintln!("unknown mode {other}; use acl | routemap | all");
            std::process::exit(2);
        }
    }
}
