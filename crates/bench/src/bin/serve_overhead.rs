//! Interleaved overhead study: tracing × profiling on the serve path.
//!
//! One in-process server, three arms measured round-robin within every
//! round so background-load drift hits all arms alike:
//!
//! * `base`    — tracing off, profiler off (the always-on flight
//!   recorder and metrics stay on; they are part of the baseline)
//! * `trace`   — span recording enabled (`RZEN_TRACE=1` equivalent)
//! * `profile` — the span-stack sampler running at 99 Hz with heap
//!   attribution (the counting allocator is installed in this binary,
//!   as it is in `rzen-cli`)
//!
//! The arm order flips every round, and each cell keeps its best qps /
//! lowest quantiles across rounds (best-of-N: the host has multi-second
//! background-load drift, so "each arm's quietest window" is the usable
//! estimator — same methodology as the PR 7 study). Writes
//! `results/serve_overhead.csv`.
//!
//! ```text
//! serve_overhead [PER_CLIENT] [ROUNDS]     # defaults 3000, 7
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rzen_engine::QueryBackend;
use rzen_net::spec::Spec;
use rzen_obs::Histogram;
use rzen_serve::{start, Model, ServerConfig};

/// The profiler arm must pay the realistic allocator cost, exactly as
/// the shipped binaries do.
#[global_allocator]
static ALLOC: rzen_obs::CountingAlloc = rzen_obs::CountingAlloc;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Arm {
    Base,
    Trace,
    Profile,
}

impl Arm {
    const ALL: [Arm; 3] = [Arm::Base, Arm::Trace, Arm::Profile];

    fn name(self) -> &'static str {
        match self {
            Arm::Base => "base",
            Arm::Trace => "trace",
            Arm::Profile => "profile",
        }
    }

    fn set(self) {
        match self {
            Arm::Base => {}
            Arm::Trace => rzen_obs::trace::set_enabled(true),
            Arm::Profile => {
                rzen_obs::profile::reset();
                rzen_obs::profile::start(rzen_obs::profile::DEFAULT_SAMPLE_HZ);
            }
        }
    }

    fn clear(self) {
        match self {
            Arm::Base => {}
            Arm::Trace => {
                rzen_obs::trace::set_enabled(false);
                rzen_obs::trace::clear();
            }
            Arm::Profile => {
                rzen_obs::profile::stop();
            }
        }
    }
}

/// One arm's best observation for one client count.
#[derive(Clone, Copy)]
struct Cell {
    qps: f64,
    p50: u64,
    p99: u64,
}

impl Default for Cell {
    fn default() -> Self {
        Cell {
            qps: 0.0,
            p50: u64::MAX,
            p99: u64::MAX,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let per_client: usize = args
        .first()
        .map_or(3000, |a| a.parse().expect("PER_CLIENT"));
    let rounds: usize = args.get(1).map_or(7, |a| a.parse().expect("ROUNDS"));
    let client_counts = [1usize, 2, 4, 8];

    let spec_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/fig3.net");
    let text = std::fs::read_to_string(spec_path).expect("spec");
    let model = Model::parse(&text).expect("parse");
    let requests = Arc::new(request_set(&model.spec));

    let handle = start(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 2,
            backlog: 256,
            timeout: Some(Duration::from_secs(10)),
            sessions: false,
            backend: QueryBackend::Portfolio,
            handle_signals: false,
            debug_ops: false,
            sample_hz: rzen_obs::profile::DEFAULT_SAMPLE_HZ,
            loop_mode: rzen_serve::LoopMode::Threads,
            shards: 0,
            idle_timeout: None,
        },
        model,
    )
    .expect("bind");
    let addr = handle.addr();
    println!(
        "server on {addr}; {} requests over fig3.net edge ports; \
         {rounds} rounds x {} clients x {per_client} req/client x 3 arms",
        requests.len(),
        client_counts.len()
    );

    // best[clients-index][arm-index]
    let mut best = vec![[Cell::default(); 3]; client_counts.len()];
    for round in 0..rounds {
        // Flip the arm order every round so slow drift (thermal,
        // background load) cannot systematically favor one arm.
        let mut order = Arm::ALL;
        if round % 2 == 1 {
            order.reverse();
        }
        for &arm in &order {
            arm.set();
            for (ci, &clients) in client_counts.iter().enumerate() {
                let (qps, p50, p99) = measure(addr, &requests, clients, per_client);
                let cell = &mut best[ci][arm as usize];
                cell.qps = cell.qps.max(qps);
                cell.p50 = cell.p50.min(p50);
                cell.p99 = cell.p99.min(p99);
                println!(
                    "round={round} arm={:<7} clients={clients} qps={qps:>8.0} \
                     p50={p50:>5}us p99={p99:>5}us",
                    arm.name()
                );
            }
            arm.clear();
        }
    }

    handle.shutdown();
    handle.join();

    let mut rows = Vec::new();
    for (ci, &clients) in client_counts.iter().enumerate() {
        let [base, trace, profile] = best[ci];
        rows.push(format!(
            "{clients},{},{rounds},{:.0},{},{},{:.0},{},{},{:.0},{},{},{:.3},{:.3},{:.3},{:.3}",
            clients * per_client,
            base.qps,
            base.p50,
            base.p99,
            trace.qps,
            trace.p50,
            trace.p99,
            profile.qps,
            profile.p50,
            profile.p99,
            trace.qps / base.qps,
            profile.qps / base.qps,
            base.p50 as f64 / profile.p50.max(1) as f64,
            base.p99 as f64 / profile.p99.max(1) as f64,
        ));
    }
    let path = rzen_bench::write_csv(
        "serve_overhead.csv",
        "clients,requests,rounds,base_qps,base_p50_us,base_p99_us,\
         trace_qps,trace_p50_us,trace_p99_us,profile_qps,profile_p50_us,profile_p99_us,\
         trace_qps_ratio,profile_qps_ratio,profile_p50_ratio,profile_p99_ratio",
        &rows,
    )
    .expect("write csv");
    println!("wrote {}", path.display());
    for row in &rows {
        println!("{row}");
    }
}

/// All-pairs reach + drops request lines over the spec's edge ports —
/// the same query set `rzen-cli batch` and `serve_load` run.
fn request_set(spec: &Spec) -> Vec<String> {
    let edges = spec.edge_ports();
    let mut out = Vec::new();
    for &src in &edges {
        for &dst in &edges {
            if src == dst {
                continue;
            }
            let (s, d) = (spec.endpoint_name(src), spec.endpoint_name(dst));
            out.push(format!(
                "{{\"op\":\"reach\",\"src\":\"{s}\",\"dst\":\"{d}\"}}"
            ));
            out.push(format!(
                "{{\"op\":\"drops\",\"src\":\"{s}\",\"dst\":\"{d}\"}}"
            ));
        }
    }
    out
}

/// One closed-loop sweep at a fixed client count; returns (qps, p50, p99).
fn measure(
    addr: SocketAddr,
    requests: &Arc<Vec<String>>,
    clients: usize,
    n: usize,
) -> (f64, u64, u64) {
    let hist = Arc::new(Histogram::new());
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let hist = hist.clone();
            let requests = requests.clone();
            thread::spawn(move || client_loop(addr, &requests, c, n, &hist))
        })
        .collect();
    for w in workers {
        w.join().expect("client");
    }
    let wall = t0.elapsed().as_secs_f64();
    let qps = (clients * n) as f64 / wall;
    (qps, hist.quantile(0.50), hist.quantile(0.99))
}

/// One closed-loop client: `n` requests back-to-back on one connection.
fn client_loop(addr: SocketAddr, requests: &[String], seed: usize, n: usize, hist: &Histogram) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    for i in 0..n {
        let line = &requests[(seed + i) % requests.len()];
        let t0 = Instant::now();
        writer.write_all(format!("{line}\n").as_bytes()).unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("response");
        hist.observe(t0.elapsed().as_micros() as u64);
    }
}
