//! Engine throughput: sequential vs. N-worker speedup on a batched
//! workload — random ACL line queries plus all-pairs reachability over a
//! spine-leaf fabric.
//!
//! The scaling series runs the BDD backend (one solver thread per worker)
//! so `jobs` maps 1:1 onto busy cores; a portfolio row is reported
//! separately. Speedup is bounded by the host's available parallelism,
//! which is printed with the results: on a single-core host every row
//! measures ~1.0x by construction.
//!
//! Usage:
//!   cargo run --release -p rzen-bench --bin engine -- [jobs] [acl_queries]
//!
//! Emits CSV on stdout and into results/engine_speedup.csv. Set
//! `RZEN_TRACE=1` for a phase report on stderr after the run, or
//! `RZEN_TRACE=<file>` to also export a Chrome trace of the final
//! portfolio batch.

use std::time::Instant;

use rzen_bench::write_csv;
use rzen_engine::{Engine, EngineConfig, Query, QueryBackend, Verdict};
use rzen_net::gen::{random_acl, spine_leaf};

fn build_queries(n_acl: usize) -> Vec<Query> {
    let mut queries = Vec::new();
    // Random ACLs, querying the (always reachable) last line — the Fig. 10
    // workload, one per ACL so no two queries share a cache slot.
    for seed in 0..n_acl as u64 {
        let acl = random_acl(400, seed);
        let last = acl.rules.len() as u16;
        queries.push(Query::AclFind {
            acl,
            target_line: last,
        });
    }
    // All-pairs reachability over the leaves of a spine-leaf fabric
    // (entry/exit on each leaf's edge port 99).
    let n_spines = 2;
    let n_leaves = 4;
    let net = spine_leaf(n_spines, n_leaves);
    for a in 0..n_leaves {
        for b in 0..n_leaves {
            if a == b {
                continue;
            }
            queries.push(Query::Reach {
                net: net.clone(),
                src: (n_spines + a, 99),
                dst: (n_spines + b, 99),
            });
        }
    }
    queries
}

fn run(queries: &[Query], jobs: usize, backend: QueryBackend) -> f64 {
    let engine = Engine::new(EngineConfig {
        jobs,
        backend,
        timeout: None,
        cache: false, // measure raw solve throughput, not cache luck
        sessions: false,
    });
    let t0 = Instant::now();
    let report = engine.run_batch(queries);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    for r in &report.results {
        assert!(
            matches!(r.verdict, Verdict::Sat(_) | Verdict::Unsat),
            "unlimited-budget query must be decisive"
        );
    }
    ms
}

fn main() {
    let trace_path = rzen_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_jobs: usize = args.first().map(|s| s.parse().unwrap()).unwrap_or(4);
    let n_acl: usize = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(24);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let queries = build_queries(n_acl);
    println!(
        "# Engine speedup: {} queries, bdd backend, host parallelism {}",
        queries.len(),
        cores
    );
    let header = "jobs,ms,speedup";
    println!("{header}");

    // Warm up (fault in code paths, allocators).
    run(&queries, 1, QueryBackend::Bdd);

    let seq = run(&queries, 1, QueryBackend::Bdd);
    let mut rows = Vec::new();
    let mut jobs = 1;
    while jobs <= max_jobs {
        let ms = if jobs == 1 {
            seq
        } else {
            run(&queries, jobs, QueryBackend::Bdd)
        };
        let row = format!("{jobs},{ms:.1},{:.2}", seq / ms);
        println!("{row}");
        rows.push(row);
        jobs *= 2;
    }
    if rzen_obs::trace::enabled() {
        // Keep the export focused on the portfolio batch, not the warmup
        // and scaling series that came before it.
        rzen_obs::trace::clear();
    }
    let pf = run(&queries, max_jobs, QueryBackend::Portfolio);
    println!(
        "# portfolio at {max_jobs} workers: {pf:.1} ms ({:.2}x vs sequential bdd)",
        seq / pf
    );
    if let Ok(path) = write_csv("engine_speedup.csv", header, &rows) {
        eprintln!("wrote {}", path.display());
    }
    if rzen_obs::trace::enabled() {
        let events = rzen_obs::trace::take_events();
        if let Some(path) = &trace_path {
            match std::fs::write(path, rzen_obs::export::chrome_trace(&events)) {
                Ok(()) => eprintln!("chrome trace -> {path} ({} events)", events.len()),
                Err(e) => eprintln!("cannot write {path}: {e}"),
            }
        }
        eprint!("{}", rzen_obs::export::phase_report(&events));
        eprint!("{}", rzen_obs::metrics::registry().render_text());
    }
}
