//! Shared measurement helpers for the benchmark harness.

#![warn(missing_docs)]

use std::time::Instant;

/// Time a closure, returning (result, milliseconds).
pub fn time_ms<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64() * 1e3)
}

/// Mean of repeated timed runs (the paper reports "the mean value across
/// 100 runs"; the repetition count is a CLI knob here). Each run gets a
/// fresh expression context so arena growth does not skew later runs.
pub fn mean_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut total = 0.0;
    for _ in 0..reps {
        rzen::reset_ctx();
        let (_, ms) = time_ms(&mut f);
        total += ms;
    }
    rzen::reset_ctx();
    total / reps as f64
}

/// Write a CSV file under `results/`, creating the directory.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut out = String::from(header);
    out.push('\n');
    for r in rows {
        out.push_str(r);
        out.push('\n');
    }
    std::fs::write(&path, out)?;
    Ok(path)
}
