//! Criterion bench for Fig. 10 (right): route-map verification on both
//! backends. The paper's observation to reproduce: the SMT pipeline beats
//! BDDs on list-heavy control-plane structures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rzen::{FindOptions, Zen, ZenFunction};
use rzen_net::gen::random_route_map;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_routemap");
    g.sample_size(10);
    for &n in &[20usize, 60, 100] {
        let rm = random_route_map(n, 3);
        let last = rm.clauses.len() as u16;

        let r = rm.clone();
        g.bench_with_input(BenchmarkId::new("zen_bdd", n), &n, |b, _| {
            b.iter(|| {
                rzen::reset_ctx();
                let model = r.clone();
                let f = ZenFunction::new(move |a| model.matched_clause(a));
                f.find(
                    |_, line| line.eq(Zen::val(last)),
                    &FindOptions::bdd().with_list_bound(4),
                )
                .unwrap()
            })
        });

        let r = rm.clone();
        g.bench_with_input(BenchmarkId::new("zen_smt", n), &n, |b, _| {
            b.iter(|| {
                rzen::reset_ctx();
                let model = r.clone();
                let f = ZenFunction::new(move |a| model.matched_clause(a));
                f.find(
                    |_, line| line.eq(Zen::val(last)),
                    &FindOptions::smt().with_list_bound(4),
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
