//! State-set transformer benchmarks: cost of lifting models to relations
//! and of forward/reverse image computation — the machinery behind the
//! HSA-style analyses (§4, §6).

use criterion::{criterion_group, criterion_main, Criterion};
use rzen::{TransformerSpace, Zen, ZenFunction};
use rzen_net::acl::{Acl, AclRule};
use rzen_net::device::{fwd_out, Interface};
use rzen_net::fwd::{FwdRule, FwdTable};
use rzen_net::gen::random_acl;
use rzen_net::gre::GreTunnel;
use rzen_net::headers::{Header, Packet};
use rzen_net::ip::{ip, Prefix};

fn tunnel_interface() -> Interface {
    let table = FwdTable::new(vec![FwdRule {
        prefix: Prefix::ANY,
        port: 1,
    }]);
    Interface {
        gre_start: Some(GreTunnel {
            src_ip: ip(192, 168, 0, 1),
            dst_ip: ip(192, 168, 0, 3),
        }),
        acl_out: Some(Acl {
            rules: vec![
                AclRule {
                    permit: false,
                    dst_ports: (22, 22),
                    ..AclRule::any(false)
                },
                AclRule::any(true),
            ],
        }),
        ..Interface::new(1, table)
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("transformers");
    g.sample_size(10);

    // Building the encapsulating-interface transformer: the §6 showcase
    // (copies fields between headers; feasible only with interleaved
    // layouts).
    g.bench_function("build_gre_transformer", |b| {
        b.iter(|| {
            rzen::reset_ctx();
            let space = TransformerSpace::new();
            let i = tunnel_interface();
            let f = ZenFunction::new(move |p: Zen<Packet>| fwd_out(&i, p).value());
            let t = f.transformer(&space);
            t.relation_size()
        })
    });

    // Forward image through the tunnel interface.
    g.bench_function("forward_image_gre", |b| {
        rzen::reset_ctx();
        let space = TransformerSpace::new();
        let i = tunnel_interface();
        let f = ZenFunction::new(move |p: Zen<Packet>| fwd_out(&i, p).value());
        let t = f.transformer(&space);
        let i2 = tunnel_interface();
        let filt = space.set_of::<Packet>(move |p| fwd_out(&i2, p).is_some());
        b.iter(|| {
            let img = t.transform_forward(&filt);
            img.bdd_size()
        })
    });

    // ACL permit-set construction as a state set, per size.
    for &n in &[50usize, 200] {
        let acl = random_acl(n, 7);
        g.bench_function(format!("acl_permit_set_{n}"), |b| {
            b.iter(|| {
                rzen::reset_ctx();
                let space = TransformerSpace::new();
                let a = acl.clone();
                let s = space.set_of::<Header>(move |h| a.allows(h));
                s.bdd_size()
            })
        });
    }

    // Reverse image: which packets end up accepted (preimage of true).
    g.bench_function("reverse_image_acl", |b| {
        rzen::reset_ctx();
        let space = TransformerSpace::new();
        let acl = random_acl(100, 7);
        let f = ZenFunction::new(move |h: Zen<Header>| acl.allows(h));
        let t = f.transformer(&space);
        let accepted = space.singleton(&true);
        b.iter(|| {
            let pre = t.transform_reverse(&accepted);
            pre.bdd_size()
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
