//! §8 "Synthesizing implementations": compiled models must run much
//! faster than tree-walk simulation. Compares `evaluate` (hash-memoized
//! interpretation, rebuilding constant expressions per call) against
//! `compile().call()` (the register VM) on an ACL model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rzen::ZenFunction;
use rzen_net::gen::{random_acl, random_header};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile_speedup");
    for &n in &[100usize, 1000] {
        let acl = random_acl(n, 7);
        let model = acl.clone();
        let f = ZenFunction::new(move |h| model.matched_line(h));
        let compiled = f.compile(0);
        let headers: Vec<_> = (0..64).map(random_header).collect();

        g.bench_with_input(BenchmarkId::new("interpret", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0u32;
                for h in &headers {
                    acc += f.evaluate(h) as u32;
                }
                acc
            })
        });

        g.bench_with_input(BenchmarkId::new("compiled_vm", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0u32;
                for h in &headers {
                    acc += compiled.call(h) as u32;
                }
                acc
            })
        });

        // Reference point: the hand-written concrete implementation.
        g.bench_with_input(BenchmarkId::new("native_reference", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0u32;
                for h in &headers {
                    acc += acl.matched_line_concrete(h) as u32;
                }
                acc
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
