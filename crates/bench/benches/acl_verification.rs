//! Criterion bench for Fig. 10 (left): ACL verification time across the
//! three engines. Sizes are scaled down from the CSV harness so the
//! statistical runs stay short; use the `fig10` binary for the full
//! paper-scale sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rzen::{FindOptions, Zen, ZenFunction};
use rzen_baselines::AclVerifier;
use rzen_net::gen::random_acl;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_acl");
    g.sample_size(10);
    for &n in &[250usize, 1000, 4000] {
        let acl = random_acl(n, 7);
        let last = acl.rules.len() as u16;

        let a = acl.clone();
        g.bench_with_input(BenchmarkId::new("zen_bdd", n), &n, |b, _| {
            b.iter(|| {
                rzen::reset_ctx();
                let model = a.clone();
                let f = ZenFunction::new(move |h| model.matched_line(h));
                f.find(|_, line| line.eq(Zen::val(last)), &FindOptions::bdd())
                    .unwrap()
            })
        });

        let a = acl.clone();
        g.bench_with_input(BenchmarkId::new("zen_smt", n), &n, |b, _| {
            b.iter(|| {
                rzen::reset_ctx();
                let model = a.clone();
                let f = ZenFunction::new(move |h| model.matched_line(h));
                f.find(|_, line| line.eq(Zen::val(last)), &FindOptions::smt())
                    .unwrap()
            })
        });

        let a = acl.clone();
        g.bench_with_input(BenchmarkId::new("baseline_bdd", n), &n, |b, _| {
            b.iter(|| {
                let mut v = AclVerifier::new(&a);
                v.find_first_match(last as usize - 1).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
