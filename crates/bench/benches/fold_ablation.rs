//! Ablation of eager constant folding and algebraic simplification at
//! node-construction time (the hash-consing pipeline behind "build
//! efficient symbolic representations", §6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rzen::{FindOptions, Zen, ZenFunction};
use rzen_net::gen::random_acl;

fn run(fold: bool, acl: &rzen_net::acl::Acl) {
    rzen::reset_ctx();
    rzen::set_folding(fold);
    let last = acl.rules.len() as u16;
    let model = acl.clone();
    let f = ZenFunction::new(move |h| model.matched_line(h));
    f.find(|_, line| line.eq(Zen::val(last)), &FindOptions::smt())
        .unwrap();
    rzen::set_folding(true);
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fold_ablation");
    g.sample_size(10);
    for &n in &[200usize, 800] {
        let acl = random_acl(n, 7);
        g.bench_with_input(BenchmarkId::new("folding_on", n), &acl, |b, acl| {
            b.iter(|| run(true, acl))
        });
        g.bench_with_input(BenchmarkId::new("folding_off", n), &acl, |b, acl| {
            b.iter(|| run(false, acl))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
