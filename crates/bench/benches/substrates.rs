//! Microbenchmarks of the solver substrates (the systems the framework
//! had to build from scratch): BDD operations and CDCL SAT solving.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rzen_bdd::BddManager;
use rzen_sat::{Lit, Solver};

/// The n-queens placement constraints as a BDD (a standard BDD stress
/// test exercising and/or/not over many variables).
fn queens_bdd(n: usize) -> (BddManager, rzen_bdd::Bdd) {
    let mut m = BddManager::new();
    let var = |m: &mut BddManager, r: usize, c: usize| m.var((r * n + c) as u32);
    let mut formula = rzen_bdd::BDD_TRUE;
    for r in 0..n {
        // Each row has exactly one queen (at-least-one here; conflicts
        // below handle the rest).
        let mut any = rzen_bdd::BDD_FALSE;
        for c in 0..n {
            let v = var(&mut m, r, c);
            any = m.or(any, v);
        }
        formula = m.and(formula, any);
    }
    for r in 0..n {
        for c in 0..n {
            for r2 in (r + 1)..n {
                let v1 = var(&mut m, r, c);
                // Same column.
                let v2 = var(&mut m, r2, c);
                let nv2 = m.not(v2);
                let nv1 = m.not(v1);
                let conflict = m.or(nv1, nv2);
                formula = m.and(formula, conflict);
                // Diagonals.
                let d = r2 - r;
                for c2 in [c.checked_sub(d), c.checked_add(d).filter(|&x| x < n)]
                    .into_iter()
                    .flatten()
                {
                    let v2 = var(&mut m, r2, c2);
                    let nv2 = m.not(v2);
                    let conflict = m.or(nv1, nv2);
                    formula = m.and(formula, conflict);
                }
            }
        }
    }
    (m, formula)
}

/// Random 3-SAT at the given clause/variable ratio.
fn random_3sat(nvars: usize, ratio: f64, seed: u64) -> Solver {
    // Tiny deterministic PRNG (splitmix64) to avoid depending on rand in
    // benches.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut s = Solver::new();
    let vars: Vec<_> = (0..nvars).map(|_| s.new_var()).collect();
    let nclauses = (nvars as f64 * ratio) as usize;
    for _ in 0..nclauses {
        let lits: Vec<Lit> = (0..3)
            .map(|_| {
                let v = vars[(next() as usize) % nvars];
                Lit::new(v, next() & 1 == 0)
            })
            .collect();
        s.add_clause(&lits);
    }
    s
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrates");
    g.sample_size(10);

    for &n in &[6usize, 8] {
        g.bench_with_input(BenchmarkId::new("bdd_queens", n), &n, |b, &n| {
            b.iter(|| {
                let (m, f) = queens_bdd(n);
                (m.node_count(f), m.sat_count(f, (n * n) as u32))
            })
        });
    }

    for &n in &[100usize, 200] {
        g.bench_with_input(BenchmarkId::new("sat_3sat_r4.0", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = random_3sat(n, 4.0, 42);
                s.solve()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
