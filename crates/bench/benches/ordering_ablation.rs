//! Ablation of the §6 variable-ordering interaction analysis.
//!
//! The paper: "when two variables are compared for (in)equality, Zen
//! ensures their orderings will be interleaved, as any other ordering
//! will result in an exponential memory blowup." This bench measures
//! exactly that: equality of two w-bit values, with and without the
//! interleaving analysis, across widths. Without interleaving the cost
//! doubles per bit of width; with it, growth is linear.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rzen::{FindOptions, Zen, ZenFunction};

fn find_eq_pair(width_tag: u32, analysis: bool) {
    rzen::reset_ctx();
    let opts = FindOptions {
        ordering_analysis: analysis,
        ..FindOptions::bdd()
    };
    // Compare tuples of two values per width; equality of the pair
    // requires interleaving all bits.
    match width_tag {
        8 => {
            let f = ZenFunction::new(|p: Zen<(u8, u8)>| p.item1().eq(p.item2()));
            f.find(|_, out| out, &opts).unwrap();
        }
        16 => {
            let f = ZenFunction::new(|p: Zen<(u16, u16)>| p.item1().eq(p.item2()));
            f.find(|_, out| out, &opts).unwrap();
        }
        20 => {
            // 20 "bits" via u32 masked to 20 bits on both sides.
            let f = ZenFunction::new(|p: Zen<(u32, u32)>| {
                (p.item1() & 0xF_FFFFu32).eq(p.item2() & 0xF_FFFFu32)
            });
            f.find(|_, out| out, &opts).unwrap();
        }
        _ => unreachable!(),
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ordering_ablation");
    g.sample_size(10);
    for &w in &[8u32, 16, 20] {
        g.bench_with_input(BenchmarkId::new("interleaved", w), &w, |b, &w| {
            b.iter(|| find_eq_pair(w, true))
        });
        // The non-interleaved configuration is exponential in w; skip the
        // largest width to keep the bench finite.
        if w <= 16 {
            g.bench_with_input(BenchmarkId::new("sequential", w), &w, |b, &w| {
                b.iter(|| find_eq_pair(w, false))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
