//! Shared fixtures for the repository-level integration tests and
//! examples: the paper's Fig. 3 virtualized network, built from the
//! composed rzen-net models.

#![warn(missing_docs)]

use rzen_net::acl::{Acl, AclRule};
use rzen_net::device::Interface;
use rzen_net::fwd::{FwdRule, FwdTable};
use rzen_net::gre::GreTunnel;
use rzen_net::headers::proto;
use rzen_net::ip::{ip, Prefix};
use rzen_net::topology::{Device, Network};

/// Addresses of the Fig. 3 topology.
pub mod addrs {
    use super::*;

    /// Overlay endpoint Va.
    pub const VA: u32 = ip(10, 0, 0, 1);
    /// Overlay endpoint Vb.
    pub const VB: u32 = ip(10, 0, 0, 2);
    /// Underlay node U1 (tunnel head).
    pub const U1: u32 = ip(192, 168, 0, 1);
    /// Underlay node U2 (transit).
    pub const U2: u32 = ip(192, 168, 0, 2);
    /// Underlay node U3 (tunnel tail).
    pub const U3: u32 = ip(192, 168, 0, 3);
}

/// The GRE tunnel from U1 to U3.
pub fn tunnel() -> GreTunnel {
    GreTunnel {
        src_ip: addrs::U1,
        dst_ip: addrs::U3,
    }
}

/// Build the Fig. 3 virtualized network: Va — U1 — U2 — U3 — Vb, with
/// overlay packets (Va→Vb) encapsulated at U1 and decapsulated at U3.
///
/// `buggy_underlay_filter`: when true, U2 carries the §2 motivating bug —
/// an underlay ACL that drops some overlay packets (here: anything whose
/// *overlay* source port is reused by the GRE copy and falls in a blocked
/// range), so overlay and underlay verification in isolation both pass
/// while the composition drops traffic.
pub fn fig3_network(buggy_underlay_filter: bool) -> Network {
    let mut net = Network::default();

    // Underlay forwarding: route 192.168.0.3 (U3) rightward, U1 leftward,
    // and deliver the overlay prefix at the edges.
    let u3_right = FwdTable::new(vec![
        FwdRule {
            prefix: Prefix::new(addrs::U3, 32),
            port: 2,
        },
        FwdRule {
            prefix: Prefix::new(ip(10, 0, 0, 0), 8),
            port: 2,
        },
        FwdRule {
            prefix: Prefix::new(addrs::U1, 32),
            port: 1,
        },
    ]);

    // U1: port 1 faces Va, port 2 faces U2. Tunnel starts on egress 2.
    let u1 = Device {
        name: "u1".into(),
        interfaces: vec![
            Interface::new(1, u3_right.clone()),
            Interface {
                gre_start: Some(tunnel()),
                ..Interface::new(2, u3_right.clone())
            },
        ],
    };

    // U2: transit. Port 1 faces U1, port 2 faces U3.
    let mut u2_in = Interface::new(1, u3_right.clone());
    if buggy_underlay_filter {
        // The bug: an operator blocked "high ports" on the transit link,
        // forgetting GRE copies the overlay ports into the underlay
        // header.
        u2_in.acl_in = Some(Acl {
            rules: vec![
                AclRule {
                    permit: false,
                    dst_ports: (5000, 6000),
                    ..AclRule::any(false)
                },
                AclRule::any(true),
            ],
        });
    }
    let u2 = Device {
        name: "u2".into(),
        interfaces: vec![u2_in, Interface::new(2, u3_right.clone())],
    };

    // U3: port 1 faces U2 (tunnel ends here), port 2 faces Vb.
    let u3 = Device {
        name: "u3".into(),
        interfaces: vec![
            Interface {
                gre_end: Some(tunnel()),
                ..Interface::new(1, u3_right.clone())
            },
            Interface::new(2, u3_right),
        ],
    };

    let u1i = net.add_device(u1);
    let u2i = net.add_device(u2);
    let u3i = net.add_device(u3);
    net.add_duplex(u1i, 2, u2i, 1);
    net.add_duplex(u2i, 2, u3i, 1);
    net
}

/// An overlay header from Va to Vb.
pub fn overlay_header(dst_port: u16, src_port: u16) -> rzen_net::headers::Header {
    rzen_net::headers::Header::new(addrs::VB, addrs::VA, dst_port, src_port, proto::TCP)
}
