use rzen::{Zen, ZenFunction};
use rzen_bdd::BddManager;
use rzen_net::gen::random_acl;
use std::time::Instant;

fn main() {
    let lines: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(500);
    let acl = random_acl(lines, 7);
    let n = acl.rules.len() as u16;
    let model = acl.clone();
    let f = ZenFunction::new(move |h| model.matched_line(h));
    let input = Zen::<rzen_net::headers::Header>::symbolic(0);
    let out = f.apply(input);
    let cond = out.eq(Zen::val(n));
    rzen::with_ctx(|ctx| {
        let order = rzen::backend::ordering::compute_order(ctx, &[cond.expr_id()], true);
        let mut m = BddManager::new();
        let t0 = Instant::now();
        let (b, _) = rzen::backend::bdd::compile_bool(ctx, &mut m, order, cond.expr_id());
        println!(
            "compile: {:?} arena={} result_nodes={}",
            t0.elapsed(),
            m.arena_size(),
            m.node_count(b)
        );
        let t0 = Instant::now();
        let sat = m.any_sat(b).is_some();
        println!("anysat: {:?} sat={}", t0.elapsed(), sat);
    });
}
