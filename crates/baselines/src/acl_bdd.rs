//! A hand-optimized BDD encoding of ACL verification.
//!
//! Domain knowledge baked in (this is what "hand-optimized" buys, and
//! what the IVL generates automatically from the model instead):
//!
//! * a fixed, known-good variable order: header fields laid out
//!   dst-ip, src-ip, dst-port, src-port, protocol, each MSB-first —
//!   prefix constraints touch only a short top segment of the order;
//! * prefix matches built directly as linear-size bit-cube BDDs (no
//!   generic equality circuit);
//! * port/protocol range constraints built with the classic linear-size
//!   threshold-BDD construction (no generic comparator circuit);
//! * first-match semantics computed with one running "not yet matched"
//!   set instead of per-line formulas.

use rzen_bdd::{Bdd, BddManager, BDD_TRUE};
use rzen_net::acl::Acl;
use rzen_net::headers::Header;
use rzen_net::ip::Prefix;

const DST_IP: u32 = 0;
const SRC_IP: u32 = 32;
const DST_PORT: u32 = 64;
const SRC_PORT: u32 = 80;
const PROTO: u32 = 96;
const NVARS: u32 = 104;

/// A hand-coded BDD verifier for one ACL.
pub struct AclVerifier {
    m: BddManager,
    /// Per-line match conditions.
    line_match: Vec<Bdd>,
}

impl AclVerifier {
    /// Encode the ACL.
    pub fn new(acl: &Acl) -> AclVerifier {
        let mut m = BddManager::new();
        let line_match = acl
            .rules
            .iter()
            .map(|r| {
                let parts = [
                    prefix_bdd(&mut m, DST_IP, r.dst),
                    prefix_bdd(&mut m, SRC_IP, r.src),
                    range_bdd(
                        &mut m,
                        DST_PORT,
                        16,
                        r.dst_ports.0 as u64,
                        r.dst_ports.1 as u64,
                    ),
                    range_bdd(
                        &mut m,
                        SRC_PORT,
                        16,
                        r.src_ports.0 as u64,
                        r.src_ports.1 as u64,
                    ),
                    range_bdd(&mut m, PROTO, 8, r.protocols.0 as u64, r.protocols.1 as u64),
                ];
                let mut cond = BDD_TRUE;
                for p in parts {
                    cond = m.and(cond, p);
                }
                cond
            })
            .collect();
        AclVerifier { m, line_match }
    }

    /// The set of headers whose *first* match is line `i` (0-based), as a
    /// BDD. Computed with a running not-yet-matched set.
    fn first_match(&mut self, i: usize) -> Bdd {
        let mut unmatched = BDD_TRUE;
        for j in 0..i {
            let mj = self.line_match[j];
            let not_mj = self.m.not(mj);
            unmatched = self.m.and(unmatched, not_mj);
        }
        self.m.and(unmatched, self.line_match[i])
    }

    /// Find a header whose first match is line `i` (0-based) — the
    /// Fig. 10 query with `i = last line`.
    pub fn find_first_match(&mut self, i: usize) -> Option<Header> {
        let set = self.first_match(i);
        let model = self.m.any_sat_total(set, NVARS)?;
        Some(decode(&model))
    }

    /// Is line `i` (0-based) shadowed (no packet's first match is `i`)?
    pub fn line_shadowed(&mut self, i: usize) -> bool {
        self.first_match(i) == rzen_bdd::BDD_FALSE
    }

    /// Number of headers whose first match is line `i`.
    pub fn line_match_count(&mut self, i: usize) -> f64 {
        let set = self.first_match(i);
        self.m.sat_count(set, NVARS)
    }
}

/// Prefix constraint: the top `len` bits of the 32-bit field at `base`
/// equal the prefix bits. Linear-size cube.
fn prefix_bdd(m: &mut BddManager, base: u32, p: Prefix) -> Bdd {
    let mut cond = BDD_TRUE;
    // Build bottom-up (deepest variable first) so each `and` is O(1).
    for k in (0..p.len as u32).rev() {
        // Bit k of the prefix, MSB-first: variable base + k.
        let bit = p.address >> (31 - k) & 1 == 1;
        let var = if bit {
            m.var(base + k)
        } else {
            m.nvar(base + k)
        };
        cond = m.and(var, cond);
    }
    cond
}

/// Range constraint `lo <= x <= hi` over a `width`-bit field at `base`
/// (MSB-first), via two linear-size threshold BDDs.
fn range_bdd(m: &mut BddManager, base: u32, width: u32, lo: u64, hi: u64) -> Bdd {
    let full = if width == 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };
    if lo == 0 && hi == full {
        return BDD_TRUE;
    }
    let ge = threshold_bdd(m, base, width, lo, true);
    let le = threshold_bdd(m, base, width, hi, false);
    m.and(ge, le)
}

/// `x >= bound` (ge = true) or `x <= bound` (ge = false): linear-size,
/// built bottom-up along the bit order.
fn threshold_bdd(m: &mut BddManager, base: u32, width: u32, bound: u64, ge: bool) -> Bdd {
    // Walk bits LSB→MSB building "comparison of the suffix".
    let mut acc = BDD_TRUE;
    for k in (0..width).rev() {
        // Bit k MSB-first has significance width-1-k.
        let bit = bound >> (width - 1 - k) & 1 == 1;
        let v = m.var(base + k);
        acc = if ge {
            if bit {
                // Suffix >= 1b..: need this bit set and rest >=.
                m.and(v, acc)
            } else {
                // Suffix >= 0b..: this bit set suffices, else rest >=.
                m.or(v, acc)
            }
        } else if bit {
            // Suffix <= 1b..: bit clear suffices, else rest <=.
            let nv = m.not(v);
            m.or(nv, acc)
        } else {
            // Suffix <= 0b..: need bit clear and rest <=.
            let nv = m.not(v);
            m.and(nv, acc)
        };
    }
    acc
}

/// Decode a total model back into a header.
fn decode(model: &[bool]) -> Header {
    let field = |base: u32, width: u32| -> u64 {
        let mut out = 0u64;
        for k in 0..width {
            out = out << 1 | model[(base + k) as usize] as u64;
        }
        out
    };
    Header::new(
        field(DST_IP, 32) as u32,
        field(SRC_IP, 32) as u32,
        field(DST_PORT, 16) as u16,
        field(SRC_PORT, 16) as u16,
        field(PROTO, 8) as u8,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rzen_net::acl::AclRule;
    use rzen_net::ip::ip;

    fn acl() -> Acl {
        Acl {
            rules: vec![
                AclRule {
                    permit: false,
                    dst: Prefix::new(ip(10, 0, 0, 0), 8),
                    dst_ports: (22, 22),
                    ..AclRule::any(false)
                },
                AclRule {
                    permit: true,
                    dst: Prefix::new(ip(10, 0, 0, 0), 8),
                    ..AclRule::any(true)
                },
                AclRule::any(false),
            ],
        }
    }

    #[test]
    fn finds_first_match_per_line() {
        let mut v = AclVerifier::new(&acl());
        for i in 0..3 {
            let h = v.find_first_match(i).expect("line reachable");
            assert_eq!(acl().matched_line_concrete(&h), i as u16 + 1, "line {i}");
        }
    }

    #[test]
    fn detects_shadowed_line() {
        let shadowed = Acl {
            rules: vec![AclRule::any(true), AclRule::any(false)],
        };
        let mut v = AclVerifier::new(&shadowed);
        assert!(!v.line_shadowed(0));
        assert!(v.line_shadowed(1));
        assert!(v.find_first_match(1).is_none());
    }

    #[test]
    fn match_counts() {
        let one_rule = Acl {
            rules: vec![AclRule {
                permit: true,
                dst: Prefix::new(ip(10, 0, 0, 0), 8),
                ..AclRule::any(true)
            }],
        };
        let mut v = AclVerifier::new(&one_rule);
        // 2^24 dst choices * 2^32 src * 2^16 * 2^16 * 2^8 = 2^96.
        assert_eq!(v.line_match_count(0), 2f64.powi(96));
    }

    #[test]
    fn threshold_semantics() {
        let mut m = BddManager::new();
        // 4-bit field at base 0: x >= 5.
        let ge5 = threshold_bdd(&mut m, 0, 4, 5, true);
        let le9 = threshold_bdd(&mut m, 0, 4, 9, false);
        for x in 0u64..16 {
            let assignment = |v: u32| x >> (3 - v) & 1 == 1;
            assert_eq!(m.eval(ge5, assignment), x >= 5, "ge x={x}");
            assert_eq!(m.eval(le9, assignment), x <= 9, "le x={x}");
        }
    }

    #[test]
    fn range_full_is_true() {
        let mut m = BddManager::new();
        assert_eq!(range_bdd(&mut m, 0, 16, 0, 0xFFFF), BDD_TRUE);
    }
}
