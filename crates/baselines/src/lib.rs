//! # rzen-baselines — hand-optimized custom verifiers
//!
//! The paper's Fig. 10 (left) compares Zen's automatically generated BDD
//! encoding against Batfish, "which performs the same analysis using a
//! hand-optimized, BDD-based encoding". Batfish itself is a JVM system
//! that cannot run here, so this crate plays its role: a direct,
//! hand-tuned BDD encoding of ACL semantics written straight against
//! `rzen-bdd`, with none of the IVL's generality. It is the "custom
//! tool" yardstick that the general framework must keep up with.

#![warn(missing_docs)]

pub mod acl_bdd;

pub use acl_bdd::AclVerifier;
