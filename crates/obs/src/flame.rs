//! Hand-rolled flamegraph SVG rendering — no dependencies, no scripts.
//!
//! Takes folded stacks (`a;b;c count`, the format [`crate::profile`]
//! accumulates) and renders a static, self-contained SVG in the classic
//! flamegraph layout: one rectangle per frame, width proportional to the
//! frame's inclusive weight, children stacked below their parent
//! (icicle orientation, root at the top). Every rectangle carries a
//! `<title>` element so hovering in a browser shows the frame name,
//! weight, and percentage — interactivity without JavaScript, in the
//! same spirit as the Chrome-trace exporter in [`crate::export`].

use std::collections::BTreeMap;

const WIDTH: f64 = 1200.0;
const FRAME_HEIGHT: f64 = 17.0;
const TITLE_HEIGHT: f64 = 28.0;
const MARGIN: f64 = 8.0;
/// Rectangles narrower than this get no inline label (the tooltip still
/// carries the full name).
const MIN_LABEL_WIDTH: f64 = 35.0;
/// Approximate glyph width at font-size 11, for label truncation.
const CHAR_WIDTH: f64 = 6.6;

/// One node of the merged frame tree. Children keyed by name for
/// deterministic left-to-right layout.
#[derive(Default)]
struct Node {
    value: u64,
    children: BTreeMap<String, Node>,
}

impl Node {
    fn insert(&mut self, frames: &[&str], value: u64) {
        self.value += value;
        if let Some((first, rest)) = frames.split_first() {
            self.children
                .entry((*first).to_string())
                .or_default()
                .insert(rest, value);
        }
    }

    fn depth(&self) -> usize {
        1 + self.children.values().map(Node::depth).max().unwrap_or(0)
    }
}

/// Render folded `(stack, weight)` rows as a standalone flamegraph SVG.
///
/// `title` labels the chart (e.g. `"CPU · 1234 samples"`); `unit` names
/// the weight in tooltips (`"samples"`, `"bytes"`). An empty input
/// renders a valid SVG stating that no data was collected.
pub fn flamegraph_svg(title: &str, unit: &str, folded: &[(String, u64)]) -> String {
    let mut root = Node::default();
    for (stack, value) in folded {
        if *value == 0 {
            continue;
        }
        let frames: Vec<&str> = stack.split(';').collect();
        root.insert(&frames, *value);
    }

    // Root row itself is synthetic and not drawn; depth counts it.
    let rows = root.depth().saturating_sub(1).max(1);
    let height = TITLE_HEIGHT + rows as f64 * FRAME_HEIGHT + MARGIN;
    let mut svg = String::with_capacity(4096);
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\" font-family=\"monospace\" font-size=\"11\">\n",
        w = WIDTH,
        h = height
    ));
    svg.push_str(&format!(
        "<rect x=\"0\" y=\"0\" width=\"{WIDTH}\" height=\"{height}\" fill=\"#f8f8f8\"/>\n"
    ));
    svg.push_str(&format!(
        "<text x=\"{}\" y=\"18\" font-size=\"14\">{}</text>\n",
        MARGIN,
        escape(title)
    ));

    if root.value == 0 {
        svg.push_str(&format!(
            "<text x=\"{}\" y=\"{}\">no {} collected</text>\n",
            MARGIN,
            TITLE_HEIGHT + FRAME_HEIGHT,
            escape(unit)
        ));
        svg.push_str("</svg>\n");
        return svg;
    }

    let scale = (WIDTH - 2.0 * MARGIN) / root.value as f64;
    let mut x = MARGIN;
    for (name, child) in &root.children {
        emit(
            &mut svg,
            name,
            child,
            x,
            TITLE_HEIGHT,
            scale,
            root.value,
            unit,
        );
        x += child.value as f64 * scale;
    }
    svg.push_str("</svg>\n");
    svg
}

#[allow(clippy::too_many_arguments)]
fn emit(
    svg: &mut String,
    name: &str,
    node: &Node,
    x: f64,
    y: f64,
    scale: f64,
    total: u64,
    unit: &str,
) {
    let width = node.value as f64 * scale;
    if width < 0.1 {
        return;
    }
    let pct = 100.0 * node.value as f64 / total as f64;
    svg.push_str(&format!(
        "<g><title>{} — {} {} ({:.1}%)</title>\
         <rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" \
         fill=\"{}\" stroke=\"#f8f8f8\" stroke-width=\"0.5\"/>",
        escape(name),
        node.value,
        escape(unit),
        pct,
        x,
        y,
        width,
        FRAME_HEIGHT,
        color(name),
    ));
    if width >= MIN_LABEL_WIDTH {
        let max_chars = ((width - 6.0) / CHAR_WIDTH) as usize;
        let label: String = if name.chars().count() > max_chars {
            let kept: String = name.chars().take(max_chars.saturating_sub(2)).collect();
            format!("{kept}..")
        } else {
            name.to_string()
        };
        svg.push_str(&format!(
            "<text x=\"{:.2}\" y=\"{:.2}\">{}</text>",
            x + 3.0,
            y + FRAME_HEIGHT - 4.5,
            escape(&label)
        ));
    }
    svg.push_str("</g>\n");
    let mut cx = x;
    for (child_name, child) in &node.children {
        emit(
            svg,
            child_name,
            child,
            cx,
            y + FRAME_HEIGHT,
            scale,
            total,
            unit,
        );
        cx += child.value as f64 * scale;
    }
}

/// Deterministic warm color from the frame name, flamegraph-style.
fn color(name: &str) -> String {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    let r = 205 + (hash % 50) as u8;
    let g = 80 + ((hash >> 8) % 110) as u8;
    let b = ((hash >> 16) % 55) as u8;
    format!("rgb({r},{g},{b})")
}

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_well_formed_standalone_svg() {
        let folded = vec![
            ("serve.job;engine.query;bdd.solve".to_string(), 70u64),
            ("serve.job;engine.query;sat.solve".to_string(), 25),
            ("serve.job;serve.drain".to_string(), 5),
        ];
        let svg = flamegraph_svg("CPU · 100 samples", "samples", &folded);
        assert!(svg.starts_with("<svg xmlns=\"http://www.w3.org/2000/svg\""));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("bdd.solve"));
        assert!(svg.matches("<g>").count() == svg.matches("</g>").count());
        assert!(svg.contains("(70.0%)"), "tooltip percentage: {svg}");
        assert!(!svg.contains("<script"), "self-contained, no scripts");
    }

    #[test]
    fn empty_input_is_still_valid_svg() {
        let svg = flamegraph_svg("heap", "bytes", &[]);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("no bytes collected"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn frame_names_are_xml_escaped() {
        let folded = vec![("<untracked>".to_string(), 10u64)];
        let svg = flamegraph_svg("heap & more", "bytes", &folded);
        assert!(svg.contains("&lt;untracked&gt;"));
        assert!(svg.contains("heap &amp; more"));
        assert!(!svg.contains("<untracked>"));
    }
}
