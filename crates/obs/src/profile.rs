//! Continuous profiling: a span-stack CPU sampler and heap attribution.
//!
//! Two profile sources share one enablement bit (see [`crate::trace`]):
//!
//! * **Span-stack sampler (the "cpu" view).** Every instrumented thread
//!   publishes its current span stack into a fixed-size per-thread
//!   [`StackSlot`] guarded by a seqlock — the same write-side discipline
//!   as the flight recorder in [`crate::flight`]. A dedicated sampler
//!   thread wakes at a configurable rate (default
//!   [`DEFAULT_SAMPLE_HZ`]), snapshots every live thread's stack without
//!   stopping it, and accumulates folded stacks (`a;b;c count`) in a
//!   sharded hash table. No signals are involved, so the sampler is
//!   portable and async-signal-safety is a non-issue by construction.
//!
//!   The samples are **wall-clock**, not on-CPU: a thread is charged for
//!   every tick its span stack is open, including time spent blocked on
//!   a lock, on I/O, or sleeping. For spans that never block the view
//!   coincides with CPU time; for ones that do (lock waits, the debug
//!   `sleep` op) it shows where *wall* time goes — which is usually the
//!   more actionable number for latency work, and is what the "wall"
//!   labels in the rendered output mean.
//!
//! * **Heap attribution.** [`CountingAlloc`] is a `#[global_allocator]`
//!   wrapper over the system allocator. While profiling is enabled it
//!   keeps per-thread alloc byte/count tallies; the tallies are flushed
//!   to the folded heap table at every span push/pop, charging the bytes
//!   to the innermost span that was open while they were allocated.
//!   Bytes allocated outside any span land in an explicit
//!   [`UNTRACKED`] bucket computed residually against the global
//!   allocator totals, so the folded heap view always sums to what the
//!   allocator actually handed out.
//!
//! ## The overhead contract
//!
//! While profiling is disabled, a span entry costs the one relaxed
//! atomic load it always cost (the combined state word in
//! [`crate::trace`]) and an allocation costs one relaxed atomic load in
//! [`CountingAlloc`] before deferring to the system allocator. No
//! timestamps, no locks, no thread-locals are touched on either disabled
//! path.
//!
//! While profiling is enabled, span push/pop writes two words under a
//! seqlock in a thread-local slot, and the sampler's cost is bounded by
//! the sample rate times the live thread count — independent of request
//! throughput. The serve overhead study (`results/serve_overhead.csv`)
//! holds the 99 Hz profiling arm within a few percent of baseline.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default sampler wake rate, in Hz. 99 (not 100) keeps samples from
/// beating against 10 ms-periodic work, the classic profiler-rate trick.
pub const DEFAULT_SAMPLE_HZ: u32 = 99;

/// Deepest published span stack. Deeper nesting is truncated for the
/// sampler (pushes beyond the limit still count depth so pops stay
/// balanced); 32 comfortably covers the serve → engine → session →
/// backend nesting, which peaks below 12.
pub const MAX_STACK_DEPTH: usize = 32;

/// Folded-stack bucket charged with bytes allocated outside any span.
pub const UNTRACKED: &str = "<untracked>";

const SHARDS: usize = 16;

// ---------------------------------------------------------------------------
// Per-thread published span stacks (seqlock, owner-writer / sampler-reader)
// ---------------------------------------------------------------------------

/// One published stack frame: the raw `(ptr, len)` parts of a
/// `&'static str` span name, held as relaxed atomics so the sampler's
/// concurrent reads are defined even when they race a write (the seqlock
/// then discards the torn copy — tearing is detected, never UB).
struct Frame {
    ptr: AtomicPtr<u8>,
    len: AtomicUsize,
}

/// One thread's published span stack. The owning thread is the only
/// writer; the sampler reads under the seqlock protocol (odd sequence =
/// write in progress; a copy is kept only when the sequence was even and
/// unchanged around it). All data fields are relaxed atomics — the
/// seqlock only provides *consistency* (via the fences in
/// [`StackSlot::begin_write`]/[`read_stack`]); per-word atomicity is
/// what makes the racing reads defined at all. Frames are reconstructed
/// into `&str`s only after a validated read, so a torn read never
/// materializes an invalid `&str`.
struct StackSlot {
    seq: AtomicU64,
    depth: AtomicUsize,
    frames: [Frame; MAX_STACK_DEPTH],
    alive: AtomicBool,
}

impl StackSlot {
    fn new() -> StackSlot {
        StackSlot {
            seq: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            frames: std::array::from_fn(|_| Frame {
                ptr: AtomicPtr::new(std::ptr::null_mut()),
                len: AtomicUsize::new(0),
            }),
            alive: AtomicBool::new(true),
        }
    }

    /// Owner-side: mark a write in progress (sequence becomes odd). The
    /// release fence keeps the subsequent relaxed data stores from
    /// becoming visible before the odd sequence: a reader that observes
    /// any of them (relaxed loads + acquire fence) then re-reads `seq`
    /// and sees the odd value, so the copy is discarded. A plain release
    /// *store* would not do this — release only orders *earlier* ops.
    #[inline]
    fn begin_write(&self) -> u64 {
        let odd = self.seq.load(Ordering::Relaxed).wrapping_add(1);
        self.seq.store(odd, Ordering::Relaxed);
        fence(Ordering::Release);
        odd
    }

    /// Owner-side: publish the write (sequence becomes even again). The
    /// release store orders the preceding data stores before it.
    #[inline]
    fn end_write(&self, odd: u64) {
        self.seq.store(odd.wrapping_add(1), Ordering::Release);
    }
}

/// Sampler-side seqlock read of one slot's stack. Returns the frame
/// names (innermost last) or `None` if the read kept tearing.
fn read_stack(slot: &StackSlot) -> Option<Vec<&'static str>> {
    for _ in 0..4 {
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 % 2 == 1 {
            std::hint::spin_loop();
            continue;
        }
        let depth = slot.depth.load(Ordering::Relaxed).min(MAX_STACK_DEPTH);
        let mut raw = [(std::ptr::null::<u8>(), 0usize); MAX_STACK_DEPTH];
        for (copy, frame) in raw[..depth].iter_mut().zip(&slot.frames) {
            *copy = (
                frame.ptr.load(Ordering::Relaxed) as *const u8,
                frame.len.load(Ordering::Relaxed),
            );
        }
        // The acquire fence keeps the relaxed data loads above from
        // sinking below the `seq` re-read: if any of them raced a
        // writer's store, the writer's preceding odd sequence (release
        // fence in `begin_write`) is visible to the load below and the
        // copy is discarded.
        fence(Ordering::Acquire);
        let s2 = slot.seq.load(Ordering::Relaxed);
        if s1 != s2 {
            continue;
        }
        let mut out = Vec::with_capacity(depth);
        for &(ptr, len) in &raw[..depth] {
            if ptr.is_null() {
                return None;
            }
            // SAFETY: validated copy of the raw parts of a `&'static str`.
            out.push(unsafe {
                std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr, len))
            });
        }
        return Some(out);
    }
    None
}

fn slots() -> &'static Mutex<Vec<Arc<StackSlot>>> {
    static SLOTS: OnceLock<Mutex<Vec<Arc<StackSlot>>>> = OnceLock::new();
    SLOTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Owns the thread's registration; dropping (thread exit) retires the
/// slot so the sampler stops reading a stack that can no longer change.
struct SlotGuard(Arc<StackSlot>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        let odd = self.0.begin_write();
        self.0.depth.store(0, Ordering::Relaxed);
        self.0.end_write(odd);
        self.0.alive.store(false, Ordering::Release);
    }
}

thread_local! {
    static SLOT: RefCell<Option<SlotGuard>> = const { RefCell::new(None) };
}

/// Has the *current thread* registered a published stack slot? Stays
/// `false` for threads that never entered a span while profiling was
/// enabled — the observable half of the disabled-path contract.
pub fn thread_slot_allocated() -> bool {
    SLOT.try_with(|s| s.borrow().is_some()).unwrap_or(false)
}

/// Push a span name onto this thread's published stack. Called from
/// [`crate::trace::Span::enter`] when the profile bit is set. Returns
/// whether a frame was pushed (false only during thread teardown, when
/// the thread-local is gone); the caller pops iff this returned true.
pub(crate) fn push_frame(name: &'static str) -> bool {
    SLOT.try_with(|s| {
        let mut slot = s.borrow_mut();
        let guard = slot.get_or_insert_with(|| {
            let arc = Arc::new(StackSlot::new());
            slots().lock().unwrap().push(Arc::clone(&arc));
            SlotGuard(arc)
        });
        let slot = &guard.0;
        flush_pending(slot);
        // Owner-side relaxed loads/stores: this thread is the only writer.
        let depth = slot.depth.load(Ordering::Relaxed);
        let odd = slot.begin_write();
        if depth < MAX_STACK_DEPTH {
            slot.frames[depth]
                .ptr
                .store(name.as_ptr() as *mut u8, Ordering::Relaxed);
            slot.frames[depth].len.store(name.len(), Ordering::Relaxed);
        }
        slot.depth.store(depth + 1, Ordering::Relaxed);
        slot.end_write(odd);
        true
    })
    .unwrap_or(false)
}

/// Pop the innermost frame pushed by [`push_frame`]. Pending heap
/// tallies are flushed first so they are charged to the span that was
/// open while the bytes were allocated.
pub(crate) fn pop_frame() {
    let _ = SLOT.try_with(|s| {
        let slot = s.borrow();
        if let Some(guard) = slot.as_ref() {
            let slot = &guard.0;
            flush_pending(slot);
            let depth = slot.depth.load(Ordering::Relaxed);
            if depth == 0 {
                return;
            }
            let odd = slot.begin_write();
            slot.depth.store(depth - 1, Ordering::Relaxed);
            slot.end_write(odd);
        }
    });
}

/// Owner-side copy of this thread's current stack (no seqlock needed:
/// the owner is the only writer, so relaxed loads see its own stores).
fn own_stack(slot: &StackSlot) -> Vec<&'static str> {
    let depth = slot.depth.load(Ordering::Relaxed).min(MAX_STACK_DEPTH);
    slot.frames[..depth]
        .iter()
        .map(|frame| {
            let ptr = frame.ptr.load(Ordering::Relaxed) as *const u8;
            let len = frame.len.load(Ordering::Relaxed);
            // SAFETY: owner-side read of the raw parts this thread wrote
            // from `&'static str` names.
            unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr, len)) }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Sharded folded-stack tables
// ---------------------------------------------------------------------------

struct FoldedEntry {
    frames: Vec<&'static str>,
    value: u64,
    count: u64,
}

/// Hash buckets keyed by an FNV-1a hash of the frame pointer sequence;
/// collisions resolved by exact frame comparison inside the bucket.
struct FoldedTable {
    shards: [Mutex<HashMap<u64, Vec<FoldedEntry>>>; SHARDS],
}

impl FoldedTable {
    fn new() -> FoldedTable {
        FoldedTable {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn charge(&self, frames: &[&'static str], value: u64, count: u64) {
        let hash = stack_hash(frames);
        let mut shard = self.shards[(hash as usize) % SHARDS].lock().unwrap();
        let bucket = shard.entry(hash).or_default();
        if let Some(entry) = bucket.iter_mut().find(|e| e.frames == frames) {
            entry.value += value;
            entry.count += count;
        } else {
            bucket.push(FoldedEntry {
                frames: frames.to_vec(),
                value,
                count,
            });
        }
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().clear();
        }
    }

    /// Drain into `(folded-stack, value, count)` rows sorted by
    /// descending value then stack text for deterministic output.
    fn rows(&self) -> Vec<(String, u64, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for bucket in shard.lock().unwrap().values() {
                for entry in bucket {
                    out.push((entry.frames.join(";"), entry.value, entry.count));
                }
            }
        }
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }
}

fn stack_hash(frames: &[&'static str]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for frame in frames {
        for &part in &[frame.as_ptr() as u64, frame.len() as u64] {
            hash ^= part;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
    }
    hash
}

fn cpu_table() -> &'static FoldedTable {
    static TABLE: OnceLock<FoldedTable> = OnceLock::new();
    TABLE.get_or_init(FoldedTable::new)
}

fn heap_table() -> &'static FoldedTable {
    static TABLE: OnceLock<FoldedTable> = OnceLock::new();
    TABLE.get_or_init(FoldedTable::new)
}

// ---------------------------------------------------------------------------
// Heap attribution: the counting allocator and per-thread tallies
// ---------------------------------------------------------------------------

static G_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static G_ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static G_DEALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static G_DEALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
/// `G_ALLOC_BYTES` at the last [`reset`], for the residual `<untracked>`
/// computation.
static HEAP_BASE_BYTES: AtomicU64 = AtomicU64::new(0);

struct HeapTl {
    /// Cumulative bytes/count allocated by this thread while profiling
    /// was enabled (never reset; consumers take deltas).
    bytes: Cell<u64>,
    count: Cell<u64>,
    /// Bytes/count since the last span transition, waiting to be charged
    /// to the current stack.
    pending_bytes: Cell<u64>,
    pending_count: Cell<u64>,
}

thread_local! {
    static HEAP_TL: HeapTl = const {
        HeapTl {
            bytes: Cell::new(0),
            count: Cell::new(0),
            pending_bytes: Cell::new(0),
            pending_count: Cell::new(0),
        }
    };
}

/// Charge the thread's pending allocation tally to its current stack.
/// The pending cells are read-and-zeroed *before* the (possibly
/// allocating) table insert, so allocator re-entrancy simply accumulates
/// a fresh pending tally for the next flush instead of recursing.
fn flush_pending(slot: &StackSlot) {
    let (bytes, count) = HEAP_TL
        .try_with(|t| (t.pending_bytes.take(), t.pending_count.take()))
        .unwrap_or((0, 0));
    if bytes == 0 && count == 0 {
        return;
    }
    let stack = own_stack(slot);
    if stack.is_empty() {
        // Outside any span: leave it to the residual <untracked> bucket.
        return;
    }
    heap_table().charge(&stack, bytes, count);
}

/// Process-wide allocator totals (see [`global_heap_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Bytes handed out while profiling was enabled.
    pub alloc_bytes: u64,
    /// Allocations while profiling was enabled.
    pub alloc_count: u64,
    /// Bytes returned while profiling was enabled.
    pub dealloc_bytes: u64,
    /// Deallocations while profiling was enabled.
    pub dealloc_count: u64,
}

/// Process-wide [`CountingAlloc`] totals. Counts only advance while
/// profiling is enabled — the disabled allocator path is one relaxed
/// atomic load — so these are windowed totals, not lifetime totals.
pub fn global_heap_stats() -> HeapStats {
    HeapStats {
        alloc_bytes: G_ALLOC_BYTES.load(Ordering::Relaxed),
        alloc_count: G_ALLOC_COUNT.load(Ordering::Relaxed),
        dealloc_bytes: G_DEALLOC_BYTES.load(Ordering::Relaxed),
        dealloc_count: G_DEALLOC_COUNT.load(Ordering::Relaxed),
    }
}

/// This thread's cumulative `(bytes, count)` allocation tally while
/// profiling was enabled. Monotonic; take a delta around a work item to
/// attribute its allocations (the serve worker does this per request).
pub fn thread_alloc_stats() -> (u64, u64) {
    HEAP_TL
        .try_with(|t| (t.bytes.get(), t.count.get()))
        .unwrap_or((0, 0))
}

/// A `#[global_allocator]` wrapper over the system allocator that
/// attributes allocations to spans while profiling is enabled.
///
/// Install it per binary:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: rzen_obs::profile::CountingAlloc = rzen_obs::profile::CountingAlloc;
/// ```
///
/// While profiling is *disabled* every call is one relaxed atomic load
/// plus the system allocator — no thread-local access, no counting.
/// While enabled, global and per-thread tallies advance; a `realloc`
/// counts as an allocation of the new size plus a deallocation of the
/// old, so byte totals stay conserved.
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn note_alloc(size: usize) {
        if !crate::trace::profiling() {
            return;
        }
        G_ALLOC_BYTES.fetch_add(size as u64, Ordering::Relaxed);
        G_ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        let _ = HEAP_TL.try_with(|t| {
            t.bytes.set(t.bytes.get() + size as u64);
            t.count.set(t.count.get() + 1);
            t.pending_bytes.set(t.pending_bytes.get() + size as u64);
            t.pending_count.set(t.pending_count.get() + 1);
        });
    }

    #[inline]
    fn note_dealloc(size: usize) {
        if !crate::trace::profiling() {
            return;
        }
        G_DEALLOC_BYTES.fetch_add(size as u64, Ordering::Relaxed);
        G_DEALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    }
}

// SAFETY: defers every allocation to `System` unchanged; the wrapper
// only updates atomic/thread-local counters and never allocates itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            Self::note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            Self::note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::note_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            Self::note_alloc(new_size);
            Self::note_dealloc(layout.size());
        }
        new_ptr
    }
}

// ---------------------------------------------------------------------------
// The sampler thread
// ---------------------------------------------------------------------------

struct Sampler {
    stop: Arc<AtomicBool>,
    handle: JoinHandle<()>,
}

fn sampler() -> &'static Mutex<Option<Sampler>> {
    static SAMPLER: OnceLock<Mutex<Option<Sampler>>> = OnceLock::new();
    SAMPLER.get_or_init(|| Mutex::new(None))
}

/// Start the profiler: sets the profile bit (spans begin publishing
/// their stacks, the allocator begins counting) and spawns the sampler
/// thread at `hz` wakes per second (clamped to 1..=10 000). Returns
/// `false` without side effects if the profiler is already running —
/// start/stop are idempotent, not reference-counted.
pub fn start(hz: u32) -> bool {
    let mut guard = sampler().lock().unwrap();
    if guard.is_some() {
        return false;
    }
    crate::trace::set_profiling(true);
    let stop = Arc::new(AtomicBool::new(false));
    let period = Duration::from_nanos(1_000_000_000 / u64::from(hz.clamp(1, 10_000)));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("rzen-profiler".into())
        .spawn(move || sampler_loop(period, stop2))
        .expect("spawn profiler sampler thread");
    *guard = Some(Sampler { stop, handle });
    true
}

/// Stop the profiler: clears the profile bit and joins the sampler
/// thread. Returns `false` if it was not running (stop-without-start is
/// a no-op). Accumulated folded tables are kept for rendering; call
/// [`reset`] to clear them.
pub fn stop() -> bool {
    let taken = sampler().lock().unwrap().take();
    match taken {
        Some(sampler) => {
            crate::trace::set_profiling(false);
            sampler.stop.store(true, Ordering::Relaxed);
            let _ = sampler.handle.join();
            true
        }
        None => false,
    }
}

/// Is the sampler thread currently running?
pub fn is_running() -> bool {
    sampler().lock().unwrap().is_some()
}

fn sampler_loop(period: Duration, stop: Arc<AtomicBool>) {
    let samples = crate::counter!(
        "profile.samples_total",
        "span-stack samples accumulated by the CPU sampler"
    );
    let dropped = crate::counter!(
        "profile.dropped_samples_total",
        "sampler reads discarded because the seqlock kept tearing"
    );
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(period);
        let live: Vec<Arc<StackSlot>> = {
            let mut all = slots().lock().unwrap();
            all.retain(|s| s.alive.load(Ordering::Acquire));
            all.clone()
        };
        for slot in live {
            match read_stack(&slot) {
                Some(stack) if !stack.is_empty() => {
                    cpu_table().charge(&stack, 1, 1);
                    samples.inc();
                }
                Some(_) => {}
                None => dropped.inc(),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reset and rendering
// ---------------------------------------------------------------------------

/// Clear both folded tables and re-base the residual `<untracked>`
/// computation at the current global allocator totals. Per-thread
/// pending tallies from before the reset may still flush into the fresh
/// table at the next span transition; the residual computation saturates
/// rather than going negative.
pub fn reset() {
    cpu_table().clear();
    heap_table().clear();
    HEAP_BASE_BYTES.store(G_ALLOC_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// The accumulated "cpu" view — wall-clock span-stack samples, see the
/// module docs — as `(folded-stack, samples)` rows, sorted by descending
/// sample count.
pub fn cpu_folded() -> Vec<(String, u64)> {
    cpu_table()
        .rows()
        .into_iter()
        .map(|(stack, value, _)| (stack, value))
        .collect()
}

/// The accumulated heap view as `(folded-stack, bytes, allocations)`
/// rows, sorted by descending bytes, with a final [`UNTRACKED`] row
/// holding the residual between the global allocator totals (since the
/// last [`reset`]) and the sum of the named rows.
pub fn heap_folded() -> Vec<(String, u64, u64)> {
    // Flush this thread's own pending tally so a caller measuring around
    // its own spans sees them attributed.
    let _ = SLOT.try_with(|s| {
        if let Some(guard) = s.borrow().as_ref() {
            flush_pending(&guard.0);
        }
    });
    let mut rows = heap_table().rows();
    let named: u64 = rows.iter().map(|(_, bytes, _)| bytes).sum();
    let window = G_ALLOC_BYTES
        .load(Ordering::Relaxed)
        .saturating_sub(HEAP_BASE_BYTES.load(Ordering::Relaxed));
    let untracked = window.saturating_sub(named);
    if untracked > 0 {
        rows.push((UNTRACKED.to_string(), untracked, 0));
    }
    rows
}

/// Render the CPU view as folded-stack text (`a;b;c 42` per line), the
/// format consumed by every flamegraph toolchain.
pub fn render_folded_cpu() -> String {
    let mut out = String::new();
    for (stack, samples) in cpu_folded() {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&samples.to_string());
        out.push('\n');
    }
    out
}

/// Render the heap view as folded-stack text weighted by bytes
/// allocated, including the residual [`UNTRACKED`] line.
pub fn render_folded_heap() -> String {
    let mut out = String::new();
    for (stack, bytes, _) in heap_folded() {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&bytes.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that flip the global profile bit must not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn start_stop_idempotent() {
        let _g = lock();
        assert!(!stop(), "stop without start is a no-op");
        assert!(start(997));
        assert!(!start(997), "double start refused");
        assert!(is_running());
        assert!(stop());
        assert!(!stop(), "double stop refused");
        assert!(!is_running());
    }

    #[test]
    fn sampler_folds_span_stacks() {
        let _g = lock();
        reset();
        assert!(start(2_000));
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut seen = false;
        while !seen && std::time::Instant::now() < deadline {
            {
                let _outer = crate::span!("test.profile.outer");
                let _inner = crate::span!("test.profile.inner");
                for _ in 0..200 {
                    std::hint::black_box(vec![0u8; 64]);
                }
                // Samples are wall-clock: the nested stack stays published
                // while this thread sleeps, so the sampler cannot miss it
                // even when test parallelism delays its wakes.
                std::thread::sleep(Duration::from_millis(2));
            }
            seen = cpu_folded()
                .iter()
                .any(|(stack, _)| stack == "test.profile.outer;test.profile.inner");
        }
        assert!(stop());
        assert!(seen, "sampler observed the nested stack");
        let folded = render_folded_cpu();
        assert!(folded.contains("test.profile.outer"));
    }

    #[test]
    fn heap_charges_to_innermost_span() {
        let _g = lock();
        reset();
        crate::trace::set_profiling(true);
        {
            let _span = crate::span!("test.profile.heapspan");
            std::hint::black_box(vec![0u8; 4096]);
        }
        crate::trace::set_profiling(false);
        let rows = heap_folded();
        let named = rows
            .iter()
            .find(|(stack, _, _)| stack == "test.profile.heapspan")
            .expect("heap bytes attributed to the span");
        assert!(named.1 >= 4096, "at least the vec charged: {}", named.1);
    }

    #[test]
    fn torn_stack_reads_are_discarded() {
        let slot = StackSlot::new();
        let odd = slot.begin_write();
        assert!(read_stack(&slot).is_none(), "odd sequence rejected");
        slot.end_write(odd);
        assert_eq!(read_stack(&slot), Some(Vec::new()));
    }
}
