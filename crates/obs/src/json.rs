//! Minimal JSON helpers: string escaping for the exporters and a
//! dependency-free syntax validator used by tests and CI to check that
//! the emitted trace/stats files are well-formed.

/// Escape a string for inclusion inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validate that `s` is a single well-formed JSON value (syntax only —
/// no schema). Returns the byte offset and a message on failure.
pub fn validate(s: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

const MAX_DEPTH: u32 = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.depth += 1;
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.depth += 1;
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_json() {
        for s in [
            "null",
            "true",
            "-12.5e3",
            "\"a\\nb\\u00e9\"",
            "[]",
            "{}",
            "[1, {\"a\": [true, null]}, \"x\"]",
            "{\"k\": {\"nested\": [1.0, 2e-2]}}",
        ] {
            validate(s).unwrap_or_else(|e| panic!("{s:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_json() {
        for s in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "01abc",
            "\"unterminated",
            "[1] trailing",
            "{'single': 1}",
            "1.",
            "nul",
        ] {
            assert!(validate(s).is_err(), "{s:?} accepted");
        }
    }

    #[test]
    fn escape_round_trips_through_validator() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let json = format!("\"{}\"", escape(nasty));
        validate(&json).unwrap();
    }
}
