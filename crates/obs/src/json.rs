//! Minimal JSON helpers: string escaping for the exporters, a
//! dependency-free syntax validator used by tests and CI to check that
//! the emitted trace/stats files are well-formed, and a small [`Value`]
//! parser used by the serve layer to read wire-protocol requests.

/// Escape a string for inclusion inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validate that `s` is a single well-formed JSON value (syntax only —
/// no schema). Returns the byte offset and a message on failure.
pub fn validate(s: &str) -> Result<(), String> {
    parse(s).map(|_| ())
}

/// A parsed JSON value. Numbers are kept as `f64` (every value this
/// repo's protocols exchange fits losslessly).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse `s` as a single JSON value. Returns the byte offset and a
/// message on failure.
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

const MAX_DEPTH: u32 = 256;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|_| Value::Bool(false)),
            Some(b'n') => self.literal("null").map(|_| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number().map(Value::Num),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.depth += 1;
        self.expect(b'{')?;
        self.skip_ws();
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.depth += 1;
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out).map_err(|_| self.err("invalid utf-8"));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\' | b'/')) => {
                            out.push(c);
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push(0x08);
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push(0x0c);
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push(b'\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push(b'\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push(b'\t');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let mut code = 0u32;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => {
                                        code = code * 16 + (c as char).to_digit(16).unwrap();
                                        self.pos += 1;
                                    }
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                            // Surrogates would need pairing; the repo's own
                            // exporters never emit them, so reject rather
                            // than silently mangle.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unpaired surrogate in \\u escape"))?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_json() {
        for s in [
            "null",
            "true",
            "-12.5e3",
            "\"a\\nb\\u00e9\"",
            "[]",
            "{}",
            "[1, {\"a\": [true, null]}, \"x\"]",
            "{\"k\": {\"nested\": [1.0, 2e-2]}}",
        ] {
            validate(s).unwrap_or_else(|e| panic!("{s:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_json() {
        for s in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "01abc",
            "\"unterminated",
            "[1] trailing",
            "{'single': 1}",
            "1.",
            "nul",
        ] {
            assert!(validate(s).is_err(), "{s:?} accepted");
        }
    }

    #[test]
    fn parse_builds_values() {
        let v = parse("{\"op\":\"reach\",\"n\":3,\"ok\":true,\"s\":\"a\\nb\",\"xs\":[1,null]}")
            .unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("reach"));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("a\nb"));
        assert_eq!(
            v.get("xs"),
            Some(&Value::Arr(vec![Value::Num(1.0), Value::Null]))
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Num(1.5).as_u64(), None);
    }

    #[test]
    fn escape_round_trips_through_validator() {
        let nasty = "a\"b\\c\nd\te\u{1}";
        let json = format!("\"{}\"", escape(nasty));
        validate(&json).unwrap();
    }
}
