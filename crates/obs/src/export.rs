//! Exporters: Chrome trace-event JSON and the hierarchical phase report.

use std::collections::BTreeMap;

use crate::json::escape;
use crate::trace::{Event, Phase};

/// Render events as Chrome trace-event JSON (the "JSON array format"),
/// loadable in Perfetto or `chrome://tracing`. Spans become complete
/// (`"ph": "X"`) events, instants become thread-scoped instant
/// (`"ph": "i"`) events; timestamps and durations are microseconds since
/// the trace epoch. The event's subsystem (the first dotted name segment)
/// is exposed as the `cat` field so the UI can filter by layer.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{");
        let cat = e.name.split('.').next().unwrap_or("misc");
        out.push_str(&format!(
            "\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}",
            escape(e.name),
            escape(cat),
            e.tid,
            fmt_us(e.start_ns)
        ));
        match e.phase {
            Phase::Span => out.push_str(&format!(",\"ph\":\"X\",\"dur\":{}", fmt_us(e.dur_ns))),
            Phase::Instant => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
        }
        let args: Vec<String> = e
            .args
            .iter()
            .filter(|a| !a.key.is_empty())
            .map(|a| format!("\"{}\":{}", escape(a.key), a.val))
            .collect();
        if !args.is_empty() {
            out.push_str(&format!(",\"args\":{{{}}}", args.join(",")));
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

/// Nanoseconds → microseconds with three decimals (Chrome's `ts` unit),
/// without going through floats (exact, locale-free).
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

#[derive(Default)]
struct PhaseAgg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
    instants: u64,
}

/// Render a human-readable report: every span name aggregated (count,
/// total, mean, max), indented hierarchically by its dotted name segments
/// so `bdd.solve` and `bdd.any_sat` group under `bdd`. Instant events are
/// listed with counts only.
pub fn phase_report(events: &[Event]) -> String {
    let mut agg: BTreeMap<&'static str, PhaseAgg> = BTreeMap::new();
    for e in events {
        let a = agg.entry(e.name).or_default();
        match e.phase {
            Phase::Span => {
                a.count += 1;
                a.total_ns += e.dur_ns;
                a.max_ns = a.max_ns.max(e.dur_ns);
            }
            Phase::Instant => a.instants += 1,
        }
    }
    if agg.is_empty() {
        return "phase report: no events recorded\n".to_string();
    }
    let mut out = String::from("phase report (per span name: count / total / mean / max)\n");
    let dropped = crate::trace::events_dropped();
    if dropped > 0 {
        out.push_str(&format!(
            "  WARNING: {dropped} events lost to span-ring wrap-around — totals undercount\n"
        ));
    }
    let mut last_root = "";
    for (name, a) in &agg {
        let root = name.split('.').next().unwrap_or(name);
        if root != last_root {
            out.push_str(&format!("  {root}\n"));
            last_root = root;
        }
        let depth = name.matches('.').count().max(1);
        let indent = "  ".repeat(depth + 1);
        if let Some(mean) = a.total_ns.checked_div(a.count) {
            out.push_str(&format!(
                "{indent}{name:<28} {:>8} × {:>10} total {:>10} mean {:>10} max\n",
                a.count,
                fmt_dur(a.total_ns),
                fmt_dur(mean),
                fmt_dur(a.max_ns)
            ));
        }
        if a.instants > 0 {
            out.push_str(&format!("{indent}{name:<28} {:>8} events\n", a.instants));
        }
    }
    out
}

fn fmt_dur(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Arg;

    fn ev(name: &'static str, phase: Phase, start: u64, dur: u64) -> Event {
        Event {
            name,
            phase,
            start_ns: start,
            dur_ns: dur,
            tid: 1,
            args: [Arg { key: "n", val: 2 }, Arg::default()],
        }
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let events = vec![
            ev("bdd.solve", Phase::Span, 1_500, 2_000),
            ev("sat.restart", Phase::Instant, 2_000, 0),
        ];
        let json = chrome_trace(&events);
        crate::json::validate(&json).unwrap();
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"cat\":\"bdd\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"args\":{\"n\":2}"));
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let json = chrome_trace(&[]);
        crate::json::validate(&json).unwrap();
    }

    #[test]
    fn phase_report_groups_by_subsystem() {
        let events = vec![
            ev("bdd.solve", Phase::Span, 0, 5_000),
            ev("bdd.solve", Phase::Span, 10, 3_000),
            ev("engine.query", Phase::Span, 20, 9_000),
            ev("sat.restart", Phase::Instant, 30, 0),
        ];
        let report = phase_report(&events);
        assert!(report.contains("bdd.solve"));
        assert!(report.contains("2 ×"));
        assert!(report.contains("engine.query"));
        assert!(report.contains("sat.restart"));
        assert!(phase_report(&[]).contains("no events"));
    }
}
