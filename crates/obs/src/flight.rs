//! The flight recorder: an always-on, lock-free ring of per-request
//! records plus a top-K slow-query table.
//!
//! Where [`crate::trace`] answers "where does the time go inside one
//! operation" (and must be switched on), the flight recorder answers
//! "which requests went through this process recently, and which were
//! slow" — continuously, at a cost low enough to leave on in production:
//! one atomic ticket fetch plus a seqlock-protected 15-word write per
//! *request* (not per event), and no allocation anywhere on the record
//! path.
//!
//! ## Request identity
//!
//! A [`RequestCtx`] is minted once per request at serve admission (or per
//! query in a batch) from a process-wide monotonic counter, and carries
//! the model fingerprint and mutation generation the request was admitted
//! under. The id is threaded through spans (as a `"req"` argument), the
//! in-flight coalescer (followers record their leader's id), and the
//! flight record, so one request can be followed across every layer.
//!
//! ## Concurrency
//!
//! The ring is a fixed array of seqlock slots. A writer claims a slot
//! with one `fetch_add` on the head ticket, marks the slot's sequence
//! odd, writes the record as relaxed word stores, and publishes an even
//! sequence. Readers ([`snapshot`]) sample each slot's sequence before
//! and after copying and discard torn reads. The record payload is held
//! as relaxed `AtomicU64` words rather than a plain struct so that a
//! read racing a write is *defined* (and then discarded by the sequence
//! check) instead of a data race. Writers never wait on readers or on
//! each other; a reader racing a writer simply skips that slot.
//!
//! The slow table keeps the K largest-latency records seen since
//! startup. Requests faster than the table's current minimum skip the
//! lock entirely (one relaxed atomic load); only candidate slow requests
//! take the small mutex.

use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default ring capacity, in records.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Slow-query table size.
pub const SLOW_K: usize = 16;

/// Fixed-size inline string for ops and endpoints: no allocation on the
/// record path. Longer inputs are truncated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SmallStr {
    len: u8,
    buf: [u8; 15],
}

impl SmallStr {
    /// Build from a `&str`, truncating (on a char boundary) to 15 bytes.
    pub fn new(s: &str) -> SmallStr {
        let mut end = s.len().min(15);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut buf = [0u8; 15];
        buf[..end].copy_from_slice(&s.as_bytes()[..end]);
        SmallStr {
            len: end as u8,
            buf,
        }
    }

    /// The stored text.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.buf[..self.len as usize]).unwrap_or("")
    }

    /// Pack into two little-endian words for the ring's atomic slots.
    fn pack(self) -> [u64; 2] {
        let mut bytes = [0u8; 16];
        bytes[0] = self.len;
        bytes[1..].copy_from_slice(&self.buf);
        [
            u64::from_le_bytes(bytes[..8].try_into().unwrap()),
            u64::from_le_bytes(bytes[8..].try_into().unwrap()),
        ]
    }

    /// Inverse of [`SmallStr::pack`]. The length is clamped defensively;
    /// `as_str` additionally validates UTF-8, so arbitrary words can
    /// never produce an invalid string.
    fn unpack(words: [u64; 2]) -> SmallStr {
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&words[0].to_le_bytes());
        bytes[8..].copy_from_slice(&words[1].to_le_bytes());
        let mut buf = [0u8; 15];
        buf.copy_from_slice(&bytes[1..]);
        SmallStr {
            len: bytes[0].min(15),
            buf,
        }
    }
}

/// Verdict classification of a finished request — the engine verdicts
/// plus the serve-layer outcomes that never reach the engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(u8)]
pub enum VerdictClass {
    /// Satisfiable (witness found).
    Sat,
    /// Proven unsatisfiable.
    Unsat,
    /// Deadline expired.
    Timeout,
    /// Cancelled before a verdict.
    Cancelled,
    /// The request errored (panic, analysis failure).
    #[default]
    Error,
    /// A non-verdict op (hsa / paths / sleep) answered normally.
    Ok,
    /// Shed by the full admission queue.
    Overloaded,
    /// Refused during drain.
    ShuttingDown,
    /// The request line did not parse.
    BadRequest,
    /// An endpoint name did not resolve against the model.
    ResolveFailed,
    /// The worker disappeared before answering.
    WorkerLost,
}

impl VerdictClass {
    /// Stable lowercase label, used in JSON and metric labels.
    pub fn as_str(self) -> &'static str {
        match self {
            VerdictClass::Sat => "sat",
            VerdictClass::Unsat => "unsat",
            VerdictClass::Timeout => "timeout",
            VerdictClass::Cancelled => "cancelled",
            VerdictClass::Error => "error",
            VerdictClass::Ok => "ok",
            VerdictClass::Overloaded => "overloaded",
            VerdictClass::ShuttingDown => "shutting_down",
            VerdictClass::BadRequest => "bad_request",
            VerdictClass::ResolveFailed => "resolve_failed",
            VerdictClass::WorkerLost => "worker_lost",
        }
    }

    /// Inverse of `self as u8` for ring decoding; unknown values (which
    /// a validated seqlock read never produces) fall back to the default.
    fn from_u8(v: u8) -> VerdictClass {
        match v {
            0 => VerdictClass::Sat,
            1 => VerdictClass::Unsat,
            2 => VerdictClass::Timeout,
            3 => VerdictClass::Cancelled,
            5 => VerdictClass::Ok,
            6 => VerdictClass::Overloaded,
            7 => VerdictClass::ShuttingDown,
            8 => VerdictClass::BadRequest,
            9 => VerdictClass::ResolveFailed,
            10 => VerdictClass::WorkerLost,
            _ => VerdictClass::Error,
        }
    }

    /// Did the request fail at the serve layer (as opposed to carrying an
    /// engine verdict or a normal non-verdict answer)?
    pub fn is_serve_error(self) -> bool {
        matches!(
            self,
            VerdictClass::Error
                | VerdictClass::Overloaded
                | VerdictClass::ShuttingDown
                | VerdictClass::BadRequest
                | VerdictClass::ResolveFailed
                | VerdictClass::WorkerLost
        )
    }
}

/// Which backend answered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(u8)]
pub enum BackendClass {
    /// No backend ran (errors, non-verdict ops, joiners).
    #[default]
    None,
    /// The BDD pipeline decided.
    Bdd,
    /// The SAT/SMT pipeline decided.
    Smt,
    /// Served from the result cache.
    Cache,
}

impl BackendClass {
    /// Stable lowercase label.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendClass::None => "none",
            BackendClass::Bdd => "bdd",
            BackendClass::Smt => "smt",
            BackendClass::Cache => "cache",
        }
    }

    /// Inverse of `self as u8` for ring decoding.
    fn from_u8(v: u8) -> BackendClass {
        match v {
            1 => BackendClass::Bdd,
            2 => BackendClass::Smt,
            3 => BackendClass::Cache,
            _ => BackendClass::None,
        }
    }
}

/// Record flag: the verdict came from the result cache.
pub const FLAG_CACHE_HIT: u8 = 1 << 0;
/// Record flag: the request coalesced onto an identical in-flight leader.
pub const FLAG_COALESCED: u8 = 1 << 1;
/// Record flag: solved through a warm solver session.
pub const FLAG_SESSION: u8 = 1 << 2;

/// One finished request, as kept by the ring and the slow table.
#[derive(Clone, Copy, Debug, Default)]
pub struct RequestRecord {
    /// Monotonic process-wide request id (from [`RequestCtx::mint`]).
    pub id: u64,
    /// Microseconds since the flight-recorder epoch (process start).
    pub start_us: u64,
    /// Request wall latency in microseconds.
    pub latency_us: u64,
    /// Composite model fingerprint the request was admitted under.
    pub model: u64,
    /// Model mutation generation at admission.
    pub generation: u64,
    /// Leader's request id when coalesced (0 otherwise).
    pub leader: u64,
    /// Operation (`reach`, `drops`, `sleep`, ...).
    pub op: SmallStr,
    /// Source endpoint, as given by the client.
    pub src: SmallStr,
    /// Destination endpoint.
    pub dst: SmallStr,
    /// How the request ended.
    pub verdict: VerdictClass,
    /// Which backend decided.
    pub backend: BackendClass,
    /// `FLAG_*` bits.
    pub flags: u8,
    /// Heap bytes the worker allocated serving this request, as tallied
    /// by [`crate::profile::CountingAlloc`]. Zero unless profiling was
    /// enabled while the request ran.
    pub alloc_bytes: u64,
    /// Allocation count behind `alloc_bytes` (same enablement rule).
    pub alloc_count: u64,
    /// Engine shard that served the request, stored as `shard_id + 1`;
    /// 0 means "not sharded" (threads mode / batch) and renders as -1.
    pub shard: u16,
}

/// Words per encoded [`RequestRecord`] in a ring slot.
const RECORD_WORDS: usize = 15;

impl RequestRecord {
    /// Encode into the ring's fixed word layout: eight u64 fields, three
    /// packed [`SmallStr`]s, and one word of verdict/backend/flags bytes.
    /// Explicit (de)serialization — rather than transmuting the struct —
    /// keeps the atomic slot words free of padding/uninit bytes.
    fn encode(&self) -> [u64; RECORD_WORDS] {
        let op = self.op.pack();
        let src = self.src.pack();
        let dst = self.dst.pack();
        [
            self.id,
            self.start_us,
            self.latency_us,
            self.model,
            self.generation,
            self.leader,
            self.alloc_bytes,
            self.alloc_count,
            op[0],
            op[1],
            src[0],
            src[1],
            dst[0],
            dst[1],
            u64::from(self.verdict as u8)
                | u64::from(self.backend as u8) << 8
                | u64::from(self.flags) << 16
                | u64::from(self.shard) << 24,
        ]
    }

    /// Inverse of [`RequestRecord::encode`].
    fn decode(words: &[u64; RECORD_WORDS]) -> RequestRecord {
        RequestRecord {
            id: words[0],
            start_us: words[1],
            latency_us: words[2],
            model: words[3],
            generation: words[4],
            leader: words[5],
            alloc_bytes: words[6],
            alloc_count: words[7],
            op: SmallStr::unpack([words[8], words[9]]),
            src: SmallStr::unpack([words[10], words[11]]),
            dst: SmallStr::unpack([words[12], words[13]]),
            verdict: VerdictClass::from_u8(words[14] as u8),
            backend: BackendClass::from_u8((words[14] >> 8) as u8),
            flags: (words[14] >> 16) as u8,
            shard: (words[14] >> 24) as u16,
        }
    }

    /// Render as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"req\":{},\"start_us\":{},\"latency_us\":{},\"op\":\"{}\",\"src\":\"{}\",\
             \"dst\":\"{}\",\"verdict\":\"{}\",\"backend\":\"{}\",\"cache_hit\":{},\
             \"coalesced\":{},\"session\":{},\"leader\":{},\"model\":\"{:016x}\",\"generation\":{},\
             \"alloc_bytes\":{},\"alloc_count\":{},\"shard\":{}}}",
            self.id,
            self.start_us,
            self.latency_us,
            crate::json::escape(self.op.as_str()),
            crate::json::escape(self.src.as_str()),
            crate::json::escape(self.dst.as_str()),
            self.verdict.as_str(),
            self.backend.as_str(),
            self.flags & FLAG_CACHE_HIT != 0,
            self.flags & FLAG_COALESCED != 0,
            self.flags & FLAG_SESSION != 0,
            self.leader,
            self.model,
            self.generation,
            self.alloc_bytes,
            self.alloc_count,
            i64::from(self.shard) - 1,
        )
    }
}

/// Request identity and model provenance, minted once per request at
/// admission and threaded through spans, the coalescer, and the flight
/// record.
#[derive(Clone, Copy, Debug)]
pub struct RequestCtx {
    /// Monotonic process-wide request id (never 0).
    pub id: u64,
    /// Composite model fingerprint at admission.
    pub model: u64,
    /// Model mutation generation at admission.
    pub generation: u64,
    /// Serving shard as `shard_id + 1`; 0 until (unless) the reactor
    /// routes the request to a shard.
    pub shard: u16,
}

static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

impl RequestCtx {
    /// Mint the next request id, stamped with the model identity the
    /// request is being admitted under.
    pub fn mint(model: u64, generation: u64) -> RequestCtx {
        RequestCtx {
            id: NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed),
            model,
            generation,
            shard: 0,
        }
    }
}

/// One seqlock slot: an odd sequence marks a write in progress; a reader
/// accepts a copy only when the sequence was even and unchanged around
/// it. The payload is relaxed `AtomicU64` words (the encoded record) so
/// a read racing a write yields defined — if torn — values that the
/// sequence check then discards; no `unsafe` anywhere on this path.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; RECORD_WORDS],
}

struct Ring {
    slots: Box<[Slot]>,
    head: AtomicU64,
}

struct Flight {
    ring: Ring,
    slow: Mutex<Vec<RequestRecord>>,
    /// Latency floor for the slow table: requests at or below it cannot
    /// displace an entry, so the common (fast) path never takes the lock.
    slow_floor: AtomicU64,
    epoch: Instant,
}

static FLIGHT: OnceLock<Flight> = OnceLock::new();
static CONFIGURED_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);

fn new_flight(capacity: usize) -> Flight {
    let capacity = capacity.max(16);
    let slots = (0..capacity)
        .map(|_| Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        })
        .collect();
    Flight {
        ring: Ring {
            slots,
            head: AtomicU64::new(0),
        },
        slow: Mutex::new(Vec::with_capacity(SLOW_K)),
        slow_floor: AtomicU64::new(0),
        epoch: Instant::now(),
    }
}

fn flight() -> &'static Flight {
    FLIGHT.get_or_init(|| new_flight(CONFIGURED_CAPACITY.load(Ordering::Relaxed)))
}

/// Set the ring capacity (in records) before the first record is written.
/// Once the recorder has materialized, the capacity is fixed; a late call
/// is a silent no-op — resizing a lock-free ring under writers is not
/// worth the complexity for a debug facility.
pub fn set_capacity(records: usize) {
    CONFIGURED_CAPACITY.store(records.max(16), Ordering::Relaxed);
}

/// Ring capacity currently in effect.
pub fn capacity() -> usize {
    flight().ring.slots.len()
}

/// Microseconds since the flight-recorder epoch, for stamping
/// [`RequestRecord::start_us`].
pub fn now_us() -> u64 {
    flight().epoch.elapsed().as_micros() as u64
}

/// Append one finished request. Lock-free: one `fetch_add` plus a
/// seqlock-guarded 15-word store; never allocates, never blocks.
pub fn record(rec: RequestRecord) {
    let f = flight();
    let ticket = f.ring.head.fetch_add(1, Ordering::Relaxed);
    let slot = &f.ring.slots[(ticket % f.ring.slots.len() as u64) as usize];
    // Claim: odd sequence tells readers a write is in progress. Two
    // writers can only collide on a slot a full ring-lap apart; the
    // sequence still changes, so a reader spanning both discards. The
    // release fence keeps the relaxed data stores below from becoming
    // visible before the odd claim — a reader that observes any of them
    // (relaxed loads + acquire fence) then re-reads `seq` and sees the
    // odd value. A release *store* of the claim would not give that
    // ordering; release only orders earlier operations.
    let claimed = ticket.wrapping_mul(2).wrapping_add(1);
    slot.seq.store(claimed, Ordering::Relaxed);
    fence(Ordering::Release);
    for (word, value) in slot.words.iter().zip(rec.encode()) {
        word.store(value, Ordering::Relaxed);
    }
    slot.seq.store(claimed.wrapping_add(1), Ordering::Release);

    // Slow-table admission. Fast path: one relaxed load against the
    // current floor. The floor only rises, so a stale read can cause at
    // worst one unnecessary lock, never a missed admission.
    if rec.latency_us > f.slow_floor.load(Ordering::Relaxed) {
        maybe_admit_slow(f, rec);
    }
}

fn maybe_admit_slow(f: &Flight, rec: RequestRecord) {
    if rec.latency_us <= f.slow_floor.load(Ordering::Relaxed) {
        return;
    }
    let mut slow = f.slow.lock().unwrap();
    if slow.len() < SLOW_K {
        slow.push(rec);
    } else {
        let (mi, min) = slow
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.latency_us)
            .map(|(i, r)| (i, r.latency_us))
            .unwrap();
        if rec.latency_us <= min {
            return;
        }
        slow[mi] = rec;
    }
    if slow.len() == SLOW_K {
        let floor = slow.iter().map(|r| r.latency_us).min().unwrap_or(0);
        f.slow_floor.store(floor, Ordering::Relaxed);
    }
}

/// Copy out the ring's live records, oldest first. Torn slots (a writer
/// was mid-store) are skipped; with the ring orders of magnitude larger
/// than the writer count, that loses at most a handful of records.
pub fn snapshot() -> Vec<RequestRecord> {
    let f = flight();
    let head = f.ring.head.load(Ordering::Acquire);
    let cap = f.ring.slots.len() as u64;
    let live = head.min(cap);
    let mut out = Vec::with_capacity(live as usize);
    // Oldest live ticket first.
    for ticket in head.saturating_sub(cap)..head {
        let slot = &f.ring.slots[(ticket % cap) as usize];
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 % 2 == 1 {
            continue;
        }
        let mut words = [0u64; RECORD_WORDS];
        for (copy, word) in words.iter_mut().zip(&slot.words) {
            *copy = word.load(Ordering::Relaxed);
        }
        // The acquire fence keeps the relaxed data loads above from
        // sinking below the `seq` re-read: a load that raced a writer's
        // store makes that writer's odd claim visible to the re-read
        // (release fence in `record`), so the copy is discarded.
        fence(Ordering::Acquire);
        let s2 = slot.seq.load(Ordering::Relaxed);
        if s1 == s2 && s1 != 0 {
            out.push(RequestRecord::decode(&words));
        }
    }
    out
}

/// The slow-query table, slowest first. At most [`SLOW_K`] entries.
pub fn slow_snapshot() -> Vec<RequestRecord> {
    let mut slow = flight().slow.lock().unwrap().clone();
    slow.sort_by_key(|r| std::cmp::Reverse(r.latency_us));
    slow
}

/// Total requests recorded since startup (including ones since
/// overwritten by ring wrap).
pub fn records_written() -> u64 {
    flight().ring.head.load(Ordering::Relaxed)
}

/// Render `records` as a JSON array (`/debug/requests`, `/debug/slow`).
pub fn render_json(records: &[RequestRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 160 + 2);
    out.push('[');
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&r.to_json());
    }
    out.push_str("\n]\n");
    out
}

/// Render the slow table as an aligned text table (CLI `batch` output).
pub fn render_slow_text() -> String {
    let slow = slow_snapshot();
    if slow.is_empty() {
        return "slow-query table: empty\n".to_string();
    }
    let mut out = String::from(
        "slow-query table (top latencies since start)\n  req        latency      op        src->dst                verdict    backend\n",
    );
    for r in &slow {
        out.push_str(&format!(
            "  {:<10} {:>8}µs   {:<9} {:<23} {:<10} {}{}\n",
            r.id,
            r.latency_us,
            r.op.as_str(),
            format!("{}->{}", r.src.as_str(), r.dst.as_str()),
            r.verdict.as_str(),
            r.backend.as_str(),
            if r.flags & FLAG_CACHE_HIT != 0 {
                " (cache)"
            } else if r.flags & FLAG_COALESCED != 0 {
                " (coalesced)"
            } else {
                ""
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, latency_us: u64) -> RequestRecord {
        RequestRecord {
            id,
            latency_us,
            op: SmallStr::new("reach"),
            src: SmallStr::new("u1:1"),
            dst: SmallStr::new("u3:2"),
            verdict: VerdictClass::Sat,
            backend: BackendClass::Bdd,
            ..RequestRecord::default()
        }
    }

    #[test]
    fn small_str_truncates_on_char_boundary() {
        assert_eq!(SmallStr::new("reach").as_str(), "reach");
        assert_eq!(SmallStr::new("").as_str(), "");
        let long = "abcdefghijklmnopqrstuvwxyz";
        assert_eq!(SmallStr::new(long).as_str(), &long[..15]);
        // Multi-byte char straddling the cut is dropped whole.
        let uni = "aaaaaaaaaaaaaa\u{00e9}"; // 14 ASCII + 2-byte é = 16 bytes
        assert_eq!(SmallStr::new(uni).as_str(), "aaaaaaaaaaaaaa");
    }

    #[test]
    fn record_encoding_round_trips() {
        let mut r = rec(12_345, 678);
        r.start_us = 11;
        r.model = u64::MAX;
        r.generation = 7;
        r.leader = 9;
        r.alloc_bytes = 1 << 40;
        r.alloc_count = 3;
        r.flags = FLAG_CACHE_HIT | FLAG_SESSION;
        r.shard = 513;
        // to_json covers every field, so equal JSON means a faithful trip.
        assert_eq!(RequestRecord::decode(&r.encode()).to_json(), r.to_json());

        for verdict in [
            VerdictClass::Sat,
            VerdictClass::Unsat,
            VerdictClass::Timeout,
            VerdictClass::Cancelled,
            VerdictClass::Error,
            VerdictClass::Ok,
            VerdictClass::Overloaded,
            VerdictClass::ShuttingDown,
            VerdictClass::BadRequest,
            VerdictClass::ResolveFailed,
            VerdictClass::WorkerLost,
        ] {
            assert_eq!(VerdictClass::from_u8(verdict as u8), verdict);
        }
        for backend in [
            BackendClass::None,
            BackendClass::Bdd,
            BackendClass::Smt,
            BackendClass::Cache,
        ] {
            assert_eq!(BackendClass::from_u8(backend as u8), backend);
        }
    }

    #[test]
    fn mint_is_monotonic() {
        let a = RequestCtx::mint(1, 0);
        let b = RequestCtx::mint(1, 0);
        assert!(b.id > a.id);
        assert!(a.id > 0);
    }

    #[test]
    fn record_and_snapshot_round_trip() {
        record(rec(u64::MAX - 7, 42));
        let snap = snapshot();
        let got = snap
            .iter()
            .find(|r| r.id == u64::MAX - 7)
            .expect("record visible in snapshot");
        assert_eq!(got.latency_us, 42);
        assert_eq!(got.op.as_str(), "reach");
        assert_eq!(got.verdict, VerdictClass::Sat);
        crate::json::validate(&render_json(&snap)).unwrap();
    }

    #[test]
    fn slow_table_keeps_the_k_slowest() {
        // Ids in a disjoint range so parallel tests don't interfere.
        let base = 1 << 40;
        for i in 0..200u64 {
            record(rec(base + i, i * 1_000_000));
        }
        let slow = slow_snapshot();
        assert_eq!(slow.len(), SLOW_K);
        // Slowest first, strictly ordered.
        for w in slow.windows(2) {
            assert!(w[0].latency_us >= w[1].latency_us);
        }
        assert_eq!(slow[0].latency_us, 199_000_000);
    }

    #[test]
    fn concurrent_writers_never_tear_records() {
        use std::sync::atomic::AtomicBool;
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let stop = &stop;
                s.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // Self-consistent payload: latency == id low bits.
                        let id = (2 << 40) + t * 1_000_000 + i;
                        let mut r = rec(id, id & 0xffff);
                        r.generation = id & 0xffff;
                        record(r);
                        i += 1;
                    }
                });
            }
            for _ in 0..50 {
                for r in snapshot() {
                    if r.id >= (2 << 40) {
                        assert_eq!(
                            r.latency_us,
                            r.id & 0xffff,
                            "torn record escaped the seqlock"
                        );
                        assert_eq!(r.generation, r.id & 0xffff);
                    }
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
    }
}
