//! The global metrics registry: atomic counters, gauges, and histograms.
//!
//! Metrics are registered lazily at the first use of a call site through
//! the [`counter!`](crate::counter), [`gauge!`](crate::gauge), and
//! [`histogram!`](crate::histogram) macros, which cache the registry
//! lookup in a per-call-site `OnceLock` so the steady-state cost of an
//! update is one acquire load plus one relaxed atomic add. Registration
//! deduplicates by name (and label set), so two call sites naming the
//! same metric share one instrument.
//!
//! ## Labels
//!
//! A metric may carry a small set of `key="value"` labels, turning one
//! name into a *family* of instruments (`engine.backend.wins` split by
//! `backend="bdd"` / `backend="smt"`). Labels with values known at the
//! call site go through the macros (`counter!("n", "h", "backend" =>
//! "bdd")`), which cache as usual; labels whose value is chosen at run
//! time (an error `kind`) go through [`Registry::counter_with`] directly —
//! a mutex lookup per call, acceptable on rare paths. Every instrument in
//! a family must have the same kind.
//!
//! ## Exposition
//!
//! [`Registry::render_prometheus`] renders the registry in the Prometheus
//! text exposition format: dotted names become underscored, counters gain
//! a `_total` suffix, and the log₂ histograms render as cumulative
//! `_bucket{le="..."}` series whose `+Inf` bucket equals `_count` even
//! while other threads are updating the histogram.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter (normally obtained through the registry).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, live worker counts).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge (normally obtained through the registry).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjust the value by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i > 0`
/// holds values in `[2^(i-1), 2^i)`.
const BUCKETS: usize = 64;

/// A log₂-bucketed histogram of `u64` observations (latencies in
/// microseconds, sizes in nodes). Quantiles are estimated from bucket
/// upper bounds, so they are accurate to a factor of two — plenty for
/// "where did the time go" questions, and recording stays lock-free.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram (normally obtained through the registry).
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// One read of every bucket. Exposition derives its `_count` from the
    /// sum of this array rather than [`Histogram::count`] so the `+Inf`
    /// cumulative bucket always equals `_count`, even when observers race
    /// with `observe` between the two atomics.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket containing the target rank. Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }
}

enum MetricRef {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl MetricRef {
    fn kind(&self) -> &'static str {
        match self {
            MetricRef::Counter(_) => "counter",
            MetricRef::Gauge(_) => "gauge",
            MetricRef::Histogram(_) => "histogram",
        }
    }
}

/// An owned label set: keys are static (they come from call sites), values
/// may be chosen at run time.
type Labels = Vec<(&'static str, String)>;

struct Entry {
    name: &'static str,
    help: &'static str,
    labels: Labels,
    metric: MetricRef,
}

fn labels_eq(owned: &Labels, wanted: &[(&'static str, &str)]) -> bool {
    owned.len() == wanted.len()
        && owned
            .iter()
            .zip(wanted)
            .all(|((ok, ov), (wk, wv))| ok == wk && ov == wv)
}

/// The process-wide metric registry. Obtain it with [`registry`].
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        entries: Mutex::new(Vec::new()),
    })
}

/// A point-in-time reading of one registered metric.
#[derive(Clone, Debug)]
pub struct MetricSnapshot {
    /// Dotted metric name (`"bdd.mk.calls"`).
    pub name: &'static str,
    /// One-line description supplied at registration.
    pub help: &'static str,
    /// Label set (empty for unlabeled metrics).
    pub labels: Vec<(&'static str, String)>,
    /// The value, by instrument kind.
    pub value: SnapshotValue,
}

impl MetricSnapshot {
    /// `name` with a `{k=v,...}` suffix when labels are present — the
    /// display key used by the text and JSON renderers.
    pub fn display_name(&self) -> String {
        if self.labels.is_empty() {
            return self.name.to_string();
        }
        let body: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }
}

/// The value part of a [`MetricSnapshot`].
#[derive(Clone, Debug)]
pub enum SnapshotValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram summary.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// Estimated median.
        p50: u64,
        /// Estimated 95th percentile.
        p95: u64,
    },
}

impl Registry {
    /// Find-or-create the counter `name`. Panics if `name` is already
    /// registered as a different instrument kind (a programming error).
    pub fn counter(&self, name: &'static str, help: &'static str) -> &'static Counter {
        self.counter_with(name, help, &[])
    }

    /// Find-or-create the counter `name` with `labels`. Every member of a
    /// name family must be a counter; a kind mismatch panics.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> &'static Counter {
        let mut entries = self.entries.lock().unwrap();
        for e in entries.iter().filter(|e| e.name == name) {
            let MetricRef::Counter(c) = e.metric else {
                panic!("metric {name:?} already registered with a different kind");
            };
            if labels_eq(&e.labels, labels) {
                return c;
            }
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new()));
        entries.push(Entry {
            name,
            help,
            labels: labels.iter().map(|(k, v)| (*k, v.to_string())).collect(),
            metric: MetricRef::Counter(c),
        });
        c
    }

    /// Find-or-create the gauge `name`. Panics on a kind mismatch.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> &'static Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Find-or-create the gauge `name` with `labels`. Panics on a kind
    /// mismatch anywhere in the name family.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> &'static Gauge {
        let mut entries = self.entries.lock().unwrap();
        for e in entries.iter().filter(|e| e.name == name) {
            let MetricRef::Gauge(g) = e.metric else {
                panic!("metric {name:?} already registered with a different kind");
            };
            if labels_eq(&e.labels, labels) {
                return g;
            }
        }
        let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
        entries.push(Entry {
            name,
            help,
            labels: labels.iter().map(|(k, v)| (*k, v.to_string())).collect(),
            metric: MetricRef::Gauge(g),
        });
        g
    }

    /// Find-or-create the histogram `name`. Panics on a kind mismatch.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> &'static Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Find-or-create the histogram `name` with `labels`. Panics on a
    /// kind mismatch anywhere in the name family.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> &'static Histogram {
        let mut entries = self.entries.lock().unwrap();
        for e in entries.iter().filter(|e| e.name == name) {
            let MetricRef::Histogram(h) = e.metric else {
                panic!("metric {name:?} already registered with a different kind");
            };
            if labels_eq(&e.labels, labels) {
                return h;
            }
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        entries.push(Entry {
            name,
            help,
            labels: labels.iter().map(|(k, v)| (*k, v.to_string())).collect(),
            metric: MetricRef::Histogram(h),
        });
        h
    }

    /// Read every registered metric, sorted by name then labels.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let entries = self.entries.lock().unwrap();
        let mut out: Vec<MetricSnapshot> = entries
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name,
                help: e.help,
                labels: e.labels.clone(),
                value: match e.metric {
                    MetricRef::Counter(c) => SnapshotValue::Counter(c.get()),
                    MetricRef::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    MetricRef::Histogram(h) => SnapshotValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        p50: h.quantile(0.50),
                        p95: h.quantile(0.95),
                    },
                },
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(b.name).then_with(|| a.labels.cmp(&b.labels)));
        out
    }

    /// Render every metric as an aligned text table.
    pub fn render_text(&self) -> String {
        let snap = self.snapshot();
        let names: Vec<String> = snap.iter().map(|s| s.display_name()).collect();
        let width = names.iter().map(String::len).max().unwrap_or(0);
        let mut out = String::new();
        for (s, name) in snap.iter().zip(&names) {
            let value = match s.value {
                SnapshotValue::Counter(v) => format!("{v}"),
                SnapshotValue::Gauge(v) => format!("{v}"),
                SnapshotValue::Histogram {
                    count,
                    sum,
                    p50,
                    p95,
                } => format!("count {count} sum {sum} p50≈{p50} p95≈{p95}"),
            };
            out.push_str(&format!("{name:<width$}  {value}\n"));
        }
        out
    }

    /// Render every metric as one JSON object keyed by metric name (with a
    /// `{k=v}` suffix for labeled metrics).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, s) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":", crate::json::escape(&s.display_name())));
            match s.value {
                SnapshotValue::Counter(v) => out.push_str(&v.to_string()),
                SnapshotValue::Gauge(v) => out.push_str(&v.to_string()),
                SnapshotValue::Histogram {
                    count,
                    sum,
                    p50,
                    p95,
                } => out.push_str(&format!(
                    "{{\"count\":{count},\"sum\":{sum},\"p50\":{p50},\"p95\":{p95}}}"
                )),
            }
        }
        out.push('}');
        out
    }

    /// Render every metric in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers per family, dotted
    /// names underscored, `_total` suffixed counters, and histograms as
    /// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
    ///
    /// The histogram `_count` is derived from one read of the bucket
    /// array, so the `+Inf` bucket always equals `_count` even while
    /// other threads are observing into the histogram.
    pub fn render_prometheus(&self) -> String {
        struct Row {
            labels: Labels,
            value: PromValue,
        }
        enum PromValue {
            Counter(u64),
            Gauge(i64),
            Histogram {
                buckets: Box<[u64; BUCKETS]>,
                sum: u64,
            },
        }
        // Snapshot under the lock: (family name, help, kind, rows).
        let mut families: Vec<(&'static str, &'static str, &'static str, Vec<Row>)> = Vec::new();
        {
            let entries = self.entries.lock().unwrap();
            for e in entries.iter() {
                let value = match e.metric {
                    MetricRef::Counter(c) => PromValue::Counter(c.get()),
                    MetricRef::Gauge(g) => PromValue::Gauge(g.get()),
                    MetricRef::Histogram(h) => PromValue::Histogram {
                        buckets: Box::new(h.bucket_counts()),
                        sum: h.sum(),
                    },
                };
                let row = Row {
                    labels: e.labels.clone(),
                    value,
                };
                match families.iter_mut().find(|(n, ..)| *n == e.name) {
                    Some((_, _, _, rows)) => rows.push(row),
                    None => families.push((e.name, e.help, e.metric.kind(), vec![row])),
                }
            }
        }
        families.sort_by_key(|(n, ..)| *n);
        let mut out = String::new();
        for (name, help, kind, mut rows) in families {
            rows.sort_by(|a, b| a.labels.cmp(&b.labels));
            let base = prom_name(name);
            let family = if kind == "counter" && !base.ends_with("_total") {
                format!("{base}_total")
            } else {
                base
            };
            if !help.is_empty() {
                out.push_str(&format!("# HELP {family} {}\n", prom_escape_help(help)));
            }
            out.push_str(&format!("# TYPE {family} {kind}\n"));
            for row in rows {
                match row.value {
                    PromValue::Counter(v) => {
                        out.push_str(&format!("{family}{} {v}\n", prom_labels(&row.labels, None)));
                    }
                    PromValue::Gauge(v) => {
                        out.push_str(&format!("{family}{} {v}\n", prom_labels(&row.labels, None)));
                    }
                    PromValue::Histogram { buckets, sum } => {
                        let total: u64 = buckets.iter().sum();
                        // Emit finite buckets up to the last non-empty one
                        // (always at least le="0"), then +Inf == _count.
                        let hi = buckets
                            .iter()
                            .rposition(|&c| c != 0)
                            .unwrap_or(0)
                            .min(BUCKETS - 2);
                        let mut cum = 0u64;
                        for (i, &c) in buckets.iter().enumerate().take(hi + 1) {
                            cum += c;
                            out.push_str(&format!(
                                "{family}_bucket{} {cum}\n",
                                prom_labels(&row.labels, Some(&bucket_upper_bound(i).to_string()))
                            ));
                        }
                        out.push_str(&format!(
                            "{family}_bucket{} {total}\n",
                            prom_labels(&row.labels, Some("+Inf"))
                        ));
                        out.push_str(&format!(
                            "{family}_sum{} {sum}\n",
                            prom_labels(&row.labels, None)
                        ));
                        out.push_str(&format!(
                            "{family}_count{} {total}\n",
                            prom_labels(&row.labels, None)
                        ));
                    }
                }
            }
        }
        out
    }
}

/// Convert a dotted metric name into a valid Prometheus metric name:
/// every character outside `[a-zA-Z0-9_:]` becomes `_`.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Render a `{k="v",...}` label block (empty string when there are no
/// labels and no `le`). `le`, when present, is appended last.
fn prom_labels(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Escape a label value: backslash, double quote, and newline.
fn prom_escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape a `# HELP` text: backslash and newline.
fn prom_escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Find-or-create a [`Counter`] in the global registry, caching the lookup
/// per call site. `counter!("name")`, `counter!("name", "help text")`, or
/// `counter!("name", "help", "label" => "value", ...)` for labels whose
/// values are known at the call site (run-time label values go through
/// [`Registry::counter_with`] directly).
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, "")
    };
    ($name:expr, $help:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::registry().counter($name, $help))
    }};
    ($name:expr, $help:expr, $($k:expr => $v:expr),+ $(,)?) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| {
            $crate::metrics::registry().counter_with($name, $help, &[$(($k, $v)),+])
        })
    }};
}

/// Find-or-create a [`Gauge`] in the global registry, caching the lookup
/// per call site. Labeled form as in [`counter!`](crate::counter).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {
        $crate::gauge!($name, "")
    };
    ($name:expr, $help:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::registry().gauge($name, $help))
    }};
    ($name:expr, $help:expr, $($k:expr => $v:expr),+ $(,)?) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| {
            $crate::metrics::registry().gauge_with($name, $help, &[$(($k, $v)),+])
        })
    }};
}

/// Find-or-create a [`Histogram`] in the global registry, caching the
/// lookup per call site. Labeled form as in [`counter!`](crate::counter).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {
        $crate::histogram!($name, "")
    };
    ($name:expr, $help:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::registry().histogram($name, $help))
    }};
    ($name:expr, $help:expr, $($k:expr => $v:expr),+ $(,)?) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| {
            $crate::metrics::registry().histogram_with($name, $help, &[$(($k, $v)),+])
        })
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_macro_dedups_by_name() {
        let a = crate::counter!("test.metrics.dedup");
        let b = crate::counter!("test.metrics.dedup");
        assert!(std::ptr::eq(a, b));
        let before = a.get();
        b.add(3);
        assert_eq!(a.get(), before + 3);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = crate::gauge!("test.metrics.gauge");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for v in [0u64, 1, 1, 2, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1104);
        // p50 of {0,1,1,2,100,1000}: rank 3 lands in the bucket of 1..2.
        assert!(h.quantile(0.5) <= 3);
        // p100 is in the bucket containing 1000.
        assert!(h.quantile(1.0) >= 1000);
        assert!(h.quantile(1.0) < 2048);
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn snapshot_is_sorted_and_renders() {
        crate::counter!("test.metrics.zz", "last").inc();
        crate::counter!("test.metrics.aa", "first").inc();
        let snap = registry().snapshot();
        let keys: Vec<String> = snap.iter().map(|s| s.display_name()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        let text = registry().render_text();
        assert!(text.contains("test.metrics.aa"));
        let json = registry().render_json();
        crate::json::validate(&json).unwrap();
    }

    #[test]
    fn labels_split_one_name_into_a_family() {
        let bdd = crate::counter!("test.metrics.family", "split", "backend" => "bdd");
        let smt = registry().counter_with("test.metrics.family", "split", &[("backend", "smt")]);
        assert!(
            !std::ptr::eq(bdd, smt),
            "distinct label sets, distinct cells"
        );
        let again = registry().counter_with("test.metrics.family", "split", &[("backend", "bdd")]);
        assert!(std::ptr::eq(bdd, again), "same label set dedups");
        bdd.add(2);
        smt.inc();
        let snap = registry().snapshot();
        let rows: Vec<&MetricSnapshot> = snap
            .iter()
            .filter(|s| s.name == "test.metrics.family")
            .collect();
        assert_eq!(rows.len(), 2);
        assert!(rows
            .iter()
            .any(|s| s.display_name() == "test.metrics.family{backend=bdd}"));
    }

    #[test]
    fn prometheus_exposition_basics() {
        crate::counter!("test.prom.hits", "hit counter").add(7);
        crate::gauge!("test.prom.depth", "queue depth").set(-3);
        let h = crate::histogram!("test.prom.lat_us", "latency");
        for v in [0u64, 1, 5, 5, 300] {
            h.observe(v);
        }
        let text = registry().render_prometheus();
        assert!(text.contains("# TYPE test_prom_hits_total counter"));
        assert!(text.contains("# HELP test_prom_hits_total hit counter"));
        assert!(
            text.contains("\ntest_prom_hits_total 7\n")
                || text.starts_with("test_prom_hits_total 7\n")
        );
        assert!(text.contains("# TYPE test_prom_depth gauge"));
        assert!(text.contains("test_prom_depth -3"));
        assert!(text.contains("# TYPE test_prom_lat_us histogram"));
        assert!(text.contains("test_prom_lat_us_bucket{le=\"0\"} 1"));
        assert!(text.contains("test_prom_lat_us_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("test_prom_lat_us_count 5"));
        assert!(text.contains("test_prom_lat_us_sum 311"));
    }

    #[test]
    fn prometheus_escapes_label_values() {
        registry()
            .counter_with("test.prom.esc", "", &[("kind", "a\"b\\c\nd")])
            .inc();
        let text = registry().render_prometheus();
        assert!(text.contains("test_prom_esc_total{kind=\"a\\\"b\\\\c\\nd\"} 1"));
    }

    #[test]
    fn counter_name_already_ending_in_total_is_not_doubled() {
        crate::counter!("test.prom.events_total", "pre-suffixed").inc();
        let text = registry().render_prometheus();
        assert!(text.contains("# TYPE test_prom_events_total counter"));
        assert!(!text.contains("events_total_total"));
    }
}
