//! The global metrics registry: atomic counters, gauges, and histograms.
//!
//! Metrics are registered lazily at the first use of a call site through
//! the [`counter!`](crate::counter), [`gauge!`](crate::gauge), and
//! [`histogram!`](crate::histogram) macros, which cache the registry
//! lookup in a per-call-site `OnceLock` so the steady-state cost of an
//! update is one acquire load plus one relaxed atomic add. Registration
//! deduplicates by name, so two call sites naming the same metric share
//! one instrument.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter (normally obtained through the registry).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, live worker counts).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge (normally obtained through the registry).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjust the value by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i > 0`
/// holds values in `[2^(i-1), 2^i)`.
const BUCKETS: usize = 64;

/// A log₂-bucketed histogram of `u64` observations (latencies in
/// microseconds, sizes in nodes). Quantiles are estimated from bucket
/// upper bounds, so they are accurate to a factor of two — plenty for
/// "where did the time go" questions, and recording stays lock-free.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram (normally obtained through the registry).
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket containing the target rank. Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }
}

enum MetricRef {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

struct Entry {
    name: &'static str,
    help: &'static str,
    metric: MetricRef,
}

/// The process-wide metric registry. Obtain it with [`registry`].
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        entries: Mutex::new(Vec::new()),
    })
}

/// A point-in-time reading of one registered metric.
#[derive(Clone, Debug)]
pub struct MetricSnapshot {
    /// Dotted metric name (`"bdd.mk.calls"`).
    pub name: &'static str,
    /// One-line description supplied at registration.
    pub help: &'static str,
    /// The value, by instrument kind.
    pub value: SnapshotValue,
}

/// The value part of a [`MetricSnapshot`].
#[derive(Clone, Debug)]
pub enum SnapshotValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram summary.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// Estimated median.
        p50: u64,
        /// Estimated 95th percentile.
        p95: u64,
    },
}

impl Registry {
    /// Find-or-create the counter `name`. Panics if `name` is already
    /// registered as a different instrument kind (a programming error).
    pub fn counter(&self, name: &'static str, help: &'static str) -> &'static Counter {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match e.metric {
                MetricRef::Counter(c) => return c,
                _ => panic!("metric {name:?} already registered with a different kind"),
            }
        }
        let c: &'static Counter = Box::leak(Box::new(Counter::new()));
        entries.push(Entry {
            name,
            help,
            metric: MetricRef::Counter(c),
        });
        c
    }

    /// Find-or-create the gauge `name`. Panics on a kind mismatch.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> &'static Gauge {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match e.metric {
                MetricRef::Gauge(g) => return g,
                _ => panic!("metric {name:?} already registered with a different kind"),
            }
        }
        let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
        entries.push(Entry {
            name,
            help,
            metric: MetricRef::Gauge(g),
        });
        g
    }

    /// Find-or-create the histogram `name`. Panics on a kind mismatch.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> &'static Histogram {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| e.name == name) {
            match e.metric {
                MetricRef::Histogram(h) => return h,
                _ => panic!("metric {name:?} already registered with a different kind"),
            }
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        entries.push(Entry {
            name,
            help,
            metric: MetricRef::Histogram(h),
        });
        h
    }

    /// Read every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let entries = self.entries.lock().unwrap();
        let mut out: Vec<MetricSnapshot> = entries
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name,
                help: e.help,
                value: match e.metric {
                    MetricRef::Counter(c) => SnapshotValue::Counter(c.get()),
                    MetricRef::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    MetricRef::Histogram(h) => SnapshotValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        p50: h.quantile(0.50),
                        p95: h.quantile(0.95),
                    },
                },
            })
            .collect();
        out.sort_by_key(|s| s.name);
        out
    }

    /// Render every metric as an aligned text table.
    pub fn render_text(&self) -> String {
        let snap = self.snapshot();
        let width = snap.iter().map(|s| s.name.len()).max().unwrap_or(0);
        let mut out = String::new();
        for s in snap {
            let value = match s.value {
                SnapshotValue::Counter(v) => format!("{v}"),
                SnapshotValue::Gauge(v) => format!("{v}"),
                SnapshotValue::Histogram {
                    count,
                    sum,
                    p50,
                    p95,
                } => format!("count {count} sum {sum} p50≈{p50} p95≈{p95}"),
            };
            out.push_str(&format!("{:<width$}  {}\n", s.name, value));
        }
        out
    }

    /// Render every metric as one JSON object keyed by metric name.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, s) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":", crate::json::escape(s.name)));
            match s.value {
                SnapshotValue::Counter(v) => out.push_str(&v.to_string()),
                SnapshotValue::Gauge(v) => out.push_str(&v.to_string()),
                SnapshotValue::Histogram {
                    count,
                    sum,
                    p50,
                    p95,
                } => out.push_str(&format!(
                    "{{\"count\":{count},\"sum\":{sum},\"p50\":{p50},\"p95\":{p95}}}"
                )),
            }
        }
        out.push('}');
        out
    }
}

/// Find-or-create a [`Counter`] in the global registry, caching the lookup
/// per call site. `counter!("name")` or `counter!("name", "help text")`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, "")
    };
    ($name:expr, $help:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::registry().counter($name, $help))
    }};
}

/// Find-or-create a [`Gauge`] in the global registry, caching the lookup
/// per call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {
        $crate::gauge!($name, "")
    };
    ($name:expr, $help:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::registry().gauge($name, $help))
    }};
}

/// Find-or-create a [`Histogram`] in the global registry, caching the
/// lookup per call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {
        $crate::histogram!($name, "")
    };
    ($name:expr, $help:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::registry().histogram($name, $help))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_macro_dedups_by_name() {
        let a = crate::counter!("test.metrics.dedup");
        let b = crate::counter!("test.metrics.dedup");
        assert!(std::ptr::eq(a, b));
        let before = a.get();
        b.add(3);
        assert_eq!(a.get(), before + 3);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = crate::gauge!("test.metrics.gauge");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for v in [0u64, 1, 1, 2, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1104);
        // p50 of {0,1,1,2,100,1000}: rank 3 lands in the bucket of 1..2.
        assert!(h.quantile(0.5) <= 3);
        // p100 is in the bucket containing 1000.
        assert!(h.quantile(1.0) >= 1000);
        assert!(h.quantile(1.0) < 2048);
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn snapshot_is_sorted_and_renders() {
        crate::counter!("test.metrics.zz", "last").inc();
        crate::counter!("test.metrics.aa", "first").inc();
        let snap = registry().snapshot();
        let names: Vec<&str> = snap.iter().map(|s| s.name).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        let text = registry().render_text();
        assert!(text.contains("test.metrics.aa"));
        let json = registry().render_json();
        crate::json::validate(&json).unwrap();
    }
}
