//! Lightweight spans and instant events in per-thread ring buffers.
//!
//! ## The overhead contract
//!
//! Every recording site — [`Span::enter`], [`instant`], and friends —
//! starts with a single relaxed atomic load of the combined trace/profile
//! state word and returns immediately when it is zero. The *disabled*
//! path therefore
//! costs one load plus one well-predicted branch: no allocation, no lock,
//! no `Instant::now()`. This is the contract that lets the BDD manager's
//! `mk()` and the CDCL solver's `propagate()` carry trace hooks
//! permanently; `tests/obs.rs` in the integration crate asserts it by
//! driving both hot paths with tracing disabled and checking that no
//! thread buffer was ever allocated and no event recorded.
//!
//! When tracing is enabled, a recording thread lazily allocates one
//! fixed-capacity ring buffer (registered globally so exporters can reach
//! it after the thread exits) and writes 64-byte events with monotonic
//! timestamps taken against a process-wide epoch. The ring wraps: a storm
//! of events costs memory proportional to the thread count, never the
//! event count, and the `dropped` tally records how much history was lost.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity, in events.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 14;

/// Bit in [`STATE`]: span events are recorded into per-thread rings.
pub(crate) const TRACE_BIT: u32 = 1;
/// Bit in [`STATE`]: span stacks are published for the CPU sampler and
/// heap attribution ([`crate::profile`]).
pub(crate) const PROFILE_BIT: u32 = 2;

/// Tracing *and* profiling enablement share one word so that every
/// instrumentation site pays exactly one relaxed atomic load when both
/// are off — adding the profiler did not add a second load to the
/// disabled hot path.
static STATE: AtomicU32 = AtomicU32::new(0);
static RECORDED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

/// The combined trace/profile state word. One relaxed atomic load — this
/// is the whole disabled-path cost of every instrumentation site.
#[inline(always)]
pub(crate) fn state() -> u32 {
    STATE.load(Ordering::Relaxed)
}

/// Is tracing globally enabled? One relaxed atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    state() & TRACE_BIT != 0
}

/// Turn tracing on or off. Enabling pins the process-wide epoch (if not
/// already pinned) so timestamps are comparable across threads. Events
/// already recorded are kept either way; use [`take_events`] or [`clear`]
/// to drain them.
pub fn set_enabled(on: bool) {
    if on {
        epoch();
        STATE.fetch_or(TRACE_BIT, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!TRACE_BIT, Ordering::Relaxed);
    }
}

/// Turn span-stack publication (profiling) on or off. Used by
/// [`crate::profile::start`]/[`stop`](crate::profile::stop); spans entered
/// while the bit is set push their name onto the per-thread stack slot.
pub(crate) fn set_profiling(on: bool) {
    if on {
        STATE.fetch_or(PROFILE_BIT, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!PROFILE_BIT, Ordering::Relaxed);
    }
}

/// Is span-stack publication (profiling) enabled? One relaxed atomic load.
#[inline(always)]
pub(crate) fn profiling() -> bool {
    state() & PROFILE_BIT != 0
}

/// Total events recorded process-wide since startup (including events
/// since overwritten by ring wrap-around).
pub fn events_recorded() -> u64 {
    RECORDED.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch.
#[inline]
fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// One `key = value` payload on an event. An empty key means the slot is
/// unused. Payloads are plain `u64`s by design: no formatting or
/// allocation happens on the recording path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Arg {
    /// Argument name (`""` = unused slot).
    pub key: &'static str,
    /// Argument value.
    pub val: u64,
}

/// Event kind, mirroring the Chrome trace-event phases we emit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// A duration span (`"ph": "X"`).
    Span,
    /// A point-in-time marker (`"ph": "i"`).
    Instant,
}

/// One recorded event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Static event name, dotted by subsystem (`"bdd.solve"`).
    pub name: &'static str,
    /// Span or instant.
    pub phase: Phase,
    /// Nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Small sequential id of the recording thread.
    pub tid: u32,
    /// Up to two `u64` payloads.
    pub args: [Arg; 2],
}

struct Ring {
    events: Vec<Event>,
    capacity: usize,
    head: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: Event) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
            crate::counter!(
                "trace.dropped_events_total",
                "span-ring events overwritten by wrap-around (trace history lost)"
            )
            .inc();
        }
    }

    fn drain_in_order(&mut self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        self.events.clear();
        self.head = 0;
        out
    }
}

struct ThreadBuf {
    ring: Mutex<Ring>,
}

fn buffers() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static BUFFERS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    BUFFERS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: RefCell<Option<(u32, Arc<ThreadBuf>)>> = const { RefCell::new(None) };
}

/// Has the *current thread* allocated its trace ring buffer? Stays
/// `false` for threads that never recorded an event — the observable
/// half of the "no allocation while disabled" contract.
pub fn thread_buffer_allocated() -> bool {
    LOCAL.with(|l| l.borrow().is_some())
}

fn record(name: &'static str, phase: Phase, start_ns: u64, dur_ns: u64, args: [Arg; 2]) {
    LOCAL.with(|l| {
        let mut slot = l.borrow_mut();
        let (tid, buf) = slot.get_or_insert_with(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let buf = Arc::new(ThreadBuf {
                ring: Mutex::new(Ring {
                    events: Vec::new(),
                    capacity: DEFAULT_RING_CAPACITY,
                    head: 0,
                    dropped: 0,
                }),
            });
            buffers().lock().unwrap().push(Arc::clone(&buf));
            (tid, buf)
        });
        buf.ring.lock().unwrap().push(Event {
            name,
            phase,
            start_ns,
            dur_ns,
            tid: *tid,
            args,
        });
    });
    RECORDED.fetch_add(1, Ordering::Relaxed);
}

/// Record an instant event (no payload). No-op while tracing is disabled.
#[inline]
pub fn instant(name: &'static str) {
    if !enabled() {
        return;
    }
    record(name, Phase::Instant, now_ns(), 0, [Arg::default(); 2]);
}

/// Record an instant event with one payload. No-op while disabled.
#[inline]
pub fn instant1(name: &'static str, key: &'static str, val: u64) {
    if !enabled() {
        return;
    }
    record(
        name,
        Phase::Instant,
        now_ns(),
        0,
        [Arg { key, val }, Arg::default()],
    );
}

/// Record an instant event with two payloads. No-op while disabled.
#[inline]
pub fn instant2(name: &'static str, k0: &'static str, v0: u64, k1: &'static str, v1: u64) {
    if !enabled() {
        return;
    }
    record(
        name,
        Phase::Instant,
        now_ns(),
        0,
        [Arg { key: k0, val: v0 }, Arg { key: k1, val: v1 }],
    );
}

/// An RAII span: created by [`Span::enter`] (usually via the
/// [`span!`](crate::span) macro), records one duration event when
/// dropped. If tracing was disabled at entry the guard is inert — entry
/// cost was one atomic load — even if tracing is enabled before the drop.
#[must_use = "a span measures the scope it is bound to; bind it with `let _span = ...`"]
pub struct Span {
    name: &'static str,
    start_ns: u64,
    args: [Arg; 2],
    active: bool,
    pushed: bool,
}

impl Span {
    /// Begin a span. When both tracing and profiling are disabled this is
    /// one relaxed atomic load and the returned guard does nothing on
    /// drop. When profiling is enabled the span name is additionally
    /// pushed onto this thread's published stack slot (and popped on
    /// drop), making the span visible to the CPU sampler and chargeable
    /// for heap attribution.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        let st = state();
        if st == 0 {
            return Span {
                name,
                start_ns: 0,
                args: [Arg::default(); 2],
                active: false,
                pushed: false,
            };
        }
        let pushed = if st & PROFILE_BIT != 0 {
            crate::profile::push_frame(name)
        } else {
            false
        };
        if st & TRACE_BIT == 0 {
            return Span {
                name,
                start_ns: 0,
                args: [Arg::default(); 2],
                active: false,
                pushed,
            };
        }
        Span {
            name,
            start_ns: now_ns(),
            args: [Arg::default(); 2],
            active: true,
            pushed,
        }
    }

    /// Attach a payload (up to two; extras are silently ignored).
    #[inline]
    pub fn arg(mut self, key: &'static str, val: u64) -> Span {
        if self.active {
            for slot in &mut self.args {
                if slot.key.is_empty() {
                    *slot = Arg { key, val };
                    break;
                }
            }
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.pushed {
            // Spans are strictly RAII-scoped locals, so pops are LIFO and
            // always match the frame this guard pushed.
            crate::profile::pop_frame();
        }
        if self.active {
            let end = now_ns();
            record(
                self.name,
                Phase::Span,
                self.start_ns,
                end.saturating_sub(self.start_ns),
                self.args,
            );
        }
    }
}

/// Begin a [`Span`]: `span!("name")`, `span!("name", "k" => v)`, or
/// `span!("name", "k0" => v0, "k1" => v1)`. Bind the result:
/// `let _span = span!(...);`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::Span::enter($name)
    };
    ($name:expr, $k0:expr => $v0:expr) => {
        $crate::trace::Span::enter($name).arg($k0, $v0 as u64)
    };
    ($name:expr, $k0:expr => $v0:expr, $k1:expr => $v1:expr) => {
        $crate::trace::Span::enter($name)
            .arg($k0, $v0 as u64)
            .arg($k1, $v1 as u64)
    };
}

/// Drain every thread's ring buffer into one list sorted by start time.
/// Events recorded after this call land in fresh (empty) rings.
pub fn take_events() -> Vec<Event> {
    let bufs = buffers().lock().unwrap();
    let mut out = Vec::new();
    for buf in bufs.iter() {
        out.append(&mut buf.ring.lock().unwrap().drain_in_order());
    }
    out.sort_by_key(|e| e.start_ns);
    out
}

/// Total events overwritten by ring wrap-around (history lost), summed
/// over all threads.
pub fn events_dropped() -> u64 {
    let bufs = buffers().lock().unwrap();
    bufs.iter().map(|b| b.ring.lock().unwrap().dropped).sum()
}

/// Discard all recorded events (keeps the buffers and the enabled flag).
pub fn clear() {
    for buf in buffers().lock().unwrap().iter() {
        let mut ring = buf.ring.lock().unwrap();
        ring.events.clear();
        ring.head = 0;
        ring.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that flip the global enabled flag must not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock();
        set_enabled(false);
        let before = events_recorded();
        instant("test.trace.nothing");
        instant2("test.trace.nothing", "a", 1, "b", 2);
        {
            let _s = crate::span!("test.trace.nothing", "x" => 9);
        }
        assert_eq!(events_recorded(), before);
    }

    #[test]
    fn span_and_instant_round_trip() {
        let _g = lock();
        set_enabled(true);
        clear();
        {
            let _s = crate::span!("test.trace.outer", "n" => 3);
            instant1("test.trace.mark", "v", 7);
        }
        set_enabled(false);
        let events = take_events();
        let span = events
            .iter()
            .find(|e| e.name == "test.trace.outer")
            .expect("span recorded");
        assert_eq!(span.phase, Phase::Span);
        assert_eq!(span.args[0], Arg { key: "n", val: 3 });
        let mark = events
            .iter()
            .find(|e| e.name == "test.trace.mark")
            .expect("instant recorded");
        assert_eq!(mark.phase, Phase::Instant);
        assert_eq!(mark.dur_ns, 0);
        assert!(span.start_ns <= mark.start_ns, "sorted by start time");
    }

    #[test]
    fn ring_wraps_without_growing() {
        let mut ring = Ring {
            events: Vec::new(),
            capacity: 4,
            head: 0,
            dropped: 0,
        };
        for i in 0..10u64 {
            ring.push(Event {
                name: "w",
                phase: Phase::Instant,
                start_ns: i,
                dur_ns: 0,
                tid: 0,
                args: [Arg::default(); 2],
            });
        }
        assert_eq!(ring.dropped, 6);
        let drained = ring.drain_in_order();
        let starts: Vec<u64> = drained.iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, vec![6, 7, 8, 9], "oldest events overwritten");
    }

    #[test]
    fn span_inert_if_disabled_at_entry() {
        let _g = lock();
        set_enabled(false);
        let s = Span::enter("test.trace.inert");
        set_enabled(true);
        let before = events_recorded();
        drop(s);
        assert_eq!(events_recorded(), before, "guard captured disabled state");
        set_enabled(false);
    }
}
