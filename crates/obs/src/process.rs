//! Process-level telemetry from `/proc`, rendered straight into the
//! Prometheus text exposition format.
//!
//! The metric registry in [`crate::metrics`] holds integer counters and
//! gauges; process telemetry (CPU seconds as a float, a start timestamp)
//! does not fit that model, so this module renders the conventional
//! `process_*` family directly as exposition text that the server
//! appends to `/metrics` after the registry output. Everything is read
//! on scrape from `/proc/self/{status,stat,fd}` — no background thread,
//! no caching. On platforms without `/proc` the process series are
//! simply absent (the `rzen_build_info` gauge is always emitted).

use std::fmt::Write as _;

/// Kernel clock ticks per second for `/proc/self/stat` time fields.
/// `USER_HZ` is 100 on every Linux architecture rzen targets; reading it
/// at runtime would need `sysconf(_SC_CLK_TCK)`, which is out of reach
/// without libc bindings.
const USER_HZ: f64 = 100.0;

/// Render the `process_*` series plus `rzen_build_info{version=...} 1`
/// as Prometheus exposition text. Families whose `/proc` source cannot
/// be read are omitted entirely (headers included), so the output is
/// always well formed.
pub fn exposition(version: &str) -> String {
    let mut out = String::new();
    out.push_str("# HELP rzen_build_info build information of the running server\n");
    out.push_str("# TYPE rzen_build_info gauge\n");
    let _ = writeln!(
        out,
        "rzen_build_info{{version=\"{}\"}} 1",
        version.replace('\\', "\\\\").replace('"', "\\\"")
    );
    if let Some(rss) = resident_memory_bytes() {
        out.push_str("# HELP process_resident_memory_bytes resident set size in bytes\n");
        out.push_str("# TYPE process_resident_memory_bytes gauge\n");
        let _ = writeln!(out, "process_resident_memory_bytes {rss}");
    }
    if let Some(cpu) = cpu_seconds_total() {
        out.push_str("# HELP process_cpu_seconds_total user + system CPU time in seconds\n");
        out.push_str("# TYPE process_cpu_seconds_total counter\n");
        let _ = writeln!(out, "process_cpu_seconds_total {cpu:.2}");
    }
    if let Some(fds) = open_fds() {
        out.push_str("# HELP process_open_fds open file descriptors\n");
        out.push_str("# TYPE process_open_fds gauge\n");
        let _ = writeln!(out, "process_open_fds {fds}");
    }
    if let Some(start) = start_time_seconds() {
        out.push_str("# HELP process_start_time_seconds process start time, unix epoch\n");
        out.push_str("# TYPE process_start_time_seconds gauge\n");
        let _ = writeln!(out, "process_start_time_seconds {start:.2}");
    }
    out
}

/// Resident set size in bytes, from the `VmRSS` line of
/// `/proc/self/status`. That line reports in kB, which sidesteps the
/// page size entirely — `/proc/self/statm` counts pages, and hardcoding
/// 4096 would be 4–16× off on 16K/64K-page aarch64 kernels.
pub fn resident_memory_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: u64 = status
        .lines()
        .find_map(|line| line.strip_prefix("VmRSS:"))?
        .trim()
        .strip_suffix("kB")?
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// User + system CPU seconds consumed by the process so far.
pub fn cpu_seconds_total() -> Option<f64> {
    let fields = stat_after_comm()?;
    // Fields after `comm`/`state`: utime is overall field 14, stime 15
    // (1-based, `man 5 proc`), i.e. indexes 11 and 12 after the state.
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some((utime + stime) as f64 / USER_HZ)
}

/// Number of open file descriptors (entries in `/proc/self/fd`,
/// including the descriptor the listing itself briefly holds).
pub fn open_fds() -> Option<u64> {
    Some(std::fs::read_dir("/proc/self/fd").ok()?.count() as u64)
}

/// Process start time in seconds since the unix epoch: boot time
/// (`btime` in `/proc/stat`) plus the process start offset
/// (`/proc/self/stat` field 22, in clock ticks since boot).
pub fn start_time_seconds() -> Option<f64> {
    let fields = stat_after_comm()?;
    let starttime_ticks: u64 = fields.get(19)?.parse().ok()?;
    let stat = std::fs::read_to_string("/proc/stat").ok()?;
    let btime: u64 = stat
        .lines()
        .find_map(|line| line.strip_prefix("btime "))?
        .trim()
        .parse()
        .ok()?;
    Some(btime as f64 + starttime_ticks as f64 / USER_HZ)
}

/// `/proc/self/stat` fields after the parenthesized `comm`, which may
/// itself contain spaces and parentheses — split after the *last* `)`.
fn stat_after_comm() -> Option<Vec<String>> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    let after = stat.rsplit_once(')')?.1;
    Some(after.split_whitespace().map(str::to_string).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_info_always_present() {
        let text = exposition("1.2.3");
        assert!(text.contains("# TYPE rzen_build_info gauge"));
        assert!(text.contains("rzen_build_info{version=\"1.2.3\"} 1"));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn proc_series_present_on_linux() {
        let text = exposition("0.0.0");
        for family in [
            "process_resident_memory_bytes",
            "process_cpu_seconds_total",
            "process_open_fds",
            "process_start_time_seconds",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family}")),
                "{family} missing:\n{text}"
            );
        }
        assert!(resident_memory_bytes().unwrap() > 0);
        assert!(open_fds().unwrap() > 0);
        let start = start_time_seconds().unwrap();
        assert!(start > 1_500_000_000.0, "epoch-ish start time: {start}");
    }

    #[test]
    fn every_sample_line_parses() {
        let text = exposition("v");
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_name, value) = line.rsplit_once(' ').expect("name value");
            value.parse::<f64>().expect("numeric sample value");
        }
    }
}
