//! # rzen-obs — always-available observability for the rzen solver stack
//!
//! A dependency-free measurement substrate shared by every crate in the
//! workspace: the BDD manager, the CDCL solver, the bit-level compiler,
//! and the batch engine all report into it, and the CLI / bench harness
//! read it back out. Three pieces:
//!
//! * **Metrics** ([`metrics`]) — a global registry of atomic counters,
//!   gauges, and log₂-bucketed histograms, registered lazily at the call
//!   site through the typed [`counter!`], [`gauge!`], and [`histogram!`]
//!   macros. Metrics are *always on*: updates are relaxed atomic adds and
//!   are flushed at operation boundaries (end of a solve, end of a query),
//!   never inside the per-node hot loops.
//!
//! * **Tracing** ([`trace`]) — lightweight spans and instant events
//!   recorded into fixed-capacity per-thread ring buffers. Every recording
//!   site is gated behind a single relaxed atomic load ([`trace::enabled`]),
//!   so the *disabled* cost on a hot path — the contract the solver
//!   substrates rely on — is one load and one predictable branch: no
//!   allocation, no lock, no timestamp. Enabling tracing
//!   ([`trace::set_enabled`]) allocates one ring buffer per recording
//!   thread on first use and timestamps events against a process-wide
//!   monotonic epoch.
//!
//! * **Profiling** ([`profile`]) — a zero-dependency continuous
//!   profiler: a span-stack CPU sampler (each instrumented thread
//!   publishes its current span stack in a seqlock-guarded slot, a
//!   sampler thread folds snapshots into `a;b;c count` stacks) and heap
//!   attribution via the [`CountingAlloc`] global-allocator wrapper,
//!   which charges bytes to the innermost open span. Both views export
//!   as folded-stack text or a self-contained flamegraph SVG
//!   ([`flame`]). Disabled cost: the same single relaxed atomic load as
//!   tracing — both share one state word.
//!
//! * **Flight recorder** ([`flight`]) — an always-on, lock-free ring of
//!   per-request [`RequestRecord`]s plus a top-K slow-query table, written
//!   by the serving layer on every completed request and read back over
//!   the server's `/debug/requests` and `/debug/slow` endpoints. Request
//!   identity ([`RequestCtx`]) is minted here so ids are process-unique
//!   across serve, engine, and backend spans.
//!
//! * **Export** ([`export`]) — the recorded events render either as
//!   Chrome trace-event JSON (loadable in Perfetto or `chrome://tracing`)
//!   or as a human-readable hierarchical phase report; the metric registry
//!   renders as an aligned text table or a JSON object. A minimal JSON
//!   syntax validator ([`json::validate`]) lets tests and CI check the
//!   emitted files without external tooling.
//!
//! ## Example
//!
//! ```
//! use rzen_obs::{counter, histogram, span, trace};
//!
//! trace::set_enabled(true);
//! {
//!     let _span = span!("demo.phase", "items" => 3);
//!     counter!("demo.calls", "how often the demo ran").inc();
//!     histogram!("demo.latency_us").observe(125);
//! }
//! trace::set_enabled(false);
//! let events = trace::take_events();
//! assert!(events.iter().any(|e| e.name == "demo.phase"));
//! let json = rzen_obs::export::chrome_trace(&events);
//! rzen_obs::json::validate(&json).unwrap();
//! ```

#![warn(missing_docs)]

pub mod export;
pub mod flame;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod process;
pub mod profile;
pub mod trace;

pub use flight::{BackendClass, RequestCtx, RequestRecord, VerdictClass};
pub use metrics::{registry, Counter, Gauge, Histogram, MetricSnapshot, SnapshotValue};
pub use profile::CountingAlloc;
pub use trace::{Event, Phase, Span};

// The unit-test binary exercises heap attribution, which needs the
// counting allocator installed; downstream binaries install it themselves.
#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: CountingAlloc = CountingAlloc;

/// Read the `RZEN_TRACE` environment variable and enable tracing if it is
/// set to anything other than empty or `0`. Returns the trace output path
/// when the value names one (any value other than `1`); `RZEN_TRACE=1`
/// enables tracing without choosing a file (callers print the phase report
/// instead).
pub fn init_from_env() -> Option<String> {
    match std::env::var("RZEN_TRACE") {
        Ok(v) if v.is_empty() || v == "0" => None,
        Ok(v) => {
            trace::set_enabled(true);
            if v == "1" {
                None
            } else {
                Some(v)
            }
        }
        Err(_) => None,
    }
}
