//! Property tests: every symbolic network model must agree with its
//! plain-Rust reference semantics on arbitrary inputs, and solver
//! witnesses must always check out concretely.

use proptest::prelude::*;
use rzen::{FindOptions, Zen, ZenFunction};
use rzen_net::acl::{Acl, AclRule};
use rzen_net::fwd::{FwdRule, FwdTable};
use rzen_net::headers::Header;
use rzen_net::ip::Prefix;
use rzen_net::nat::{Nat, NatKind, NatRule};
use rzen_net::routing::Announcement;

fn prefix_strategy() -> impl Strategy<Value = Prefix> {
    (
        any::<u32>(),
        prop_oneof![Just(0u8), Just(8), Just(16), Just(24), Just(32)],
    )
        .prop_map(|(addr, len)| {
            let p = Prefix::new(addr, len);
            Prefix::new(addr & p.mask(), len)
        })
}

fn port_range_strategy() -> impl Strategy<Value = (u16, u16)> {
    (any::<u16>(), any::<u16>()).prop_map(|(a, b)| (a.min(b), a.max(b)))
}

fn rule_strategy() -> impl Strategy<Value = AclRule> {
    (
        any::<bool>(),
        prefix_strategy(),
        prefix_strategy(),
        port_range_strategy(),
        port_range_strategy(),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| (a.min(b), a.max(b))),
    )
        .prop_map(
            |(permit, src, dst, dst_ports, src_ports, protocols)| AclRule {
                permit,
                src,
                dst,
                dst_ports,
                src_ports,
                protocols,
            },
        )
}

fn acl_strategy() -> impl Strategy<Value = Acl> {
    prop::collection::vec(rule_strategy(), 0..12).prop_map(|rules| Acl { rules })
}

fn header_strategy() -> impl Strategy<Value = Header> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
    )
        .prop_map(|(d, s, dp, sp, p)| Header::new(d, s, dp, sp, p))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn acl_model_matches_reference(acl in acl_strategy(), headers in prop::collection::vec(header_strategy(), 8)) {
        let model = acl.clone();
        let allows = ZenFunction::new(move |h| model.allows(h));
        let model = acl.clone();
        let line = ZenFunction::new(move |h| model.matched_line(h));
        for h in headers {
            prop_assert_eq!(allows.evaluate(&h), acl.allows_concrete(&h));
            prop_assert_eq!(line.evaluate(&h), acl.matched_line_concrete(&h));
        }
    }

    #[test]
    fn acl_find_witnesses_are_genuine(acl in acl_strategy()) {
        let n = acl.rules.len() as u16;
        if n == 0 { return Ok(()); }
        let model = acl.clone();
        let f = ZenFunction::new(move |h| model.matched_line(h));
        // For every line: the solver either proves it unreachable or the
        // witness matches the reference semantics.
        for i in 1..=n {
            match f.find(|_, l| l.eq(Zen::val(i)), &FindOptions::bdd()) {
                Some(w) => prop_assert_eq!(acl.matched_line_concrete(&w), i),
                None => {
                    // Cross-check with brute-ish sampling: no sampled
                    // header may hit the line.
                    for seed in 0..20 {
                        let h = rzen_net::gen::random_header(seed);
                        prop_assert_ne!(acl.matched_line_concrete(&h), i);
                    }
                }
            }
        }
    }

    #[test]
    fn fwd_model_matches_reference(
        rules in prop::collection::vec((prefix_strategy(), any::<u8>()), 0..10),
        headers in prop::collection::vec(header_strategy(), 8),
    ) {
        let table = FwdTable::new(rules.into_iter().map(|(prefix, port)| FwdRule { prefix, port }).collect());
        let t = table.clone();
        let f = ZenFunction::new(move |h| t.lookup(h));
        for h in headers {
            prop_assert_eq!(f.evaluate(&h), table.lookup_concrete(&h));
        }
    }

    #[test]
    fn nat_model_matches_reference(
        rules in prop::collection::vec(
            (any::<bool>(), prefix_strategy(), any::<u32>()).prop_map(|(s, matches, rewrite_to)| NatRule {
                kind: if s { NatKind::Snat } else { NatKind::Dnat },
                matches,
                rewrite_to,
            }),
            0..6,
        ),
        headers in prop::collection::vec(header_strategy(), 8),
    ) {
        let nat = Nat { rules };
        let n = nat.clone();
        let f = ZenFunction::new(move |h| n.apply(h));
        for h in headers {
            prop_assert_eq!(f.evaluate(&h), nat.apply_concrete(&h));
        }
    }

    #[test]
    fn route_map_model_matches_reference(seed in 0u64..32, n in 2usize..10) {
        let rm = rzen_net::gen::random_route_map(n, seed);
        let model = rm.clone();
        let f = ZenFunction::new(move |a| model.apply(a));
        // Probe with announcements derived from the map's own structure
        // plus generic ones.
        let mut probes = vec![
            Announcement::origin(0, 0, 65001),
            rzen_net::gen::reserved_announcement(),
        ];
        let mut a = Announcement::origin(0x0A000000, 24, 65001);
        a.communities = vec![0, 1, 2];
        a.med = 1;
        probes.push(a);
        for p in probes {
            prop_assert_eq!(f.evaluate(&p), rm.apply_concrete(&p), "probe vs map seed {}", seed);
        }
    }

    #[test]
    fn bgp_symbolic_matches_concrete_fixpoint(
        seed in 0u64..64,
        nrouters in 3usize..6,
        failures in prop::collection::vec(any::<bool>(), 8),
    ) {
        use rand::{Rng, SeedableRng};
        use rzen_net::routing::{Action, BgpNetwork, Clause, RouteMap};

        // Random topology with random simple policies.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut net = BgpNetwork::default();
        let origin = Announcement::origin(0x0A000000, 8, 65000);
        for i in 0..nrouters {
            let originates = if i == 0 { Some(origin.clone()) } else { None };
            net.add_router(&format!("r{i}"), originates);
        }
        let policy = |rng: &mut rand::rngs::StdRng| -> RouteMap {
            let actions = match rng.gen_range(0..4) {
                0 => vec![],
                1 => vec![Action::SetLocalPref(rng.gen_range(50..300))],
                2 => vec![Action::AddCommunity(rng.gen_range(0..8))],
                _ => vec![Action::PrependAsPath(65000 + rng.gen_range(0..10), 1)],
            };
            RouteMap { clauses: vec![Clause { conds: vec![], actions, permit: rng.gen_bool(0.9) }] }
        };
        // A connected-ish random graph: chain plus random chords.
        for i in 1..nrouters {
            let j = rng.gen_range(0..i);
            let (e, im) = (policy(&mut rng), policy(&mut rng));
            net.add_adjacency(j, i, e, im);
        }
        if nrouters > 3 {
            let (e, im) = (policy(&mut rng), policy(&mut rng));
            net.add_adjacency(0, nrouters - 1, e, im);
        }

        let failed: Vec<bool> = failures.into_iter().take(net.num_links).collect();
        let mut failed = failed;
        failed.resize(net.num_links, false);

        let concrete = net.converge_concrete(&failed);
        for (r, expected) in concrete.iter().enumerate().take(nrouters) {
            let symbolic = net.route_model(r).evaluate(&failed);
            prop_assert_eq!(&symbolic, expected, "router {} seed {}", r, seed);
        }
    }

    #[test]
    fn generated_acl_last_line_always_reachable(n in 2usize..40, seed in 0u64..16) {
        let acl = rzen_net::gen::random_acl(n, seed);
        let last = acl.rules.len() as u16;
        let model = acl.clone();
        let f = ZenFunction::new(move |h| model.matched_line(h));
        let w = f.find(|_, l| l.eq(Zen::val(last)), &FindOptions::smt());
        prop_assert!(w.is_some(), "generator must keep the last line reachable");
    }
}
