//! Access control lists: prioritized permit/deny rules over the 5-tuple.
//!
//! The semantic core between the `ZEN-LOC` markers is what the paper's
//! Table 2 counts (28 lines for ACLs in Zen, against >500 in Batfish).

use crate::headers::{Header, HeaderFields};
use crate::ip::Prefix;
use rzen::{zif, Zen};

/// One ACL rule: match conditions plus a permit/deny action.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AclRule {
    /// `true` = permit, `false` = deny.
    pub permit: bool,
    /// Source address must fall in this prefix.
    pub src: Prefix,
    /// Destination address must fall in this prefix.
    pub dst: Prefix,
    /// Inclusive destination port range.
    pub dst_ports: (u16, u16),
    /// Inclusive source port range.
    pub src_ports: (u16, u16),
    /// Inclusive IP protocol range.
    pub protocols: (u8, u8),
}

impl AclRule {
    /// A rule matching everything.
    pub fn any(permit: bool) -> AclRule {
        AclRule {
            permit,
            src: Prefix::ANY,
            dst: Prefix::ANY,
            dst_ports: (0, u16::MAX),
            src_ports: (0, u16::MAX),
            protocols: (0, u8::MAX),
        }
    }

    /// Concrete-reference matcher (for differential tests).
    pub fn matches_concrete(&self, h: &Header) -> bool {
        self.src.contains(h.src_ip)
            && self.dst.contains(h.dst_ip)
            && (self.dst_ports.0..=self.dst_ports.1).contains(&h.dst_port)
            && (self.src_ports.0..=self.src_ports.1).contains(&h.src_port)
            && (self.protocols.0..=self.protocols.1).contains(&h.protocol)
    }
}

/// An ACL: rules evaluated first-match; no match means deny.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Acl {
    /// The prioritized rules.
    pub rules: Vec<AclRule>,
}

// ZEN-LOC-BEGIN(acl)
impl AclRule {
    /// Does this rule match the (symbolic) header?
    pub fn matches(&self, h: Zen<Header>) -> Zen<bool> {
        self.src
            .matches(h.src_ip())
            .and(self.dst.matches(h.dst_ip()))
            .and(h.dst_port().ge(Zen::val(self.dst_ports.0)))
            .and(h.dst_port().le(Zen::val(self.dst_ports.1)))
            .and(h.src_port().ge(Zen::val(self.src_ports.0)))
            .and(h.src_port().le(Zen::val(self.src_ports.1)))
            .and(h.protocol().ge(Zen::val(self.protocols.0)))
            .and(h.protocol().le(Zen::val(self.protocols.1)))
    }
}

impl Acl {
    /// Is the header permitted? First matching rule decides; default deny.
    pub fn allows(&self, h: Zen<Header>) -> Zen<bool> {
        let mut result = Zen::bool(false);
        for rule in self.rules.iter().rev() {
            result = zif(rule.matches(h), Zen::bool(rule.permit), result);
        }
        result
    }

    /// Which rule matches the header (line tracking)? Returns the 1-based
    /// rule number, or 0 when no rule matches.
    pub fn matched_line(&self, h: Zen<Header>) -> Zen<u16> {
        let mut result = Zen::val(0u16);
        for (i, rule) in self.rules.iter().enumerate().rev() {
            result = zif(rule.matches(h), Zen::val(i as u16 + 1), result);
        }
        result
    }
}
// ZEN-LOC-END(acl)

impl Acl {
    /// Concrete-reference semantics (for differential tests).
    pub fn allows_concrete(&self, h: &Header) -> bool {
        self.rules
            .iter()
            .find(|r| r.matches_concrete(h))
            .map(|r| r.permit)
            .unwrap_or(false)
    }

    /// Concrete line tracking (1-based; 0 = no match).
    pub fn matched_line_concrete(&self, h: &Header) -> u16 {
        self.rules
            .iter()
            .position(|r| r.matches_concrete(h))
            .map(|i| i as u16 + 1)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::proto;
    use crate::ip::ip;
    use rzen::{FindOptions, ZenFunction};

    fn acl3() -> Acl {
        Acl {
            rules: vec![
                AclRule {
                    permit: false,
                    dst: Prefix::new(ip(10, 0, 0, 0), 8),
                    dst_ports: (22, 22),
                    ..AclRule::any(false)
                },
                AclRule {
                    permit: true,
                    dst: Prefix::new(ip(10, 0, 0, 0), 8),
                    ..AclRule::any(true)
                },
                AclRule::any(false),
            ],
        }
    }

    fn hdr(dst: u32, port: u16) -> Header {
        Header::new(dst, ip(1, 1, 1, 1), port, 55555, proto::TCP)
    }

    #[test]
    fn first_match_semantics() {
        let acl = acl3();
        let f = ZenFunction::new(move |h| acl3().allows(h));
        assert!(!f.evaluate(&hdr(ip(10, 1, 1, 1), 22))); // ssh denied
        assert!(f.evaluate(&hdr(ip(10, 1, 1, 1), 80))); // web allowed
        assert!(!f.evaluate(&hdr(ip(11, 1, 1, 1), 80))); // off-prefix denied
        assert_eq!(acl.matched_line_concrete(&hdr(ip(10, 1, 1, 1), 22)), 1);
        assert_eq!(acl.matched_line_concrete(&hdr(ip(10, 1, 1, 1), 80)), 2);
        assert_eq!(acl.matched_line_concrete(&hdr(ip(11, 1, 1, 1), 80)), 3);
    }

    #[test]
    fn default_deny_when_empty() {
        let f = ZenFunction::new(|h| Acl::default().allows(h));
        assert!(!f.evaluate(&hdr(ip(10, 0, 0, 1), 80)));
        let g = ZenFunction::new(|h| Acl::default().matched_line(h));
        assert_eq!(g.evaluate(&hdr(ip(10, 0, 0, 1), 80)), 0);
    }

    #[test]
    fn line_tracking_matches_reference() {
        let acl = acl3();
        let f = ZenFunction::new(move |h| acl3().matched_line(h));
        for h in [
            hdr(ip(10, 1, 1, 1), 22),
            hdr(ip(10, 9, 9, 9), 443),
            hdr(ip(172, 16, 0, 1), 22),
        ] {
            assert_eq!(f.evaluate(&h), acl.matched_line_concrete(&h));
        }
    }

    #[test]
    fn find_packet_matching_last_line() {
        // The Fig-10 verification task: find a packet that falls through
        // to the final rule (requires reasoning about the whole ACL).
        let n = acl3().rules.len() as u16;
        let f = ZenFunction::new(move |h| acl3().matched_line(h));
        for opts in [FindOptions::bdd(), FindOptions::smt()] {
            let h = f.find(|_, line| line.eq(Zen::val(n)), &opts).unwrap();
            assert_eq!(acl3().matched_line_concrete(&h), n);
        }
    }

    #[test]
    fn shadowed_rule_unreachable() {
        // Rule 2 duplicates rule 1 → no packet can match line 2.
        let acl = Acl {
            rules: vec![AclRule::any(true), AclRule::any(false)],
        };
        let f = ZenFunction::new(move |h| acl.clone().matched_line(h));
        assert!(f
            .find(|_, line| line.eq(Zen::val(2u16)), &FindOptions::bdd())
            .is_none());
    }
}
