//! The network-spec text format: parsing and serialization.
//!
//! A small line-oriented format for describing networks, so the verifier
//! can be driven without writing Rust. This lives in `rzen-net` (rather
//! than the CLI) because every front end needs it: the CLI loads specs
//! from disk, and the serve layer re-parses specs received over
//! `POST /model` for atomic hot-swap. Example:
//!
//! ```text
//! # Fig. 3: tunneled overlay across a 3-node underlay
//! device u1
//!   intf 1
//!   intf 2 gre-start 192.168.0.1 192.168.0.3
//! device u2
//!   intf 1 acl-in deny-dport 5000 6000
//!   intf 2
//! device u3
//!   intf 1 gre-end 192.168.0.1 192.168.0.3
//!   intf 2
//! route u1 0.0.0.0/0 2
//! route u2 0.0.0.0/0 2
//! route u3 10.0.0.0/8 2
//! link u1:2 u2:1
//! link u2:2 u3:1
//! ```
//!
//! Interface policies:
//! * `acl-in` / `acl-out` followed by one rule: `permit`/`deny`, or
//!   `deny-dport LO HI` (deny that destination-port range, permit the
//!   rest), or `permit-dst PREFIX` (permit that destination prefix, deny
//!   the rest).
//! * `gre-start SRC DST` / `gre-end SRC DST`: tunnel endpoints.
//! * `snat PREFIX TO` / `dnat PREFIX TO`: address translation.
//!
//! `route DEVICE PREFIX PORT` adds a forwarding entry to every interface
//! of the device (interfaces of one device share its table).
//!
//! [`serialize`] renders a parsed [`Spec`] back into this format;
//! [`parse`] ∘ [`serialize`] ∘ [`parse`] is the identity on the network
//! structure, which is what guards the serve layer's model hot-swap path.

use std::collections::HashMap;

use crate::acl::{Acl, AclRule};
use crate::device::Interface;
use crate::fwd::{FwdRule, FwdTable};
use crate::gre::GreTunnel;
use crate::ip::{fmt_ip, Prefix};
use crate::nat::{Nat, NatKind, NatRule};
use crate::topology::{Device, Network};

/// A parsed spec: the network plus the device-name index.
#[derive(Clone, Debug)]
pub struct Spec {
    /// The network.
    pub net: Network,
    /// Device name → index.
    pub device_index: HashMap<String, usize>,
}

impl Spec {
    /// Wrap an already-built [`Network`] in a spec, deriving the name
    /// index from the device list. Fails on duplicate device names (the
    /// index would silently shadow one of them).
    pub fn from_network(net: Network) -> Result<Spec, String> {
        let mut device_index = HashMap::new();
        for (i, d) in net.devices.iter().enumerate() {
            if device_index.insert(d.name.clone(), i).is_some() {
                return Err(format!("duplicate device name {:?}", d.name));
            }
        }
        Ok(Spec { net, device_index })
    }

    /// Resolve `name:port` into (device index, port). The port must be an
    /// interface that actually exists on the device.
    pub fn endpoint(&self, s: &str) -> Result<(usize, u8), String> {
        let (name, port) = s
            .split_once(':')
            .ok_or_else(|| format!("bad endpoint {s:?} (expected DEVICE:PORT)"))?;
        let dev = *self
            .device_index
            .get(name)
            .ok_or_else(|| format!("unknown device {name:?}"))?;
        let port: u8 = port
            .parse()
            .map_err(|e| format!("bad port in {s:?}: {e}"))?;
        if self.net.devices[dev].interface(port).is_none() {
            let ports: Vec<String> = self.net.devices[dev]
                .interfaces
                .iter()
                .map(|i| i.id.to_string())
                .collect();
            return Err(format!(
                "device {name:?} has no interface {port} (has: {})",
                ports.join(", ")
            ));
        }
        Ok((dev, port))
    }

    /// All edge ports: interfaces not used by any link, i.e. where traffic
    /// enters and leaves the fabric. These are the natural endpoints for
    /// all-pairs batch queries.
    pub fn edge_ports(&self) -> Vec<(usize, u8)> {
        self.net
            .all_interfaces()
            .into_iter()
            .filter(|&(d, p)| {
                !self.net.links.iter().any(|l| {
                    (l.from_device == d && l.from_intf == p) || (l.to_device == d && l.to_intf == p)
                })
            })
            .collect()
    }

    /// Human-readable `device:port` for an endpoint.
    pub fn endpoint_name(&self, (dev, port): (usize, u8)) -> String {
        format!("{}:{}", self.net.devices[dev].name, port)
    }
}

fn parse_ip(s: &str) -> Result<u32, String> {
    let octets: Vec<u8> = s
        .split('.')
        .map(|o| o.parse().map_err(|e| format!("bad octet in {s:?}: {e}")))
        .collect::<Result<_, String>>()?;
    if octets.len() != 4 {
        return Err(format!("bad address {s:?}"));
    }
    Ok(crate::ip::ip(octets[0], octets[1], octets[2], octets[3]))
}

struct PendingDevice {
    name: String,
    intfs: Vec<Interface>,
    routes: Vec<FwdRule>,
}

/// Parse a network spec.
pub fn parse(text: &str) -> Result<Spec, String> {
    let mut devices: Vec<PendingDevice> = Vec::new();
    let mut links: Vec<(String, String)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |m: String| format!("line {}: {m}", lineno + 1);
        let mut toks = line.split_whitespace();
        let Some(directive) = toks.next() else {
            continue;
        };
        match directive {
            "device" => {
                let name = toks
                    .next()
                    .ok_or_else(|| err("device needs a name".into()))?;
                devices.push(PendingDevice {
                    name: name.to_string(),
                    intfs: Vec::new(),
                    routes: Vec::new(),
                });
            }
            "intf" => {
                let dev = devices
                    .last_mut()
                    .ok_or_else(|| err("intf before any device".into()))?;
                let id: u8 = toks
                    .next()
                    .ok_or_else(|| err("intf needs a port id".into()))?
                    .parse()
                    .map_err(|e| err(format!("bad port id: {e}")))?;
                let mut intf = Interface::new(id, FwdTable::default());
                let rest: Vec<&str> = toks.collect();
                let mut i = 0;
                while i < rest.len() {
                    match rest[i] {
                        "acl-in" | "acl-out" => {
                            let (acl, used) = parse_acl(&rest[i + 1..])
                                .map_err(|m| err(format!("in {}: {m}", rest[i])))?;
                            if rest[i] == "acl-in" {
                                intf.acl_in = Some(acl);
                            } else {
                                intf.acl_out = Some(acl);
                            }
                            i += 1 + used;
                        }
                        "gre-start" | "gre-end" => {
                            let src = parse_ip(
                                rest.get(i + 1)
                                    .ok_or_else(|| err("gre needs SRC DST".into()))?,
                            )
                            .map_err(err)?;
                            let dst = parse_ip(
                                rest.get(i + 2)
                                    .ok_or_else(|| err("gre needs SRC DST".into()))?,
                            )
                            .map_err(err)?;
                            let t = GreTunnel {
                                src_ip: src,
                                dst_ip: dst,
                            };
                            if rest[i] == "gre-start" {
                                intf.gre_start = Some(t);
                            } else {
                                intf.gre_end = Some(t);
                            }
                            i += 3;
                        }
                        "snat" | "dnat" => {
                            let prefix: Prefix = rest
                                .get(i + 1)
                                .ok_or_else(|| err("nat needs PREFIX TO".into()))?
                                .parse()
                                .map_err(err)?;
                            let to = parse_ip(
                                rest.get(i + 2)
                                    .ok_or_else(|| err("nat needs PREFIX TO".into()))?,
                            )
                            .map_err(err)?;
                            let kind = if rest[i] == "snat" {
                                NatKind::Snat
                            } else {
                                NatKind::Dnat
                            };
                            let rule = NatRule {
                                kind,
                                matches: prefix,
                                rewrite_to: to,
                            };
                            let nat = Nat { rules: vec![rule] };
                            if kind == NatKind::Snat {
                                intf.nat_out = Some(nat);
                            } else {
                                intf.nat_in = Some(nat);
                            }
                            i += 3;
                        }
                        other => return Err(err(format!("unknown interface option {other:?}"))),
                    }
                }
                dev.intfs.push(intf);
            }
            "route" => {
                let name = toks
                    .next()
                    .ok_or_else(|| err("route needs DEVICE".into()))?;
                let prefix: Prefix = toks
                    .next()
                    .ok_or_else(|| err("route needs PREFIX".into()))?
                    .parse()
                    .map_err(err)?;
                let port: u8 = toks
                    .next()
                    .ok_or_else(|| err("route needs PORT".into()))?
                    .parse()
                    .map_err(|e| err(format!("bad port: {e}")))?;
                let dev = devices
                    .iter_mut()
                    .find(|d| d.name == name)
                    .ok_or_else(|| err(format!("unknown device {name:?}")))?;
                dev.routes.push(FwdRule { prefix, port });
            }
            "link" => {
                let a = toks
                    .next()
                    .ok_or_else(|| err("link needs two endpoints".into()))?;
                let b = toks
                    .next()
                    .ok_or_else(|| err("link needs two endpoints".into()))?;
                links.push((a.to_string(), b.to_string()));
            }
            other => return Err(err(format!("unknown directive {other:?}"))),
        }
    }

    // Materialize: every interface of a device shares the device table.
    let mut net = Network::default();
    let mut device_index = HashMap::new();
    for d in devices {
        let mut seen = Vec::new();
        for i in &d.intfs {
            if seen.contains(&i.id) {
                return Err(format!(
                    "device {:?} declares interface {} twice",
                    d.name, i.id
                ));
            }
            seen.push(i.id);
        }
        let table = FwdTable::new(d.routes.clone());
        let interfaces = d
            .intfs
            .into_iter()
            .map(|mut i| {
                i.table = table.clone();
                i
            })
            .collect();
        let idx = net.add_device(Device {
            name: d.name.clone(),
            interfaces,
        });
        if device_index.insert(d.name.clone(), idx).is_some() {
            return Err(format!("device {:?} declared twice", d.name));
        }
    }
    let resolve = |s: &str| -> Result<(usize, u8), String> {
        let (name, port) = s
            .split_once(':')
            .ok_or_else(|| format!("bad link endpoint {s:?} (expected DEVICE:PORT)"))?;
        let dev = *device_index
            .get(name)
            .ok_or_else(|| format!("unknown device {name:?} in link"))?;
        let port: u8 = port
            .parse()
            .map_err(|e| format!("bad port in {s:?}: {e}"))?;
        if net.devices[dev].interface(port).is_none() {
            return Err(format!(
                "link references {name}:{port}, but device {name:?} has no interface {port}"
            ));
        }
        Ok((dev, port))
    };
    let resolved: Vec<((usize, u8), (usize, u8))> = links
        .iter()
        .map(|(a, b)| Ok((resolve(a)?, resolve(b)?)))
        .collect::<Result<_, String>>()?;
    for ((ad, ap), (bd, bp)) in resolved {
        net.add_duplex(ad, ap, bd, bp);
    }
    Ok(Spec { net, device_index })
}

/// Parse a complete ACL shorthand string (`permit`, `deny`,
/// `deny-dport LO HI`, `permit-dst PREFIX`) — the same grammar `intf`
/// lines use after `acl-in`/`acl-out`. Rejects trailing tokens. The
/// delta protocol (`rzen-delta`) reuses this so a wire delta and a spec
/// line express ACLs identically.
pub fn parse_acl_shorthand(s: &str) -> Result<Acl, String> {
    let toks: Vec<&str> = s.split_whitespace().collect();
    let (acl, used) = parse_acl(&toks)?;
    if used != toks.len() {
        return Err(format!("trailing tokens after ACL shorthand in {s:?}"));
    }
    Ok(acl)
}

/// Render an ACL into its spec shorthand, if it has one. Public for the
/// delta layer's round-trips; [`serialize`] uses it per interface.
pub fn acl_shorthand(acl: &Acl) -> Result<String, String> {
    serialize_acl(acl)
}

/// Parse one ACL shorthand; returns (acl, tokens consumed).
fn parse_acl(rest: &[&str]) -> Result<(Acl, usize), String> {
    match rest.first() {
        Some(&"permit") => Ok((
            Acl {
                rules: vec![AclRule::any(true)],
            },
            1,
        )),
        Some(&"deny") => Ok((Acl::default(), 1)),
        Some(&"deny-dport") => {
            let lo: u16 = rest
                .get(1)
                .ok_or("deny-dport needs LO HI")?
                .parse()
                .map_err(|e| format!("bad LO: {e}"))?;
            let hi: u16 = rest
                .get(2)
                .ok_or("deny-dport needs LO HI")?
                .parse()
                .map_err(|e| format!("bad HI: {e}"))?;
            Ok((
                Acl {
                    rules: vec![
                        AclRule {
                            permit: false,
                            dst_ports: (lo, hi),
                            ..AclRule::any(false)
                        },
                        AclRule::any(true),
                    ],
                },
                3,
            ))
        }
        Some(&"permit-dst") => {
            let p: Prefix = rest.get(1).ok_or("permit-dst needs PREFIX")?.parse()?;
            Ok((
                Acl {
                    rules: vec![
                        AclRule {
                            permit: true,
                            dst: p,
                            ..AclRule::any(true)
                        },
                        AclRule::any(false),
                    ],
                },
                2,
            ))
        }
        other => Err(format!("unknown acl form {other:?}")),
    }
}

/// Render an ACL back into its spec shorthand, if it has one. The spec
/// format only expresses the four shorthand forms, so this is total on
/// everything [`parse`] produces and an error on anything else.
fn serialize_acl(acl: &Acl) -> Result<String, String> {
    if acl.rules.is_empty() {
        return Ok("deny".into());
    }
    if acl.rules == vec![AclRule::any(true)] {
        return Ok("permit".into());
    }
    if acl.rules.len() == 2 && acl.rules[1] == AclRule::any(true) {
        let r = &acl.rules[0];
        let template = AclRule {
            dst_ports: r.dst_ports,
            ..AclRule::any(false)
        };
        if *r == template {
            return Ok(format!("deny-dport {} {}", r.dst_ports.0, r.dst_ports.1));
        }
    }
    if acl.rules.len() == 2 && acl.rules[1] == AclRule::any(false) {
        let r = &acl.rules[0];
        let template = AclRule {
            dst: r.dst,
            ..AclRule::any(true)
        };
        if *r == template {
            return Ok(format!("permit-dst {}", r.dst));
        }
    }
    Err("ACL has no spec-format shorthand".into())
}

fn serialize_nat(nat: &Nat, kind: NatKind) -> Result<String, String> {
    let [rule] = nat.rules.as_slice() else {
        return Err("NAT with more than one rule has no spec-format form".into());
    };
    if rule.kind != kind {
        return Err("NAT rule direction disagrees with its interface slot".into());
    }
    let word = match kind {
        NatKind::Snat => "snat",
        NatKind::Dnat => "dnat",
    };
    Ok(format!(
        "{word} {} {}",
        rule.matches,
        fmt_ip(rule.rewrite_to)
    ))
}

/// Serialize a [`Spec`] back into the text format, such that
/// `parse(&serialize(&spec)?)` reconstructs a structurally equal
/// [`Network`] and device index. Fails when the network uses a construct
/// the format cannot express (an arbitrary ACL, a multi-rule NAT, or
/// interfaces of one device with diverging forwarding tables — none of
/// which [`parse`] can produce).
pub fn serialize(spec: &Spec) -> Result<String, String> {
    let mut out = String::new();
    for d in &spec.net.devices {
        out.push_str(&format!("device {}\n", d.name));
        for i in &d.interfaces {
            if i.table != d.interfaces[0].table {
                return Err(format!(
                    "device {:?}: interfaces disagree on the forwarding table",
                    d.name
                ));
            }
            out.push_str(&format!("  intf {}", i.id));
            if let Some(acl) = &i.acl_in {
                out.push_str(&format!(" acl-in {}", serialize_acl(acl)?));
            }
            if let Some(acl) = &i.acl_out {
                out.push_str(&format!(" acl-out {}", serialize_acl(acl)?));
            }
            if let Some(t) = &i.gre_start {
                out.push_str(&format!(
                    " gre-start {} {}",
                    fmt_ip(t.src_ip),
                    fmt_ip(t.dst_ip)
                ));
            }
            if let Some(t) = &i.gre_end {
                out.push_str(&format!(
                    " gre-end {} {}",
                    fmt_ip(t.src_ip),
                    fmt_ip(t.dst_ip)
                ));
            }
            if let Some(nat) = &i.nat_out {
                out.push_str(&format!(" {}", serialize_nat(nat, NatKind::Snat)?));
            }
            if let Some(nat) = &i.nat_in {
                out.push_str(&format!(" {}", serialize_nat(nat, NatKind::Dnat)?));
            }
            out.push('\n');
        }
        // Interfaces share the device table, so routes are emitted once
        // from the first interface.
        if let Some(first) = d.interfaces.first() {
            for rule in &first.table.rules {
                out.push_str(&format!("route {} {} {}\n", d.name, rule.prefix, rule.port));
            }
        }
    }
    // Links come in duplex pairs ([`Network::add_duplex`] pushes both
    // directions back to back); emit each pair once, in first-appearance
    // order, so re-parsing rebuilds the identical link list.
    let mut emitted: Vec<&crate::topology::Link> = Vec::new();
    for l in &spec.net.links {
        if emitted.iter().any(|e| {
            e.from_device == l.to_device
                && e.from_intf == l.to_intf
                && e.to_device == l.from_device
                && e.to_intf == l.from_intf
        }) {
            continue;
        }
        emitted.push(l);
        out.push_str(&format!(
            "link {}:{} {}:{}\n",
            spec.net.devices[l.from_device].name,
            l.from_intf,
            spec.net.devices[l.to_device].name,
            l.to_intf
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3: &str = r#"
# Fig. 3 in the spec format
device u1
  intf 1
  intf 2 gre-start 192.168.0.1 192.168.0.3
device u2
  intf 1 acl-in deny-dport 5000 6000
  intf 2
device u3
  intf 1 gre-end 192.168.0.1 192.168.0.3
  intf 2
route u1 0.0.0.0/0 2
route u2 0.0.0.0/0 2
route u3 10.0.0.0/8 2
link u1:2 u2:1
link u2:2 u3:1
"#;

    #[test]
    fn parses_fig3() {
        let spec = parse(FIG3).unwrap();
        assert_eq!(spec.net.devices.len(), 3);
        assert_eq!(spec.net.links.len(), 4); // two duplex links
        let u1 = spec.device_index["u1"];
        assert!(spec.net.devices[u1]
            .interface(2)
            .unwrap()
            .gre_start
            .is_some());
        let u2 = spec.device_index["u2"];
        assert!(spec.net.devices[u2].interface(1).unwrap().acl_in.is_some());
        // Tables are shared across a device's interfaces.
        let d = &spec.net.devices[u1];
        assert_eq!(d.interface(1).unwrap().table, d.interface(2).unwrap().table);
    }

    #[test]
    fn endpoint_resolution() {
        let spec = parse(FIG3).unwrap();
        assert_eq!(spec.endpoint("u2:1").unwrap(), (spec.device_index["u2"], 1));
        assert!(spec.endpoint("nope:1").is_err());
        assert!(spec.endpoint("u2").is_err());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(parse("intf 1\n").is_err()); // intf before device
        assert!(parse("device a\nintf x\n").is_err()); // bad port
        assert!(parse("frobnicate\n").is_err()); // unknown directive
        assert!(parse("device a\nroute b 0.0.0.0/0 1\n").is_err()); // unknown device
        assert!(parse("device a\nintf 1 acl-in frob\n").is_err()); // bad acl
                                                                   // Structural errors are caught at materialization.
        assert!(parse("device a\ndevice a\n").is_err()); // duplicate device
        assert!(parse("device a\nintf 1\nintf 1\n").is_err()); // duplicate intf
        assert!(parse("device a\nintf 1\ndevice b\nintf 1\nlink a:2 b:1\n").is_err()); // bad link port
        assert!(parse("device a\nintf 1\nlink a1 a:1\n").is_err()); // malformed endpoint
    }

    #[test]
    fn endpoint_requires_existing_port() {
        let spec = parse(FIG3).unwrap();
        let e = spec.endpoint("u2:7").unwrap_err();
        assert!(e.contains("no interface 7"), "got: {e}");
    }

    #[test]
    fn edge_ports_are_unlinked_interfaces() {
        let spec = parse(FIG3).unwrap();
        let mut edges: Vec<String> = spec
            .edge_ports()
            .into_iter()
            .map(|ep| spec.endpoint_name(ep))
            .collect();
        edges.sort();
        assert_eq!(edges, vec!["u1:1", "u3:2"]);
    }

    #[test]
    fn nat_options_parse() {
        let spec = parse(
            "device gw\n  intf 1 snat 10.0.0.0/8 203.0.113.1\n  intf 2 dnat 0.0.0.0/0 10.0.0.5\n",
        )
        .unwrap();
        let gw = &spec.net.devices[0];
        assert!(gw.interface(1).unwrap().nat_out.is_some());
        assert!(gw.interface(2).unwrap().nat_in.is_some());
    }

    #[test]
    fn serialize_round_trips_every_construct() {
        // One spec exercising every policy the format can express.
        let text = "device gw\n  intf 1 acl-in permit acl-out deny\n  \
                    intf 2 acl-in deny-dport 22 23 gre-start 1.2.3.4 5.6.7.8\n  \
                    intf 3 acl-out permit-dst 10.0.0.0/8 gre-end 1.2.3.4 5.6.7.8 \
                    snat 10.0.0.0/8 203.0.113.1 dnat 0.0.0.0/0 10.0.0.5\n\
                    device edge\n  intf 1\nroute gw 0.0.0.0/0 2\nroute gw 10.0.0.0/8 3\n\
                    link gw:1 edge:1\n";
        let spec = parse(text).unwrap();
        let rendered = serialize(&spec).unwrap();
        let reparsed =
            parse(&rendered).unwrap_or_else(|e| panic!("reparse failed: {e}\n{rendered}"));
        assert_eq!(
            spec.net, reparsed.net,
            "round trip changed the network:\n{rendered}"
        );
        assert_eq!(spec.device_index, reparsed.device_index);
    }

    #[test]
    fn serialize_rejects_unrepresentable_acl() {
        let mut spec = parse("device a\n  intf 1 acl-in permit\n").unwrap();
        // An arbitrary two-rule ACL has no shorthand.
        spec.net.devices[0].interfaces[0].acl_in = Some(Acl {
            rules: vec![AclRule::any(false), AclRule::any(false)],
        });
        assert!(serialize(&spec).is_err());
    }
}
