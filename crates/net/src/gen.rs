//! Seeded random workload generators, shared by the benchmark harness
//! (Fig. 10 reproduces "ACLs and route maps of different sizes generated
//! randomly") and the property tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::acl::{Acl, AclRule};
use crate::headers::Header;
use crate::ip::Prefix;
use crate::routing::{Action, Clause, MatchCond, PrefixRange, RouteMap};

/// A random prefix with plausible length distribution (favoring /8–/24).
/// Base addresses are drawn from a modest pool of "site" networks, the
/// way real ACLs concentrate on a handful of subnets.
pub fn random_prefix(rng: &mut StdRng) -> Prefix {
    let len = *[0u8, 8, 8, 16, 16, 16, 24, 24, 24, 32]
        .get(rng.gen_range(0..10))
        .unwrap();
    // 64 deterministic site networks plus host randomness in low bits.
    let site: u32 = (rng.gen_range(0u32..64)).wrapping_mul(0x0406_4361) ^ 0x0A00_0000;
    let host: u32 = rng.gen();
    let addr = (site & 0xFFFF_0000) | (host & 0x0000_FFFF);
    let p = Prefix::new(addr, len);
    Prefix::new(addr & p.mask(), len)
}

/// Well-known service ports real ACLs keep referring to.
const PORT_POOL: [u16; 24] = [
    20, 21, 22, 23, 25, 53, 67, 80, 110, 123, 143, 161, 179, 389, 443, 445, 514, 993, 1433, 3306,
    3389, 5432, 8080, 8443,
];

fn random_port_range(rng: &mut StdRng) -> (u16, u16) {
    match rng.gen_range(0..10) {
        0..=4 => (0, u16::MAX),
        5..=7 => {
            let p = PORT_POOL[rng.gen_range(0..PORT_POOL.len())];
            (p, p)
        }
        8 => (0, 1023),
        _ => (1024, u16::MAX),
    }
}

/// A random ACL with `n` rules. The final rule always matches everything,
/// and no earlier rule matches the reserved header (all-ones address,
/// port 65535), so the Fig-10 "find a packet matching the last line"
/// query is always satisfiable — and answering it requires analyzing the
/// complete ACL.
pub fn random_acl(n: usize, seed: u64) -> Acl {
    let mut rng = StdRng::seed_from_u64(seed);
    let reserved = Header::new(u32::MAX, u32::MAX, u16::MAX, u16::MAX, u8::MAX);
    let mut rules: Vec<AclRule> = (0..n.saturating_sub(1))
        .map(|_| {
            let mut r = AclRule {
                permit: rng.gen_bool(0.5),
                src: random_prefix(&mut rng),
                dst: random_prefix(&mut rng),
                dst_ports: random_port_range(&mut rng),
                src_ports: random_port_range(&mut rng),
                protocols: if rng.gen_bool(0.7) {
                    (0, u8::MAX)
                } else {
                    let p = *[6u8, 17, 47, 1].get(rng.gen_range(0..4)).unwrap();
                    (p, p)
                },
            };
            if r.matches_concrete(&reserved) {
                // Keep the reserved header for the catch-all.
                r.dst_ports = (r.dst_ports.0.min(65534), r.dst_ports.1.min(65534));
            }
            r
        })
        .collect();
    rules.push(AclRule::any(rng.gen_bool(0.5)));
    Acl { rules }
}

/// The announcement reserved by [`random_route_map`] to keep its final
/// clause reachable: no generated clause matches it.
pub fn reserved_announcement() -> crate::routing::Announcement {
    crate::routing::Announcement {
        prefix: Prefix::new(u32::MAX, 31).mask(),
        prefix_len: 31,
        as_path: vec![1, 2, 3],
        communities: vec![],
        local_pref: 100,
        med: 9999,
        next_hop: 0,
    }
}

/// A random route map with `n` clauses; the final clause matches
/// everything, and no earlier clause matches the reserved announcement,
/// so the "find an announcement deciding at the last clause" query stays
/// satisfiable (with list bound ≥ 3).
pub fn random_route_map(n: usize, seed: u64) -> RouteMap {
    let mut rng = StdRng::seed_from_u64(seed);
    let reserved = reserved_announcement();
    let mut clauses: Vec<Clause> = (0..n.saturating_sub(1))
        .map(|_| {
            let n_conds = rng.gen_range(1..=2);
            let conds = (0..n_conds)
                .map(|_| match rng.gen_range(0..5) {
                    0 => {
                        let p = random_prefix(&mut rng);
                        let ge = p.len;
                        let mut le = rng.gen_range(ge..=32);
                        let range = PrefixRange { prefix: p, ge, le };
                        if MatchCond::PrefixIn(vec![range]).matches_concrete(&reserved) {
                            // Exclude the reserved /31 announcement (this
                            // branch implies ge <= 24, so the range stays
                            // non-empty).
                            le = le.min(30);
                        }
                        MatchCond::PrefixIn(vec![PrefixRange { prefix: p, ge, le }])
                    }
                    1 => MatchCond::HasCommunity(rng.gen_range(0..64)),
                    2 => MatchCond::AsPathContains(rng.gen_range(64900..65100)),
                    // Keep the bound below typical symbolic list bounds so
                    // the condition stays avoidable (the Fig-10 query needs
                    // the last clause to be reachable).
                    3 => MatchCond::AsPathLengthLe(rng.gen_range(1..3)),
                    _ => MatchCond::MedEq(rng.gen_range(0..4)),
                })
                .collect();
            let n_actions = rng.gen_range(0..=2);
            let actions = (0..n_actions)
                .map(|_| match rng.gen_range(0..5) {
                    0 => Action::SetLocalPref(rng.gen_range(0..400)),
                    1 => Action::SetMed(rng.gen_range(0..16)),
                    2 => Action::AddCommunity(rng.gen_range(0..64)),
                    3 => Action::PrependAsPath(rng.gen_range(64900..65100), rng.gen_range(1..3)),
                    _ => Action::SetNextHop(rng.gen()),
                })
                .collect();
            Clause {
                conds,
                actions,
                permit: rng.gen_bool(0.7),
            }
        })
        .collect();
    clauses.push(Clause {
        conds: vec![],
        actions: vec![],
        permit: true,
    });
    RouteMap { clauses }
}

/// A random concrete header.
pub fn random_header(seed: u64) -> Header {
    let mut rng = StdRng::seed_from_u64(seed);
    Header::new(rng.gen(), rng.gen(), rng.gen(), rng.gen(), rng.gen())
}

/// The prefix owned by leaf `l` in a [`spine_leaf`] fabric.
pub fn leaf_prefix(l: usize) -> Prefix {
    Prefix::new(crate::ip::ip(10, l as u8, 0, 0), 16)
}

/// A two-tier spine-leaf fabric (the data-center topology the paper's
/// cloud-provider motivation implies): every leaf connects to every
/// spine; leaf `l` owns `10.l.0.0/16` behind its host port (99).
/// Cross-leaf traffic goes up to a deterministic spine and back down.
///
/// Device indices: spines `0..n_spines`, then leaves
/// `n_spines..n_spines+n_leaves`.
pub fn spine_leaf(n_spines: usize, n_leaves: usize) -> crate::topology::Network {
    use crate::device::Interface;
    use crate::fwd::{FwdRule, FwdTable};
    use crate::topology::{Device, Network};

    assert!(n_spines >= 1 && (1..=200).contains(&n_leaves));
    let mut net = Network::default();

    // Spines: port l+1 faces leaf l; route each leaf prefix down.
    for s in 0..n_spines {
        let table = FwdTable::new(
            (0..n_leaves)
                .map(|l| FwdRule {
                    prefix: leaf_prefix(l),
                    port: l as u8 + 1,
                })
                .collect(),
        );
        net.add_device(Device {
            name: format!("spine{s}"),
            interfaces: (0..n_leaves)
                .map(|l| Interface::new(l as u8 + 1, table.clone()))
                .collect(),
        });
    }

    // Leaves: port s+1 faces spine s; port 99 faces hosts. Own prefix
    // goes to the host port, every other leaf prefix to that leaf's
    // designated spine.
    for l in 0..n_leaves {
        let mut rules = vec![FwdRule {
            prefix: leaf_prefix(l),
            port: 99,
        }];
        for m in 0..n_leaves {
            if m != l {
                rules.push(FwdRule {
                    prefix: leaf_prefix(m),
                    port: (m % n_spines) as u8 + 1,
                });
            }
        }
        let table = FwdTable::new(rules);
        let mut interfaces: Vec<Interface> = (0..n_spines)
            .map(|s| Interface::new(s as u8 + 1, table.clone()))
            .collect();
        interfaces.push(Interface::new(99, table.clone()));
        let leaf = net.add_device(Device {
            name: format!("leaf{l}"),
            interfaces,
        });
        for s in 0..n_spines {
            net.add_duplex(leaf, s as u8 + 1, s, l as u8 + 1);
        }
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_with_seed() {
        assert_eq!(random_acl(50, 7), random_acl(50, 7));
        assert_ne!(random_acl(50, 7), random_acl(50, 8));
        assert_eq!(random_route_map(20, 3), random_route_map(20, 3));
    }

    #[test]
    fn acl_sizes() {
        assert_eq!(random_acl(100, 1).rules.len(), 100);
        assert_eq!(random_acl(1, 1).rules.len(), 1);
        assert_eq!(random_route_map(10, 1).clauses.len(), 10);
    }

    #[test]
    fn last_rule_is_catch_all() {
        let acl = random_acl(30, 9);
        let h = random_header(1234);
        // Some rule always matches, because the final rule matches all.
        assert_ne!(acl.matched_line_concrete(&h), 0);
    }

    #[test]
    fn prefixes_are_canonical() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let p = random_prefix(&mut rng);
            assert_eq!(p.address & p.mask(), p.address);
        }
    }
}
