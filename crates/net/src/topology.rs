//! Network topology: devices, links, and path enumeration.
//!
//! Analyses that reason per-path (Anteater-style reachability, Fig. 7
//! forwarding) enumerate simple paths here; set-based analyses (HSA) walk
//! the same structure with transformers instead.

use crate::device::{Hop, Interface};

/// A device: a named node with numbered interfaces.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Device {
    /// Human-readable name.
    pub name: String,
    /// Interfaces, indexed by their `id` (position in the vector is not
    /// significant; ids are).
    pub interfaces: Vec<Interface>,
}

impl Device {
    /// Look up an interface by port id.
    pub fn interface(&self, id: u8) -> Option<&Interface> {
        self.interfaces.iter().find(|i| i.id == id)
    }
}

/// A unidirectional link between two device interfaces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Link {
    /// Source device index.
    pub from_device: usize,
    /// Source interface id (egress).
    pub from_intf: u8,
    /// Destination device index.
    pub to_device: usize,
    /// Destination interface id (ingress).
    pub to_intf: u8,
}

/// A network: devices plus links.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Network {
    /// The devices.
    pub devices: Vec<Device>,
    /// The links.
    pub links: Vec<Link>,
}

impl Network {
    /// Add a device, returning its index.
    pub fn add_device(&mut self, d: Device) -> usize {
        self.devices.push(d);
        self.devices.len() - 1
    }

    /// Add a unidirectional link.
    pub fn add_link(&mut self, from_device: usize, from_intf: u8, to_device: usize, to_intf: u8) {
        self.links.push(Link {
            from_device,
            from_intf,
            to_device,
            to_intf,
        });
    }

    /// Add links in both directions.
    pub fn add_duplex(&mut self, a: usize, a_intf: u8, b: usize, b_intf: u8) {
        self.add_link(a, a_intf, b, b_intf);
        self.add_link(b, b_intf, a, a_intf);
    }

    /// Enumerate the simple device paths from `src` to `dst` (device
    /// indices), as hop lists usable with
    /// [`crate::device::forward_along`]. `entry_intf` is the interface on
    /// `src` where the packet enters the network.
    pub fn paths(&self, src: usize, entry_intf: u8, dst: usize, exit_intf: u8) -> Vec<Vec<Hop>> {
        let mut out = Vec::new();
        let mut visited = vec![false; self.devices.len()];
        let mut hops: Vec<Hop> = Vec::new();
        self.dfs(
            src,
            entry_intf,
            dst,
            exit_intf,
            &mut visited,
            &mut hops,
            &mut out,
        );
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        dev: usize,
        in_intf: u8,
        dst: usize,
        exit_intf: u8,
        visited: &mut [bool],
        hops: &mut Vec<Hop>,
        out: &mut Vec<Vec<Hop>>,
    ) {
        visited[dev] = true;
        let Some(intf_in) = self.devices[dev].interface(in_intf) else {
            visited[dev] = false;
            return;
        };
        if dev == dst {
            if let Some(intf_out) = self.devices[dev].interface(exit_intf) {
                hops.push(Hop {
                    intf_in: intf_in.clone(),
                    intf_out: intf_out.clone(),
                });
                out.push(hops.clone());
                hops.pop();
            }
            visited[dev] = false;
            return;
        }
        for link in self.links.iter().filter(|l| l.from_device == dev) {
            if visited[link.to_device] {
                continue;
            }
            let Some(intf_out) = self.devices[dev].interface(link.from_intf) else {
                continue;
            };
            hops.push(Hop {
                intf_in: intf_in.clone(),
                intf_out: intf_out.clone(),
            });
            self.dfs(
                link.to_device,
                link.to_intf,
                dst,
                exit_intf,
                visited,
                hops,
                out,
            );
            hops.pop();
        }
        visited[dev] = false;
    }

    /// Devices reachable from `dev` by following links forward (including
    /// `dev` itself). Link-level connectivity only — tables and ACLs are
    /// ignored, so this over-approximates forwarding reachability, which
    /// is the safe direction for cache invalidation.
    pub fn reachable_from(&self, dev: usize) -> std::collections::HashSet<usize> {
        self.closure(dev, |l| (l.from_device, l.to_device))
    }

    /// Devices from which `dev` is reachable by following links forward
    /// (including `dev` itself): the reverse closure of
    /// [`Network::reachable_from`].
    pub fn reaching(&self, dev: usize) -> std::collections::HashSet<usize> {
        self.closure(dev, |l| (l.to_device, l.from_device))
    }

    fn closure(
        &self,
        start: usize,
        dir: impl Fn(&Link) -> (usize, usize),
    ) -> std::collections::HashSet<usize> {
        let mut seen = std::collections::HashSet::new();
        if start >= self.devices.len() {
            return seen;
        }
        let mut stack = vec![start];
        seen.insert(start);
        while let Some(d) = stack.pop() {
            for l in &self.links {
                let (from, to) = dir(l);
                if from == d && seen.insert(to) {
                    stack.push(to);
                }
            }
        }
        seen
    }

    /// Every `(device, interface)` pair that lies on some simple path from
    /// `(src, entry_intf)` to `(dst, exit_intf)` — both the ingress and
    /// egress interface of every hop, entry and exit ports included. This
    /// is the *path footprint* of a reachability query: a policy change on
    /// an interface outside the footprint cannot change the query's
    /// verdict, because no enumerated path evaluates that interface.
    pub fn path_footprint(
        &self,
        src: usize,
        entry_intf: u8,
        dst: usize,
        exit_intf: u8,
    ) -> std::collections::HashSet<(usize, u8)> {
        let mut out = std::collections::HashSet::new();
        let mut visited = vec![false; self.devices.len()];
        let mut trail: Vec<(usize, u8)> = Vec::new();
        self.footprint_dfs(
            src,
            entry_intf,
            dst,
            exit_intf,
            &mut visited,
            &mut trail,
            &mut out,
        );
        out
    }

    /// Mirrors [`Network::dfs`] exactly (same traversal, same pruning) but
    /// records `(device, intf)` pairs instead of building hop lists.
    #[allow(clippy::too_many_arguments)]
    fn footprint_dfs(
        &self,
        dev: usize,
        in_intf: u8,
        dst: usize,
        exit_intf: u8,
        visited: &mut [bool],
        trail: &mut Vec<(usize, u8)>,
        out: &mut std::collections::HashSet<(usize, u8)>,
    ) {
        visited[dev] = true;
        if self.devices[dev].interface(in_intf).is_none() {
            visited[dev] = false;
            return;
        }
        if dev == dst {
            if self.devices[dev].interface(exit_intf).is_some() {
                out.extend(trail.iter().copied());
                out.insert((dev, in_intf));
                out.insert((dev, exit_intf));
            }
            visited[dev] = false;
            return;
        }
        for link in self.links.iter().filter(|l| l.from_device == dev) {
            if visited[link.to_device] {
                continue;
            }
            if self.devices[dev].interface(link.from_intf).is_none() {
                continue;
            }
            trail.push((dev, in_intf));
            trail.push((dev, link.from_intf));
            self.footprint_dfs(
                link.to_device,
                link.to_intf,
                dst,
                exit_intf,
                visited,
                trail,
                out,
            );
            trail.pop();
            trail.pop();
        }
        visited[dev] = false;
    }

    /// All (device, interface-id) pairs — used by set-based analyses to
    /// seed exploration.
    pub fn all_interfaces(&self) -> Vec<(usize, u8)> {
        self.devices
            .iter()
            .enumerate()
            .flat_map(|(d, dev)| dev.interfaces.iter().map(move |i| (d, i.id)))
            .collect()
    }

    /// The link leaving `(device, intf)`, if any.
    pub fn link_from(&self, device: usize, intf: u8) -> Option<&Link> {
        self.links
            .iter()
            .find(|l| l.from_device == device && l.from_intf == intf)
    }
}

/// What one delta operation touched, at the granularity cache
/// invalidation reasons about. Produced by the delta applier
/// (`rzen-delta`), consumed by the engine's dependency-aware eviction —
/// it lives here because both sides already depend on `rzen-net`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Touch {
    /// Per-interface policy changed (ACL, tunnel, NAT): only queries whose
    /// path footprint includes this exact `(device, intf)` can change.
    Intf {
        /// Device index in the *post-op* network.
        device: usize,
        /// Interface id on that device.
        intf: u8,
    },
    /// The device's forwarding table changed: any query whose footprint
    /// visits the device at all can change.
    Table {
        /// Device index in the *post-op* network.
        device: usize,
    },
    /// A duplex link went down. A query is affected only if the *used*
    /// link was on one of its paths — i.e. both endpoints are in its
    /// footprint.
    LinkDown {
        /// One endpoint of the removed duplex pair.
        a: (usize, u8),
        /// The other endpoint.
        b: (usize, u8),
    },
    /// A duplex link came up. Existing paths are untouched; new paths can
    /// only appear for queries where one endpoint was forward-reachable
    /// from the source and the other could reach the destination on the
    /// pre-op graph.
    LinkUp {
        /// One endpoint of the added duplex pair.
        a: (usize, u8),
        /// The other endpoint.
        b: (usize, u8),
    },
    /// A device was appended (unlinked): no existing query can change.
    DeviceAdded {
        /// Index of the new device.
        device: usize,
    },
    /// A device was removed. Indices shift, so nothing keyed by the old
    /// network can be salvaged: evict everything for that model.
    DeviceRemoved,
}

/// One applied delta operation: the network as it stood *before* the op,
/// plus what the op touched. Multi-op deltas are invalidated one step at
/// a time against each step's own pre-op graph — evaluating every op
/// against the original graph would miss paths enabled by a chain of
/// `link-up`s.
#[derive(Clone, Debug)]
pub struct DeltaStep {
    /// The network before this op was applied.
    pub pre: Network,
    /// What the op touched.
    pub touch: Touch,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fwd::{FwdRule, FwdTable};
    use crate::ip::Prefix;

    fn dev(name: &str, ports: &[u8]) -> Device {
        let table = FwdTable::new(vec![FwdRule {
            prefix: Prefix::ANY,
            port: ports[0],
        }]);
        Device {
            name: name.into(),
            interfaces: ports
                .iter()
                .map(|&p| Interface::new(p, table.clone()))
                .collect(),
        }
    }

    fn triangle() -> Network {
        // a --1/1-- b --2/1-- c, plus a --2/2-- c directly.
        let mut n = Network::default();
        let a = n.add_device(dev("a", &[1, 2, 9]));
        let b = n.add_device(dev("b", &[1, 2]));
        let c = n.add_device(dev("c", &[1, 2, 9]));
        n.add_duplex(a, 1, b, 1);
        n.add_duplex(b, 2, c, 1);
        n.add_duplex(a, 2, c, 2);
        n
    }

    #[test]
    fn enumerates_simple_paths() {
        let n = triangle();
        // Enter a at 9, exit c at 9.
        let paths = n.paths(0, 9, 2, 9);
        assert_eq!(paths.len(), 2); // a-b-c and a-c
        let lens: Vec<usize> = paths.iter().map(|p| p.len()).collect();
        assert!(lens.contains(&2) && lens.contains(&3));
    }

    #[test]
    fn no_path_to_disconnected_device() {
        let mut n = triangle();
        let d = n.add_device(dev("d", &[1]));
        assert!(n.paths(0, 9, d, 1).is_empty());
    }

    #[test]
    fn missing_interface_yields_no_path() {
        let n = triangle();
        assert!(n.paths(0, 7, 2, 9).is_empty());
    }

    #[test]
    fn link_lookup() {
        let n = triangle();
        let l = n.link_from(0, 1).unwrap();
        assert_eq!(l.to_device, 1);
        assert_eq!(l.to_intf, 1);
        assert!(n.link_from(0, 9).is_none());
    }

    #[test]
    fn all_interfaces_lists_everything() {
        let n = triangle();
        assert_eq!(n.all_interfaces().len(), 8);
    }

    #[test]
    fn closures_follow_link_direction() {
        // a -> b -> c (one-way chain), d isolated.
        let mut n = Network::default();
        let a = n.add_device(dev("a", &[1]));
        let b = n.add_device(dev("b", &[1, 2]));
        let c = n.add_device(dev("c", &[1]));
        let d = n.add_device(dev("d", &[1]));
        n.add_link(a, 1, b, 1);
        n.add_link(b, 2, c, 1);

        let from_a = n.reachable_from(a);
        assert!(from_a.contains(&a) && from_a.contains(&b) && from_a.contains(&c));
        assert!(!from_a.contains(&d));
        assert_eq!(n.reachable_from(c).len(), 1); // just itself
        let to_c = n.reaching(c);
        assert!(to_c.contains(&a) && to_c.contains(&b) && to_c.contains(&c));
        assert_eq!(n.reaching(a).len(), 1);
    }

    #[test]
    fn footprint_covers_exactly_the_interfaces_on_paths() {
        let n = triangle();
        // a:9 -> c:9 has two paths: a-b-c and a-c direct.
        let fp = n.path_footprint(0, 9, 2, 9);
        // Every interface of a, b, c that a path evaluates:
        for pair in [
            (0, 9), // entry
            (0, 1), // a's egress toward b
            (0, 2), // a's egress toward c
            (1, 1), // b ingress
            (1, 2), // b egress
            (2, 1), // c ingress from b
            (2, 2), // c ingress from a
            (2, 9), // exit
        ] {
            assert!(fp.contains(&pair), "missing {pair:?} in {fp:?}");
        }
        assert_eq!(fp.len(), 8);
    }

    #[test]
    fn footprint_excludes_interfaces_off_path() {
        // spine-leaf: an edge port of a third leaf is on no path between
        // the other two leaves.
        let n = crate::gen::spine_leaf(2, 3);
        let (l0, l1, l2) = (2, 3, 4);
        let fp = n.path_footprint(l0, 99, l2, 99);
        assert!(fp.contains(&(l0, 99)) && fp.contains(&(l2, 99)));
        assert!(
            !fp.contains(&(l1, 99)),
            "l1's host port must not be on any l0->l2 path"
        );
        // Empty when no path exists.
        let mut disconnected = n.clone();
        disconnected.links.clear();
        assert!(disconnected.path_footprint(l0, 99, l2, 99).is_empty());
    }
}
