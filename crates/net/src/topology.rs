//! Network topology: devices, links, and path enumeration.
//!
//! Analyses that reason per-path (Anteater-style reachability, Fig. 7
//! forwarding) enumerate simple paths here; set-based analyses (HSA) walk
//! the same structure with transformers instead.

use crate::device::{Hop, Interface};

/// A device: a named node with numbered interfaces.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Device {
    /// Human-readable name.
    pub name: String,
    /// Interfaces, indexed by their `id` (position in the vector is not
    /// significant; ids are).
    pub interfaces: Vec<Interface>,
}

impl Device {
    /// Look up an interface by port id.
    pub fn interface(&self, id: u8) -> Option<&Interface> {
        self.interfaces.iter().find(|i| i.id == id)
    }
}

/// A unidirectional link between two device interfaces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Link {
    /// Source device index.
    pub from_device: usize,
    /// Source interface id (egress).
    pub from_intf: u8,
    /// Destination device index.
    pub to_device: usize,
    /// Destination interface id (ingress).
    pub to_intf: u8,
}

/// A network: devices plus links.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Network {
    /// The devices.
    pub devices: Vec<Device>,
    /// The links.
    pub links: Vec<Link>,
}

impl Network {
    /// Add a device, returning its index.
    pub fn add_device(&mut self, d: Device) -> usize {
        self.devices.push(d);
        self.devices.len() - 1
    }

    /// Add a unidirectional link.
    pub fn add_link(&mut self, from_device: usize, from_intf: u8, to_device: usize, to_intf: u8) {
        self.links.push(Link {
            from_device,
            from_intf,
            to_device,
            to_intf,
        });
    }

    /// Add links in both directions.
    pub fn add_duplex(&mut self, a: usize, a_intf: u8, b: usize, b_intf: u8) {
        self.add_link(a, a_intf, b, b_intf);
        self.add_link(b, b_intf, a, a_intf);
    }

    /// Enumerate the simple device paths from `src` to `dst` (device
    /// indices), as hop lists usable with
    /// [`crate::device::forward_along`]. `entry_intf` is the interface on
    /// `src` where the packet enters the network.
    pub fn paths(&self, src: usize, entry_intf: u8, dst: usize, exit_intf: u8) -> Vec<Vec<Hop>> {
        let mut out = Vec::new();
        let mut visited = vec![false; self.devices.len()];
        let mut hops: Vec<Hop> = Vec::new();
        self.dfs(
            src,
            entry_intf,
            dst,
            exit_intf,
            &mut visited,
            &mut hops,
            &mut out,
        );
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &self,
        dev: usize,
        in_intf: u8,
        dst: usize,
        exit_intf: u8,
        visited: &mut [bool],
        hops: &mut Vec<Hop>,
        out: &mut Vec<Vec<Hop>>,
    ) {
        visited[dev] = true;
        let Some(intf_in) = self.devices[dev].interface(in_intf) else {
            visited[dev] = false;
            return;
        };
        if dev == dst {
            if let Some(intf_out) = self.devices[dev].interface(exit_intf) {
                hops.push(Hop {
                    intf_in: intf_in.clone(),
                    intf_out: intf_out.clone(),
                });
                out.push(hops.clone());
                hops.pop();
            }
            visited[dev] = false;
            return;
        }
        for link in self.links.iter().filter(|l| l.from_device == dev) {
            if visited[link.to_device] {
                continue;
            }
            let Some(intf_out) = self.devices[dev].interface(link.from_intf) else {
                continue;
            };
            hops.push(Hop {
                intf_in: intf_in.clone(),
                intf_out: intf_out.clone(),
            });
            self.dfs(
                link.to_device,
                link.to_intf,
                dst,
                exit_intf,
                visited,
                hops,
                out,
            );
            hops.pop();
        }
        visited[dev] = false;
    }

    /// All (device, interface-id) pairs — used by set-based analyses to
    /// seed exploration.
    pub fn all_interfaces(&self) -> Vec<(usize, u8)> {
        self.devices
            .iter()
            .enumerate()
            .flat_map(|(d, dev)| dev.interfaces.iter().map(move |i| (d, i.id)))
            .collect()
    }

    /// The link leaving `(device, intf)`, if any.
    pub fn link_from(&self, device: usize, intf: u8) -> Option<&Link> {
        self.links
            .iter()
            .find(|l| l.from_device == device && l.from_intf == intf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fwd::{FwdRule, FwdTable};
    use crate::ip::Prefix;

    fn dev(name: &str, ports: &[u8]) -> Device {
        let table = FwdTable::new(vec![FwdRule {
            prefix: Prefix::ANY,
            port: ports[0],
        }]);
        Device {
            name: name.into(),
            interfaces: ports
                .iter()
                .map(|&p| Interface::new(p, table.clone()))
                .collect(),
        }
    }

    fn triangle() -> Network {
        // a --1/1-- b --2/1-- c, plus a --2/2-- c directly.
        let mut n = Network::default();
        let a = n.add_device(dev("a", &[1, 2, 9]));
        let b = n.add_device(dev("b", &[1, 2]));
        let c = n.add_device(dev("c", &[1, 2, 9]));
        n.add_duplex(a, 1, b, 1);
        n.add_duplex(b, 2, c, 1);
        n.add_duplex(a, 2, c, 2);
        n
    }

    #[test]
    fn enumerates_simple_paths() {
        let n = triangle();
        // Enter a at 9, exit c at 9.
        let paths = n.paths(0, 9, 2, 9);
        assert_eq!(paths.len(), 2); // a-b-c and a-c
        let lens: Vec<usize> = paths.iter().map(|p| p.len()).collect();
        assert!(lens.contains(&2) && lens.contains(&3));
    }

    #[test]
    fn no_path_to_disconnected_device() {
        let mut n = triangle();
        let d = n.add_device(dev("d", &[1]));
        assert!(n.paths(0, 9, d, 1).is_empty());
    }

    #[test]
    fn missing_interface_yields_no_path() {
        let n = triangle();
        assert!(n.paths(0, 7, 2, 9).is_empty());
    }

    #[test]
    fn link_lookup() {
        let n = triangle();
        let l = n.link_from(0, 1).unwrap();
        assert_eq!(l.to_device, 1);
        assert_eq!(l.to_intf, 1);
        assert!(n.link_from(0, 9).is_none());
    }

    #[test]
    fn all_interfaces_lists_everything() {
        let n = triangle();
        assert_eq!(n.all_interfaces().len(), 8);
    }
}
