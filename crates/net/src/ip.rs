//! IPv4 addresses and prefixes.

use rzen::{Zen, ZenFunction};

/// Build an IPv4 address from dotted-quad octets.
pub const fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
    (a as u32) << 24 | (b as u32) << 16 | (c as u32) << 8 | d as u32
}

/// Render an address dotted-quad (diagnostics).
pub fn fmt_ip(addr: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        addr >> 24 & 0xFF,
        addr >> 16 & 0xFF,
        addr >> 8 & 0xFF,
        addr & 0xFF
    )
}

/// An IPv4 prefix `address/len`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Prefix {
    /// The network address (host bits are ignored when matching).
    pub address: u32,
    /// Prefix length, 0–32.
    pub len: u8,
}

impl Prefix {
    /// Construct a prefix (length is validated).
    pub fn new(address: u32, len: u8) -> Prefix {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix { address, len }
    }

    /// The wildcard prefix `0.0.0.0/0`.
    pub const ANY: Prefix = Prefix { address: 0, len: 0 };

    /// The mask selecting the network bits.
    pub fn mask(&self) -> u32 {
        if self.len == 0 {
            0
        } else {
            u32::MAX << (32 - self.len)
        }
    }

    // ZEN-LOC-BEGIN(lpm)
    /// Does the (symbolic) address fall inside this prefix? This is the
    /// paper's `Matches` (Fig. 4): mask the address and compare.
    pub fn matches(&self, addr: Zen<u32>) -> Zen<bool> {
        (addr & self.mask()).eq(Zen::val(self.address & self.mask()))
    }
    // ZEN-LOC-END(lpm)

    /// Concrete containment check.
    pub fn contains(&self, addr: u32) -> bool {
        addr & self.mask() == self.address & self.mask()
    }
}

impl std::fmt::Display for Prefix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", fmt_ip(self.address), self.len)
    }
}

/// Parse `a.b.c.d/len` (diagnostics and test fixtures).
impl std::str::FromStr for Prefix {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or("missing '/'")?;
        let octets: Vec<u8> = addr
            .split('.')
            .map(|o| o.parse().map_err(|e| format!("bad octet: {e}")))
            .collect::<Result<_, String>>()?;
        if octets.len() != 4 {
            return Err("need 4 octets".into());
        }
        let len: u8 = len.parse().map_err(|e| format!("bad length: {e}"))?;
        if len > 32 {
            return Err("length > 32".into());
        }
        Ok(Prefix::new(
            ip(octets[0], octets[1], octets[2], octets[3]),
            len,
        ))
    }
}

/// The symbolic and concrete `matches` agree — used as a self-check in
/// tests and exposed for property testing.
pub fn matches_model(p: Prefix) -> ZenFunction<u32, bool> {
    ZenFunction::new(move |addr| p.matches(addr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_packing() {
        assert_eq!(ip(10, 0, 0, 1), 0x0A000001);
        assert_eq!(ip(255, 255, 255, 255), u32::MAX);
        assert_eq!(fmt_ip(ip(192, 168, 1, 7)), "192.168.1.7");
    }

    #[test]
    fn masks() {
        assert_eq!(Prefix::new(0, 0).mask(), 0);
        assert_eq!(Prefix::new(0, 8).mask(), 0xFF000000);
        assert_eq!(Prefix::new(0, 32).mask(), u32::MAX);
    }

    #[test]
    fn concrete_containment() {
        let p = Prefix::new(ip(10, 1, 0, 0), 16);
        assert!(p.contains(ip(10, 1, 2, 3)));
        assert!(!p.contains(ip(10, 2, 0, 0)));
        assert!(Prefix::ANY.contains(ip(1, 2, 3, 4)));
    }

    #[test]
    fn symbolic_matches_concrete() {
        for p in [
            Prefix::ANY,
            Prefix::new(ip(10, 0, 0, 0), 8),
            Prefix::new(ip(192, 168, 1, 0), 24),
            Prefix::new(ip(1, 2, 3, 4), 32),
        ] {
            let m = matches_model(p);
            for addr in [
                0u32,
                ip(10, 0, 0, 1),
                ip(192, 168, 1, 99),
                ip(1, 2, 3, 4),
                u32::MAX,
            ] {
                assert_eq!(
                    m.evaluate(&addr),
                    p.contains(addr),
                    "{p} vs {}",
                    fmt_ip(addr)
                );
            }
        }
    }

    #[test]
    fn parsing() {
        let p: Prefix = "10.0.0.0/8".parse().unwrap();
        assert_eq!(p, Prefix::new(ip(10, 0, 0, 0), 8));
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0/8".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
    }

    #[test]
    fn find_address_in_prefix() {
        let p = Prefix::new(ip(10, 20, 0, 0), 16);
        let m = matches_model(p);
        let found = m
            .find(|_, out| out, &rzen::FindOptions::bdd())
            .expect("prefix is nonempty");
        assert!(p.contains(found));
    }
}
