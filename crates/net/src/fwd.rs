//! Longest-prefix-match forwarding tables — the paper's Fig. 4 `Forward`.

use crate::headers::{Header, HeaderFields};
use crate::ip::Prefix;
use rzen::{zif, Zen};

/// One forwarding entry: a prefix and the output port it selects.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FwdRule {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Output port (0 is the null interface — drop).
    pub port: u8,
}

/// A forwarding table. Entries must be kept in descending order of prefix
/// length so first-match implements longest-prefix match, exactly as the
/// paper's Fig. 4 assumes ("entries are in descending order of prefix
/// length").
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct FwdTable {
    /// The rules, longest prefixes first.
    pub rules: Vec<FwdRule>,
}

// ZEN-LOC-BEGIN(fwd)
/// Evaluate the header against the forwarding table starting at rule `i`,
/// returning the output port (0 = null interface). A direct port of the
/// paper's `Forward` (Fig. 4): the recursion happens in the host language.
pub fn forward(t: &FwdTable, h: Zen<Header>, i: usize) -> Zen<u8> {
    if i >= t.rules.len() {
        return Zen::val(0); // null interface
    }
    let r = &t.rules[i];
    zif(
        r.prefix.matches(h.dst_ip()),
        Zen::val(r.port),
        forward(t, h, i + 1),
    )
}

impl FwdTable {
    /// Symbolic forwarding (iterative construction — same semantics as
    /// [`forward`], suitable for very large tables).
    pub fn lookup(&self, h: Zen<Header>) -> Zen<u8> {
        let mut out = Zen::val(0u8);
        for r in self.rules.iter().rev() {
            out = zif(r.prefix.matches(h.dst_ip()), Zen::val(r.port), out);
        }
        out
    }
}
// ZEN-LOC-END(fwd)

impl FwdTable {
    /// Build a table from entries, sorting them into LPM order (longest
    /// prefix first; ties keep insertion order).
    pub fn new(mut rules: Vec<FwdRule>) -> FwdTable {
        rules.sort_by_key(|r| std::cmp::Reverse(r.prefix.len));
        FwdTable { rules }
    }

    /// Concrete-reference semantics.
    pub fn lookup_concrete(&self, h: &Header) -> u8 {
        self.rules
            .iter()
            .find(|r| r.prefix.contains(h.dst_ip))
            .map(|r| r.port)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::proto;
    use crate::ip::ip;
    use rzen::{FindOptions, ZenFunction};

    fn table() -> FwdTable {
        FwdTable::new(vec![
            FwdRule {
                prefix: Prefix::new(ip(10, 0, 0, 0), 8),
                port: 1,
            },
            FwdRule {
                prefix: Prefix::new(ip(10, 1, 0, 0), 16),
                port: 2,
            },
            FwdRule {
                prefix: Prefix::new(ip(10, 1, 2, 0), 24),
                port: 3,
            },
            FwdRule {
                prefix: Prefix::ANY,
                port: 4,
            },
        ])
    }

    fn hdr(dst: u32) -> Header {
        Header::new(dst, 0, 0, 0, proto::TCP)
    }

    #[test]
    fn lpm_order_after_new() {
        let t = table();
        let lens: Vec<u8> = t.rules.iter().map(|r| r.prefix.len).collect();
        assert_eq!(lens, vec![24, 16, 8, 0]);
    }

    #[test]
    fn longest_prefix_wins() {
        let t = table();
        assert_eq!(t.lookup_concrete(&hdr(ip(10, 1, 2, 9))), 3);
        assert_eq!(t.lookup_concrete(&hdr(ip(10, 1, 9, 9))), 2);
        assert_eq!(t.lookup_concrete(&hdr(ip(10, 9, 9, 9))), 1);
        assert_eq!(t.lookup_concrete(&hdr(ip(11, 0, 0, 1))), 4);
    }

    #[test]
    fn recursive_and_iterative_agree() {
        let f = ZenFunction::new(|h| forward(&table(), h, 0));
        let g = ZenFunction::new(|h| table().lookup(h));
        for dst in [
            ip(10, 1, 2, 9),
            ip(10, 1, 9, 9),
            ip(10, 9, 9, 9),
            ip(11, 0, 0, 1),
        ] {
            let h = hdr(dst);
            assert_eq!(f.evaluate(&h), g.evaluate(&h));
            assert_eq!(f.evaluate(&h), table().lookup_concrete(&h));
        }
    }

    #[test]
    fn empty_table_drops() {
        let f = ZenFunction::new(|h| forward(&FwdTable::default(), h, 0));
        assert_eq!(f.evaluate(&hdr(ip(1, 2, 3, 4))), 0);
    }

    #[test]
    fn find_packet_for_port() {
        let f = ZenFunction::new(|h| table().lookup(h));
        for opts in [FindOptions::bdd(), FindOptions::smt()] {
            let h = f.find(|_, port| port.eq(Zen::val(2u8)), &opts).unwrap();
            assert_eq!(table().lookup_concrete(&h), 2);
            // Port 2 requires dst in 10.1/16 but not 10.1.2/24.
            assert!(Prefix::new(ip(10, 1, 0, 0), 16).contains(h.dst_ip));
            assert!(!Prefix::new(ip(10, 1, 2, 0), 24).contains(h.dst_ip));
        }
    }
}
