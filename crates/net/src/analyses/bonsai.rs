//! Bonsai-style control-plane compression (Beckett et al., SIGCOMM '18):
//! group routers whose routing behavior is provably interchangeable and
//! analyze the (smaller) quotient network instead.
//!
//! Behavioral equality of policies is decided semantically, not
//! syntactically: each route map is lifted to a state-set transformer
//! (`Announcement → Option<Announcement>`), and two maps are equivalent
//! iff their relation BDDs are the same node — canonical and exact up to
//! the list bound. Router equivalence is then computed by partition
//! refinement (bisimulation): two routers stay merged while they
//! originate the same routes and have matching multisets of
//! (policy-class, neighbor-class) edges.

use rzen::{TransformerSpace, Zen, ZenFunction};

use crate::routing::{Announcement, BgpNetwork, RouteMap};

/// Semantically deduplicate route maps: returns, for each input map, the
/// index of its equivalence class, plus the number of classes.
pub fn policy_classes(space: &TransformerSpace, maps: &[RouteMap]) -> (Vec<usize>, usize) {
    let mut reps: Vec<rzen::StateSetTransformer<Announcement, Option<Announcement>>> = Vec::new();
    let mut class_of = Vec::with_capacity(maps.len());
    for m in maps {
        let m2 = m.clone();
        let f = ZenFunction::new(move |a: Zen<Announcement>| m2.apply(a));
        let t = f.transformer(space);
        let found = reps.iter().position(|r| r.relation_eq(&t));
        match found {
            Some(i) => class_of.push(i),
            None => {
                reps.push(t);
                class_of.push(reps.len() - 1);
            }
        }
    }
    let n = reps.len();
    (class_of, n)
}

/// The compression result: a class id per router, and the class count.
pub struct Compression {
    /// `class[r]` = abstract node of router `r`.
    pub class: Vec<usize>,
    /// Number of abstract nodes.
    pub num_classes: usize,
    /// Number of semantically distinct route maps found.
    pub num_policy_classes: usize,
}

/// Compute the coarsest bisimulation-style partition of the routers.
pub fn compress(space: &TransformerSpace, net: &BgpNetwork) -> Compression {
    // 1. Policy classes for all edge maps (export and import).
    let mut maps = Vec::new();
    for e in &net.edges {
        maps.push(e.export.clone());
        maps.push(e.import.clone());
    }
    let (map_class, num_policy_classes) = policy_classes(space, &maps);

    // 2. Initial router partition: by originated routes.
    let mut class: Vec<usize> = Vec::with_capacity(net.routers.len());
    let mut origins: Vec<&Option<Announcement>> = Vec::new();
    for r in &net.routers {
        match origins.iter().position(|o| **o == r.originates) {
            Some(i) => class.push(i),
            None => {
                origins.push(&r.originates);
                class.push(origins.len() - 1);
            }
        }
    }

    // 3. Refine: split classes whose members have different edge
    // signatures (multiset of (export-class, import-class,
    // neighbor-class)).
    loop {
        let mut signatures: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); net.routers.len()];
        for (ei, e) in net.edges.iter().enumerate() {
            signatures[e.from].push((map_class[2 * ei], map_class[2 * ei + 1], class[e.to]));
        }
        for s in &mut signatures {
            s.sort_unstable();
        }
        // New classes: (old class, signature).
        type Signature = Vec<(usize, usize, usize)>;
        let mut keys: Vec<(usize, &Signature)> = Vec::new();
        let mut next: Vec<usize> = Vec::with_capacity(net.routers.len());
        for r in 0..net.routers.len() {
            let key = (class[r], &signatures[r]);
            match keys.iter().position(|k| *k == key) {
                Some(i) => next.push(i),
                None => {
                    keys.push(key);
                    next.push(keys.len() - 1);
                }
            }
        }
        if next == class {
            break;
        }
        class = next;
    }

    let num_classes = class.iter().copied().max().map_or(0, |m| m + 1);
    Compression {
        class,
        num_classes,
        num_policy_classes,
    }
}
