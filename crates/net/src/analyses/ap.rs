//! Atomic Predicates (Yang & Lam, ToN '16), on rzen state sets.
//!
//! Given the predicates a network's filters use (ACL permit sets,
//! forwarding-rule match sets, ...), compute the coarsest partition of
//! the packet space such that every predicate is a union of partition
//! blocks ("atoms"). Each predicate is then a small set of atom ids, and
//! the heavy set algebra of reachability analysis collapses to integer
//! set operations.

use rzen::{StateSet, TransformerSpace, ZenType};

/// Compute the atomic predicates of a family of sets: the coarsest
/// partition of the space such that each input set is a union of blocks.
pub fn atomic_predicates<T: ZenType>(
    space: &TransformerSpace,
    preds: &[StateSet<T>],
) -> Vec<StateSet<T>> {
    let mut atoms: Vec<StateSet<T>> = vec![space.full::<T>()];
    for p in preds {
        let mut next = Vec::with_capacity(atoms.len() * 2);
        for a in &atoms {
            let inside = a.intersect(p);
            let outside = a.minus(p);
            if !inside.is_empty() {
                next.push(inside);
            }
            if !outside.is_empty() {
                next.push(outside);
            }
        }
        atoms = next;
    }
    atoms
}

/// Represent a set as the ids of the atoms it comprises. The set must be
/// expressible as a union of the given atoms (true by construction for
/// any of the inputs to [`atomic_predicates`] and their Boolean
/// combinations).
pub fn label<T: ZenType>(set: &StateSet<T>, atoms: &[StateSet<T>]) -> Vec<usize> {
    atoms
        .iter()
        .enumerate()
        .filter(|(_, a)| !a.intersect(set).is_empty())
        .map(|(i, _)| i)
        .collect()
}

/// Rebuild a set from atom ids (the inverse of [`label`]).
pub fn from_label<T: ZenType>(
    space: &TransformerSpace,
    ids: &[usize],
    atoms: &[StateSet<T>],
) -> StateSet<T> {
    let mut acc = space.empty::<T>();
    for &i in ids {
        acc = acc.union(&atoms[i]);
    }
    acc
}

/// Intersection in label space: set intersection of atom-id lists.
pub fn intersect_labels(a: &[usize], b: &[usize]) -> Vec<usize> {
    a.iter().copied().filter(|i| b.contains(i)).collect()
}

/// Union in label space.
pub fn union_labels(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out: Vec<usize> = a.iter().chain(b).copied().collect();
    out.sort_unstable();
    out.dedup();
    out
}
