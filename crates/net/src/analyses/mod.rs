//! The six network analyses of the paper's Table 1, all expressed on top
//! of the shared rzen models — the expressiveness evidence behind the
//! "Zen" column being all-checkmarks.
//!
//! | Analysis | Style | rzen primitive |
//! |----------|-------|----------------|
//! | [`hsa`] | reachable packet sets along all paths | state-set transformers (Fig. 8) |
//! | [`ap`] | atomic predicates | state-set algebra |
//! | [`anteater`] | per-path SAT reachability | `find` (SMT backend) |
//! | [`minesweeper`] | symbolic control plane | `find`/`verify` over the BGP model |
//! | [`bonsai`] | control-plane compression | transformer equivalence + partition refinement |
//! | [`shapeshifter`] | abstract interpretation | ternary backend |

pub mod anteater;
pub mod ap;
pub mod bonsai;
pub mod datalog;
pub mod hsa;
pub mod minesweeper;
pub mod shapeshifter;
