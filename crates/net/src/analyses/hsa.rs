//! Header Space Analysis (Kazemian et al., NSDI '12), implemented with
//! rzen state-set transformers — a direct port of the paper's Fig. 8.
//!
//! The algorithm pushes sets of packets through the network, applying
//! each interface's inbound and outbound transformation, and yields one
//! [`PathSet`] per maximal path: the packets that travel that path.

use rzen::{StateSet, StateSetTransformer, TransformerSpace, Zen, ZenFunction};

use crate::device::{fwd_in, fwd_out, Interface};
use crate::headers::Packet;
use crate::topology::Network;

/// A maximal exploration result: the interfaces traversed (device index,
/// interface id) and the set of packets that traverse them.
pub struct PathSet {
    /// Traversed (device, ingress-interface) pairs, in order.
    pub path: Vec<(usize, u8)>,
    /// The packets that make it to the end of the path.
    pub set: StateSet<Packet>,
}

/// Per-interface transformers, built once and reused across the
/// exploration (the paper's `InboundTransformer`/`OutboundTransformer`).
struct IntfMachinery {
    /// Packets that survive inbound processing.
    in_filter: StateSet<Packet>,
    /// Inbound rewrite (valid on `in_filter`).
    in_t: StateSetTransformer<Packet, Packet>,
    /// Packets that survive outbound processing.
    out_filter: StateSet<Packet>,
    /// Outbound rewrite (valid on `out_filter`).
    out_t: StateSetTransformer<Packet, Packet>,
}

fn machinery(space: &TransformerSpace, intf: &Interface) -> IntfMachinery {
    let i1 = intf.clone();
    let i2 = intf.clone();
    let i3 = intf.clone();
    let i4 = intf.clone();
    IntfMachinery {
        in_filter: space.set_of::<Packet>(move |p| fwd_in(&i1, p).is_some()),
        in_t: ZenFunction::new(move |p: Zen<Packet>| fwd_in(&i2, p).value()).transformer(space),
        out_filter: space.set_of::<Packet>(move |p| fwd_out(&i3, p).is_some()),
        out_t: ZenFunction::new(move |p: Zen<Packet>| fwd_out(&i4, p).value()).transformer(space),
    }
}

/// Run header space analysis from `(start_device, start_intf)` with the
/// initial packet set, exploring all loop-free paths. Returns one
/// [`PathSet`] per maximal path with a non-empty surviving set.
pub fn hsa(
    net: &Network,
    space: &TransformerSpace,
    start_device: usize,
    start_intf: u8,
    initial: StateSet<Packet>,
) -> Vec<PathSet> {
    struct Item {
        device: usize,
        intf: u8,
        set: StateSet<Packet>,
        path: Vec<(usize, u8)>,
        visited: Vec<bool>,
    }

    let mut results = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    let mut visited0 = vec![false; net.devices.len()];
    visited0[start_device] = true;
    queue.push_back(Item {
        device: start_device,
        intf: start_intf,
        set: initial,
        path: vec![(start_device, start_intf)],
        visited: visited0,
    });

    while let Some(item) = queue.pop_front() {
        let Some(intf_in) = net.devices[item.device].interface(item.intf) else {
            continue;
        };
        let m_in = machinery(space, intf_in);
        let in_set = m_in
            .in_t
            .transform_forward(&item.set.intersect(&m_in.in_filter));
        let mut forwarded = false;
        for intf_out in &net.devices[item.device].interfaces {
            let Some(link) = net.link_from(item.device, intf_out.id) else {
                continue;
            };
            if item.visited[link.to_device] {
                continue;
            }
            let m_out = machinery(space, intf_out);
            let out_set = m_out
                .out_t
                .transform_forward(&in_set.intersect(&m_out.out_filter));
            if out_set.is_empty() {
                continue;
            }
            forwarded = true;
            let mut path = item.path.clone();
            path.push((link.to_device, link.to_intf));
            let mut visited = item.visited.clone();
            visited[link.to_device] = true;
            queue.push_back(Item {
                device: link.to_device,
                intf: link.to_intf,
                set: out_set,
                path,
                visited,
            });
        }
        if !forwarded && !in_set.is_empty() {
            results.push(PathSet {
                path: item.path,
                set: in_set,
            });
        }
    }
    results
}

/// Which packets can travel from an ingress interface to (arrive at) a
/// given device, along any loop-free path? The set is taken at arrival
/// time — what happens to the packet afterwards does not matter.
pub fn reachable_set(
    net: &Network,
    space: &TransformerSpace,
    start_device: usize,
    start_intf: u8,
    target_device: usize,
) -> StateSet<Packet> {
    struct Item {
        device: usize,
        intf: u8,
        set: StateSet<Packet>,
        visited: Vec<bool>,
    }
    let mut acc = space.empty::<Packet>();
    let mut queue = std::collections::VecDeque::new();
    let mut visited0 = vec![false; net.devices.len()];
    visited0[start_device] = true;
    let initial = space.full::<Packet>();
    if start_device == target_device {
        acc = acc.union(&initial);
    }
    queue.push_back(Item {
        device: start_device,
        intf: start_intf,
        set: initial,
        visited: visited0,
    });
    while let Some(item) = queue.pop_front() {
        let Some(intf_in) = net.devices[item.device].interface(item.intf) else {
            continue;
        };
        let m_in = machinery(space, intf_in);
        let in_set = m_in
            .in_t
            .transform_forward(&item.set.intersect(&m_in.in_filter));
        if in_set.is_empty() {
            continue;
        }
        for intf_out in &net.devices[item.device].interfaces {
            let Some(link) = net.link_from(item.device, intf_out.id) else {
                continue;
            };
            if item.visited[link.to_device] {
                continue;
            }
            let m_out = machinery(space, intf_out);
            let out_set = m_out
                .out_t
                .transform_forward(&in_set.intersect(&m_out.out_filter));
            if out_set.is_empty() {
                continue;
            }
            if link.to_device == target_device {
                acc = acc.union(&out_set);
                continue; // arrival recorded; no need to explore past it
            }
            let mut visited = item.visited.clone();
            visited[link.to_device] = true;
            queue.push_back(Item {
                device: link.to_device,
                intf: link.to_intf,
                set: out_set,
                visited,
            });
        }
    }
    acc
}
