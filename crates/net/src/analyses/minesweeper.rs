//! Minesweeper-style control-plane verification (Beckett et al.,
//! SIGCOMM '17): properties of the network's *converged* routing state,
//! checked symbolically over an environment (here: link failures).
//!
//! The converged state comes from the bounded symbolic fixpoint in
//! [`crate::routing::BgpNetwork::converge`]; properties are ordinary
//! `verify`/`find` queries over that model, so both the BDD and SMT
//! backends apply.

use rzen::{zif, FindOptions, Zen};

use crate::routing::{Announcement, AnnouncementFields, BgpNetwork};

/// Count the failed links in a failure vector.
fn failures(f: Zen<Vec<bool>>) -> Zen<u16> {
    f.fold(Zen::val(0u16), |acc, b| {
        acc + zif(b, Zen::val(1u16), Zen::val(0u16))
    })
}

/// Verify that `router` still has a route whenever at most `k` links have
/// failed. On failure, returns the offending failure vector.
pub fn reachable_under_k_failures(
    net: &BgpNetwork,
    router: usize,
    k: u16,
    opts: &FindOptions,
) -> Result<(), Vec<bool>> {
    let model = net.reachability_model(router);
    let links = net.num_links as u16;
    let opts = opts.with_list_bound(links);
    model.verify(
        move |f, reach| {
            let exact_len = f.length().eq(Zen::val(links));
            exact_len.and(failures(f).le(Zen::val(k))).implies(reach)
        },
        &opts,
    )
}

/// Verify that `router`'s route (when one exists, under at most `k`
/// failures) never carries the given community tag — the classic "no
/// customer route leaks to a peer" style of query.
pub fn never_carries_community(
    net: &BgpNetwork,
    router: usize,
    community: u32,
    k: u16,
    opts: &FindOptions,
) -> Result<(), Vec<bool>> {
    let model = net.route_model(router);
    let links = net.num_links as u16;
    let opts = opts.with_list_bound(links.max(4));
    model.verify(
        move |f, route| {
            let exact_len = f.length().eq(Zen::val(links));
            let scoped = exact_len.and(failures(f).le(Zen::val(k)));
            let tagged = route
                .is_some()
                .and(route.value().communities().contains(Zen::val(community)));
            scoped.implies(!tagged)
        },
        &opts,
    )
}

/// Verify an upper bound on the AS-path length of `router`'s converged
/// route under at most `k` failures (a path-efficiency property).
pub fn path_length_bounded(
    net: &BgpNetwork,
    router: usize,
    max_len: u16,
    k: u16,
    opts: &FindOptions,
) -> Result<(), Vec<bool>> {
    let model = net.route_model(router);
    let links = net.num_links as u16;
    let opts = opts.with_list_bound(links.max(8));
    model.verify(
        move |f, route| {
            let exact_len = f.length().eq(Zen::val(links));
            let scoped = exact_len.and(failures(f).le(Zen::val(k)));
            let long = route
                .is_some()
                .and(route.value().as_path().length().gt(Zen::val(max_len)));
            scoped.implies(!long)
        },
        &opts,
    )
}

/// Find an environment (failure vector) in which two routers converge to
/// *different* local preferences for the destination — a policy-
/// equivalence counterexample, `None` if they always agree.
pub fn find_preference_divergence(
    net: &BgpNetwork,
    r1: usize,
    r2: usize,
    opts: &FindOptions,
) -> Option<Vec<bool>> {
    let net = net.clone();
    let links = net.num_links as u16;
    let opts = opts.with_list_bound(links);
    let model = rzen::ZenFunction::new(move |f: Zen<Vec<bool>>| {
        let routes = net.converge(f);
        let (a, b) = (routes[r1], routes[r2]);
        let both = a.is_some().and(b.is_some());
        both.and(a.value().local_pref().ne(b.value().local_pref()))
    });
    model.find(
        move |f, diverge| f.length().eq(Zen::val(links)).and(diverge),
        &opts,
    )
}

/// Re-export of the announcement type for property authors.
pub type Route = Announcement;
