//! Shapeshifter-style abstract interpretation (Beckett et al.,
//! POPL '20): evaluate the network's behavior over *abstract* values —
//! here rzen's ternary (three-valued bit) backend — trading precision
//! for speed. Knowing only part of a header often suffices to decide
//! where traffic can and cannot go.

use rzen::backend::ternary;
use rzen::{with_ctx, Zen};

use crate::fwd::FwdTable;
use crate::headers::Header;
use crate::topology::Network;

/// A partially-known header: `None` fields are unknown (⊤).
#[derive(Clone, Copy, Debug, Default)]
pub struct PartialHeader {
    /// Destination address, if known.
    pub dst_ip: Option<u32>,
    /// Source address, if known.
    pub src_ip: Option<u32>,
    /// Destination port, if known.
    pub dst_port: Option<u16>,
    /// Source port, if known.
    pub src_port: Option<u16>,
    /// Protocol, if known.
    pub protocol: Option<u8>,
}

impl PartialHeader {
    /// Only the destination address is known.
    pub fn dst(dst_ip: u32) -> PartialHeader {
        PartialHeader {
            dst_ip: Some(dst_ip),
            ..PartialHeader::default()
        }
    }

    /// Build the mixed concrete/symbolic header expression: known fields
    /// become constants, unknown fields fresh variables — which is all
    /// the ternary backend needs (unbound variables evaluate to `*`).
    pub fn to_zen(&self) -> Zen<Header> {
        fn field<T: rzen::ZenInt>(v: Option<T>) -> Zen<T> {
            match v {
                Some(c) => Zen::val(c),
                None => Zen::symbolic(0),
            }
        }
        Header::create(
            field(self.dst_ip),
            field(self.src_ip),
            field(self.dst_port),
            field(self.src_port),
            field(self.protocol),
        )
    }
}

/// Three-valued verdict about a property of the abstract packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Holds for every concretization.
    Always,
    /// Holds for no concretization.
    Never,
    /// Depends on the unknown bits.
    Unknown,
}

fn verdict(b: Option<bool>) -> Verdict {
    match b {
        Some(true) => Verdict::Always,
        Some(false) => Verdict::Never,
        None => Verdict::Unknown,
    }
}

/// For each port of a forwarding table: does the abstract packet go
/// there?
pub fn abstract_ports(table: &FwdTable, h: &PartialHeader) -> Vec<(u8, Verdict)> {
    let zh = h.to_zen();
    let out = table.lookup(zh);
    let mut ports: Vec<u8> = table.rules.iter().map(|r| r.port).collect();
    ports.push(0);
    ports.sort_unstable();
    ports.dedup();
    ports
        .into_iter()
        .map(|p| {
            let is_p = out.eq(Zen::val(p));
            let v = with_ctx(|ctx| ternary::eval_bool3(ctx, is_p.expr_id()));
            (p, verdict(v))
        })
        .collect()
}

/// Abstract reachability: the devices an abstract packet *may* reach
/// from `(device, intf)`, using per-device ternary forwarding decisions.
/// Sound over-approximation: `Unknown` ports are explored.
pub fn may_reach(net: &Network, start_device: usize, h: &PartialHeader) -> Vec<usize> {
    let mut reached = vec![false; net.devices.len()];
    let mut stack = vec![start_device];
    while let Some(d) = stack.pop() {
        if reached[d] {
            continue;
        }
        reached[d] = true;
        for intf in &net.devices[d].interfaces {
            let zh = h.to_zen();
            let goes = intf.table.lookup(zh).eq(Zen::val(intf.id));
            let v = with_ctx(|ctx| ternary::eval_bool3(ctx, goes.expr_id()));
            if verdict(v) == Verdict::Never {
                continue;
            }
            if let Some(link) = net.link_from(d, intf.id) {
                if !reached[link.to_device] {
                    stack.push(link.to_device);
                }
            }
        }
    }
    reached
        .iter()
        .enumerate()
        .filter(|(_, r)| **r)
        .map(|(i, _)| i)
        .collect()
}

/// Abstract *definite* reachability along a single next-hop chain: the
/// devices the packet certainly visits (follows only `Always` ports).
pub fn must_reach(net: &Network, start_device: usize, h: &PartialHeader) -> Vec<usize> {
    let mut visited = vec![false; net.devices.len()];
    let mut out = vec![start_device];
    visited[start_device] = true;
    let mut d = start_device;
    'walk: loop {
        for intf in &net.devices[d].interfaces {
            let zh = h.to_zen();
            let goes = intf.table.lookup(zh).eq(Zen::val(intf.id));
            let v = with_ctx(|ctx| ternary::eval_bool3(ctx, goes.expr_id()));
            if verdict(v) == Verdict::Always {
                if let Some(link) = net.link_from(d, intf.id) {
                    if visited[link.to_device] {
                        break 'walk;
                    }
                    visited[link.to_device] = true;
                    out.push(link.to_device);
                    d = link.to_device;
                    continue 'walk;
                }
            }
        }
        break;
    }
    out
}
