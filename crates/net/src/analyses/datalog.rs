//! Datalog-style reachability — the "Datalog" analysis box of the
//! paper's Fig. 2.
//!
//! The packet space is first partitioned into atomic predicates
//! ([`super::ap`]) of every filter the network applies; each filter then
//! becomes a small set of atom ids, and network-wide reachability is a
//! pure Datalog program over finite facts:
//!
//! ```text
//! reach(D2, A) :- reach(D1, A), edge(D1, I, D2), transfer(D1, I, A).
//! ```
//!
//! solved by semi-naive fixpoint iteration over per-device atom bitsets.
//! This analysis covers header-preserving networks (ACLs + forwarding);
//! packet-transforming elements (NAT, tunnels) change the atom a packet
//! belongs to and are the domain of the transformer-based analyses
//! (that split — atoms for filters, transformers for rewrites — mirrors
//! the AP literature's own evolution).

use rzen::{StateSet, TransformerSpace, Zen};

use crate::device::Interface;
use crate::headers::Header;
use crate::topology::Network;

/// A set of atoms, as a bitset.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AtomSet {
    bits: Vec<u64>,
}

impl AtomSet {
    /// The empty set over `n` atoms.
    pub fn empty(n: usize) -> AtomSet {
        AtomSet {
            bits: vec![0; n.div_ceil(64)],
        }
    }

    /// Insert an atom id.
    pub fn insert(&mut self, i: usize) {
        self.bits[i / 64] |= 1 << (i % 64);
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// In-place union; returns whether anything changed.
    pub fn union_with(&mut self, other: &AtomSet) -> bool {
        let mut changed = false;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Intersection.
    pub fn intersect(&self, other: &AtomSet) -> AtomSet {
        AtomSet {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&b| b == 0)
    }

    /// Iterate over member ids.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64)
                .filter(move |b| bits >> b & 1 == 1)
                .map(move |b| w * 64 + b)
        })
    }
}

/// The result of the Datalog reachability analysis.
pub struct DatalogReach {
    /// The atomic predicates, as state sets (index = atom id).
    pub atoms: Vec<StateSet<Header>>,
    /// Per-device reachable atoms.
    pub reach: Vec<AtomSet>,
}

impl DatalogReach {
    /// Can any packet reach the device?
    pub fn device_reachable(&self, dev: usize) -> bool {
        !self.reach[dev].is_empty()
    }

    /// The set of headers that can reach the device, rebuilt from atoms.
    pub fn reachable_headers(&self, space: &TransformerSpace, dev: usize) -> StateSet<Header> {
        let mut acc = space.empty::<Header>();
        for i in self.reach[dev].iter() {
            acc = acc.union(&self.atoms[i]);
        }
        acc
    }
}

/// The set of headers an interface's inbound processing admits (its ACL;
/// header-preserving interfaces only).
fn in_filter(space: &TransformerSpace, intf: &Interface) -> StateSet<Header> {
    assert!(
        intf.gre_start.is_none()
            && intf.gre_end.is_none()
            && intf.nat_in.is_none()
            && intf.nat_out.is_none(),
        "datalog reachability covers header-preserving networks; use the \
         transformer-based analyses for tunnels and NAT"
    );
    match &intf.acl_in {
        None => space.full::<Header>(),
        Some(a) => {
            let a = a.clone();
            space.set_of::<Header>(move |h| a.allows(h))
        }
    }
}

/// The set of headers a device forwards out through an interface (table
/// selects the port, outbound ACL permits).
fn out_filter(space: &TransformerSpace, intf: &Interface) -> StateSet<Header> {
    let i = intf.clone();
    space.set_of::<Header>(move |h| {
        let sel = i.table.lookup(h).eq(Zen::val(i.id));
        match &i.acl_out {
            None => sel,
            Some(a) => sel.and(a.allows(h)),
        }
    })
}

/// Run the analysis from an ingress interface: compute, for every
/// device, the atoms of traffic that can arrive there.
pub fn reachability(
    net: &Network,
    space: &TransformerSpace,
    start_device: usize,
    start_intf: u8,
) -> DatalogReach {
    // 1. Collect every filter set the network uses.
    let mut sets: Vec<(usize, u8, bool, StateSet<Header>)> = Vec::new(); // (dev, intf, inbound?, set)
    for (d, dev) in net.devices.iter().enumerate() {
        for intf in &dev.interfaces {
            sets.push((d, intf.id, true, in_filter(space, intf)));
            sets.push((d, intf.id, false, out_filter(space, intf)));
        }
    }

    // 2. Atomic predicates of all filters.
    let all: Vec<StateSet<Header>> = sets.iter().map(|(_, _, _, s)| s.clone()).collect();
    let atoms = super::ap::atomic_predicates(space, &all);
    let n = atoms.len();

    // 3. Label every filter as an atom set.
    let label = |s: &StateSet<Header>| -> AtomSet {
        let mut out = AtomSet::empty(n);
        for i in super::ap::label(s, &atoms) {
            out.insert(i);
        }
        out
    };
    let labels: Vec<((usize, u8, bool), AtomSet)> = sets
        .iter()
        .map(|(d, i, inb, s)| ((*d, *i, *inb), label(s)))
        .collect();
    let get = |d: usize, i: u8, inbound: bool| -> &AtomSet {
        &labels
            .iter()
            .find(|((dd, ii, inb), _)| *dd == d && *ii == i && *inb == inbound)
            .expect("filter labeled")
            .1
    };

    // 4. Semi-naive fixpoint. Facts are per (device, ingress interface):
    // different ingress interfaces have different inbound filters, so
    // what an atom can do next depends on where it arrived.
    let mut arrived: rzen_bdd::FastHashMap<(usize, u8), AtomSet> = rzen_bdd::FastHashMap::default();
    let mut frontier: Vec<(usize, u8, AtomSet)> = Vec::new();
    let mut full = AtomSet::empty(n);
    for i in 0..n {
        full.insert(i);
    }
    arrived.insert((start_device, start_intf), full.clone());
    frontier.push((start_device, start_intf, full));

    while let Some((d, in_intf, delta)) = frontier.pop() {
        // Inbound filter of the ingress interface.
        let admitted = delta.intersect(get(d, in_intf, true));
        if admitted.is_empty() {
            continue;
        }
        for intf in &net.devices[d].interfaces {
            let Some(link) = net.link_from(d, intf.id) else {
                continue;
            };
            let leaving = admitted.intersect(get(d, intf.id, false));
            if leaving.is_empty() {
                continue;
            }
            let slot = arrived
                .entry((link.to_device, link.to_intf))
                .or_insert_with(|| AtomSet::empty(n));
            let before = slot.clone();
            if slot.union_with(&leaving) {
                // Semi-naive: propagate only the new atoms.
                let mut new_delta = AtomSet::empty(n);
                for i in leaving.iter() {
                    if !before.contains(i) {
                        new_delta.insert(i);
                    }
                }
                frontier.push((link.to_device, link.to_intf, new_delta));
            }
        }
    }

    // Per-device summary: union over ingress interfaces.
    let mut reach: Vec<AtomSet> = (0..net.devices.len()).map(|_| AtomSet::empty(n)).collect();
    for ((d, _), set) in &arrived {
        reach[*d].union_with(set);
    }

    DatalogReach { atoms, reach }
}
