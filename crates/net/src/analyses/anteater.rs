//! Anteater-style reachability (Mai et al., SIGCOMM '11): encode
//! per-path forwarding as a Boolean formula and ask a SAT solver for a
//! witness packet — here, `find` with the SMT backend over the shared
//! Fig. 7 path model.

use rzen::{FindOptions, Zen, ZenFunction};

use crate::device::{forward_along, Hop};
use crate::headers::Packet;
use crate::topology::Network;

/// A reachability witness: the path taken and a packet delivered along it.
pub struct Witness {
    /// The hops of the delivering path.
    pub path: Vec<Hop>,
    /// A concrete packet delivered along that path.
    pub packet: Packet,
}

/// Can any packet travel from `(src, entry_intf)` to `(dst, exit_intf)`?
/// Iterates over simple paths (the paper's §4: "to find if a packet can
/// reach node A to B, along any path, we can iterate over all possible
/// paths"), asking the SMT backend for a delivered packet on each.
pub fn reachable(
    net: &Network,
    src: usize,
    entry_intf: u8,
    dst: usize,
    exit_intf: u8,
) -> Option<Witness> {
    reachable_such_that(net, src, entry_intf, dst, exit_intf, |_, out| out.is_some())
}

/// Like [`reachable`], with an extra predicate over the (symbolic) input
/// packet and delivery result — e.g. restrict to ssh traffic, or ask for
/// a packet that is delivered *modified*.
pub fn reachable_such_that(
    net: &Network,
    src: usize,
    entry_intf: u8,
    dst: usize,
    exit_intf: u8,
    pred: impl Fn(Zen<Packet>, Zen<Option<Packet>>) -> Zen<bool> + Clone + 'static,
) -> Option<Witness> {
    for path in net.paths(src, entry_intf, dst, exit_intf) {
        let model_path = path.clone();
        let f = ZenFunction::new(move |p| forward_along(&model_path, p));
        let pred = pred.clone();
        if let Some(packet) = f.find(pred, &FindOptions::smt()) {
            return Some(Witness { path, packet });
        }
    }
    None
}

/// Exhaustive variant: all (path, witness) pairs.
pub fn all_witnesses(
    net: &Network,
    src: usize,
    entry_intf: u8,
    dst: usize,
    exit_intf: u8,
) -> Vec<Witness> {
    let mut out = Vec::new();
    for path in net.paths(src, entry_intf, dst, exit_intf) {
        let model_path = path.clone();
        let f = ZenFunction::new(move |p| forward_along(&model_path, p));
        if let Some(packet) = f.find(|_, out| out.is_some(), &FindOptions::smt()) {
            out.push(Witness { path, packet });
        }
    }
    out
}
