//! A symbolic BGP-style control plane.
//!
//! This is the substrate for the Minesweeper-style analysis of Table 1.
//! Minesweeper encodes the *stable paths* solution of a network as SMT
//! constraints; here the same converged state is computed by a bounded
//! symbolic fixpoint: propagation is iterated `|routers|` times over
//! symbolic inputs (link-failure variables), which reaches the converged
//! routes whenever preferences are loop-free (the practically relevant
//! case — oscillating policies have no stable solution to verify). The
//! substitution is documented in DESIGN.md.
//!
//! Everything here composes models that already exist: route maps
//! transform announcements on export/import, and best-route selection is
//! ordinary `Zen` code.

use crate::routing::announcement::{Announcement, AnnouncementFields};
use crate::routing::route_map::RouteMap;
use rzen::{zif, Zen, ZenFunction};

/// A router.
#[derive(Clone, Debug)]
pub struct BgpRouter {
    /// Name (diagnostics).
    pub name: String,
    /// The announcement this router originates, if any.
    pub originates: Option<Announcement>,
}

/// A directed edge `from → to` with export (at `from`) and import (at
/// `to`) route maps. `link` identifies the underlying physical link, so
/// both directions of one cable share a failure variable.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Source router index.
    pub from: usize,
    /// Destination router index.
    pub to: usize,
    /// Export policy applied at `from`.
    pub export: RouteMap,
    /// Import policy applied at `to`.
    pub import: RouteMap,
    /// Physical link id (index into the failure vector).
    pub link: usize,
}

/// A BGP network: routers and policy edges.
#[derive(Clone, Debug, Default)]
pub struct BgpNetwork {
    /// The routers.
    pub routers: Vec<BgpRouter>,
    /// The policy edges.
    pub edges: Vec<Edge>,
    /// Number of physical links (failure variables).
    pub num_links: usize,
}

/// Select the better of two candidate routes by standard (simplified)
/// BGP preference: higher local-pref, then shorter AS path, then lower
/// MED. `a` wins ties (callers fold in deterministic neighbor order).
fn better(a: Zen<Option<Announcement>>, b: Zen<Option<Announcement>>) -> Zen<Option<Announcement>> {
    let pick_b = b.is_some().and(a.is_none().or({
        let (ra, rb) = (a.value(), b.value());
        let lp = rb.local_pref().gt(ra.local_pref());
        let lp_eq = rb.local_pref().eq(ra.local_pref());
        let shorter = rb.as_path().length().lt(ra.as_path().length());
        let len_eq = rb.as_path().length().eq(ra.as_path().length());
        let med = rb.med().lt(ra.med());
        lp.or(lp_eq.and(shorter)).or(lp_eq.and(len_eq).and(med))
    }));
    zif(pick_b, b, a)
}

impl BgpNetwork {
    /// Add a router; returns its index.
    pub fn add_router(&mut self, name: &str, originates: Option<Announcement>) -> usize {
        self.routers.push(BgpRouter {
            name: name.into(),
            originates,
        });
        self.routers.len() - 1
    }

    /// Add a bidirectional adjacency with the same policies both ways,
    /// sharing one failure variable. Returns the link id.
    pub fn add_adjacency(
        &mut self,
        a: usize,
        b: usize,
        export: RouteMap,
        import: RouteMap,
    ) -> usize {
        let link = self.num_links;
        self.num_links += 1;
        self.edges.push(Edge {
            from: a,
            to: b,
            export: export.clone(),
            import: import.clone(),
            link,
        });
        self.edges.push(Edge {
            from: b,
            to: a,
            export,
            import,
            link,
        });
        link
    }

    /// Compute the converged route at every router, given symbolic link
    /// failures (`failed.at(link)`), by iterating propagation
    /// `|routers|` times.
    pub fn converge(&self, failed: Zen<Vec<bool>>) -> Vec<Zen<Option<Announcement>>> {
        let mut routes: Vec<Zen<Option<Announcement>>> = self
            .routers
            .iter()
            .map(|r| match &r.originates {
                Some(a) => Zen::some(Zen::constant(a)),
                None => Zen::none(0),
            })
            .collect();
        for _round in 0..self.routers.len() {
            let mut next = routes.clone();
            for edge in &self.edges {
                let alive = !failed
                    .at(Zen::val(edge.link as u16))
                    .value_or(Zen::bool(false));
                let exported = self.through_edge(edge, routes[edge.from]);
                let candidate = zif(alive, exported, Zen::none(0));
                next[edge.to] = better(next[edge.to], candidate);
            }
            routes = next;
        }
        routes
    }

    /// Push a (possibly absent) route through an edge: export map at the
    /// source, AS prepend, import map at the destination.
    fn through_edge(
        &self,
        edge: &Edge,
        route: Zen<Option<Announcement>>,
    ) -> Zen<Option<Announcement>> {
        let exported = edge.export.apply(route.value());
        let prepended =
            exported.map(|a| a.with_as_path(a.as_path().cons(Zen::val(edge.from as u32))));
        let imported = edge.import.apply(prepended.value());
        let pass = route
            .is_some()
            .and(exported.is_some())
            .and(imported.is_some());
        zif(pass, imported, Zen::none(0))
    }

    /// A model of "does router `r` have a route, as a function of link
    /// failures" — ready for `find`/`verify` (e.g. reachability under k
    /// failures) or any other backend.
    pub fn reachability_model(&self, r: usize) -> ZenFunction<Vec<bool>, bool> {
        let net = self.clone();
        ZenFunction::new(move |failed: Zen<Vec<bool>>| net.converge(failed)[r].is_some())
    }

    /// The full converged-route model for router `r`.
    pub fn route_model(&self, r: usize) -> ZenFunction<Vec<bool>, Option<Announcement>> {
        let net = self.clone();
        ZenFunction::new(move |failed: Zen<Vec<bool>>| net.converge(failed)[r])
    }

    /// Concrete-reference semantics of [`BgpNetwork::converge`]: the same
    /// bounded Jacobi iteration executed on plain Rust values. The
    /// symbolic and concrete fixpoints are differential-tested against
    /// each other (`tests/prop.rs` of this crate).
    pub fn converge_concrete(&self, failed: &[bool]) -> Vec<Option<Announcement>> {
        let mut routes: Vec<Option<Announcement>> =
            self.routers.iter().map(|r| r.originates.clone()).collect();
        for _round in 0..self.routers.len() {
            let mut next = routes.clone();
            for edge in &self.edges {
                let alive = !failed.get(edge.link).copied().unwrap_or(false);
                let candidate = if alive {
                    self.through_edge_concrete(edge, &routes[edge.from])
                } else {
                    None
                };
                next[edge.to] = better_concrete(next[edge.to].take(), candidate);
            }
            routes = next;
        }
        routes
    }

    fn through_edge_concrete(
        &self,
        edge: &Edge,
        route: &Option<Announcement>,
    ) -> Option<Announcement> {
        let route = route.as_ref()?;
        let exported = edge.export.apply_concrete(route)?;
        let mut prepended = exported;
        prepended.as_path.insert(0, edge.from as u32);
        edge.import.apply_concrete(&prepended)
    }
}

/// Concrete mirror of the symbolic [`better`] selection.
fn better_concrete(a: Option<Announcement>, b: Option<Announcement>) -> Option<Announcement> {
    match (&a, &b) {
        (_, None) => a,
        (None, _) => b,
        (Some(ra), Some(rb)) => {
            let pick_b = rb.local_pref > ra.local_pref
                || (rb.local_pref == ra.local_pref && rb.as_path.len() < ra.as_path.len())
                || (rb.local_pref == ra.local_pref
                    && rb.as_path.len() == ra.as_path.len()
                    && rb.med < ra.med);
            if pick_b {
                b
            } else {
                a
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::ip;
    use crate::routing::route_map::{Action, Clause, RouteMap};
    use rzen::FindOptions;

    fn permit_all() -> RouteMap {
        RouteMap {
            clauses: vec![Clause {
                conds: vec![],
                actions: vec![],
                permit: true,
            }],
        }
    }

    /// Line topology: r0 (origin) — r1 — r2.
    fn line() -> BgpNetwork {
        let mut n = BgpNetwork::default();
        let origin = Announcement::origin(ip(10, 0, 0, 0), 8, 65000);
        let r0 = n.add_router("r0", Some(origin));
        let r1 = n.add_router("r1", None);
        let r2 = n.add_router("r2", None);
        n.add_adjacency(r0, r1, permit_all(), permit_all());
        n.add_adjacency(r1, r2, permit_all(), permit_all());
        n
    }

    fn no_failures(n: &BgpNetwork) -> Vec<bool> {
        vec![false; n.num_links]
    }

    #[test]
    fn routes_propagate_on_line() {
        let n = line();
        for r in 0..3 {
            let m = n.route_model(r);
            let route = m.evaluate(&no_failures(&n)).expect("route exists");
            assert_eq!(route.prefix, ip(10, 0, 0, 0));
        }
        // AS path grows along the line.
        let route2 = n.route_model(2).evaluate(&no_failures(&n)).unwrap();
        assert_eq!(route2.as_path.len(), 3); // 65000 + two hops
    }

    #[test]
    fn failure_breaks_line() {
        let n = line();
        let m = n.reachability_model(2);
        assert!(m.evaluate(&no_failures(&n)));
        assert!(!m.evaluate(&vec![false, true]));
        assert!(!m.evaluate(&vec![true, false]));
    }

    #[test]
    fn find_disconnecting_failure() {
        let n = line();
        let m = n.reachability_model(2);
        // Find a single-link failure that disconnects r2.
        let failed = m
            .find(
                |f, reach| {
                    let single = f.fold(Zen::val(0u16), |acc, b| {
                        acc + zif(b, Zen::val(1u16), Zen::val(0u16))
                    });
                    (!reach)
                        .and(single.eq(Zen::val(1)))
                        .and(f.length().eq(Zen::val(2)))
                },
                &FindOptions::bdd().with_list_bound(2),
            )
            .expect("a single failure disconnects a line");
        assert_eq!(failed.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn redundant_path_survives_single_failure() {
        // Triangle: origin r0; r2 reachable via r1 or directly.
        let mut n = BgpNetwork::default();
        let origin = Announcement::origin(ip(10, 0, 0, 0), 8, 65000);
        let r0 = n.add_router("r0", Some(origin));
        let r1 = n.add_router("r1", None);
        let r2 = n.add_router("r2", None);
        n.add_adjacency(r0, r1, permit_all(), permit_all());
        n.add_adjacency(r1, r2, permit_all(), permit_all());
        n.add_adjacency(r0, r2, permit_all(), permit_all());
        let m = n.reachability_model(r2);
        // Verify: no single-link failure disconnects r2.
        let ok = m.verify(
            |f, reach| {
                let single = f.fold(Zen::val(0u16), |acc, b| {
                    acc + zif(b, Zen::val(1u16), Zen::val(0u16))
                });
                single.le(Zen::val(1)).implies(reach)
            },
            &FindOptions::bdd().with_list_bound(3),
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn local_pref_overrides_path_length() {
        // r3 hears the route two ways: short path with default pref,
        // long path with high local-pref. High pref must win.
        let mut n = BgpNetwork::default();
        let origin = Announcement::origin(ip(10, 0, 0, 0), 8, 65000);
        let r0 = n.add_router("r0", Some(origin));
        let r1 = n.add_router("r1", None);
        let r2 = n.add_router("r2", None);
        let r3 = n.add_router("r3", None);
        let prefer = RouteMap {
            clauses: vec![Clause {
                conds: vec![],
                actions: vec![Action::SetLocalPref(200)],
                permit: true,
            }],
        };
        // Short: r0 -> r3 directly (default pref).
        n.add_adjacency(r0, r3, permit_all(), permit_all());
        // Long: r0 -> r1 -> r2 -> r3, import at r3 sets pref 200.
        n.add_adjacency(r0, r1, permit_all(), permit_all());
        n.add_adjacency(r1, r2, permit_all(), permit_all());
        n.edges.push(Edge {
            from: r2,
            to: r3,
            export: permit_all(),
            import: prefer,
            link: n.num_links,
        });
        n.edges.push(Edge {
            from: r3,
            to: r2,
            export: permit_all(),
            import: permit_all(),
            link: n.num_links,
        });
        n.num_links += 1;
        let route = n
            .route_model(r3)
            .evaluate(&vec![false; n.num_links])
            .unwrap();
        assert_eq!(route.local_pref, 200);
        assert_eq!(route.as_path.len(), 4);
    }

    #[test]
    fn deny_policy_blocks_propagation() {
        let mut n = BgpNetwork::default();
        let origin = Announcement::origin(ip(10, 0, 0, 0), 8, 65000);
        let r0 = n.add_router("r0", Some(origin));
        let r1 = n.add_router("r1", None);
        let deny = RouteMap::default(); // no clauses = deny everything
        n.add_adjacency(r0, r1, deny, permit_all());
        assert!(!n.reachability_model(r1).evaluate(&vec![false; 1]));
    }
}
