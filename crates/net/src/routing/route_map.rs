//! Vendor-style route maps: sequences of match/set clauses applied to
//! announcements.
//!
//! The semantic core between the `ZEN-LOC` markers is what the paper's
//! Table 2 counts (75 lines for route-map filters in Zen, against >1000
//! in Minesweeper and Bonsai). The same model drives both the BDD and SMT
//! backends.

use crate::ip::Prefix;
use crate::routing::announcement::{Announcement, AnnouncementFields};
use rzen::{zif, Zen};

/// A prefix-list entry with Cisco semantics: the announced prefix must
/// fall under `prefix` and its length must lie in `[ge, le]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PrefixRange {
    /// The covering prefix.
    pub prefix: Prefix,
    /// Minimum announced length.
    pub ge: u8,
    /// Maximum announced length.
    pub le: u8,
}

/// A match condition of a route-map clause.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum MatchCond {
    /// The announced prefix matches one of the ranges (a prefix list).
    PrefixIn(Vec<PrefixRange>),
    /// The community set contains the tag.
    HasCommunity(u32),
    /// The AS path contains the AS number.
    AsPathContains(u32),
    /// The AS path is at most this long.
    AsPathLengthLe(u16),
    /// MED equals the value.
    MedEq(u32),
}

/// An action of a route-map clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Action {
    /// Set local preference.
    SetLocalPref(u32),
    /// Set MED.
    SetMed(u32),
    /// Add a community tag.
    AddCommunity(u32),
    /// Prepend an AS number `count` times.
    PrependAsPath(u32, u8),
    /// Set the next hop.
    SetNextHop(u32),
    /// Remove a community tag (all occurrences).
    DeleteCommunity(u32),
}

/// One clause: all conditions must match; on match, actions apply and the
/// clause permits or denies. On no match, evaluation falls through.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Clause {
    /// Conditions (conjunction; empty matches everything).
    pub conds: Vec<MatchCond>,
    /// Transformations applied on a permitting match.
    pub actions: Vec<Action>,
    /// `true` = permit (announcement continues, transformed), `false` =
    /// deny (announcement is filtered).
    pub permit: bool,
}

/// A route map: clauses tried in order; no match means deny.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct RouteMap {
    /// The clauses.
    pub clauses: Vec<Clause>,
}

// ZEN-LOC-BEGIN(route_map)
impl MatchCond {
    /// Does the condition hold for the (symbolic) announcement?
    pub fn matches(&self, a: Zen<Announcement>) -> Zen<bool> {
        match self {
            MatchCond::PrefixIn(ranges) => ranges
                .iter()
                .map(|r| {
                    r.prefix
                        .matches(a.prefix())
                        .and(a.prefix_len().ge(Zen::val(r.ge)))
                        .and(a.prefix_len().le(Zen::val(r.le)))
                })
                .fold(Zen::bool(false), |acc, m| acc.or(m)),
            MatchCond::HasCommunity(c) => a.communities().contains(Zen::val(*c)),
            MatchCond::AsPathContains(asn) => a.as_path().contains(Zen::val(*asn)),
            MatchCond::AsPathLengthLe(n) => a.as_path().length().le(Zen::val(*n)),
            MatchCond::MedEq(m) => a.med().eq(Zen::val(*m)),
        }
    }
}

impl Action {
    /// Apply the action to the (symbolic) announcement.
    pub fn apply(&self, a: Zen<Announcement>) -> Zen<Announcement> {
        match self {
            Action::SetLocalPref(v) => a.with_local_pref(Zen::val(*v)),
            Action::SetMed(v) => a.with_med(Zen::val(*v)),
            Action::AddCommunity(c) => a.with_communities(a.communities().cons(Zen::val(*c))),
            Action::PrependAsPath(asn, count) => {
                let mut path = a.as_path();
                for _ in 0..*count {
                    path = path.cons(Zen::val(*asn));
                }
                a.with_as_path(path)
            }
            Action::SetNextHop(v) => a.with_next_hop(Zen::val(*v)),
            Action::DeleteCommunity(c) => {
                a.with_communities(a.communities().retain(|x| x.ne(Zen::val(*c))))
            }
        }
    }
}

impl Clause {
    /// Do all conditions hold?
    pub fn matches(&self, a: Zen<Announcement>) -> Zen<bool> {
        self.conds
            .iter()
            .fold(Zen::bool(true), |acc, c| acc.and(c.matches(a)))
    }

    /// The transformed announcement (before the permit/deny decision).
    pub fn transform(&self, a: Zen<Announcement>) -> Zen<Announcement> {
        self.actions.iter().fold(a, |acc, act| act.apply(acc))
    }
}

impl RouteMap {
    /// Apply the route map: the transformed announcement if some clause
    /// permits it, `None` if a clause denies it or none matches.
    pub fn apply(&self, a: Zen<Announcement>) -> Zen<Option<Announcement>> {
        let mut result: Zen<Option<Announcement>> = Zen::none(0);
        for clause in self.clauses.iter().rev() {
            let outcome = if clause.permit {
                Zen::some(clause.transform(a))
            } else {
                Zen::none(0)
            };
            result = zif(clause.matches(a), outcome, result);
        }
        result
    }

    /// Which clause decides the announcement (1-based; 0 = fell off the
    /// end)? The line-tracking used by the Fig. 10 verification task.
    pub fn matched_clause(&self, a: Zen<Announcement>) -> Zen<u16> {
        let mut result = Zen::val(0u16);
        for (i, clause) in self.clauses.iter().enumerate().rev() {
            result = zif(clause.matches(a), Zen::val(i as u16 + 1), result);
        }
        result
    }
}
// ZEN-LOC-END(route_map)

impl RouteMap {
    /// Concrete-reference semantics (for differential tests).
    pub fn apply_concrete(&self, a: &Announcement) -> Option<Announcement> {
        for clause in &self.clauses {
            if clause.matches_concrete(a) {
                if !clause.permit {
                    return None;
                }
                let mut out = a.clone();
                for act in &clause.actions {
                    act.apply_concrete(&mut out);
                }
                return Some(out);
            }
        }
        None
    }
}

impl Clause {
    /// Concrete-reference matcher.
    pub fn matches_concrete(&self, a: &Announcement) -> bool {
        self.conds.iter().all(|c| c.matches_concrete(a))
    }
}

impl MatchCond {
    /// Concrete-reference matcher.
    pub fn matches_concrete(&self, a: &Announcement) -> bool {
        match self {
            MatchCond::PrefixIn(ranges) => ranges.iter().any(|r| {
                r.prefix.contains(a.prefix) && a.prefix_len >= r.ge && a.prefix_len <= r.le
            }),
            MatchCond::HasCommunity(c) => a.communities.contains(c),
            MatchCond::AsPathContains(asn) => a.as_path.contains(asn),
            MatchCond::AsPathLengthLe(n) => a.as_path.len() <= *n as usize,
            MatchCond::MedEq(m) => a.med == *m,
        }
    }
}

impl Action {
    /// Concrete-reference application.
    pub fn apply_concrete(&self, a: &mut Announcement) {
        match self {
            Action::SetLocalPref(v) => a.local_pref = *v,
            Action::SetMed(v) => a.med = *v,
            Action::AddCommunity(c) => a.communities.insert(0, *c),
            Action::PrependAsPath(asn, count) => {
                for _ in 0..*count {
                    a.as_path.insert(0, *asn);
                }
            }
            Action::SetNextHop(v) => a.next_hop = *v,
            Action::DeleteCommunity(c) => a.communities.retain(|x| x != c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::ip;
    use rzen::{FindOptions, ZenFunction};

    fn range(p: Prefix, ge: u8, le: u8) -> PrefixRange {
        PrefixRange { prefix: p, ge, le }
    }

    fn sample_map() -> RouteMap {
        RouteMap {
            clauses: vec![
                // Deny long prefixes from 10/8.
                Clause {
                    conds: vec![MatchCond::PrefixIn(vec![range(
                        Prefix::new(ip(10, 0, 0, 0), 8),
                        25,
                        32,
                    )])],
                    actions: vec![],
                    permit: false,
                },
                // Tag and prefer customer routes.
                Clause {
                    conds: vec![MatchCond::HasCommunity(100)],
                    actions: vec![Action::SetLocalPref(200), Action::AddCommunity(999)],
                    permit: true,
                },
                // Default: permit with AS prepend.
                Clause {
                    conds: vec![],
                    actions: vec![Action::PrependAsPath(65000, 2)],
                    permit: true,
                },
            ],
        }
    }

    fn ann(prefix: u32, len: u8) -> Announcement {
        Announcement {
            communities: vec![],
            ..Announcement::origin(prefix, len, 65001)
        }
    }

    #[test]
    fn deny_clause_filters() {
        let f = ZenFunction::new(|a| sample_map().apply(a));
        assert_eq!(f.evaluate(&ann(ip(10, 1, 2, 0), 28)), None);
        assert!(f.evaluate(&ann(ip(10, 1, 0, 0), 16)).is_some());
    }

    #[test]
    fn actions_apply_in_order() {
        let f = ZenFunction::new(|a| sample_map().apply(a));
        let mut a = ann(ip(20, 0, 0, 0), 8);
        a.communities = vec![100];
        let out = f.evaluate(&a).unwrap();
        assert_eq!(out.local_pref, 200);
        assert_eq!(out.communities, vec![999, 100]);
        // Third clause untouched: no prepend happened.
        assert_eq!(out.as_path, vec![65001]);
    }

    #[test]
    fn fallthrough_reaches_default() {
        let f = ZenFunction::new(|a| sample_map().apply(a));
        let out = f.evaluate(&ann(ip(20, 0, 0, 0), 8)).unwrap();
        assert_eq!(out.as_path, vec![65000, 65000, 65001]);
    }

    #[test]
    fn symbolic_matches_concrete_reference() {
        let rm = sample_map();
        let f = ZenFunction::new(|a| sample_map().apply(a));
        let mut cases = vec![
            ann(ip(10, 1, 2, 0), 28),
            ann(ip(10, 1, 0, 0), 16),
            ann(ip(20, 0, 0, 0), 8),
        ];
        let mut tagged = ann(ip(20, 0, 0, 0), 8);
        tagged.communities = vec![100, 3];
        cases.push(tagged);
        for a in cases {
            assert_eq!(f.evaluate(&a), rm.apply_concrete(&a), "case {a:?}");
        }
    }

    #[test]
    fn find_announcement_reaching_last_clause() {
        // The Fig-10 (right) verification task.
        let n = sample_map().clauses.len() as u16;
        let f = ZenFunction::new(|a| sample_map().matched_clause(a));
        for opts in [FindOptions::bdd(), FindOptions::smt()] {
            let a = f
                .find(|_, line| line.eq(Zen::val(n)), &opts.with_list_bound(3))
                .expect("some announcement reaches the default clause");
            assert!(!sample_map().clauses[0].matches_concrete(&a));
            assert!(!sample_map().clauses[1].matches_concrete(&a));
        }
    }

    #[test]
    fn med_and_aspath_conditions() {
        let rm = RouteMap {
            clauses: vec![Clause {
                conds: vec![MatchCond::MedEq(50), MatchCond::AsPathLengthLe(2)],
                actions: vec![Action::SetNextHop(ip(1, 1, 1, 1))],
                permit: true,
            }],
        };
        let f = {
            let rm = rm.clone();
            ZenFunction::new(move |a| rm.clone().apply(a))
        };
        let mut a = ann(ip(30, 0, 0, 0), 8);
        a.med = 50;
        let out = f.evaluate(&a).unwrap();
        assert_eq!(out.next_hop, ip(1, 1, 1, 1));
        a.med = 49;
        assert_eq!(f.evaluate(&a), None);
        a.med = 50;
        a.as_path = vec![1, 2, 3];
        assert_eq!(f.evaluate(&a), None);
    }
}

#[cfg(test)]
mod delete_community_tests {
    use super::*;
    use rzen::{Zen, ZenFunction};

    #[test]
    fn delete_community_removes_all_occurrences() {
        let rm = RouteMap {
            clauses: vec![Clause {
                conds: vec![],
                actions: vec![Action::DeleteCommunity(7)],
                permit: true,
            }],
        };
        let f = {
            let rm = rm.clone();
            ZenFunction::new(move |a| rm.clone().apply(a))
        };
        let mut a = crate::routing::Announcement::origin(0x0A000000, 8, 65001);
        a.communities = vec![7, 3, 7, 9];
        let out = f.evaluate(&a).unwrap();
        assert_eq!(out.communities, vec![3, 9]);
        assert_eq!(out, rm.apply_concrete(&a).unwrap());
    }

    #[test]
    fn delete_then_match_interaction() {
        // Clause 1 strips the tag; a symbolic query shows no output ever
        // carries it.
        let rm = RouteMap {
            clauses: vec![Clause {
                conds: vec![],
                actions: vec![Action::DeleteCommunity(666)],
                permit: true,
            }],
        };
        let f = {
            let rm = rm.clone();
            ZenFunction::new(move |a| rm.clone().apply(a))
        };
        let leak = f.find(
            |_, out| {
                out.is_some()
                    .and(out.value().communities().contains(Zen::val(666u32)))
            },
            &rzen::FindOptions::smt().with_list_bound(3),
        );
        assert!(leak.is_none(), "tag must never survive deletion");
    }
}
