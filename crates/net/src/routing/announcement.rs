//! BGP route announcements.

use rzen::zen_struct;

zen_struct! {
    /// A BGP route announcement. Unlike Minesweeper, the full AS path is
    /// modeled (as a bounded list); OSPF areas are not (the same coverage
    /// trade the paper reports in §7).
    pub struct Announcement : AnnouncementFields {
        /// Announced network address.
        prefix, with_prefix: u32;
        /// Announced prefix length.
        prefix_len, with_prefix_len: u8;
        /// AS path, most recently prepended AS first.
        as_path, with_as_path: Vec<u32>;
        /// Community tags.
        communities, with_communities: Vec<u32>;
        /// Local preference (higher wins).
        local_pref, with_local_pref: u32;
        /// Multi-exit discriminator (lower wins).
        med, with_med: u32;
        /// Next-hop address.
        next_hop, with_next_hop: u32;
    }
}

impl Announcement {
    /// A default announcement for a destination prefix.
    pub fn origin(prefix: u32, prefix_len: u8, origin_as: u32) -> Announcement {
        Announcement {
            prefix,
            prefix_len,
            as_path: vec![origin_as],
            communities: vec![],
            local_pref: 100,
            med: 0,
            next_hop: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rzen::{Zen, ZenFunction};

    #[test]
    fn origin_defaults() {
        let a = Announcement::origin(0x0A000000, 8, 65001);
        assert_eq!(a.local_pref, 100);
        assert_eq!(a.as_path, vec![65001]);
    }

    #[test]
    fn symbolic_roundtrip() {
        let f = ZenFunction::new(|a: Zen<Announcement>| a.with_local_pref(a.local_pref() + 10u32));
        let a = Announcement::origin(0x0A000000, 8, 65001);
        assert_eq!(f.evaluate(&a).local_pref, 110);
    }

    #[test]
    fn as_path_prepend_via_list() {
        let f = ZenFunction::new(|a: Zen<Announcement>| {
            a.with_as_path(a.as_path().cons(Zen::val(65002u32)))
        });
        let a = Announcement::origin(0x0A000000, 8, 65001);
        assert_eq!(f.evaluate(&a).as_path, vec![65002, 65001]);
    }
}
