//! BGP-style routing: announcements, vendor-style route maps, and a
//! symbolic control plane.

mod announcement;
mod bgp;
mod route_map;

pub use announcement::{Announcement, AnnouncementFields};
pub use bgp::{BgpNetwork, BgpRouter, Edge};
pub use route_map::{Action, Clause, MatchCond, PrefixRange, RouteMap};
