//! A stateful firewall middlebox.
//!
//! The paper's Fig. 2 lists middleboxes among the functionality a common
//! modeling language should cover, and its related work cites stateful
//! dataplane verifiers (VMN, NetSMC). This model shows that statefulness
//! needs nothing special in the IVL: the connection table is just another
//! modeled value (a bounded list of flow keys), and a middlebox is a
//! function `(state, packet) → (state', verdict)` — the standard
//! transition-function shape that bounded model checking unrolls.

use crate::acl::Acl;
use crate::headers::{Header, HeaderFields};
use rzen::{pair, zen_struct, zif, Zen, ZenFunction};

zen_struct! {
    /// A connection key: the flow's endpoints as seen from the inside.
    pub struct FlowKey : FlowKeyFields {
        /// Inside host address.
        inside_ip, with_inside_ip: u32;
        /// Outside host address.
        outside_ip, with_outside_ip: u32;
        /// Inside port.
        inside_port, with_inside_port: u16;
        /// Outside port.
        outside_port, with_outside_port: u16;
    }
}

/// Firewall state: the established-connections table (most recent first).
pub type ConnTable = Vec<FlowKey>;

/// A stateful firewall: outbound traffic matching `egress_policy` opens a
/// connection; inbound traffic is accepted only for established
/// connections (the "reflexive ACL" / default-deny-inbound posture).
#[derive(Clone, Debug, Default)]
pub struct StatefulFirewall {
    /// Policy for connection-opening (outbound) traffic.
    pub egress_policy: Acl,
}

/// The verdict and successor state for one packet.
pub struct Step {
    /// Was the packet forwarded?
    pub accept: Zen<bool>,
    /// The connection table afterwards.
    pub state: Zen<ConnTable>,
}

impl StatefulFirewall {
    fn key_outbound(h: Zen<Header>) -> Zen<FlowKey> {
        FlowKey::create(h.src_ip(), h.dst_ip(), h.src_port(), h.dst_port())
    }

    fn key_inbound(h: Zen<Header>) -> Zen<FlowKey> {
        FlowKey::create(h.dst_ip(), h.src_ip(), h.dst_port(), h.src_port())
    }

    /// Process an outbound (inside → outside) packet.
    pub fn outbound(&self, state: Zen<ConnTable>, h: Zen<Header>) -> Step {
        let allowed = self.egress_policy.allows(h);
        let key = Self::key_outbound(h);
        let grown = state.cons(key);
        // Track the connection only when the packet is allowed out.
        let state = zif(allowed, grown, state.resize(state.slots() + 1));
        Step {
            accept: allowed,
            state,
        }
    }

    /// Process an inbound (outside → inside) packet: accepted iff it
    /// belongs to an established connection.
    pub fn inbound(&self, state: Zen<ConnTable>, h: Zen<Header>) -> Step {
        let key = Self::key_inbound(h);
        let established = state.contains(key);
        Step {
            accept: established,
            state,
        }
    }

    /// A closed-form model of a fixed interaction script: a sequence of
    /// (direction, packet) pairs starting from an empty table, returning
    /// whether the **last** packet is accepted. `true` = outbound.
    /// Script length fixes the unrolling depth (bounded model checking of
    /// the stateful system).
    pub fn script_model(&self, directions: Vec<bool>) -> ZenFunction<Vec<Header>, bool> {
        let fw = self.clone();
        ZenFunction::new(move |packets: Zen<Vec<Header>>| {
            let mut state: Zen<ConnTable> = Zen::nil();
            let mut last = Zen::bool(false);
            for (i, &out) in directions.iter().enumerate() {
                let h = packets
                    .at(Zen::val(i as u16))
                    .value_or(Zen::constant(&Header::new(0, 0, 0, 0, 0)));
                let step = if out {
                    fw.outbound(state, h)
                } else {
                    fw.inbound(state, h)
                };
                state = step.state;
                last = step.accept;
            }
            last
        })
    }
}

/// Convenience: the pair type used when treating the firewall as a
/// transition function for transformer-based analyses.
pub type FwInput = (ConnTable, Header);

/// The firewall's inbound step as a single `ZenFunction` over (state,
/// packet) — the shape set-based analyses consume.
pub fn inbound_step(fw: &StatefulFirewall) -> ZenFunction<FwInput, bool> {
    let fw = fw.clone();
    ZenFunction::new(move |input: Zen<FwInput>| fw.inbound(input.item1(), input.item2()).accept)
}

/// Build a (state, packet) symbolic pair explicitly (helper for custom
/// queries).
pub fn fw_input(state: Zen<ConnTable>, h: Zen<Header>) -> Zen<FwInput> {
    pair(state, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::AclRule;
    use crate::headers::proto;
    use crate::ip::{ip, Prefix};
    use rzen::FindOptions;

    fn fw() -> StatefulFirewall {
        StatefulFirewall {
            egress_policy: Acl {
                rules: vec![
                    // Inside hosts (10/8) may open connections to anywhere
                    // except port 25.
                    AclRule {
                        permit: false,
                        dst_ports: (25, 25),
                        ..AclRule::any(false)
                    },
                    AclRule {
                        permit: true,
                        src: Prefix::new(ip(10, 0, 0, 0), 8),
                        ..AclRule::any(true)
                    },
                    AclRule::any(false),
                ],
            },
        }
    }

    fn out_pkt(sport: u16, dport: u16) -> Header {
        Header::new(ip(8, 8, 8, 8), ip(10, 0, 0, 5), dport, sport, proto::TCP)
    }

    fn in_pkt(sport: u16, dport: u16) -> Header {
        Header::new(ip(10, 0, 0, 5), ip(8, 8, 8, 8), dport, sport, proto::TCP)
    }

    #[test]
    fn reply_to_established_connection_accepted() {
        // out(A->B), then in(B->A reply): accepted.
        let m = fw().script_model(vec![true, false]);
        assert!(m.evaluate(&vec![out_pkt(5000, 80), in_pkt(80, 5000)]));
    }

    #[test]
    fn unsolicited_inbound_rejected() {
        let m = fw().script_model(vec![false]);
        assert!(!m.evaluate(&vec![in_pkt(80, 5000)]));
    }

    #[test]
    fn reply_to_denied_connection_rejected() {
        // Outbound to port 25 is denied, so the "reply" is unsolicited.
        let m = fw().script_model(vec![true, false]);
        assert!(!m.evaluate(&vec![out_pkt(5000, 25), in_pkt(25, 5000)]));
    }

    #[test]
    fn mismatched_reply_rejected() {
        let m = fw().script_model(vec![true, false]);
        // Reply from the wrong port.
        assert!(!m.evaluate(&vec![out_pkt(5000, 80), in_pkt(443, 5000)]));
    }

    #[test]
    fn symbolic_no_inbound_without_outbound() {
        // Verified for ALL packets: a single inbound packet into a fresh
        // firewall is never accepted.
        let m = fw().script_model(vec![false]);
        assert!(m
            .verify(
                |_, accepted| !accepted,
                &FindOptions::bdd().with_list_bound(1)
            )
            .is_ok());
    }

    #[test]
    fn find_two_packet_attack_requires_matching_flow() {
        // Search: an inbound packet accepted after one outbound packet.
        // Any witness must be the established connection's reverse flow.
        let m = fw().script_model(vec![true, false]);
        let w = m
            .find(
                |_, accepted| accepted,
                &FindOptions::smt().with_list_bound(2),
            )
            .expect("replies are reachable");
        assert_eq!(w.len(), 2);
        let (out, inc) = (&w[0], &w[1]);
        assert_eq!(out.src_ip, inc.dst_ip);
        assert_eq!(out.dst_ip, inc.src_ip);
        assert_eq!(out.src_port, inc.dst_port);
        assert_eq!(out.dst_port, inc.src_port);
        // And the opening packet was policy-compliant.
        assert!(fw().egress_policy.allows_concrete(out));
    }

    #[test]
    fn inbound_step_as_function() {
        let f = inbound_step(&fw());
        let established = vec![FlowKey {
            inside_ip: ip(10, 0, 0, 5),
            outside_ip: ip(8, 8, 8, 8),
            inside_port: 5000,
            outside_port: 80,
        }];
        assert!(f.evaluate(&(established.clone(), in_pkt(80, 5000))));
        assert!(!f.evaluate(&(established, in_pkt(80, 5001))));
        assert!(!f.evaluate(&(vec![], in_pkt(80, 5000))));
    }
}
