//! Packet headers — the paper's Fig. 4 object model.

use rzen::{zen_struct, Zen};

zen_struct! {
    /// An IPv4/transport 5-tuple header (the paper's `Header`, Fig. 4).
    pub struct Header : HeaderFields {
        /// Destination IPv4 address.
        dst_ip, with_dst_ip: u32;
        /// Source IPv4 address.
        src_ip, with_src_ip: u32;
        /// Destination transport port.
        dst_port, with_dst_port: u16;
        /// Source transport port.
        src_port, with_src_port: u16;
        /// IP protocol number (6 = TCP, 17 = UDP, 47 = GRE, ...).
        protocol, with_protocol: u8;
    }
}

zen_struct! {
    /// A packet with an overlay header and an optional underlay
    /// (encapsulation) header (the paper's `Packet`, Fig. 4).
    pub struct Packet : PacketFields {
        /// The inner (overlay) header.
        overlay_header, with_overlay_header: Header;
        /// The outer (underlay) header added by tunneling, if any.
        underlay_header, with_underlay_header: Option<Header>;
    }
}

/// IP protocol numbers used by the models.
pub mod proto {
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
    /// Generic Routing Encapsulation.
    pub const GRE: u8 = 47;
}

impl Header {
    /// A convenience constructor for fixtures.
    pub fn new(dst_ip: u32, src_ip: u32, dst_port: u16, src_port: u16, protocol: u8) -> Header {
        Header {
            dst_ip,
            src_ip,
            dst_port,
            src_port,
            protocol,
        }
    }
}

impl Packet {
    /// A plain (un-tunneled) packet.
    pub fn plain(overlay: Header) -> Packet {
        Packet {
            overlay_header: overlay,
            underlay_header: None,
        }
    }
}

/// The header a device actually routes on: the underlay header when the
/// packet is tunneled, the overlay header otherwise.
pub fn routing_header(p: Zen<Packet>) -> Zen<Header> {
    p.underlay_header().value_or(p.overlay_header())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rzen::ZenFunction;

    fn hdr(d: u32) -> Header {
        Header::new(d, 1, 80, 4000, proto::TCP)
    }

    #[test]
    fn routing_header_prefers_underlay() {
        let f = ZenFunction::new(routing_header);
        let inner = hdr(10);
        let outer = hdr(99);
        let tunneled = Packet {
            overlay_header: inner.clone(),
            underlay_header: Some(outer.clone()),
        };
        assert_eq!(f.evaluate(&tunneled), outer);
        assert_eq!(f.evaluate(&Packet::plain(inner.clone())), inner);
    }

    #[test]
    fn header_update_roundtrip() {
        let f = ZenFunction::new(|h: Zen<Header>| h.with_dst_port(h.src_port()));
        let h = hdr(5);
        let out = f.evaluate(&h);
        assert_eq!(out.dst_port, h.src_port);
        assert_eq!(out.dst_ip, h.dst_ip);
    }

    #[test]
    fn packet_encap_shape() {
        let f = ZenFunction::new(|p: Zen<Packet>| p.underlay_header().is_some());
        assert!(!f.evaluate(&Packet::plain(hdr(1))));
        assert!(f.evaluate(&Packet {
            overlay_header: hdr(1),
            underlay_header: Some(hdr(2))
        }));
    }
}
