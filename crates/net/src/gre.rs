//! IP-GRE tunnels — the paper's Fig. 5 `Encap`/`Decap`.

use crate::headers::{proto, Header, HeaderFields, Packet, PacketFields};
use rzen::Zen;

/// A GRE tunnel endpoint pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GreTunnel {
    /// Tunnel source (encapsulating device).
    pub src_ip: u32,
    /// Tunnel destination (decapsulating device).
    pub dst_ip: u32,
}

// ZEN-LOC-BEGIN(gre)
/// Encapsulate: add an underlay header addressed to the tunnel endpoint,
/// copying the transport fields from the overlay header (Fig. 5).
pub fn encap(t: Option<&GreTunnel>, pkt: Zen<Packet>) -> Zen<Packet> {
    let Some(t) = t else { return pkt };
    let oheader = pkt.overlay_header();
    let uheader = Header::create(
        Zen::val(t.dst_ip),
        Zen::val(t.src_ip),
        oheader.dst_port(),
        oheader.src_port(),
        Zen::val(proto::GRE),
    );
    Packet::create(oheader, Zen::some(uheader))
}

/// Decapsulate: strip the underlay header, if present (Fig. 5).
pub fn decap(t: Option<&GreTunnel>, pkt: Zen<Packet>) -> Zen<Packet> {
    if t.is_none() {
        return pkt;
    }
    Packet::create(pkt.overlay_header(), Zen::none(0))
}
// ZEN-LOC-END(gre)

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::ip;
    use rzen::ZenFunction;

    fn tunnel() -> GreTunnel {
        GreTunnel {
            src_ip: ip(192, 168, 0, 1),
            dst_ip: ip(192, 168, 0, 3),
        }
    }

    fn pkt() -> Packet {
        Packet::plain(Header::new(
            ip(10, 0, 0, 2),
            ip(10, 0, 0, 1),
            443,
            5000,
            proto::TCP,
        ))
    }

    #[test]
    fn encap_adds_underlay() {
        let f = ZenFunction::new(|p| encap(Some(&tunnel()), p));
        let out = f.evaluate(&pkt());
        let u = out.underlay_header.expect("underlay added");
        assert_eq!(u.dst_ip, tunnel().dst_ip);
        assert_eq!(u.src_ip, tunnel().src_ip);
        assert_eq!(u.protocol, proto::GRE);
        assert_eq!(u.dst_port, 443);
        assert_eq!(out.overlay_header, pkt().overlay_header);
    }

    #[test]
    fn no_tunnel_is_identity() {
        let f = ZenFunction::new(|p| encap(None, p));
        assert_eq!(f.evaluate(&pkt()), pkt());
        let g = ZenFunction::new(|p| decap(None, p));
        assert_eq!(g.evaluate(&pkt()), pkt());
    }

    #[test]
    fn decap_strips_underlay() {
        let f = ZenFunction::new(|p| decap(Some(&tunnel()), encap(Some(&tunnel()), p)));
        assert_eq!(f.evaluate(&pkt()), pkt());
    }

    #[test]
    fn decap_of_plain_packet_is_plain() {
        let f = ZenFunction::new(|p| decap(Some(&tunnel()), p));
        assert_eq!(f.evaluate(&pkt()), pkt());
    }

    #[test]
    fn encap_decap_roundtrip_symbolic() {
        // Verified for ALL packets, not just one fixture.
        let f = ZenFunction::new(|p: Zen<Packet>| {
            let round = decap(Some(&tunnel()), encap(Some(&tunnel()), p));
            round.overlay_header().eq(p.overlay_header())
        });
        assert!(f.verify(|_, ok| ok, &rzen::FindOptions::bdd()).is_ok());
    }
}
