//! Devices and interfaces: the combined (overlay and underlay) treatment
//! of packets — the paper's Figs. 6 and 7.
//!
//! `fwd_in` applies inbound policy (ACL, then decapsulation); `fwd_out`
//! applies outbound policy (forwarding-table check, ACL, encapsulation).
//! Composition is exactly the paper's point: these functions are built by
//! *calling* the ACL, LPM, and GRE models — no translation glue.

use crate::acl::Acl;
use crate::fwd::FwdTable;
use crate::gre::{decap, encap, GreTunnel};
use crate::headers::{routing_header, Packet, PacketFields};
use crate::nat::Nat;
use rzen::{zif, Zen};

/// A device interface with its attached policies (the paper's `Intf`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Interface {
    /// Port number on the owning device (what the forwarding table
    /// returns to select this interface; 0 is reserved for "drop").
    pub id: u8,
    /// Inbound ACL (checked on the routing header), if any.
    pub acl_in: Option<Acl>,
    /// Outbound ACL, if any.
    pub acl_out: Option<Acl>,
    /// Tunnel starting here: packets leaving are encapsulated.
    pub gre_start: Option<GreTunnel>,
    /// Tunnel ending here: packets arriving are decapsulated.
    pub gre_end: Option<GreTunnel>,
    /// Inbound NAT (typically DNAT), applied after decapsulation.
    pub nat_in: Option<Nat>,
    /// Outbound NAT (typically SNAT), applied after the outbound ACL and
    /// before encapsulation.
    pub nat_out: Option<Nat>,
    /// The owning device's forwarding table (the paper's `i.Device`).
    pub table: FwdTable,
}

impl Interface {
    /// A bare interface with just a port id and table.
    pub fn new(id: u8, table: FwdTable) -> Interface {
        Interface {
            id,
            table,
            ..Interface::default()
        }
    }
}

fn allow(acl: &Option<Acl>, p: Zen<Packet>) -> Zen<bool> {
    match acl {
        None => Zen::bool(true),
        Some(a) => a.allows(routing_header(p)),
    }
}

/// Rewrite the packet's routing header (the underlay header when
/// tunneled, the overlay header otherwise) with a NAT table.
fn apply_nat(nat: &Option<Nat>, p: Zen<Packet>) -> Zen<Packet> {
    let Some(nat) = nat else { return p };
    let tunneled = p.underlay_header().is_some();
    let rewritten_u = p.with_underlay_header(Zen::some(nat.apply(p.underlay_header().value())));
    let rewritten_o = p.with_overlay_header(nat.apply(p.overlay_header()));
    zif(tunneled, rewritten_u, rewritten_o)
}

/// Inbound processing (paper Fig. 6 `FwdIn`): inbound ACL, then
/// decapsulation, then inbound NAT. `None` means the packet was dropped.
pub fn fwd_in(i: &Interface, p: Zen<Packet>) -> Zen<Option<Packet>> {
    let allowed = allow(&i.acl_in, p);
    let decapped = decap(i.gre_end.as_ref(), p);
    let translated = apply_nat(&i.nat_in, decapped);
    zif(allowed, Zen::some(translated), Zen::none(0))
}

/// Outbound processing (paper Fig. 6 `FwdOut`): forwarding table must
/// select this interface, outbound ACL must allow, then outbound NAT,
/// then encapsulation.
pub fn fwd_out(i: &Interface, p: Zen<Packet>) -> Zen<Option<Packet>> {
    let port = i.table.lookup(routing_header(p));
    let allowed = allow(&i.acl_out, p);
    let translated = apply_nat(&i.nat_out, p);
    let encapped = encap(i.gre_start.as_ref(), translated);
    let pkt_out = zif(allowed, Zen::some(encapped), Zen::none(0));
    zif(port.eq(Zen::val(i.id)), pkt_out, Zen::none(0))
}

/// One hop of a path: the interface a packet enters and the interface it
/// must leave through.
#[derive(Clone, Debug)]
pub struct Hop {
    /// Ingress interface.
    pub intf_in: Interface,
    /// Egress interface.
    pub intf_out: Interface,
}

/// Forward a packet along a fixed path (paper Fig. 7 `Fwd`): apply
/// inbound then outbound processing at every hop; `None` if dropped
/// anywhere.
pub fn forward_along(path: &[Hop], p: Zen<Packet>) -> Zen<Option<Packet>> {
    let mut x: Zen<Option<Packet>> = Zen::some(p);
    for hop in path {
        let after_in = fwd_in(&hop.intf_in, x.value());
        let x1 = zif(x.is_some(), after_in, Zen::none(0));
        let after_out = fwd_out(&hop.intf_out, x1.value());
        x = zif(x1.is_some(), after_out, Zen::none(0));
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::{Acl, AclRule};
    use crate::fwd::FwdRule;
    use crate::headers::{proto, Header};
    use crate::ip::{ip, Prefix};
    use rzen::ZenFunction;

    fn table_to(port: u8) -> FwdTable {
        FwdTable::new(vec![FwdRule {
            prefix: Prefix::ANY,
            port,
        }])
    }

    fn pkt(dst: u32, port: u16) -> Packet {
        Packet::plain(Header::new(dst, ip(1, 1, 1, 1), port, 9999, proto::TCP))
    }

    #[test]
    fn fwd_in_applies_acl() {
        let deny_ssh = Acl {
            rules: vec![
                AclRule {
                    permit: false,
                    dst_ports: (22, 22),
                    ..AclRule::any(false)
                },
                AclRule::any(true),
            ],
        };
        let i = Interface {
            acl_in: Some(deny_ssh),
            ..Interface::new(1, table_to(1))
        };
        let f = ZenFunction::new(move |p| fwd_in(&i.clone(), p));
        assert_eq!(f.evaluate(&pkt(ip(10, 0, 0, 1), 22)), None);
        assert!(f.evaluate(&pkt(ip(10, 0, 0, 1), 80)).is_some());
    }

    #[test]
    fn fwd_out_requires_port_match() {
        let i1 = Interface::new(1, table_to(1));
        let i2 = Interface::new(2, table_to(1)); // table selects port 1
        let f1 = ZenFunction::new(move |p| fwd_out(&i1.clone(), p));
        let f2 = ZenFunction::new(move |p| fwd_out(&i2.clone(), p));
        assert!(f1.evaluate(&pkt(ip(10, 0, 0, 1), 80)).is_some());
        assert_eq!(f2.evaluate(&pkt(ip(10, 0, 0, 1), 80)), None);
    }

    #[test]
    fn fwd_out_encapsulates() {
        let t = GreTunnel {
            src_ip: ip(192, 168, 0, 1),
            dst_ip: ip(192, 168, 0, 3),
        };
        let i = Interface {
            gre_start: Some(t),
            ..Interface::new(1, table_to(1))
        };
        let f = ZenFunction::new(move |p| fwd_out(&i.clone(), p));
        let out = f.evaluate(&pkt(ip(10, 0, 0, 1), 80)).expect("forwarded");
        assert_eq!(out.underlay_header.unwrap().dst_ip, t.dst_ip);
    }

    #[test]
    fn path_forwarding_composes() {
        // Two hops, second drops ssh.
        let deny_ssh = Acl {
            rules: vec![
                AclRule {
                    permit: false,
                    dst_ports: (22, 22),
                    ..AclRule::any(false)
                },
                AclRule::any(true),
            ],
        };
        let hop1 = Hop {
            intf_in: Interface::new(1, table_to(1)),
            intf_out: Interface::new(1, table_to(1)),
        };
        let hop2 = Hop {
            intf_in: Interface {
                acl_in: Some(deny_ssh),
                ..Interface::new(1, table_to(1))
            },
            intf_out: Interface::new(1, table_to(1)),
        };
        let path = vec![hop1, hop2];
        let f = ZenFunction::new(move |p| forward_along(&path.clone(), p));
        assert!(f.evaluate(&pkt(ip(10, 0, 0, 1), 80)).is_some());
        assert_eq!(f.evaluate(&pkt(ip(10, 0, 0, 1), 22)), None);
    }

    #[test]
    fn dropped_stays_dropped() {
        let drop_all = Interface {
            acl_in: Some(Acl::default()),
            ..Interface::new(1, table_to(1))
        };
        let pass = Interface::new(1, table_to(1));
        let path = vec![
            Hop {
                intf_in: drop_all,
                intf_out: pass.clone(),
            },
            Hop {
                intf_in: pass.clone(),
                intf_out: pass,
            },
        ];
        let f = ZenFunction::new(move |p| forward_along(&path.clone(), p));
        assert_eq!(f.evaluate(&pkt(ip(10, 0, 0, 1), 80)), None);
    }

    #[test]
    fn find_delivered_packet_along_path() {
        // The paper's §4 "Finding (counter) example inputs": ask for a
        // packet delivered along a path.
        let deny_10_slash_8 = Acl {
            rules: vec![
                AclRule {
                    permit: false,
                    dst: Prefix::new(ip(10, 0, 0, 0), 8),
                    ..AclRule::any(false)
                },
                AclRule::any(true),
            ],
        };
        let path = vec![Hop {
            intf_in: Interface {
                acl_in: Some(deny_10_slash_8),
                ..Interface::new(1, table_to(1))
            },
            intf_out: Interface::new(1, table_to(1)),
        }];
        let f = ZenFunction::new(move |p| forward_along(&path.clone(), p));
        let delivered = f
            .find(|_, out| out.is_some(), &rzen::FindOptions::bdd())
            .expect("some packet gets through");
        assert!(!Prefix::new(ip(10, 0, 0, 0), 8).contains(delivered.overlay_header.dst_ip));
    }
}
