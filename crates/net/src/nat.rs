//! Network address translation — one of the paper's intro examples of
//! functionality verification must cover ("network address translation,
//! and other types of packet transformations"), and a second showcase of
//! composition: NAT rewrites compose with ACLs and forwarding by plain
//! function calls, and the classic NAT-vs-ACL ordering bug becomes a
//! one-line `find` query (see `tests/` and the module tests).

use crate::headers::{Header, HeaderFields};
use crate::ip::Prefix;
use rzen::{zif, Zen};

/// Which address a rule matches and rewrites.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NatKind {
    /// Source NAT: match and rewrite the source address.
    Snat,
    /// Destination NAT: match and rewrite the destination address.
    Dnat,
}

/// One static NAT rule: addresses inside `matches` are rewritten to
/// `rewrite_to` (many-to-one, the common masquerade shape).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NatRule {
    /// Source or destination NAT.
    pub kind: NatKind,
    /// Addresses this rule applies to.
    pub matches: Prefix,
    /// The translated address.
    pub rewrite_to: u32,
}

/// A NAT table: first matching rule applies; no match leaves the header
/// unchanged.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Nat {
    /// The rules.
    pub rules: Vec<NatRule>,
}

impl NatRule {
    fn field(&self, h: Zen<Header>) -> Zen<u32> {
        match self.kind {
            NatKind::Snat => h.src_ip(),
            NatKind::Dnat => h.dst_ip(),
        }
    }

    fn rewrite(&self, h: Zen<Header>) -> Zen<Header> {
        match self.kind {
            NatKind::Snat => h.with_src_ip(Zen::val(self.rewrite_to)),
            NatKind::Dnat => h.with_dst_ip(Zen::val(self.rewrite_to)),
        }
    }
}

impl Nat {
    /// Apply the table to a (symbolic) header: first match rewrites.
    pub fn apply(&self, h: Zen<Header>) -> Zen<Header> {
        let mut out = h;
        for rule in self.rules.iter().rev() {
            out = zif(rule.matches.matches(rule.field(h)), rule.rewrite(h), out);
        }
        out
    }

    /// Concrete-reference semantics.
    pub fn apply_concrete(&self, h: &Header) -> Header {
        for rule in &self.rules {
            let field = match rule.kind {
                NatKind::Snat => h.src_ip,
                NatKind::Dnat => h.dst_ip,
            };
            if rule.matches.contains(field) {
                let mut out = h.clone();
                match rule.kind {
                    NatKind::Snat => out.src_ip = rule.rewrite_to,
                    NatKind::Dnat => out.dst_ip = rule.rewrite_to,
                }
                return out;
            }
        }
        h.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acl::{Acl, AclRule};
    use crate::headers::proto;
    use crate::ip::ip;
    use rzen::{FindOptions, ZenFunction};

    fn masquerade() -> Nat {
        Nat {
            rules: vec![NatRule {
                kind: NatKind::Snat,
                matches: Prefix::new(ip(10, 0, 0, 0), 8),
                rewrite_to: ip(203, 0, 113, 1),
            }],
        }
    }

    fn hdr(src: u32, dst: u32) -> Header {
        Header::new(dst, src, 80, 55555, proto::TCP)
    }

    #[test]
    fn snat_rewrites_matching_sources() {
        let f = ZenFunction::new(|h| masquerade().apply(h));
        let out = f.evaluate(&hdr(ip(10, 1, 2, 3), ip(8, 8, 8, 8)));
        assert_eq!(out.src_ip, ip(203, 0, 113, 1));
        assert_eq!(out.dst_ip, ip(8, 8, 8, 8));
        let out = f.evaluate(&hdr(ip(172, 16, 0, 1), ip(8, 8, 8, 8)));
        assert_eq!(out.src_ip, ip(172, 16, 0, 1));
    }

    #[test]
    fn first_match_wins() {
        let nat = Nat {
            rules: vec![
                NatRule {
                    kind: NatKind::Dnat,
                    matches: Prefix::new(ip(203, 0, 113, 0), 24),
                    rewrite_to: ip(10, 0, 0, 5),
                },
                NatRule {
                    kind: NatKind::Dnat,
                    matches: Prefix::ANY,
                    rewrite_to: ip(10, 0, 0, 9),
                },
            ],
        };
        let f = {
            let nat = nat.clone();
            ZenFunction::new(move |h| nat.clone().apply(h))
        };
        assert_eq!(
            f.evaluate(&hdr(1, ip(203, 0, 113, 7))).dst_ip,
            ip(10, 0, 0, 5)
        );
        assert_eq!(f.evaluate(&hdr(1, ip(9, 9, 9, 9))).dst_ip, ip(10, 0, 0, 9));
    }

    #[test]
    fn symbolic_matches_concrete() {
        let nat = masquerade();
        let f = ZenFunction::new(|h| masquerade().apply(h));
        for h in [
            hdr(ip(10, 1, 2, 3), ip(8, 8, 8, 8)),
            hdr(ip(11, 1, 2, 3), ip(8, 8, 8, 8)),
        ] {
            assert_eq!(f.evaluate(&h), nat.apply_concrete(&h));
        }
    }

    #[test]
    fn nat_acl_interaction_bug() {
        // The classic misconfiguration: an egress ACL written against
        // *internal* addresses, evaluated *after* SNAT — it never matches,
        // so the "blocked" host leaks. The composed model finds the leak.
        let block_host = Acl {
            rules: vec![
                AclRule {
                    permit: false,
                    src: Prefix::new(ip(10, 0, 0, 99), 32),
                    ..AclRule::any(false)
                },
                AclRule::any(true),
            ],
        };
        // after-NAT ordering (buggy):
        let leak = {
            let acl = block_host.clone();
            ZenFunction::new(move |h: rzen::Zen<Header>| {
                let translated = masquerade().apply(h);
                acl.allows(translated)
            })
        };
        let escaped = leak.find(
            |h, allowed| h.src_ip().eq(rzen::Zen::val(ip(10, 0, 0, 99))).and(allowed),
            &FindOptions::bdd(),
        );
        assert!(escaped.is_some(), "composition exposes the leak");

        // before-NAT ordering (correct): the host is always blocked.
        let fixed = {
            let acl = block_host.clone();
            ZenFunction::new(move |h: rzen::Zen<Header>| {
                let allowed = acl.allows(h);
                let translated = masquerade().apply(h);
                allowed.and(translated.src_ip().ne(rzen::Zen::val(0)))
            })
        };
        let escaped = fixed.find(
            |h, allowed| h.src_ip().eq(rzen::Zen::val(ip(10, 0, 0, 99))).and(allowed),
            &FindOptions::bdd(),
        );
        assert!(escaped.is_none(), "correct ordering blocks the host");
    }

    #[test]
    fn untranslated_iff_no_rule_matches() {
        // Symbolic proof: output src differs from input src exactly when
        // the masquerade prefix matched.
        let f = ZenFunction::new(|h| masquerade().apply(h));
        let ok = f.verify(
            |h, out| {
                let inside = Prefix::new(ip(10, 0, 0, 0), 8).matches(h.src_ip());
                let changed = out.src_ip().ne(h.src_ip());
                // (If the host already had the public address, "rewrite"
                // is a no-op — exclude that corner.)
                let already = h.src_ip().eq(rzen::Zen::val(ip(203, 0, 113, 1)));
                changed.iff(inside.and(!already))
            },
            &FindOptions::bdd(),
        );
        assert!(ok.is_ok());
    }
}
