//! # rzen-net — network models and analyses on the rzen IVL
//!
//! This crate is the "domain" half of the paper's compositional story: all
//! network functionality — packet headers, ACLs, longest-prefix-match
//! forwarding, IP-GRE tunnels, devices and interfaces, BGP-style route
//! maps — is modeled once as ordinary Rust functions over `Zen` values,
//! and every analysis backend of the `rzen` crate applies to every model.
//!
//! The `analyses` module expresses the six analyses of the paper's
//! Table 1 (HSA, Atomic Predicates, Anteater, Minesweeper, Bonsai,
//! Shapeshifter) on top of those shared models.
//!
//! Modules whose line counts reproduce the paper's Table 2 mark their
//! semantic core with `ZEN-LOC-BEGIN`/`ZEN-LOC-END` comments; the
//! `table2` binary in `rzen-bench` counts them.

#![warn(missing_docs)]

pub mod acl;
pub mod analyses;
pub mod device;
pub mod firewall;
pub mod fwd;
pub mod gen;
pub mod gre;
pub mod headers;
pub mod ip;
pub mod nat;
pub mod routing;
pub mod spec;
pub mod topology;

pub use headers::{Header, HeaderFields, Packet, PacketFields};
pub use ip::{ip, Prefix};
