//! The result cache, keyed on the full [`Query`].
//!
//! The fingerprint is a 64-bit FNV-1a hash — fast to compare and stable,
//! but *not* collision-free, so it only selects a bucket. Within a bucket
//! the stored queries are compared structurally (`Query: Eq`); a colliding
//! fingerprint therefore costs one extra comparison instead of silently
//! serving another query's verdict (and witness).

use std::collections::{HashMap, HashSet};

use rzen_net::topology::{DeltaStep, Network, Touch};

use crate::query::{Query, Verdict};

/// How a delta sweep disposed of the cache's entries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaCacheStats {
    /// Entries whose cone of influence a delta op touched: dropped.
    pub evicted: usize,
    /// Entries proven unaffected: re-keyed to the new network and kept
    /// warm (a post-delta identical query hits them without a solve).
    pub retained: usize,
    /// Entries the sweep did not reason about (other query kinds, other
    /// models): left in place untouched.
    pub unaffected: usize,
}

/// A `(device, interface)` endpoint, as footprints and touches name them.
type Port = (usize, u8);

/// Verdicts of decisive queries, keyed by full query with the structural
/// fingerprint as the hash.
#[derive(Debug, Default)]
pub(crate) struct ResultCache {
    map: HashMap<u64, Vec<(Query, Verdict)>>,
    /// Total entries across buckets, maintained incrementally so the
    /// entries gauge never needs an O(n) walk.
    count: usize,
}

impl ResultCache {
    pub(crate) fn new() -> ResultCache {
        ResultCache::default()
    }

    /// The cached verdict for `query`, if this exact query was decided
    /// before. `fingerprint` must be `query.fingerprint()` (passed in so
    /// callers hash once); a bucket match alone is never enough.
    pub(crate) fn get(&self, fingerprint: u64, query: &Query) -> Option<&Verdict> {
        self.map
            .get(&fingerprint)?
            .iter()
            .find(|(q, _)| q == query)
            .map(|(_, v)| v)
    }

    /// Drop every cached verdict (model hot-swap, tests).
    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.count = 0;
    }

    /// Record a verdict for `query`.
    pub(crate) fn insert(&mut self, fingerprint: u64, query: &Query, verdict: Verdict) -> bool {
        let bucket = self.map.entry(fingerprint).or_default();
        match bucket.iter_mut().find(|(q, _)| q == query) {
            Some(slot) => {
                slot.1 = verdict;
                false
            }
            None => {
                bucket.push((query.clone(), verdict));
                self.count += 1;
                true
            }
        }
    }

    /// Cached entries across all buckets.
    pub(crate) fn len(&self) -> usize {
        self.count
    }

    /// The dependency-aware sweep behind [`crate::Engine::apply_delta`]:
    /// walk every cached `Reach`/`Drops` entry keyed by `old_net`, evict
    /// the ones whose cone of influence a delta step touched, and re-key
    /// the survivors to `new_net` (recomputing their fingerprints) so
    /// identical post-delta queries keep hitting them. Entries for other
    /// query kinds or other models are left untouched.
    ///
    /// Affectedness is judged per step, in application order:
    ///
    /// * `Intf` — the query's *path footprint* (every `(device, intf)` on
    ///   an enumerated simple path, endpoints included) must contain the
    ///   changed interface.
    /// * `Table` — the footprint must visit the device at all.
    /// * `LinkDown` — both endpoints must be in the footprint (a used
    ///   link implies both).
    /// * `LinkUp` — a new path can only appear if, on that step's pre-op
    ///   graph, one endpoint was link-reachable from the source device
    ///   and the other could reach the destination device.
    /// * `DeviceAdded` — appended and unlinked, affects nothing.
    /// * `DeviceRemoved` — indices shift; every entry for this model is
    ///   evicted.
    ///
    /// Footprints are computed on `old_net`. That stays sound across a
    /// multi-op sequence: a path that exists only thanks to an earlier
    /// `link-up` is caught by *that* step's pre-op reachability test, and
    /// a footprint only shrinks when a `link-down` fired, which already
    /// evicted the entry.
    pub(crate) fn sweep_delta(
        &mut self,
        old_net: &Network,
        new_net: &Network,
        steps: &[DeltaStep],
    ) -> DeltaCacheStats {
        let mut stats = DeltaCacheStats::default();
        let device_removed = steps
            .iter()
            .any(|s| matches!(s.touch, Touch::DeviceRemoved));
        let mut footprints: HashMap<(Port, Port), HashSet<Port>> = HashMap::new();
        // Per-step memoized link closures for the LinkUp rule.
        let mut reach: Vec<HashMap<usize, HashSet<usize>>> =
            steps.iter().map(|_| HashMap::new()).collect();
        let mut coreach: Vec<HashMap<usize, HashSet<usize>>> =
            steps.iter().map(|_| HashMap::new()).collect();

        let mut kept: HashMap<u64, Vec<(Query, Verdict)>> = HashMap::new();
        let mut count = 0usize;
        for (fp, bucket) in self.map.drain() {
            for (q, v) in bucket {
                let (src, dst) = match &q {
                    Query::Reach { net, src, dst } | Query::Drops { net, src, dst }
                        if net == old_net =>
                    {
                        (*src, *dst)
                    }
                    _ => {
                        stats.unaffected += 1;
                        count += 1;
                        kept.entry(fp).or_default().push((q, v));
                        continue;
                    }
                };
                let affected = device_removed
                    || steps.iter().enumerate().any(|(si, step)| {
                        match step.touch {
                            Touch::Intf { .. } | Touch::Table { .. } | Touch::LinkDown { .. } => {
                                footprints.entry((src, dst)).or_insert_with(|| {
                                    old_net.path_footprint(src.0, src.1, dst.0, dst.1)
                                });
                            }
                            _ => {}
                        }
                        match step.touch {
                            Touch::Intf { device, intf } => {
                                footprints[&(src, dst)].contains(&(device, intf))
                            }
                            Touch::Table { device } => {
                                footprints[&(src, dst)].iter().any(|&(d, _)| d == device)
                            }
                            Touch::LinkDown { a, b } => {
                                let f = &footprints[&(src, dst)];
                                f.contains(&a) && f.contains(&b)
                            }
                            Touch::LinkUp { a, b } => {
                                let fwd = reach[si]
                                    .entry(src.0)
                                    .or_insert_with(|| step.pre.reachable_from(src.0));
                                let can_reach_a = fwd.contains(&a.0);
                                let can_reach_b = fwd.contains(&b.0);
                                let rev = coreach[si]
                                    .entry(dst.0)
                                    .or_insert_with(|| step.pre.reaching(dst.0));
                                (can_reach_a && rev.contains(&b.0))
                                    || (can_reach_b && rev.contains(&a.0))
                            }
                            Touch::DeviceAdded { .. } => false,
                            Touch::DeviceRemoved => true,
                        }
                    });
                if affected {
                    stats.evicted += 1;
                    continue;
                }
                stats.retained += 1;
                // Re-key: the surviving verdict transfers to the new
                // network (nothing on any of its paths changed), and a
                // post-delta query — which embeds the new network — can
                // only hit it under the new fingerprint.
                let q2 = match q {
                    Query::Reach { src, dst, .. } => Query::Reach {
                        net: new_net.clone(),
                        src,
                        dst,
                    },
                    Query::Drops { src, dst, .. } => Query::Drops {
                        net: new_net.clone(),
                        src,
                        dst,
                    },
                    _ => unreachable!("only Reach/Drops reach the re-key arm"),
                };
                let fp2 = q2.fingerprint();
                count += 1;
                kept.entry(fp2).or_default().push((q2, v));
            }
        }
        self.map = kept;
        self.count = count;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acl_query(target_line: u16) -> Query {
        Query::AclFind {
            acl: rzen_net::gen::random_acl(4, 7),
            target_line,
        }
    }

    /// Regression: two *different* queries forced into the same 64-bit
    /// fingerprint must not serve each other's verdicts. (A genuine FNV-1a
    /// collision is infeasible to construct, so the collision is forced by
    /// inserting under the same key — exactly what a collision looks like
    /// to the cache.)
    #[test]
    fn forced_fingerprint_collision_does_not_cross_serve() {
        let colliding = 0xdead_beef_u64;
        let (a, b, c) = (acl_query(1), acl_query(2), acl_query(3));
        let mut cache = ResultCache::new();
        cache.insert(colliding, &a, Verdict::Unsat);
        cache.insert(
            colliding,
            &b,
            Verdict::Sat(crate::Witness::Header(rzen_net::headers::Header::new(
                1, 2, 3, 4, 5,
            ))),
        );

        assert_eq!(cache.get(colliding, &a), Some(&Verdict::Unsat));
        assert!(matches!(cache.get(colliding, &b), Some(&Verdict::Sat(_))));
        // The old u64-keyed cache returned *something* here; now a query
        // that merely collides must miss.
        assert_eq!(cache.get(colliding, &c), None);
    }

    fn reach(net: &Network, src: (usize, u8), dst: (usize, u8)) -> Query {
        Query::Reach {
            net: net.clone(),
            src,
            dst,
        }
    }

    fn insert_q(cache: &mut ResultCache, q: &Query) {
        cache.insert(q.fingerprint(), q, Verdict::Unsat);
    }

    /// The sweep evicts exactly the footprint-affected entries, re-keys
    /// the survivors to the new network, and leaves foreign entries
    /// (other kinds, other models) alone.
    #[test]
    fn sweep_evicts_by_footprint_and_rekeys_survivors() {
        // 2 spines, 3 leaves; edge ports are (leaf, 99).
        let old = rzen_net::gen::spine_leaf(2, 3);
        let (l0, l1, l2) = (2, 3, 4);
        let mut new = old.clone();
        // The delta: an ACL appears on l1's host port.
        new.devices[l1].interfaces.last_mut().unwrap().acl_in = Some(rzen_net::acl::Acl::default());
        let steps = [DeltaStep {
            pre: old.clone(),
            touch: Touch::Intf {
                device: l1,
                intf: 99,
            },
        }];

        let mut cache = ResultCache::new();
        let touched = reach(&old, (l0, 99), (l1, 99));
        let untouched = reach(&old, (l0, 99), (l2, 99));
        let foreign_kind = acl_query(1);
        insert_q(&mut cache, &touched);
        insert_q(&mut cache, &untouched);
        insert_q(&mut cache, &foreign_kind);
        assert_eq!(cache.len(), 3);

        let stats = cache.sweep_delta(&old, &new, &steps);
        assert_eq!(
            stats,
            DeltaCacheStats {
                evicted: 1,
                retained: 1,
                unaffected: 1,
            }
        );
        assert_eq!(cache.len(), 2);
        // The survivor answers under its *new* key, not its old one.
        let rekeyed = reach(&new, (l0, 99), (l2, 99));
        assert!(cache.get(rekeyed.fingerprint(), &rekeyed).is_some());
        assert!(cache.get(untouched.fingerprint(), &untouched).is_none());
        // The evicted pair misses under both keys.
        let evicted_new = reach(&new, (l0, 99), (l1, 99));
        assert!(cache.get(evicted_new.fingerprint(), &evicted_new).is_none());
        // The foreign-kind entry still hits.
        assert!(cache
            .get(foreign_kind.fingerprint(), &foreign_kind)
            .is_some());
    }

    /// `link-up` uses pre-op reachability: a link that could splice the
    /// pair's endpoints evicts, one in an unrelated component does not.
    #[test]
    fn sweep_link_up_uses_pre_op_reachability() {
        use rzen_net::device::Interface;
        use rzen_net::topology::Device;

        // a -- b, and isolated c: a->b cached. Linking b:2-c:1 cannot
        // create an a->b path (c is not between them)... but linking
        // c into the middle *could* matter for a->c.
        let mut old = Network::default();
        let mk = |name: &str, ports: &[u8]| Device {
            name: name.into(),
            interfaces: ports
                .iter()
                .map(|&p| Interface::new(p, Default::default()))
                .collect(),
        };
        let a = old.add_device(mk("a", &[1, 9]));
        let b = old.add_device(mk("b", &[1, 2, 9]));
        let c = old.add_device(mk("c", &[1, 9]));
        old.add_duplex(a, 1, b, 1);

        let mut new = old.clone();
        new.add_duplex(b, 2, c, 1);
        let steps = [DeltaStep {
            pre: old.clone(),
            touch: Touch::LinkUp {
                a: (b, 2),
                b: (c, 1),
            },
        }];

        let mut cache = ResultCache::new();
        let ab = reach(&old, (a, 9), (b, 9));
        let ac = reach(&old, (a, 9), (c, 9));
        insert_q(&mut cache, &ab);
        insert_q(&mut cache, &ac);
        let stats = cache.sweep_delta(&old, &new, &steps);
        // a->c: b was reachable from a and c reaches c, so the new link
        // can create a path — evict. a->b: the only splice would need c
        // to already reach b, and it did not — retain.
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.retained, 1);
        let ab_new = reach(&new, (a, 9), (b, 9));
        assert!(cache.get(ab_new.fingerprint(), &ab_new).is_some());
    }

    /// Removing a device shifts indices: every entry for that model goes.
    #[test]
    fn sweep_device_removal_evicts_the_model() {
        let old = rzen_net::gen::spine_leaf(2, 3);
        let mut new = old.clone();
        new.devices.remove(0);
        let steps = [DeltaStep {
            pre: old.clone(),
            touch: Touch::DeviceRemoved,
        }];
        let mut cache = ResultCache::new();
        insert_q(&mut cache, &reach(&old, (2, 99), (3, 99)));
        insert_q(&mut cache, &reach(&old, (2, 99), (4, 99)));
        let stats = cache.sweep_delta(&old, &new, &steps);
        assert_eq!(stats.evicted, 2);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn insert_overwrites_same_query() {
        let q = acl_query(1);
        let fp = q.fingerprint();
        let mut cache = ResultCache::new();
        cache.insert(fp, &q, Verdict::Unsat);
        cache.insert(fp, &q, Verdict::Unsat);
        assert_eq!(cache.get(fp, &q), Some(&Verdict::Unsat));
        assert_eq!(cache.map[&fp].len(), 1);
    }
}
