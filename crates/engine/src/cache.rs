//! The result cache, keyed on the full [`Query`].
//!
//! The fingerprint is a 64-bit FNV-1a hash — fast to compare and stable,
//! but *not* collision-free, so it only selects a bucket. Within a bucket
//! the stored queries are compared structurally (`Query: Eq`); a colliding
//! fingerprint therefore costs one extra comparison instead of silently
//! serving another query's verdict (and witness).

use std::collections::HashMap;

use crate::query::{Query, Verdict};

/// Verdicts of decisive queries, keyed by full query with the structural
/// fingerprint as the hash.
#[derive(Debug, Default)]
pub(crate) struct ResultCache {
    map: HashMap<u64, Vec<(Query, Verdict)>>,
}

impl ResultCache {
    pub(crate) fn new() -> ResultCache {
        ResultCache::default()
    }

    /// The cached verdict for `query`, if this exact query was decided
    /// before. `fingerprint` must be `query.fingerprint()` (passed in so
    /// callers hash once); a bucket match alone is never enough.
    pub(crate) fn get(&self, fingerprint: u64, query: &Query) -> Option<&Verdict> {
        self.map
            .get(&fingerprint)?
            .iter()
            .find(|(q, _)| q == query)
            .map(|(_, v)| v)
    }

    /// Drop every cached verdict (model hot-swap, tests).
    pub(crate) fn clear(&mut self) {
        self.map.clear();
    }

    /// Record a verdict for `query`.
    pub(crate) fn insert(&mut self, fingerprint: u64, query: &Query, verdict: Verdict) {
        let bucket = self.map.entry(fingerprint).or_default();
        match bucket.iter_mut().find(|(q, _)| q == query) {
            Some(slot) => slot.1 = verdict,
            None => bucket.push((query.clone(), verdict)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acl_query(target_line: u16) -> Query {
        Query::AclFind {
            acl: rzen_net::gen::random_acl(4, 7),
            target_line,
        }
    }

    /// Regression: two *different* queries forced into the same 64-bit
    /// fingerprint must not serve each other's verdicts. (A genuine FNV-1a
    /// collision is infeasible to construct, so the collision is forced by
    /// inserting under the same key — exactly what a collision looks like
    /// to the cache.)
    #[test]
    fn forced_fingerprint_collision_does_not_cross_serve() {
        let colliding = 0xdead_beef_u64;
        let (a, b, c) = (acl_query(1), acl_query(2), acl_query(3));
        let mut cache = ResultCache::new();
        cache.insert(colliding, &a, Verdict::Unsat);
        cache.insert(
            colliding,
            &b,
            Verdict::Sat(crate::Witness::Header(rzen_net::headers::Header::new(
                1, 2, 3, 4, 5,
            ))),
        );

        assert_eq!(cache.get(colliding, &a), Some(&Verdict::Unsat));
        assert!(matches!(cache.get(colliding, &b), Some(&Verdict::Sat(_))));
        // The old u64-keyed cache returned *something* here; now a query
        // that merely collides must miss.
        assert_eq!(cache.get(colliding, &c), None);
    }

    #[test]
    fn insert_overwrites_same_query() {
        let q = acl_query(1);
        let fp = q.fingerprint();
        let mut cache = ResultCache::new();
        cache.insert(fp, &q, Verdict::Unsat);
        cache.insert(fp, &q, Verdict::Unsat);
        assert_eq!(cache.get(fp, &q), Some(&Verdict::Unsat));
        assert_eq!(cache.map[&fp].len(), 1);
    }
}
