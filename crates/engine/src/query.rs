//! Queries as plain data.
//!
//! A [`Query`] carries only `Send + Clone + Hash` model data — ACLs, route
//! maps, topologies — never `Zen<T>` handles, which are indices into a
//! thread-local arena and cannot cross threads. Each worker rebuilds the
//! symbolic model from the data in its own context, which is cheap next to
//! solving and is what makes the batch engine embarrassingly parallel.

use std::hash::{Hash, Hasher};

use rzen::{Budget, FindOptions, FindOutcome, Zen, ZenFunction};
use rzen_net::acl::Acl;
use rzen_net::device::forward_along;
use rzen_net::headers::{Header, Packet};
use rzen_net::routing::{Announcement, RouteMap};
use rzen_net::topology::Network;

/// Which solver pipeline(s) the engine runs for each query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryBackend {
    /// BDD backend only.
    Bdd,
    /// SAT/SMT backend only.
    Smt,
    /// Race both; first decisive verdict wins and cancels the other.
    Portfolio,
}

/// A verification query, as data. Variants mirror the paper's headline
/// analyses: ACL line reachability and route-map clause reachability
/// (Fig. 10), and packet reachability / drop search over a topology
/// (Figs. 6–7).
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub enum Query {
    /// Find a header that is decided by ACL rule `target_line` (1-based;
    /// 0 = no rule matches). Unsat means the line is shadowed.
    AclFind {
        /// The access control list.
        acl: Acl,
        /// The rule line to hit.
        target_line: u16,
    },
    /// Find an announcement decided by route-map clause `target_clause`
    /// (1-based; 0 = falls off the end).
    RouteMapFind {
        /// The route map.
        map: RouteMap,
        /// The clause to hit.
        target_clause: u16,
        /// Symbolic list bound for communities / AS paths.
        list_bound: u16,
    },
    /// Find a packet delivered from `src` to `dst` along **some** simple
    /// path of the network ((device index, interface id) pairs).
    Reach {
        /// The network.
        net: Network,
        /// Entry (device, interface).
        src: (usize, u8),
        /// Exit (device, interface).
        dst: (usize, u8),
    },
    /// Find a packet dropped on **every** simple path from `src` to `dst`.
    /// Unsat means the pair has full any-path delivery.
    Drops {
        /// The network.
        net: Network,
        /// Entry (device, interface).
        src: (usize, u8),
        /// Exit (device, interface).
        dst: (usize, u8),
    },
}

/// A satisfying witness, concrete and checkable against the reference
/// semantics.
#[derive(Clone, Debug, PartialEq)]
pub enum Witness {
    /// Header hitting the target ACL line.
    Header(Header),
    /// Announcement hitting the target route-map clause.
    Announcement(Box<Announcement>),
    /// Packet delivered (Reach) or universally dropped (Drops).
    Packet(Packet),
}

/// The engine's final answer for one query.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// Satisfiable, with a witness.
    Sat(Witness),
    /// Proven unsatisfiable.
    Unsat,
    /// The wall-clock budget expired before a verdict.
    Timeout,
    /// Cancelled (portfolio loser, or an explicit cancel) before a
    /// verdict; the deadline had not passed.
    Cancelled,
    /// The query panicked inside a worker (an invariant violation in the
    /// model or a backend bug). Never cached; carries the panic message.
    Error(String),
}

impl Verdict {
    /// Is this a decisive (`Sat`/`Unsat`) verdict? Only decisive verdicts
    /// enter the result cache.
    pub fn is_decisive(&self) -> bool {
        matches!(self, Verdict::Sat(_) | Verdict::Unsat)
    }

    /// Classify for the flight recorder (drops the witness / message).
    pub fn class(&self) -> rzen_obs::VerdictClass {
        match self {
            Verdict::Sat(_) => rzen_obs::VerdictClass::Sat,
            Verdict::Unsat => rzen_obs::VerdictClass::Unsat,
            Verdict::Timeout => rzen_obs::VerdictClass::Timeout,
            Verdict::Cancelled => rzen_obs::VerdictClass::Cancelled,
            Verdict::Error(_) => rzen_obs::VerdictClass::Error,
        }
    }
}

/// Raw result of running one backend on one query.
#[derive(Clone, Debug)]
pub(crate) struct RunOutput {
    pub outcome: FindOutcome<Witness>,
    pub sat_stats: Option<rzen_sat::Stats>,
    pub bdd_stats: Option<rzen_bdd::BddStats>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over the structural hash stream of the query. Stable across
/// runs within a build (it never hashes addresses or ambient state), so
/// identical queries — however they were constructed — share a cache slot.
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// How a query executes: a throwaway context per query, or through a
/// long-lived per-worker [`rzen::SolverSession`].
pub(crate) enum RunMode<'s> {
    /// Reset the thread-local context and solve with a fresh backend.
    Fresh(rzen::Backend),
    /// Solve through the session, keeping the context (and therefore the
    /// hash-consed `ExprId`s the session's caches key on) intact.
    Session(&'s mut rzen::SolverSession),
}

impl Query {
    /// Structural fingerprint used as the result-cache hash.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a(FNV_OFFSET);
        self.hash(&mut h);
        h.finish()
    }

    /// Fingerprint of the *model* part only (ACL / route map / network),
    /// ignoring the target line/clause or src/dst pair. Queries sharing a
    /// model fingerprint share most of their circuit, so the engine's
    /// affinity dispatch routes them to the same worker session.
    pub fn model_fingerprint(&self) -> u64 {
        let mut h = Fnv1a(FNV_OFFSET);
        match self {
            Query::AclFind { acl, .. } => {
                0u8.hash(&mut h);
                acl.hash(&mut h);
            }
            Query::RouteMapFind {
                map, list_bound, ..
            } => {
                1u8.hash(&mut h);
                map.hash(&mut h);
                list_bound.hash(&mut h);
            }
            // Reach and Drops over the same topology share the forwarding
            // encoding; hash only the network.
            Query::Reach { net, .. } | Query::Drops { net, .. } => {
                2u8.hash(&mut h);
                net.hash(&mut h);
            }
        }
        h.finish()
    }

    /// Run one backend on the calling thread, rebuilding the model in the
    /// thread-local context. The context is reset first, so call this only
    /// from a thread with no live `Zen` handles (the engine's workers).
    pub(crate) fn run_backend(&self, backend: rzen::Backend, budget: &Budget) -> RunOutput {
        rzen::reset_ctx();
        self.run_with(RunMode::Fresh(backend), budget)
    }

    /// Run through a long-lived session. The context is **not** reset —
    /// the session's bitblast cache and symbolic inputs are keyed by the
    /// current arena's `ExprId`s.
    pub(crate) fn run_in_session(
        &self,
        session: &mut rzen::SolverSession,
        budget: &Budget,
    ) -> RunOutput {
        self.run_with(RunMode::Session(session), budget)
    }

    fn run_with(&self, mode: RunMode<'_>, budget: &Budget) -> RunOutput {
        match self {
            Query::AclFind { acl, target_line } => {
                let acl = acl.clone();
                let target = *target_line;
                let f = ZenFunction::new(move |h| acl.matched_line(h));
                let opts = FindOptions::default();
                let report = dispatch(&f, |_, line| line.eq(Zen::val(target)), opts, budget, mode);
                RunOutput {
                    outcome: map_outcome(report.outcome, Witness::Header),
                    sat_stats: report.sat_stats,
                    bdd_stats: report.bdd_stats,
                }
            }
            Query::RouteMapFind {
                map,
                target_clause,
                list_bound,
            } => {
                let map = map.clone();
                let target = *target_clause;
                let f = ZenFunction::new(move |a| map.matched_clause(a));
                let opts = FindOptions {
                    list_bound: *list_bound,
                    ..Default::default()
                };
                let report = dispatch(&f, |_, line| line.eq(Zen::val(target)), opts, budget, mode);
                RunOutput {
                    outcome: map_outcome(report.outcome, |a| Witness::Announcement(Box::new(a))),
                    sat_stats: report.sat_stats,
                    bdd_stats: report.bdd_stats,
                }
            }
            Query::Reach { net, src, dst } => {
                let paths = net.paths(src.0, src.1, dst.0, dst.1);
                if paths.is_empty() {
                    return RunOutput {
                        outcome: FindOutcome::Unsat,
                        sat_stats: None,
                        bdd_stats: None,
                    };
                }
                let f = ZenFunction::new(move |p: Zen<Packet>| {
                    paths.iter().fold(Zen::bool(false), |acc, path| {
                        acc.or(forward_along(path, p).is_some())
                    })
                });
                let opts = FindOptions::default();
                let report = dispatch(&f, |_, delivered| delivered, opts, budget, mode);
                RunOutput {
                    outcome: map_outcome(report.outcome, Witness::Packet),
                    sat_stats: report.sat_stats,
                    bdd_stats: report.bdd_stats,
                }
            }
            Query::Drops { net, src, dst } => {
                let paths = net.paths(src.0, src.1, dst.0, dst.1);
                if paths.is_empty() {
                    // No path at all: every packet is trivially dropped.
                    let h = Header::new(0, 0, 0, 0, 0);
                    return RunOutput {
                        outcome: FindOutcome::Found(Witness::Packet(Packet::plain(h))),
                        sat_stats: None,
                        bdd_stats: None,
                    };
                }
                let f = ZenFunction::new(move |p: Zen<Packet>| {
                    paths.iter().fold(Zen::bool(true), |acc, path| {
                        acc.and(forward_along(path, p).is_none())
                    })
                });
                let opts = FindOptions::default();
                let report = dispatch(&f, |_, dropped| dropped, opts, budget, mode);
                RunOutput {
                    outcome: map_outcome(report.outcome, Witness::Packet),
                    sat_stats: report.sat_stats,
                    bdd_stats: report.bdd_stats,
                }
            }
        }
    }

    /// Check a witness against the concrete reference semantics (exact
    /// simulation — no solver involved). Used by the differential tests to
    /// validate engine output independently of the backend that found it.
    pub fn check_witness(&self, w: &Witness) -> bool {
        match (self, w) {
            (Query::AclFind { acl, target_line }, Witness::Header(h)) => {
                acl.matched_line_concrete(h) == *target_line
            }
            (
                Query::RouteMapFind {
                    map, target_clause, ..
                },
                Witness::Announcement(a),
            ) => {
                let decided = map
                    .clauses
                    .iter()
                    .position(|c| c.matches_concrete(a))
                    .map(|i| i as u16 + 1)
                    .unwrap_or(0);
                decided == *target_clause
            }
            (Query::Reach { net, src, dst }, Witness::Packet(p)) => {
                let paths = net.paths(src.0, src.1, dst.0, dst.1);
                let p = p.clone();
                paths.iter().any(|path| {
                    let path = path.clone();
                    let f = ZenFunction::new(move |x| forward_along(&path, x));
                    f.evaluate(&p).is_some()
                })
            }
            (Query::Drops { net, src, dst }, Witness::Packet(p)) => {
                let paths = net.paths(src.0, src.1, dst.0, dst.1);
                let p = p.clone();
                paths.iter().all(|path| {
                    let path = path.clone();
                    let f = ZenFunction::new(move |x| forward_along(&path, x));
                    f.evaluate(&p).is_none()
                })
            }
            _ => false,
        }
    }

    /// Short label for progress and stats output.
    pub fn kind(&self) -> &'static str {
        match self {
            Query::AclFind { .. } => "acl-find",
            Query::RouteMapFind { .. } => "route-map-find",
            Query::Reach { .. } => "reach",
            Query::Drops { .. } => "drops",
        }
    }
}

/// Run one find either fresh (overriding the backend in `opts`) or
/// through the worker's session (which ignores `opts.backend`).
fn dispatch<A: rzen::ZenType, R: rzen::ZenType>(
    f: &ZenFunction<A, R>,
    pred: impl FnOnce(Zen<A>, Zen<R>) -> Zen<bool>,
    mut opts: FindOptions,
    budget: &Budget,
    mode: RunMode<'_>,
) -> rzen::FindReport<A> {
    match mode {
        RunMode::Fresh(backend) => {
            opts.backend = backend;
            f.find_budgeted(pred, &opts, budget)
        }
        RunMode::Session(session) => f.find_in_session(pred, &opts, budget, session),
    }
}

fn map_outcome<A>(o: FindOutcome<A>, f: impl FnOnce(A) -> Witness) -> FindOutcome<Witness> {
    match o {
        FindOutcome::Found(a) => FindOutcome::Found(f(a)),
        FindOutcome::Unsat => FindOutcome::Unsat,
        FindOutcome::Cancelled => FindOutcome::Cancelled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rzen_net::acl::AclRule;
    use rzen_net::ip::{ip, Prefix};

    fn acl() -> Acl {
        Acl {
            rules: vec![
                AclRule {
                    permit: false,
                    dst: Prefix::new(ip(10, 0, 0, 0), 8),
                    dst_ports: (22, 22),
                    ..AclRule::any(false)
                },
                AclRule::any(true),
            ],
        }
    }

    #[test]
    fn fingerprint_is_structural() {
        let a = Query::AclFind {
            acl: acl(),
            target_line: 2,
        };
        let b = Query::AclFind {
            acl: acl(),
            target_line: 2,
        };
        let c = Query::AclFind {
            acl: acl(),
            target_line: 1,
        };
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn acl_find_witness_checks_out() {
        let q = Query::AclFind {
            acl: acl(),
            target_line: 1,
        };
        let out = q.run_backend(rzen::Backend::Bdd, &Budget::unlimited());
        let FindOutcome::Found(w) = out.outcome else {
            panic!("line 1 is reachable");
        };
        assert!(q.check_witness(&w));
        assert!(out.bdd_stats.is_some());
        assert!(out.sat_stats.is_none());
    }
}
