//! Per-query results and batch-level aggregation, with a printable
//! summary table.

use std::fmt;
use std::time::Duration;

use rzen::Backend;

use crate::query::Verdict;

/// The engine's answer for one query, with provenance and timing.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Position in the input batch.
    pub index: usize,
    /// Query kind label (e.g. `"reach"`).
    pub kind: &'static str,
    /// The verdict.
    pub verdict: Verdict,
    /// Wall-clock time this query took inside the engine (near zero for
    /// cache hits).
    pub latency: Duration,
    /// The backend that produced the verdict (`None` for cache hits and
    /// undecided queries).
    pub winner: Option<Backend>,
    /// Served from the structural-fingerprint cache.
    pub cache_hit: bool,
    /// CDCL counters from the SMT run, if one ran.
    pub sat_stats: Option<rzen_sat::Stats>,
    /// BDD manager counters from the BDD run, if one ran.
    pub bdd_stats: Option<rzen_bdd::BddStats>,
}

/// Everything [`crate::Engine::run_batch`] returns.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-query results, in input order.
    pub results: Vec<QueryResult>,
    /// Batch-level aggregation.
    pub stats: EngineStats,
}

/// Aggregated observability counters for a batch.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Total queries in the batch.
    pub total: usize,
    /// Verdict counts.
    pub sat: usize,
    /// Proven-unsat count.
    pub unsat: usize,
    /// Deadline expiries.
    pub timeout: usize,
    /// Explicit cancellations.
    pub cancelled: usize,
    /// Queries served from the result cache.
    pub cache_hits: usize,
    /// Queries decided by the BDD backend.
    pub bdd_wins: usize,
    /// Queries decided by the SAT backend.
    pub smt_wins: usize,
    /// Wall clock for the whole batch.
    pub wall: Duration,
    /// Median per-query latency.
    pub latency_p50: Duration,
    /// 95th-percentile per-query latency.
    pub latency_p95: Duration,
    /// Slowest query.
    pub latency_max: Duration,
    /// Summed CDCL conflicts across all SMT runs.
    pub sat_conflicts: u64,
    /// Summed CDCL propagations.
    pub sat_propagations: u64,
    /// Summed learnt clauses.
    pub sat_learned: u64,
    /// Summed restarts.
    pub sat_restarts: u64,
    /// Summed BDD nodes allocated across all BDD runs.
    pub bdd_nodes: u64,
    /// Summed computed-cache lookups.
    pub bdd_cache_lookups: u64,
    /// Summed computed-cache hits.
    pub bdd_cache_hits: u64,
}

impl EngineStats {
    /// Fold per-query results into batch counters.
    pub fn aggregate(results: &[QueryResult], wall: Duration) -> EngineStats {
        let mut s = EngineStats {
            total: results.len(),
            wall,
            ..EngineStats::default()
        };
        let mut latencies: Vec<Duration> = Vec::with_capacity(results.len());
        for r in results {
            match &r.verdict {
                Verdict::Sat(_) => s.sat += 1,
                Verdict::Unsat => s.unsat += 1,
                Verdict::Timeout => s.timeout += 1,
                Verdict::Cancelled => s.cancelled += 1,
            }
            if r.cache_hit {
                s.cache_hits += 1;
            }
            match r.winner {
                Some(Backend::Bdd) => s.bdd_wins += 1,
                Some(Backend::Smt) => s.smt_wins += 1,
                None => {}
            }
            if let Some(st) = r.sat_stats {
                s.sat_conflicts += st.conflicts;
                s.sat_propagations += st.propagations;
                s.sat_learned += st.learned_clauses;
                s.sat_restarts += st.restarts;
            }
            if let Some(st) = r.bdd_stats {
                s.bdd_nodes += st.nodes as u64;
                s.bdd_cache_lookups += st.cache_lookups;
                s.bdd_cache_hits += st.cache_hits;
            }
            latencies.push(r.latency);
        }
        latencies.sort();
        if !latencies.is_empty() {
            let n = latencies.len();
            s.latency_p50 = latencies[n / 2];
            s.latency_p95 = latencies[(n * 95 / 100).min(n - 1)];
            s.latency_max = latencies[n - 1];
        }
        s
    }

    /// Cache hit rate over the batch, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.total as f64
        }
    }

    /// Aggregate BDD computed-cache hit rate, in `[0, 1]`.
    pub fn bdd_cache_hit_rate(&self) -> f64 {
        if self.bdd_cache_lookups == 0 {
            0.0
        } else {
            self.bdd_cache_hits as f64 / self.bdd_cache_lookups as f64
        }
    }
}

fn fmt_dur(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "engine summary")?;
        writeln!(
            f,
            "  queries      {:>8}   wall {:>10}",
            self.total,
            fmt_dur(self.wall)
        )?;
        writeln!(
            f,
            "  verdicts     sat {} / unsat {} / timeout {} / cancelled {}",
            self.sat, self.unsat, self.timeout, self.cancelled
        )?;
        writeln!(
            f,
            "  latency      p50 {:>10}   p95 {:>10}   max {:>10}",
            fmt_dur(self.latency_p50),
            fmt_dur(self.latency_p95),
            fmt_dur(self.latency_max)
        )?;
        writeln!(
            f,
            "  backend wins bdd {} / smt {}",
            self.bdd_wins, self.smt_wins
        )?;
        writeln!(
            f,
            "  cache        {} hits / {} queries ({:.0}%)",
            self.cache_hits,
            self.total,
            self.cache_hit_rate() * 100.0
        )?;
        writeln!(
            f,
            "  sat substrate  conflicts {} / props {} / learned {} / restarts {}",
            self.sat_conflicts, self.sat_propagations, self.sat_learned, self.sat_restarts
        )?;
        write!(
            f,
            "  bdd substrate  nodes {} / computed-cache hit rate {:.0}%",
            self.bdd_nodes,
            self.bdd_cache_hit_rate() * 100.0
        )
    }
}
