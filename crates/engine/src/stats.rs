//! Per-query results and batch-level aggregation, with a printable
//! summary table.

use std::fmt;
use std::time::Duration;

use rzen::Backend;

use crate::query::Verdict;

/// The engine's answer for one query, with provenance and timing.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Position in the input batch.
    pub index: usize,
    /// Query kind label (e.g. `"reach"`).
    pub kind: &'static str,
    /// The verdict.
    pub verdict: Verdict,
    /// Wall-clock time this query took inside the engine (near zero for
    /// cache hits).
    pub latency: Duration,
    /// The backend that produced the verdict (`None` for cache hits and
    /// undecided queries).
    pub winner: Option<Backend>,
    /// Served from the structural-fingerprint cache.
    pub cache_hit: bool,
    /// CDCL counters from the SMT run, if one ran.
    pub sat_stats: Option<rzen_sat::Stats>,
    /// BDD manager counters from the BDD run, if one ran.
    pub bdd_stats: Option<rzen_bdd::BddStats>,
    /// Session reuse counters for this query (session mode only).
    pub session: Option<rzen::SessionStats>,
}

impl QueryResult {
    /// Classify which backend answered, for the flight recorder: cache
    /// hits trump the (absent) winner, undecided queries map to `None`.
    pub fn backend_class(&self) -> rzen_obs::BackendClass {
        if self.cache_hit {
            return rzen_obs::BackendClass::Cache;
        }
        match self.winner {
            Some(Backend::Bdd) => rzen_obs::BackendClass::Bdd,
            Some(Backend::Smt) => rzen_obs::BackendClass::Smt,
            None => rzen_obs::BackendClass::None,
        }
    }
}

/// Everything [`crate::Engine::run_batch`] returns.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-query results, in input order.
    pub results: Vec<QueryResult>,
    /// Batch-level aggregation.
    pub stats: EngineStats,
}

impl BatchReport {
    /// Serialize the full report as a JSON object: per-query results (in
    /// input order), the batch-level aggregation, and a snapshot of the
    /// global `rzen-obs` metrics registry. The output is self-contained
    /// machine-readable JSON — no serde in this tree, so it is written by
    /// hand and covered by the `rzen-obs` JSON validator in tests.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"results\":[");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let verdict = match &r.verdict {
                Verdict::Sat(_) => "sat",
                Verdict::Unsat => "unsat",
                Verdict::Timeout => "timeout",
                Verdict::Cancelled => "cancelled",
                Verdict::Error(_) => "error",
            };
            let winner = match r.winner {
                Some(Backend::Bdd) => "\"bdd\"",
                Some(Backend::Smt) => "\"smt\"",
                None => "null",
            };
            out.push_str(&format!(
                "{{\"index\":{},\"kind\":\"{}\",\"verdict\":\"{}\",\"latency_us\":{},\"winner\":{},\"cache_hit\":{}}}",
                r.index,
                rzen_obs::json::escape(r.kind),
                verdict,
                r.latency.as_micros(),
                winner,
                r.cache_hit,
            ));
        }
        out.push_str("],\"stats\":{");
        let s = &self.stats;
        out.push_str(&format!(
            "\"total\":{},\"sat\":{},\"unsat\":{},\"timeout\":{},\"cancelled\":{},\"errors\":{},\
             \"cache_hits\":{},\"bdd_wins\":{},\"smt_wins\":{},\"wall_us\":{},\
             \"latency_p50_us\":{},\"latency_p95_us\":{},\"latency_max_us\":{},\
             \"sat_conflicts\":{},\"sat_propagations\":{},\"sat_learned\":{},\"sat_restarts\":{},\
             \"sat_deleted\":{},\"sat_gcs\":{},\"sat_lbd_sum\":{},\
             \"bdd_nodes\":{},\"bdd_cache_lookups\":{},\"bdd_cache_hits\":{},\
             \"session_bitblast_hits\":{},\"session_sat_carried\":{},\"session_bdd_reused\":{}",
            s.total,
            s.sat,
            s.unsat,
            s.timeout,
            s.cancelled,
            s.errors,
            s.cache_hits,
            s.bdd_wins,
            s.smt_wins,
            s.wall.as_micros(),
            s.latency_p50.as_micros(),
            s.latency_p95.as_micros(),
            s.latency_max.as_micros(),
            s.sat_conflicts,
            s.sat_propagations,
            s.sat_learned,
            s.sat_restarts,
            s.sat_deleted,
            s.sat_gcs,
            s.sat_lbd_sum,
            s.bdd_nodes,
            s.bdd_cache_lookups,
            s.bdd_cache_hits,
            s.session_bitblast_hits,
            s.session_sat_carried,
            s.session_bdd_reused,
        ));
        out.push_str("},\"metrics\":");
        out.push_str(&rzen_obs::metrics::registry().render_json());
        out.push('}');
        out
    }
}

/// Aggregated observability counters for a batch.
#[derive(Clone, Debug, Default)]
pub struct EngineStats {
    /// Total queries in the batch.
    pub total: usize,
    /// Verdict counts.
    pub sat: usize,
    /// Proven-unsat count.
    pub unsat: usize,
    /// Deadline expiries.
    pub timeout: usize,
    /// Explicit cancellations.
    pub cancelled: usize,
    /// Queries that panicked inside a worker.
    pub errors: usize,
    /// Queries served from the result cache.
    pub cache_hits: usize,
    /// Queries decided by the BDD backend.
    pub bdd_wins: usize,
    /// Queries decided by the SAT backend.
    pub smt_wins: usize,
    /// Wall clock for the whole batch.
    pub wall: Duration,
    /// Median per-query latency.
    pub latency_p50: Duration,
    /// 95th-percentile per-query latency.
    pub latency_p95: Duration,
    /// Slowest query.
    pub latency_max: Duration,
    /// Summed CDCL conflicts across all SMT runs.
    pub sat_conflicts: u64,
    /// Summed CDCL propagations.
    pub sat_propagations: u64,
    /// Summed learnt clauses.
    pub sat_learned: u64,
    /// Summed restarts.
    pub sat_restarts: u64,
    /// Summed learnt clauses deleted by reduction/simplification.
    pub sat_deleted: u64,
    /// Summed clause-arena garbage collections.
    pub sat_gcs: u64,
    /// Summed LBD (glue) of learnt clauses; `/ sat_learned` is the
    /// average glue across the batch.
    pub sat_lbd_sum: u64,
    /// Summed BDD nodes allocated across all BDD runs.
    pub bdd_nodes: u64,
    /// Summed computed-cache lookups.
    pub bdd_cache_lookups: u64,
    /// Summed computed-cache hits.
    pub bdd_cache_hits: u64,
    /// Bitblast-cache lookups served across queries (session mode).
    pub session_bitblast_hits: u64,
    /// Learnt clauses carried into queries (session mode).
    pub session_sat_carried: u64,
    /// BDD nodes alive at query start, summed (session mode).
    pub session_bdd_reused: u64,
}

impl EngineStats {
    /// Fold per-query results into batch counters.
    pub fn aggregate(results: &[QueryResult], wall: Duration) -> EngineStats {
        let mut s = EngineStats {
            total: results.len(),
            wall,
            ..EngineStats::default()
        };
        let mut latencies: Vec<Duration> = Vec::with_capacity(results.len());
        for r in results {
            match &r.verdict {
                Verdict::Sat(_) => s.sat += 1,
                Verdict::Unsat => s.unsat += 1,
                Verdict::Timeout => s.timeout += 1,
                Verdict::Cancelled => s.cancelled += 1,
                Verdict::Error(_) => s.errors += 1,
            }
            if r.cache_hit {
                s.cache_hits += 1;
            }
            match r.winner {
                Some(Backend::Bdd) => s.bdd_wins += 1,
                Some(Backend::Smt) => s.smt_wins += 1,
                None => {}
            }
            if let Some(st) = r.sat_stats {
                s.sat_conflicts += st.conflicts;
                s.sat_propagations += st.propagations;
                s.sat_learned += st.learned_clauses;
                s.sat_restarts += st.restarts;
                s.sat_deleted += st.deleted_clauses;
                s.sat_gcs += st.gcs;
                s.sat_lbd_sum += st.lbd_sum;
            }
            if let Some(st) = r.bdd_stats {
                s.bdd_nodes += st.nodes as u64;
                s.bdd_cache_lookups += st.cache_lookups;
                s.bdd_cache_hits += st.cache_hits;
            }
            if let Some(st) = r.session {
                s.session_bitblast_hits += st.bitblast_hits;
                s.session_sat_carried += st.sat_clauses_carried;
                s.session_bdd_reused += st.bdd_nodes_reused;
            }
            latencies.push(r.latency);
        }
        latencies.sort();
        s.latency_p50 = percentile(&latencies, 50);
        s.latency_p95 = percentile(&latencies, 95);
        s.latency_max = latencies.last().copied().unwrap_or(Duration::ZERO);
        s
    }

    /// Nearest-rank percentile over the batch's latencies: the value at
    /// rank `⌈p/100·n⌉` of the sorted list. Well-defined for every batch
    /// size — an empty batch reports zero, and a single sample is every
    /// percentile of itself.
    pub fn latency_percentile(results: &[QueryResult], p: u32) -> Duration {
        let mut latencies: Vec<Duration> = results.iter().map(|r| r.latency).collect();
        latencies.sort();
        percentile(&latencies, p)
    }

    /// Cache hit rate over the batch, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.total as f64
        }
    }

    /// Aggregate BDD computed-cache hit rate, in `[0, 1]`.
    pub fn bdd_cache_hit_rate(&self) -> f64 {
        if self.bdd_cache_lookups == 0 {
            0.0
        } else {
            self.bdd_cache_hits as f64 / self.bdd_cache_lookups as f64
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted list. Empty input is
/// zero; a single sample answers every percentile. Never panics, never
/// divides by zero.
fn percentile(sorted: &[Duration], p: u32) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (sorted.len() * p as usize).div_ceil(100).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

fn fmt_dur(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "engine summary")?;
        writeln!(
            f,
            "  queries      {:>8}   wall {:>10}",
            self.total,
            fmt_dur(self.wall)
        )?;
        writeln!(
            f,
            "  verdicts     sat {} / unsat {} / timeout {} / cancelled {} / errors {}",
            self.sat, self.unsat, self.timeout, self.cancelled, self.errors
        )?;
        writeln!(
            f,
            "  latency      p50 {:>10}   p95 {:>10}   max {:>10}",
            fmt_dur(self.latency_p50),
            fmt_dur(self.latency_p95),
            fmt_dur(self.latency_max)
        )?;
        writeln!(
            f,
            "  backend wins bdd {} / smt {}",
            self.bdd_wins, self.smt_wins
        )?;
        writeln!(
            f,
            "  cache        {} hits / {} queries ({:.0}%)",
            self.cache_hits,
            self.total,
            self.cache_hit_rate() * 100.0
        )?;
        writeln!(
            f,
            "  sat substrate  conflicts {} / props {} / learned {} / restarts {}",
            self.sat_conflicts, self.sat_propagations, self.sat_learned, self.sat_restarts
        )?;
        writeln!(
            f,
            "  sat clause db  deleted {} / gcs {} / avg glue {:.1}",
            self.sat_deleted,
            self.sat_gcs,
            if self.sat_learned == 0 {
                0.0
            } else {
                self.sat_lbd_sum as f64 / self.sat_learned as f64
            }
        )?;
        write!(
            f,
            "  bdd substrate  nodes {} / computed-cache hit rate {:.0}%",
            self.bdd_nodes,
            self.bdd_cache_hit_rate() * 100.0
        )?;
        if self.session_bitblast_hits + self.session_sat_carried + self.session_bdd_reused > 0 {
            write!(
                f,
                "\n  session reuse  bitblast hits {} / sat clauses carried {} / bdd nodes kept {}",
                self.session_bitblast_hits, self.session_sat_carried, self.session_bdd_reused
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(index: usize, latency_ms: u64) -> QueryResult {
        QueryResult {
            index,
            kind: "reach",
            verdict: Verdict::Unsat,
            latency: Duration::from_millis(latency_ms),
            winner: Some(Backend::Bdd),
            cache_hit: false,
            sat_stats: None,
            bdd_stats: None,
            session: None,
        }
    }

    #[test]
    fn aggregate_empty_batch_is_well_defined() {
        let s = EngineStats::aggregate(&[], Duration::from_millis(1));
        assert_eq!(s.total, 0);
        assert_eq!(s.latency_p50, Duration::ZERO);
        assert_eq!(s.latency_p95, Duration::ZERO);
        assert_eq!(s.latency_max, Duration::ZERO);
        // The derived rates must be numbers, not NaN.
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert_eq!(s.bdd_cache_hit_rate(), 0.0);
    }

    #[test]
    fn aggregate_single_result_is_every_percentile() {
        let r = [result(0, 7)];
        let s = EngineStats::aggregate(&r, Duration::from_millis(8));
        assert_eq!(s.latency_p50, Duration::from_millis(7));
        assert_eq!(s.latency_p95, Duration::from_millis(7));
        assert_eq!(s.latency_max, Duration::from_millis(7));
    }

    #[test]
    fn aggregate_percentiles_use_nearest_rank() {
        // 1ms..=100ms: nearest-rank p50 is the 50th sample, p95 the 95th.
        let rs: Vec<QueryResult> = (1..=100).map(|ms| result(ms as usize, ms)).collect();
        let s = EngineStats::aggregate(&rs, Duration::from_secs(1));
        assert_eq!(s.latency_p50, Duration::from_millis(50));
        assert_eq!(s.latency_p95, Duration::from_millis(95));
        assert_eq!(s.latency_max, Duration::from_millis(100));
    }

    #[test]
    fn aggregate_two_results_percentiles_in_range() {
        let rs = [result(0, 2), result(1, 10)];
        let s = EngineStats::aggregate(&rs, Duration::from_millis(12));
        assert_eq!(s.latency_p50, Duration::from_millis(2));
        assert_eq!(s.latency_p95, Duration::from_millis(10));
        assert_eq!(s.latency_max, Duration::from_millis(10));
    }

    #[test]
    fn batch_report_json_is_valid() {
        let results = vec![result(0, 3), result(1, 5)];
        let stats = EngineStats::aggregate(&results, Duration::from_millis(9));
        let report = BatchReport { results, stats };
        let json = report.to_json();
        rzen_obs::json::validate(&json).expect("report JSON must parse");
        assert!(json.contains("\"latency_p50_us\":3000"));
        assert!(json.contains("\"verdict\":\"unsat\""));
    }
}
