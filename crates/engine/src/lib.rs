//! # rzen-engine — batched verification query engine
//!
//! Runs many verification queries over a worker pool, racing the BDD and
//! SAT pipelines per query (a backend *portfolio*) with cooperative
//! cancellation, a structural result cache, and per-batch observability.
//!
//! ## Queries as data
//!
//! `Zen<T>` handles index a thread-local arena and cannot cross threads,
//! so the engine's unit of work — [`Query`] — carries only plain model
//! data (`Send + Clone + Hash`). Each worker rebuilds the symbolic model
//! in its own context per query, which costs microseconds against solve
//! times in the milliseconds and keeps the workers fully independent.
//!
//! ## Portfolio + cancellation
//!
//! With [`QueryBackend::Portfolio`], each query runs both backends on two
//! threads sharing one [`rzen::Budget`]. The first decisive verdict raises
//! the budget's flag; the other solver observes it at its next poll point
//! (BDD: the hash-consing choke point; SAT: conflict/decision boundaries)
//! and unwinds. A wall-clock timeout uses the same mechanism and degrades
//! the single query to [`Verdict::Timeout`] without wedging the batch.
//!
//! ## Caching
//!
//! Results are keyed by the full query, hashed under a stable FNV-1a
//! fingerprint of its structure (the fingerprint selects the bucket; the
//! query itself is compared structurally, so hash collisions cannot serve
//! a wrong verdict). Only decisive verdicts are cached — a `Timeout` is a
//! fact about the budget, not the query, and a `Verdict::Error` records a
//! worker panic.
//!
//! ## Sessions
//!
//! With `EngineConfig { sessions: true, .. }` each worker keeps long-lived
//! solver state — one incremental SAT solver, one BDD manager, and a
//! cross-query bitblast cache — and the batch is partitioned by *model
//! fingerprint* so queries over the same ACL/route-map/topology land on
//! the same worker and reuse each other's work. See [`rzen::session`].
//!
//! ## Example
//!
//! ```
//! use rzen_engine::{Engine, EngineConfig, Query, QueryBackend, Verdict};
//! use rzen_net::acl::{Acl, AclRule};
//!
//! let acl = Acl { rules: vec![AclRule::any(true), AclRule::any(false)] };
//! let queries = vec![
//!     Query::AclFind { acl: acl.clone(), target_line: 1 },
//!     Query::AclFind { acl, target_line: 2 }, // shadowed -> Unsat
//! ];
//! let engine = Engine::new(EngineConfig { jobs: 2, ..Default::default() });
//! let report = engine.run_batch(&queries);
//! assert!(matches!(report.results[0].verdict, Verdict::Sat(_)));
//! assert!(matches!(report.results[1].verdict, Verdict::Unsat));
//! println!("{}", report.stats);
//! ```

mod cache;
mod engine;
mod inflight;
mod query;
mod stats;

pub use cache::DeltaCacheStats;
pub use engine::{CachePending, Engine, EngineConfig, EngineShard, ServeWorker};
pub use inflight::{Admission, JoinHandle, Joined, LeadGuard};
pub use query::{Query, QueryBackend, Verdict, Witness};
pub use stats::{BatchReport, EngineStats, QueryResult};
