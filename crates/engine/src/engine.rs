//! The batch engine: a worker pool over queries, a backend portfolio per
//! query, and a structural-fingerprint result cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use rzen::{Backend, Budget, FindOutcome};

use crate::query::{Query, QueryBackend, RunOutput, Verdict};
use crate::stats::{BatchReport, EngineStats, QueryResult};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads for the batch (each query runs on one worker;
    /// portfolio adds its own two solver threads per query).
    pub jobs: usize,
    /// Backend selection per query.
    pub backend: QueryBackend,
    /// Per-query wall-clock budget; `None` = unlimited.
    pub timeout: Option<Duration>,
    /// Enable the structural-fingerprint result cache.
    pub cache: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 1,
            backend: QueryBackend::Portfolio,
            timeout: None,
            cache: true,
        }
    }
}

/// The batch verification engine. Construct once, [`Engine::run_batch`]
/// any number of times; the result cache persists across batches.
pub struct Engine {
    cfg: EngineConfig,
    cache: Mutex<HashMap<u64, Verdict>>,
}

impl Engine {
    /// Create an engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine {
            cfg,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Solve every query, distributing them over `jobs` workers. Results
    /// come back in input order regardless of completion order. Queries
    /// always run on spawned workers — never on the calling thread — so
    /// the caller's thread-local `Zen` context is left untouched.
    pub fn run_batch(&self, queries: &[Query]) -> BatchReport {
        let started = Instant::now();
        let _span = rzen_obs::span!("engine.batch", "queries" => queries.len() as u64, "jobs" => self.cfg.jobs as u64);
        let n = queries.len();
        let slots: Vec<Mutex<Option<QueryResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.cfg.jobs.max(1).min(n.max(1));

        thread::scope(|s| {
            let next = &next;
            let slots = &slots;
            for w in 0..workers {
                s.spawn(move || {
                    let _span = rzen_obs::span!("engine.worker", "worker" => w as u64);
                    loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= n {
                            break;
                        }
                        let result = self.solve_one(i, &queries[i]);
                        *slots[i].lock().unwrap() = Some(result);
                    }
                });
            }
        });

        let results: Vec<QueryResult> = slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("worker filled every slot"))
            .collect();
        let stats = EngineStats::aggregate(&results, started.elapsed());
        BatchReport { results, stats }
    }

    fn solve_one(&self, index: usize, query: &Query) -> QueryResult {
        let started = Instant::now();
        let _span = rzen_obs::span!("engine.query", "index" => index as u64);
        rzen_obs::counter!("engine.queries", "queries dispatched to workers").inc();
        let fingerprint = query.fingerprint();

        if self.cfg.cache {
            if let Some(v) = self.cache.lock().unwrap().get(&fingerprint) {
                rzen_obs::counter!("engine.cache.hits", "queries served from the result cache")
                    .inc();
                rzen_obs::trace::instant1("engine.cache.hit", "index", index as u64);
                return QueryResult {
                    index,
                    kind: query.kind(),
                    verdict: v.clone(),
                    latency: started.elapsed(),
                    winner: None,
                    cache_hit: true,
                    sat_stats: None,
                    bdd_stats: None,
                };
            }
        }

        let budget = match self.cfg.timeout {
            Some(t) => Budget::with_timeout(t),
            None => Budget::unlimited(),
        };

        let (outcome, winner, sat_stats, bdd_stats) = match self.cfg.backend {
            QueryBackend::Bdd => {
                let out = query.run_backend(Backend::Bdd, &budget);
                let w = decisive_winner(&out.outcome, Backend::Bdd);
                (out.outcome, w, out.sat_stats, out.bdd_stats)
            }
            QueryBackend::Smt => {
                let out = query.run_backend(Backend::Smt, &budget);
                let w = decisive_winner(&out.outcome, Backend::Smt);
                (out.outcome, w, out.sat_stats, out.bdd_stats)
            }
            QueryBackend::Portfolio => run_portfolio(query, &budget),
        };

        let verdict = match outcome {
            FindOutcome::Found(w) => Verdict::Sat(w),
            FindOutcome::Unsat => Verdict::Unsat,
            FindOutcome::Cancelled => {
                if budget.deadline_passed() {
                    Verdict::Timeout
                } else {
                    Verdict::Cancelled
                }
            }
        };

        if self.cfg.cache && verdict.is_decisive() {
            self.cache
                .lock()
                .unwrap()
                .insert(fingerprint, verdict.clone());
        }

        let latency = started.elapsed();
        rzen_obs::histogram!("engine.query_us", "per-query wall latency in microseconds")
            .observe(latency.as_micros() as u64);
        QueryResult {
            index,
            kind: query.kind(),
            verdict,
            latency,
            winner,
            cache_hit: false,
            sat_stats,
            bdd_stats,
        }
    }
}

fn decisive_winner(outcome: &FindOutcome<crate::Witness>, b: Backend) -> Option<Backend> {
    match outcome {
        FindOutcome::Cancelled => None,
        _ => Some(b),
    }
}

/// Race the two backends on cloned query data under one shared budget.
/// The first decisive verdict cancels the other solver; if neither is
/// decisive (deadline hit both), the query comes back `Cancelled` and the
/// caller maps it to `Timeout`/`Cancelled` by whether the deadline passed.
#[allow(clippy::type_complexity)]
fn run_portfolio(
    query: &Query,
    budget: &Budget,
) -> (
    FindOutcome<crate::Witness>,
    Option<Backend>,
    Option<rzen_sat::Stats>,
    Option<rzen_bdd::BddStats>,
) {
    let _span = rzen_obs::span!("engine.race");
    let (tx, rx) = mpsc::channel::<(Backend, RunOutput)>();
    thread::scope(|s| {
        for backend in [Backend::Bdd, Backend::Smt] {
            let tx = tx.clone();
            let budget = budget.clone();
            let query = query.clone();
            s.spawn(move || {
                let _span =
                    rzen_obs::span!("engine.backend", "bdd" => u64::from(backend == Backend::Bdd));
                let out = query.run_backend(backend, &budget);
                // The receiver may have already returned; a closed channel
                // just means the race was decided without us.
                let _ = tx.send((backend, out));
            });
        }
        drop(tx);

        let mut winner: Option<(Backend, RunOutput)> = None;
        let mut sat_stats = None;
        let mut bdd_stats = None;
        let mut last: Option<RunOutput> = None;
        for (backend, out) in rx.iter() {
            if out.sat_stats.is_some() {
                sat_stats = out.sat_stats;
            }
            if out.bdd_stats.is_some() {
                bdd_stats = out.bdd_stats;
            }
            if winner.is_none() && !matches!(out.outcome, FindOutcome::Cancelled) {
                // First decisive verdict wins; stop the other solver.
                budget.cancel();
                rzen_obs::trace::instant1(
                    "engine.race.decisive",
                    "bdd",
                    u64::from(backend == Backend::Bdd),
                );
                winner = Some((backend, out));
            } else {
                rzen_obs::trace::instant1(
                    "engine.race.loser",
                    "bdd",
                    u64::from(backend == Backend::Bdd),
                );
                last = Some(out);
            }
        }

        match winner {
            Some((backend, out)) => (out.outcome, Some(backend), sat_stats, bdd_stats),
            None => (
                last.map(|o| o.outcome).unwrap_or(FindOutcome::Cancelled),
                None,
                sat_stats,
                bdd_stats,
            ),
        }
    })
}
