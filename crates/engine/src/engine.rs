//! The batch engine: a worker pool over queries, a backend portfolio per
//! query, a full-query result cache, and (optionally) long-lived
//! per-worker solver sessions with fingerprint-affinity dispatch.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use rzen::{Backend, Budget, FindOutcome, SessionStats, SolverSession};

use crate::cache::{DeltaCacheStats, ResultCache};
use crate::inflight::{Admission, InflightTable};
use crate::query::{Query, QueryBackend, RunOutput, Verdict};
use crate::stats::{BatchReport, EngineStats, QueryResult};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads for the batch (each query runs on one worker;
    /// portfolio adds its own two solver threads per query).
    pub jobs: usize,
    /// Backend selection per query.
    pub backend: QueryBackend,
    /// Per-query wall-clock budget; `None` = unlimited.
    pub timeout: Option<Duration>,
    /// Enable the structural result cache.
    pub cache: bool,
    /// Keep long-lived solver sessions per worker (incremental SAT with
    /// activation literals, a shared BDD manager, and a cross-query
    /// bitblast cache), with same-model queries routed to the same worker.
    pub sessions: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            jobs: 1,
            backend: QueryBackend::Portfolio,
            timeout: None,
            cache: true,
            sessions: false,
        }
    }
}

/// The batch verification engine. Construct once, [`Engine::run_batch`]
/// any number of times; the result cache persists across batches.
pub struct Engine {
    cfg: EngineConfig,
    cache: Mutex<ResultCache>,
    inflight: Arc<InflightTable>,
    /// Total entries across shard-owned caches (sharded serve mode only;
    /// the shared `cache` keeps its own count). Signed so transient
    /// decrement-before-increment interleavings can dip below zero
    /// without wrapping.
    shard_entries: AtomicI64,
    cache_log: CacheLog,
}

/// A shared-nothing engine shard: its own result cache, owned by exactly
/// one serving thread, plus the sequence number of the last cache-wide
/// operation (clear / delta sweep) it has applied. No lock is taken on
/// the query hot path; shards learn about model mutations by replaying
/// the engine's [`CacheLog`].
pub struct EngineShard {
    id: usize,
    cache: ResultCache,
    applied: u64,
}

impl EngineShard {
    /// This shard's index (stable for the life of the server).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Entries currently held by this shard's cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}

/// A cache-wide operation waiting to be applied by every shard. Returned
/// by [`Engine::push_cache_delta`]; holding it keeps the aggregated
/// counters alive even after the log prunes the fully-acked entry.
pub struct CachePending(Arc<CacheLogEntry>);

enum CacheOp {
    Clear,
    Delta {
        old_net: rzen_net::topology::Network,
        new_net: rzen_net::topology::Network,
        steps: Vec<rzen_net::topology::DeltaStep>,
    },
}

struct CacheLogEntry {
    seq: u64,
    op: CacheOp,
    /// Shards that have applied this entry.
    acks: AtomicUsize,
    /// Aggregated sweep results across shards (delta ops only).
    evicted: AtomicUsize,
    retained: AtomicUsize,
    unaffected: AtomicUsize,
}

/// An ordered log of cache-wide operations, replayed lazily by each
/// shard: the writer (the reactor's control plane) appends under the
/// mutex and bumps `pushed`; shards compare `pushed` against their own
/// `applied` watermark with one atomic load per request and only take
/// the mutex when behind. Fully-acked entries are pruned in order.
struct CacheLog {
    entries: Mutex<Vec<Arc<CacheLogEntry>>>,
    cv: Condvar,
    pushed: AtomicU64,
    shards: AtomicUsize,
}

/// What one query's solve produced, before verdict mapping.
struct Solved {
    /// The raw outcome, or the panic message if the query blew up.
    outcome: Result<FindOutcome<crate::Witness>, String>,
    winner: Option<Backend>,
    sat_stats: Option<rzen_sat::Stats>,
    bdd_stats: Option<rzen_bdd::BddStats>,
    /// Elapsed time when the decisive verdict arrived. `None` when nothing
    /// was decisive; the caller falls back to total elapsed time.
    decided: Option<Duration>,
    session: Option<SessionStats>,
}

impl Engine {
    /// Create an engine with the given configuration.
    pub fn new(cfg: EngineConfig) -> Self {
        Engine {
            cfg,
            cache: Mutex::new(ResultCache::new()),
            inflight: Arc::new(InflightTable::default()),
            shard_entries: AtomicI64::new(0),
            cache_log: CacheLog {
                entries: Mutex::new(Vec::new()),
                cv: Condvar::new(),
                pushed: AtomicU64::new(0),
                shards: AtomicUsize::new(0),
            },
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Drop every cached verdict. A serving layer calls this when the
    /// model is hot-swapped: entries for the old model are keyed by the
    /// old network and could never be *served* wrongly, but they would
    /// pin its memory for the life of the process.
    pub fn clear_cache(&self) {
        let mut cache = self.cache.lock().unwrap();
        cache.clear();
        rzen_obs::gauge!("engine.cache.entries", "entries in the result cache").set(0);
    }

    /// Cached verdicts currently held.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// Apply a model delta to the result cache: evict exactly the
    /// `Reach`/`Drops` entries (keyed by `old_net`) whose cone of
    /// influence one of `steps` touched, and re-key the survivors to
    /// `new_net` so they keep answering post-delta queries without a
    /// solve. See [`DeltaCacheStats`] and the sweep's own docs for the
    /// invalidation rules. Everything else in the cache — other query
    /// kinds, other models — is untouched, and warm solver sessions are
    /// deliberately left alone: their caches key on hash-consed
    /// expression ids, so changed sub-models simply produce new ids
    /// while unchanged circuitry keeps hitting.
    pub fn apply_delta(
        &self,
        old_net: &rzen_net::topology::Network,
        new_net: &rzen_net::topology::Network,
        steps: &[rzen_net::topology::DeltaStep],
    ) -> DeltaCacheStats {
        let mut cache = self.cache.lock().unwrap();
        let stats = cache.sweep_delta(old_net, new_net, steps);
        rzen_obs::counter!("engine.deltas", "model deltas applied to the result cache").inc();
        rzen_obs::counter!(
            "engine.cache.delta_evicted",
            "cache entries evicted by delta cone-of-influence sweeps"
        )
        .add(stats.evicted as u64);
        rzen_obs::counter!(
            "engine.cache.delta_retained",
            "cache entries kept warm (re-keyed) across delta sweeps"
        )
        .add(stats.retained as u64);
        rzen_obs::gauge!("engine.cache.entries", "entries in the result cache")
            .set(cache.len() as i64);
        stats
    }

    /// Admit a query for serving: the first arrival of a query leads (and
    /// must execute it, then [`crate::LeadGuard::publish`] the result);
    /// identical concurrent arrivals join and wait for the leader's
    /// verdict. The coalescing key is the full query — which embeds the
    /// model, so queries over different models never coalesce — compared
    /// structurally within its fingerprint bucket. `req_id` is the
    /// arriving request's own id: a leader stamps it on the in-flight
    /// entry so joiners can record whose execution they rode
    /// ([`crate::JoinHandle::leader_id`]).
    pub fn admit(&self, query: &Query, req_id: u64) -> Admission {
        self.inflight.admit(query.fingerprint(), query, req_id)
    }

    /// Number of distinct queries currently in flight (admitted leaders
    /// that have not yet published).
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Solve every query, distributing them over `jobs` workers. Results
    /// come back in input order regardless of completion order. Queries
    /// always run on spawned workers — never on the calling thread — so
    /// the caller's thread-local `Zen` context is left untouched.
    pub fn run_batch(&self, queries: &[Query]) -> BatchReport {
        // The idle path must be free: no worker spawn, no span, and a
        // well-formed report (percentiles and rates all defined on zero
        // samples).
        if queries.is_empty() {
            return BatchReport {
                results: Vec::new(),
                stats: EngineStats::aggregate(&[], Duration::ZERO),
            };
        }
        if self.cfg.sessions {
            return self.run_batch_sessions(queries);
        }
        let started = Instant::now();
        let _span = rzen_obs::span!("engine.batch", "queries" => queries.len() as u64, "jobs" => self.cfg.jobs as u64);
        let n = queries.len();
        let slots: Vec<Mutex<Option<QueryResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.cfg.jobs.max(1).min(n.max(1));

        thread::scope(|s| {
            let next = &next;
            let slots = &slots;
            for w in 0..workers {
                s.spawn(move || {
                    let _span = rzen_obs::span!("engine.worker", "worker" => w as u64);
                    loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= n {
                            break;
                        }
                        let ctx = rzen_obs::RequestCtx::mint(queries[i].model_fingerprint(), 0);
                        let start_us = rzen_obs::flight::now_us();
                        let alloc0 = rzen_obs::profile::thread_alloc_stats();
                        let result =
                            self.solve_one(i, &queries[i], self.request_budget(), ctx.id, None);
                        record_flight(&ctx, start_us, alloc0, &queries[i], &result);
                        *slots[i].lock().unwrap() = Some(result);
                    }
                });
            }
        });

        let results = collect_results(slots, queries);
        let stats = EngineStats::aggregate(&results, started.elapsed());
        BatchReport { results, stats }
    }

    /// Session-mode batch: partition queries by model fingerprint so that
    /// queries sharing an ACL/route-map/topology land on the same worker
    /// (maximizing session reuse), then give each worker persistent
    /// backend runner threads holding a [`SolverSession`] each.
    fn run_batch_sessions(&self, queries: &[Query]) -> BatchReport {
        let started = Instant::now();
        let _span = rzen_obs::span!("engine.batch", "queries" => queries.len() as u64, "jobs" => self.cfg.jobs as u64);
        let n = queries.len();
        let workers = self.cfg.jobs.max(1).min(n.max(1));

        // Fingerprint-affinity dispatch: each new model group goes to the
        // currently least-loaded worker; members follow their group.
        let mut group_worker: HashMap<u64, usize> = HashMap::new();
        let mut load = vec![0usize; workers];
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for (i, q) in queries.iter().enumerate() {
            let w = *group_worker
                .entry(q.model_fingerprint())
                .or_insert_with(|| (0..workers).min_by_key(|&w| load[w]).unwrap_or(0));
            load[w] += 1;
            buckets[w].push(i);
        }

        let slots: Vec<Mutex<Option<QueryResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
        thread::scope(|s| {
            let slots = &slots;
            for (w, bucket) in buckets.iter().enumerate() {
                if bucket.is_empty() {
                    continue;
                }
                s.spawn(move || {
                    let _span = rzen_obs::span!("engine.worker", "worker" => w as u64);
                    let runners = SessionRunners::spawn(self.cfg.backend);
                    for &i in bucket {
                        let ctx = rzen_obs::RequestCtx::mint(queries[i].model_fingerprint(), 0);
                        let start_us = rzen_obs::flight::now_us();
                        let alloc0 = rzen_obs::profile::thread_alloc_stats();
                        let result = self.solve_one_session(
                            i,
                            &queries[i],
                            &runners.txs,
                            self.request_budget(),
                            ctx.id,
                            None,
                        );
                        record_flight(&ctx, start_us, alloc0, &queries[i], &result);
                        *slots[i].lock().unwrap() = Some(result);
                    }
                    runners.shutdown();
                });
            }
        });

        let results = collect_results(slots, queries);
        let stats = EngineStats::aggregate(&results, started.elapsed());
        BatchReport { results, stats }
    }

    /// The cached result for this query, if caching is on and this exact
    /// query (not merely a colliding fingerprint) was decided before.
    fn cache_lookup(
        &self,
        index: usize,
        query: &Query,
        fingerprint: u64,
        started: Instant,
        shard: Option<&EngineShard>,
    ) -> Option<QueryResult> {
        if !self.cfg.cache {
            return None;
        }
        let hit = match shard {
            Some(s) => s.cache.get(fingerprint, query).cloned(),
            None => self.cache.lock().unwrap().get(fingerprint, query).cloned(),
        };
        let Some(v) = hit else {
            rzen_obs::counter!("engine.cache.misses", "cache lookups that found no entry").inc();
            return None;
        };
        rzen_obs::counter!("engine.cache.hits", "queries served from the result cache").inc();
        rzen_obs::trace::instant1("engine.cache.hit", "index", index as u64);
        Some(QueryResult {
            index,
            kind: query.kind(),
            verdict: v,
            latency: started.elapsed(),
            winner: None,
            cache_hit: true,
            sat_stats: None,
            bdd_stats: None,
            session: None,
        })
    }

    /// A fresh budget for one query, from the configured default timeout.
    fn request_budget(&self) -> Budget {
        match self.cfg.timeout {
            Some(t) => Budget::with_timeout(t),
            None => Budget::unlimited(),
        }
    }

    fn solve_one(
        &self,
        index: usize,
        query: &Query,
        budget: Budget,
        req: u64,
        shard: Option<&mut EngineShard>,
    ) -> QueryResult {
        let started = Instant::now();
        let _span = rzen_obs::span!("engine.query", "req" => req, "index" => index as u64);
        rzen_obs::counter!("engine.queries", "queries dispatched to workers").inc();
        let fingerprint = query.fingerprint();
        if let Some(hit) = self.cache_lookup(index, query, fingerprint, started, shard.as_deref()) {
            return hit;
        }

        let solved = match self.cfg.backend {
            QueryBackend::Bdd => run_fresh(query, Backend::Bdd, &budget, started, req),
            QueryBackend::Smt => run_fresh(query, Backend::Smt, &budget, started, req),
            QueryBackend::Portfolio => run_portfolio(query, &budget, started, req),
        };
        self.finish(index, query, fingerprint, solved, &budget, started, shard)
    }

    /// Session-mode solve: hand the query to every runner of this worker
    /// (one per backend), record latency the moment a decisive reply
    /// lands, then drain the loser before moving on so the sessions stay
    /// in lock-step.
    fn solve_one_session(
        &self,
        index: usize,
        query: &Query,
        runners: &[mpsc::Sender<SessionJob>],
        budget: Budget,
        req: u64,
        shard: Option<&mut EngineShard>,
    ) -> QueryResult {
        let started = Instant::now();
        let _span = rzen_obs::span!("engine.query", "req" => req, "index" => index as u64);
        rzen_obs::counter!("engine.queries", "queries dispatched to workers").inc();
        let fingerprint = query.fingerprint();
        if let Some(hit) = self.cache_lookup(index, query, fingerprint, started, shard.as_deref()) {
            return hit;
        }

        let (reply_tx, reply_rx) = mpsc::channel::<SessionReply>();
        let mut error: Option<String> = None;
        for tx in runners {
            let job = SessionJob {
                query: query.clone(),
                budget: budget.clone(),
                reply: reply_tx.clone(),
                req,
            };
            if tx.send(job).is_err() {
                error.get_or_insert_with(|| "session runner unavailable".to_string());
            }
        }
        drop(reply_tx);

        let mut winner: Option<(Backend, RunOutput)> = None;
        let mut decided = None;
        let mut sat_stats = None;
        let mut bdd_stats = None;
        let mut last: Option<RunOutput> = None;
        let mut session_total = SessionStats::default();
        for reply in reply_rx.iter() {
            session_total.absorb(&reply.session);
            let out = match reply.output {
                Ok(out) => out,
                Err(msg) => {
                    error.get_or_insert(msg);
                    continue;
                }
            };
            if out.sat_stats.is_some() {
                sat_stats = out.sat_stats;
            }
            if out.bdd_stats.is_some() {
                bdd_stats = out.bdd_stats;
            }
            if winner.is_none() && !matches!(out.outcome, FindOutcome::Cancelled) {
                budget.cancel();
                decided = Some(started.elapsed());
                rzen_obs::trace::instant1(
                    "engine.race.decisive",
                    "bdd",
                    u64::from(reply.backend == Backend::Bdd),
                );
                winner = Some((reply.backend, out));
            } else {
                last = Some(out);
            }
        }

        let solved = match winner {
            Some((backend, out)) => Solved {
                outcome: Ok(out.outcome),
                winner: Some(backend),
                sat_stats,
                bdd_stats,
                decided,
                session: Some(session_total),
            },
            None => Solved {
                outcome: match error {
                    Some(msg) => Err(msg),
                    None => Ok(last.map(|o| o.outcome).unwrap_or(FindOutcome::Cancelled)),
                },
                winner: None,
                sat_stats,
                bdd_stats,
                decided: None,
                session: Some(session_total),
            },
        };
        self.finish(index, query, fingerprint, solved, &budget, started, shard)
    }

    /// Map the raw outcome to a [`Verdict`], feed the cache and metrics,
    /// and assemble the result. Latency is the decision-time stamp when
    /// one exists (portfolio losers drain after it), total elapsed
    /// otherwise.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        index: usize,
        query: &Query,
        fingerprint: u64,
        solved: Solved,
        budget: &Budget,
        started: Instant,
        shard: Option<&mut EngineShard>,
    ) -> QueryResult {
        let verdict = match solved.outcome {
            Ok(FindOutcome::Found(w)) => Verdict::Sat(w),
            Ok(FindOutcome::Unsat) => Verdict::Unsat,
            Ok(FindOutcome::Cancelled) => {
                if budget.deadline_passed() {
                    Verdict::Timeout
                } else {
                    Verdict::Cancelled
                }
            }
            Err(msg) => {
                rzen_obs::counter!("engine.errors", "queries that panicked inside a worker").inc();
                Verdict::Error(msg)
            }
        };

        // Only decisive verdicts are cached, so an `Error` (or a budget
        // artifact) can never be replayed to a later identical query.
        if self.cfg.cache && verdict.is_decisive() {
            match shard {
                Some(s) => {
                    if s.cache.insert(fingerprint, query, verdict.clone()) {
                        let total = self.shard_entries.fetch_add(1, Ordering::Relaxed) + 1;
                        rzen_obs::gauge!("engine.cache.entries", "entries in the result cache")
                            .set(total.max(0));
                    }
                }
                None => {
                    let mut cache = self.cache.lock().unwrap();
                    cache.insert(fingerprint, query, verdict.clone());
                    rzen_obs::gauge!("engine.cache.entries", "entries in the result cache")
                        .set(cache.len() as i64);
                }
            }
        }

        match solved.winner {
            Some(Backend::Bdd) => {
                rzen_obs::counter!(
                    "engine.backend.wins",
                    "decisive verdicts by deciding backend",
                    "backend" => "bdd"
                )
                .inc();
            }
            Some(Backend::Smt) => {
                rzen_obs::counter!(
                    "engine.backend.wins",
                    "decisive verdicts by deciding backend",
                    "backend" => "smt"
                )
                .inc();
            }
            None => {}
        }

        let latency = solved.decided.unwrap_or_else(|| started.elapsed());
        rzen_obs::histogram!("engine.query_us", "per-query wall latency in microseconds")
            .observe(latency.as_micros() as u64);
        QueryResult {
            index,
            kind: query.kind(),
            verdict,
            latency,
            winner: solved.winner,
            cache_hit: false,
            sat_stats: solved.sat_stats,
            bdd_stats: solved.bdd_stats,
            session: solved.session,
        }
    }
    /// Create a serving worker for the calling thread: the single-query
    /// counterpart of a batch worker. With `cfg.sessions` it owns
    /// persistent per-backend [`SolverSession`] runner threads (warm
    /// across every query it serves); without, it is a cheap token that
    /// marks the thread as dedicated to solving.
    pub fn serve_worker(&self) -> ServeWorker {
        ServeWorker {
            runners: self
                .cfg
                .sessions
                .then(|| SessionRunners::spawn(self.cfg.backend)),
        }
    }

    /// Solve one query with an explicit per-request budget (a serving
    /// layer derives it from the request deadline, queue wait included),
    /// consulting and feeding the shared result cache. `ctx` is the
    /// request identity minted at serve admission; its id rides every
    /// span on the solve path. The serve layer owns the flight record for
    /// the request (it knows the endpoints and the full wall latency), so
    /// this method does not write one. Must be called from a thread with
    /// no live `Zen` handles — in fresh mode the query rebuilds its model
    /// in (and resets) the thread-local context.
    pub fn run_one(
        &self,
        query: &Query,
        budget: Budget,
        worker: &ServeWorker,
        ctx: rzen_obs::RequestCtx,
    ) -> QueryResult {
        match &worker.runners {
            Some(runners) => self.solve_one_session(0, query, &runners.txs, budget, ctx.id, None),
            None => self.solve_one(0, query, budget, ctx.id, None),
        }
    }

    /// Declare how many shards will replay the cache log. Must be called
    /// before the first [`Engine::shard`] and before any cache-wide op is
    /// pushed; the count gates both op pruning and
    /// [`Engine::await_cache_delta`].
    pub fn set_shard_count(&self, shards: usize) {
        self.cache_log.shards.store(shards, Ordering::Release);
    }

    /// Create the shard-owned cache state for shard `id`. The shard
    /// starts current with the log (nothing to replay).
    pub fn shard(&self, id: usize) -> EngineShard {
        EngineShard {
            id,
            cache: ResultCache::new(),
            applied: self.cache_log.pushed.load(Ordering::Acquire),
        }
    }

    /// Solve one query against a shard-owned cache: the sharded-serve
    /// counterpart of [`Engine::run_one`]. Replays any pending cache-wide
    /// ops first, then solves with no cross-shard locks on the hot path.
    pub fn run_one_sharded(
        &self,
        shard: &mut EngineShard,
        query: &Query,
        budget: Budget,
        worker: &ServeWorker,
        ctx: rzen_obs::RequestCtx,
    ) -> QueryResult {
        self.shard_catch_up(shard);
        match &worker.runners {
            Some(runners) => {
                self.solve_one_session(0, query, &runners.txs, budget, ctx.id, Some(shard))
            }
            None => self.solve_one(0, query, budget, ctx.id, Some(shard)),
        }
    }

    /// Bring `shard` up to date with the cache log. One relaxed/acquire
    /// atomic compare when already current; otherwise replays clears and
    /// delta sweeps in order, acks each, and prunes fully-acked entries.
    /// Idle shard threads call this on a short park cadence so a pushed
    /// delta is acknowledged promptly even with no traffic.
    pub fn shard_catch_up(&self, shard: &mut EngineShard) {
        if self.cache_log.pushed.load(Ordering::Acquire) == shard.applied {
            return;
        }
        let entries = self.cache_log.entries.lock().unwrap();
        let shards = self.cache_log.shards.load(Ordering::Acquire);
        let mut acked = false;
        for entry in entries.iter() {
            if entry.seq <= shard.applied {
                continue;
            }
            match &entry.op {
                CacheOp::Clear => {
                    let removed = shard.cache.len() as i64;
                    shard.cache.clear();
                    self.shard_entries.fetch_sub(removed, Ordering::Relaxed);
                }
                CacheOp::Delta {
                    old_net,
                    new_net,
                    steps,
                } => {
                    let stats = shard.cache.sweep_delta(old_net, new_net, steps);
                    entry.evicted.fetch_add(stats.evicted, Ordering::Relaxed);
                    entry.retained.fetch_add(stats.retained, Ordering::Relaxed);
                    entry
                        .unaffected
                        .fetch_add(stats.unaffected, Ordering::Relaxed);
                    rzen_obs::counter!(
                        "engine.cache.delta_evicted",
                        "cache entries evicted by delta cone-of-influence sweeps"
                    )
                    .add(stats.evicted as u64);
                    rzen_obs::counter!(
                        "engine.cache.delta_retained",
                        "cache entries kept warm (re-keyed) across delta sweeps"
                    )
                    .add(stats.retained as u64);
                    self.shard_entries
                        .fetch_sub(stats.evicted as i64, Ordering::Relaxed);
                }
            }
            shard.applied = entry.seq;
            entry.acks.fetch_add(1, Ordering::AcqRel);
            acked = true;
        }
        let mut entries = entries;
        while entries
            .first()
            .is_some_and(|e| e.acks.load(Ordering::Acquire) >= shards)
        {
            entries.remove(0);
        }
        drop(entries);
        if acked {
            self.cache_log.cv.notify_all();
            rzen_obs::gauge!("engine.cache.entries", "entries in the result cache")
                .set(self.shard_entries.load(Ordering::Relaxed).max(0));
        }
    }

    /// Queue a cache-wide clear for every shard (the sharded counterpart
    /// of [`Engine::clear_cache`], used on model hot-swap). No wait is
    /// needed: entries key on the full query including the model, so a
    /// stale entry can never answer a post-swap query wrongly — the clear
    /// only releases memory.
    pub fn push_cache_clear(&self) {
        let mut entries = self.cache_log.entries.lock().unwrap();
        let seq = self.cache_log.pushed.load(Ordering::Relaxed) + 1;
        entries.push(Arc::new(CacheLogEntry {
            seq,
            op: CacheOp::Clear,
            acks: AtomicUsize::new(0),
            evicted: AtomicUsize::new(0),
            retained: AtomicUsize::new(0),
            unaffected: AtomicUsize::new(0),
        }));
        self.cache_log.pushed.store(seq, Ordering::Release);
    }

    /// Queue a delta sweep for every shard (the sharded counterpart of
    /// [`Engine::apply_delta`]). Returns a handle to await aggregated
    /// sweep stats with [`Engine::await_cache_delta`].
    pub fn push_cache_delta(
        &self,
        old_net: &rzen_net::topology::Network,
        new_net: &rzen_net::topology::Network,
        steps: &[rzen_net::topology::DeltaStep],
    ) -> CachePending {
        let entry = {
            let mut entries = self.cache_log.entries.lock().unwrap();
            let seq = self.cache_log.pushed.load(Ordering::Relaxed) + 1;
            let entry = Arc::new(CacheLogEntry {
                seq,
                op: CacheOp::Delta {
                    old_net: old_net.clone(),
                    new_net: new_net.clone(),
                    steps: steps.to_vec(),
                },
                acks: AtomicUsize::new(0),
                evicted: AtomicUsize::new(0),
                retained: AtomicUsize::new(0),
                unaffected: AtomicUsize::new(0),
            });
            entries.push(Arc::clone(&entry));
            self.cache_log.pushed.store(seq, Ordering::Release);
            entry
        };
        rzen_obs::counter!("engine.deltas", "model deltas applied to the result cache").inc();
        CachePending(entry)
    }

    /// Wait (bounded) until every shard has applied the pushed delta,
    /// then return the aggregated sweep stats. On timeout the stats cover
    /// whichever shards have swept so far — still safe, since unswept
    /// shards hold entries keyed by the old network, which post-delta
    /// queries can never hit.
    pub fn await_cache_delta(&self, pending: &CachePending, timeout: Duration) -> DeltaCacheStats {
        let shards = self.cache_log.shards.load(Ordering::Acquire).max(1);
        let deadline = Instant::now() + timeout;
        let mut guard = self.cache_log.entries.lock().unwrap();
        while pending.0.acks.load(Ordering::Acquire) < shards {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (g, _) = self
                .cache_log
                .cv
                .wait_timeout(guard, deadline - now)
                .unwrap();
            guard = g;
        }
        drop(guard);
        DeltaCacheStats {
            evicted: pending.0.evicted.load(Ordering::Relaxed),
            retained: pending.0.retained.load(Ordering::Relaxed),
            unaffected: pending.0.unaffected.load(Ordering::Relaxed),
        }
    }
}

/// A long-lived serving worker: per-thread solver state for
/// [`Engine::run_one`]. Dropping it joins any session runner threads.
pub struct ServeWorker {
    runners: Option<SessionRunners>,
}

impl Drop for ServeWorker {
    fn drop(&mut self) {
        if let Some(runners) = self.runners.take() {
            runners.shutdown();
        }
    }
}

/// Unwrap the slot vector; a missing slot (worker died outside the
/// per-query panic guard) degrades to an `Error` verdict instead of
/// poisoning the whole batch.
fn collect_results(slots: Vec<Mutex<Option<QueryResult>>>, queries: &[Query]) -> Vec<QueryResult> {
    slots
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            m.into_inner().unwrap().unwrap_or_else(|| QueryResult {
                index: i,
                kind: queries[i].kind(),
                verdict: Verdict::Error("worker terminated before filling its slot".into()),
                latency: Duration::ZERO,
                winner: None,
                cache_hit: false,
                sat_stats: None,
                bdd_stats: None,
                session: None,
            })
        })
        .collect()
}

/// Write one batch query's flight record. Batch queries have no client
/// endpoints; the op is the query kind and the serve-only fields stay
/// zero. (The serve layer writes its own records for served requests —
/// see `Engine::run_one`.) `alloc0` is the worker thread's allocation
/// tally from before the query ran; the record carries the delta, which
/// is zero unless profiling was enabled.
fn record_flight(
    ctx: &rzen_obs::RequestCtx,
    start_us: u64,
    alloc0: (u64, u64),
    query: &Query,
    result: &QueryResult,
) {
    use rzen_obs::flight::{self, SmallStr, FLAG_CACHE_HIT, FLAG_SESSION};
    let mut flags = 0u8;
    if result.cache_hit {
        flags |= FLAG_CACHE_HIT;
    }
    if result.session.is_some() {
        flags |= FLAG_SESSION;
    }
    let alloc1 = rzen_obs::profile::thread_alloc_stats();
    flight::record(rzen_obs::RequestRecord {
        id: ctx.id,
        start_us,
        latency_us: result.latency.as_micros() as u64,
        model: ctx.model,
        generation: ctx.generation,
        leader: 0,
        op: SmallStr::new(query.kind()),
        src: SmallStr::default(),
        dst: SmallStr::default(),
        verdict: result.verdict.class(),
        backend: result.backend_class(),
        flags,
        alloc_bytes: alloc1.0.saturating_sub(alloc0.0),
        alloc_count: alloc1.1.saturating_sub(alloc0.1),
        shard: ctx.shard,
    });
}

/// Best-effort text of a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "query panicked".to_string()
    }
}

fn decisive_winner(outcome: &FindOutcome<crate::Witness>, b: Backend) -> Option<Backend> {
    match outcome {
        FindOutcome::Cancelled => None,
        _ => Some(b),
    }
}

/// One backend, fresh context, with the per-query panic guard.
fn run_fresh(
    query: &Query,
    backend: Backend,
    budget: &Budget,
    started: Instant,
    req: u64,
) -> Solved {
    let _span = rzen_obs::span!("engine.backend", "req" => req, "bdd" => u64::from(backend == Backend::Bdd));
    match catch_unwind(AssertUnwindSafe(|| query.run_backend(backend, budget))) {
        Ok(out) => Solved {
            winner: decisive_winner(&out.outcome, backend),
            // Single backend: nothing drains after the verdict, so
            // decision time is simply completion time.
            decided: Some(started.elapsed()),
            outcome: Ok(out.outcome),
            sat_stats: out.sat_stats,
            bdd_stats: out.bdd_stats,
            session: None,
        },
        Err(p) => Solved {
            outcome: Err(panic_message(p)),
            winner: None,
            sat_stats: None,
            bdd_stats: None,
            decided: None,
            session: None,
        },
    }
}

/// Race the two backends on cloned query data under one shared budget.
/// The first decisive verdict cancels the other solver and stamps the
/// query's latency; the loser then drains (for its substrate stats)
/// without inflating it. If neither is decisive (deadline hit both), the
/// query comes back `Cancelled` and the caller maps it to
/// `Timeout`/`Cancelled` by whether the deadline passed; a panic on both
/// sides surfaces as an error.
fn run_portfolio(query: &Query, budget: &Budget, started: Instant, req: u64) -> Solved {
    let _span = rzen_obs::span!("engine.race", "req" => req);
    let (tx, rx) = mpsc::channel::<(Backend, Result<RunOutput, String>)>();
    thread::scope(|s| {
        for backend in [Backend::Bdd, Backend::Smt] {
            let tx = tx.clone();
            let budget = budget.clone();
            let query = query.clone();
            s.spawn(move || {
                let _span = rzen_obs::span!("engine.backend", "req" => req, "bdd" => u64::from(backend == Backend::Bdd));
                let out = catch_unwind(AssertUnwindSafe(|| query.run_backend(backend, &budget)))
                    .map_err(panic_message);
                // The receiver may have already returned; a closed channel
                // just means the race was decided without us.
                let _ = tx.send((backend, out));
            });
        }
        drop(tx);

        let mut winner: Option<(Backend, RunOutput)> = None;
        let mut decided = None;
        let mut sat_stats = None;
        let mut bdd_stats = None;
        let mut last: Option<RunOutput> = None;
        let mut error: Option<String> = None;
        for (backend, res) in rx.iter() {
            let out = match res {
                Ok(out) => out,
                Err(msg) => {
                    error.get_or_insert(msg);
                    continue;
                }
            };
            if out.sat_stats.is_some() {
                sat_stats = out.sat_stats;
            }
            if out.bdd_stats.is_some() {
                bdd_stats = out.bdd_stats;
            }
            if winner.is_none() && !matches!(out.outcome, FindOutcome::Cancelled) {
                // First decisive verdict wins: stop the other solver and
                // stamp the latency *now*, before the loser's teardown.
                budget.cancel();
                decided = Some(started.elapsed());
                rzen_obs::trace::instant1(
                    "engine.race.decisive",
                    "bdd",
                    u64::from(backend == Backend::Bdd),
                );
                winner = Some((backend, out));
            } else {
                rzen_obs::trace::instant1(
                    "engine.race.loser",
                    "bdd",
                    u64::from(backend == Backend::Bdd),
                );
                last = Some(out);
            }
        }

        match winner {
            Some((backend, out)) => Solved {
                outcome: Ok(out.outcome),
                winner: Some(backend),
                sat_stats,
                bdd_stats,
                decided,
                session: None,
            },
            None => Solved {
                outcome: match error {
                    // A panic is the more actionable signal than the
                    // other side's cancellation.
                    Some(msg) => Err(msg),
                    None => Ok(last.map(|o| o.outcome).unwrap_or(FindOutcome::Cancelled)),
                },
                winner: None,
                sat_stats,
                bdd_stats,
                decided: None,
                session: None,
            },
        }
    })
}

/// One query handed to a session runner, with its reply channel.
struct SessionJob {
    query: Query,
    budget: Budget,
    reply: mpsc::Sender<SessionReply>,
    /// Request id of the query, stamped on the runner's per-job span.
    req: u64,
}

/// A runner's answer: the raw output (or panic message) plus the session
/// counters this query moved.
struct SessionReply {
    backend: Backend,
    output: Result<RunOutput, String>,
    session: SessionStats,
}

/// The persistent backend threads owned by one session-mode worker: one
/// per backend (two for the portfolio), each holding a [`SolverSession`]
/// for the worker's whole bucket.
struct SessionRunners {
    txs: Vec<mpsc::Sender<SessionJob>>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl SessionRunners {
    fn spawn(backend: QueryBackend) -> SessionRunners {
        let backends: &[Backend] = match backend {
            QueryBackend::Bdd => &[Backend::Bdd],
            QueryBackend::Smt => &[Backend::Smt],
            QueryBackend::Portfolio => &[Backend::Bdd, Backend::Smt],
        };
        let mut txs = Vec::with_capacity(backends.len());
        let mut handles = Vec::with_capacity(backends.len());
        for &b in backends {
            let (tx, rx) = mpsc::channel::<SessionJob>();
            txs.push(tx);
            handles.push(thread::spawn(move || session_runner(b, rx)));
        }
        SessionRunners { txs, handles }
    }

    fn shutdown(self) {
        drop(self.txs);
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// A session runner: owns one [`SolverSession`] (and this thread's `Zen`
/// context) for its whole lifetime, solving jobs in arrival order. A
/// panicking query is answered with its panic message, and the session
/// *and* context are rebuilt from scratch — a half-built session (e.g. a
/// variable order that lost levels mid-extension) could be unsound, and a
/// fresh one merely loses cached work.
fn session_runner(backend: Backend, rx: mpsc::Receiver<SessionJob>) {
    let _span = rzen_obs::span!("engine.session", "bdd" => u64::from(backend == Backend::Bdd));
    rzen::reset_ctx();
    let mut session = SolverSession::new(backend);
    while let Ok(job) = rx.recv() {
        let before = session.stats();
        let job_span = rzen_obs::span!("engine.backend", "req" => job.req, "bdd" => u64::from(backend == Backend::Bdd));
        let out = catch_unwind(AssertUnwindSafe(|| {
            job.query.run_in_session(&mut session, &job.budget)
        }));
        drop(job_span);
        let reply = match out {
            Ok(output) => SessionReply {
                backend,
                output: Ok(output),
                session: session.stats().delta_since(&before),
            },
            Err(p) => {
                rzen::reset_ctx();
                session = SolverSession::new(backend);
                SessionReply {
                    backend,
                    output: Err(panic_message(p)),
                    session: SessionStats::default(),
                }
            }
        };
        let _ = job.reply.send(reply);
    }
    // Leave no arena behind on the (dying) thread.
    rzen::reset_ctx();
}
