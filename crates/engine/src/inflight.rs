//! In-flight query coalescing.
//!
//! A serving layer sees bursts of identical queries (every client asking
//! "can A reach B?" after the same event). Solving each copy wastes a
//! worker per copy; caching alone does not help because the copies are
//! *concurrent* — none has finished when the next arrives. The in-flight
//! table closes that gap: the first arrival of a query becomes its
//! **leader** and executes; identical arrivals while the leader is running
//! **join** and merely wait; the leader's verdict is fanned out to every
//! joiner. The coalescing key is the full [`Query`] (which embeds the
//! model — ACL, route map, or network — so queries against different
//! models never coalesce), compared structurally under the same FNV-1a
//! fingerprint the result cache uses.
//!
//! The leader's guard publishes exactly once; if the leader is dropped
//! without publishing (its request was shed or its worker died), joiners
//! wake with `None` and the serving layer answers them `overloaded`
//! rather than hanging them forever.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::query::Query;
use crate::stats::QueryResult;

/// Shared verdict slot between a leader and its joiners.
#[derive(Debug)]
struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
    /// Request id of the leader, so joiners can record which execution
    /// they coalesced onto (`/debug/requests` shows it as `leader`).
    leader: u64,
}

#[derive(Debug)]
enum SlotState {
    Pending,
    Done(Box<Option<QueryResult>>),
}

/// One fingerprint bucket: structurally-compared (query, slot) pairs.
type Bucket = Vec<(Query, Arc<Slot>)>;

/// The in-flight table: fingerprint buckets of (query, slot) pairs, the
/// same collision-safe shape as the result cache.
#[derive(Debug, Default)]
pub(crate) struct InflightTable {
    buckets: Mutex<HashMap<u64, Bucket>>,
}

/// What [`crate::Engine::admit`] decided for a query.
pub enum Admission {
    /// No identical query is in flight: the caller leads. Execute the
    /// query and [`LeadGuard::publish`] the result (or drop the guard to
    /// release joiners empty-handed).
    Lead(LeadGuard),
    /// An identical query is already in flight: [`JoinHandle::wait`] for
    /// the leader's verdict instead of executing.
    Join(JoinHandle),
}

/// Leadership of one in-flight query. Exactly one exists per distinct
/// in-flight query; dropping it without publishing wakes joiners with
/// `None`.
pub struct LeadGuard {
    table: Arc<InflightTable>,
    fingerprint: u64,
    query: Query,
    slot: Arc<Slot>,
    done: bool,
}

impl LeadGuard {
    /// Publish the leader's result to every joiner and retire the entry.
    pub fn publish(mut self, result: &QueryResult) {
        self.finish(Some(result.clone()));
    }

    fn finish(&mut self, result: Option<QueryResult>) {
        if self.done {
            return;
        }
        self.done = true;
        {
            let mut buckets = self.table.buckets.lock().unwrap();
            if let Some(bucket) = buckets.get_mut(&self.fingerprint) {
                bucket.retain(|(q, _)| q != &self.query);
                if bucket.is_empty() {
                    buckets.remove(&self.fingerprint);
                }
            }
        }
        *self.slot.state.lock().unwrap() = SlotState::Done(Box::new(result));
        self.slot.cv.notify_all();
    }
}

impl Drop for LeadGuard {
    fn drop(&mut self) {
        self.finish(None);
    }
}

/// A joiner's ticket: blocks until the leader publishes.
pub struct JoinHandle {
    slot: Arc<Slot>,
}

impl JoinHandle {
    /// The request id of the leader this joiner coalesced onto.
    pub fn leader_id(&self) -> u64 {
        self.slot.leader
    }
}

/// Outcome of a [`JoinHandle`] wait.
pub enum Joined {
    /// The leader published this verdict.
    Verdict(Box<QueryResult>),
    /// The leader was dropped without publishing (shed or died) — the
    /// caller should treat the request as shed, not retry in a loop.
    LeaderLost,
    /// The joiner's own deadline passed before the leader published. The
    /// leader keeps running; only this joiner gives up.
    Expired,
}

impl JoinHandle {
    /// Wait for the leader's verdict. `None` means the leader was dropped
    /// without publishing (shed or died) — the caller should treat the
    /// request as shed, not retry in a loop.
    pub fn wait(self) -> Option<QueryResult> {
        match self.wait_deadline(None) {
            Joined::Verdict(r) => Some(*r),
            Joined::LeaderLost => None,
            Joined::Expired => unreachable!("no deadline was set"),
        }
    }

    /// Wait for the leader's verdict, but only until `deadline`: a joiner
    /// carries its own budget, which may be shorter than the leader's, and
    /// must degrade to its own timeout instead of inheriting the leader's
    /// patience. `None` waits forever (equivalent to [`JoinHandle::wait`]).
    pub fn wait_deadline(self, deadline: Option<Instant>) -> Joined {
        let mut state = self.slot.state.lock().unwrap();
        loop {
            // Check the slot before the clock: a verdict that is already
            // published answers the joiner even at/past its deadline.
            if let SlotState::Done(result) = &*state {
                return match (**result).clone() {
                    Some(r) => Joined::Verdict(Box::new(r)),
                    None => Joined::LeaderLost,
                };
            }
            match deadline {
                None => state = self.slot.cv.wait(state).unwrap(),
                Some(d) => {
                    let Some(left) = d.checked_duration_since(Instant::now()) else {
                        return Joined::Expired;
                    };
                    state = self.slot.cv.wait_timeout(state, left).unwrap().0;
                }
            }
        }
    }
}

impl InflightTable {
    /// Join the in-flight entry for `query`, or become its leader.
    /// `req_id` is the admitted request's own id: a new leader stamps it
    /// on the slot so later joiners can name the execution they rode.
    pub(crate) fn admit(
        self: &Arc<Self>,
        fingerprint: u64,
        query: &Query,
        req_id: u64,
    ) -> Admission {
        let mut buckets = self.buckets.lock().unwrap();
        let bucket = buckets.entry(fingerprint).or_default();
        if let Some((_, slot)) = bucket.iter().find(|(q, _)| q == query) {
            rzen_obs::counter!(
                "engine.inflight.joined",
                "queries coalesced onto an identical in-flight execution"
            )
            .inc();
            rzen_obs::trace::instant2(
                "engine.inflight.joined",
                "req",
                req_id,
                "leader",
                slot.leader,
            );
            return Admission::Join(JoinHandle { slot: slot.clone() });
        }
        let slot = Arc::new(Slot {
            state: Mutex::new(SlotState::Pending),
            cv: Condvar::new(),
            leader: req_id,
        });
        bucket.push((query.clone(), slot.clone()));
        Admission::Lead(LeadGuard {
            table: self.clone(),
            fingerprint,
            query: query.clone(),
            slot,
            done: false,
        })
    }

    /// Number of distinct queries currently in flight.
    pub(crate) fn len(&self) -> usize {
        self.buckets.lock().unwrap().values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Verdict;
    use std::time::Duration;

    fn query(line: u16) -> Query {
        Query::AclFind {
            acl: rzen_net::gen::random_acl(4, 1),
            target_line: line,
        }
    }

    fn result() -> QueryResult {
        QueryResult {
            index: 0,
            kind: "acl-find",
            verdict: Verdict::Unsat,
            latency: Duration::ZERO,
            winner: None,
            cache_hit: false,
            sat_stats: None,
            bdd_stats: None,
            session: None,
        }
    }

    #[test]
    fn second_identical_query_joins_and_receives_the_verdict() {
        let table = Arc::new(InflightTable::default());
        let q = query(1);
        let fp = q.fingerprint();
        let Admission::Lead(guard) = table.admit(fp, &q, 41) else {
            panic!("first arrival must lead");
        };
        let Admission::Join(join) = table.admit(fp, &q, 42) else {
            panic!("second identical arrival must join");
        };
        assert_eq!(join.leader_id(), 41, "joiner learns its leader's id");
        assert_eq!(table.len(), 1);
        guard.publish(&result());
        let got = join.wait().expect("leader published");
        assert_eq!(got.verdict, Verdict::Unsat);
        assert_eq!(table.len(), 0, "publish retires the entry");
    }

    #[test]
    fn distinct_queries_do_not_coalesce_even_on_forced_collision() {
        let table = Arc::new(InflightTable::default());
        let (a, b) = (query(1), query(2));
        let colliding = 0xfeed_u64;
        let Admission::Lead(_ga) = table.admit(colliding, &a, 0) else {
            panic!("a leads");
        };
        // Same bucket, different query: must lead its own entry.
        let Admission::Lead(_gb) = table.admit(colliding, &b, 0) else {
            panic!("b must lead despite sharing a's bucket");
        };
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn joiner_deadline_expires_without_waiting_for_the_leader() {
        let table = Arc::new(InflightTable::default());
        let q = query(4);
        let fp = q.fingerprint();
        let Admission::Lead(guard) = table.admit(fp, &q, 0) else {
            panic!("first arrival must lead");
        };
        let Admission::Join(join) = table.admit(fp, &q, 0) else {
            panic!("second arrival must join");
        };
        // The leader never publishes inside this joiner's budget: the
        // joiner must give up at its own deadline, not the leader's.
        let deadline = std::time::Instant::now() + Duration::from_millis(20);
        assert!(matches!(
            join.wait_deadline(Some(deadline)),
            Joined::Expired
        ));
        // The entry is still in flight — only the joiner gave up.
        assert_eq!(table.len(), 1);
        // A published verdict is preferred over an already-passed deadline.
        let Admission::Join(join) = table.admit(fp, &q, 0) else {
            panic!("third arrival must join");
        };
        guard.publish(&result());
        let past = std::time::Instant::now() - Duration::from_millis(5);
        assert!(matches!(join.wait_deadline(Some(past)), Joined::Verdict(_)));
    }

    #[test]
    fn dropped_leader_releases_joiners_with_none() {
        let table = Arc::new(InflightTable::default());
        let q = query(3);
        let fp = q.fingerprint();
        let Admission::Lead(guard) = table.admit(fp, &q, 0) else {
            panic!("first arrival must lead");
        };
        let Admission::Join(join) = table.admit(fp, &q, 0) else {
            panic!("second arrival must join");
        };
        drop(guard);
        assert!(join.wait().is_none(), "joiner must not hang");
        assert_eq!(table.len(), 0);
    }
}
