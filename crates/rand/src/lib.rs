//! Offline drop-in replacement for the subset of the `rand` 0.8 API this
//! workspace uses. The build environment has no reachable crates.io
//! mirror, so the real crate cannot be fetched; this stub keeps the same
//! call sites compiling (`StdRng::seed_from_u64`, `gen`, `gen_range`,
//! `gen_bool`) with a deterministic SplitMix64 core.
//!
//! The stream differs from upstream `StdRng` (which is ChaCha12), but
//! every in-repo consumer only relies on *seeded determinism*, never on
//! specific values, so workloads stay reproducible across runs and
//! platforms.

use core::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }

    /// Sample uniformly from a half-open or inclusive integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(&mut || self.next_u64())
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 random mantissa bits, the standard uniform-in-[0,1) recipe.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Integer types usable as `gen_range` bounds. Mirrors upstream's
/// `SampleUniform`: the *single* blanket `SampleRange` impl below is what
/// lets type inference flow from the use site (e.g. a slice index) back
/// into an untyped range literal like `0..10`.
pub trait SampleUniform: Copy + PartialOrd {
    fn to_i128(self) -> i128;
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// `next()` draws one fresh 64-bit word from the generator.
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "gen_range: empty range");
        let off = (next() as u128 % (hi - lo) as u128) as i128;
        T::from_i128(lo + off)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "gen_range: empty range");
        let off = (next() as u128 % (hi - lo + 1) as u128) as i128;
        T::from_i128(lo + off)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`. Passes standard avalanche expectations, which is all the
    /// seeded workload generators need.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // One scramble round so nearby seeds diverge immediately.
            let mut rng = StdRng {
                state: state ^ 0x5DEE_CE66_D1CE_4E5B,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(0..10);
            assert!((0..10).contains(&v));
            let w: u8 = rng.gen_range(3u8..=32);
            assert!((3..=32).contains(&w));
            let u: usize = rng.gen_range(0..24usize);
            assert!(u < 24);
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "got {hits}");
    }
}
