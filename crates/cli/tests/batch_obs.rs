//! End-to-end CLI test: `rzen-cli batch --trace-out --stats-json --metrics`
//! on the paper's figure-3 network must emit a loadable Chrome trace with
//! spans from at least four subsystems and a machine-readable stats file.

use std::path::PathBuf;
use std::process::Command;

fn spec_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../specs/fig3.net")
}

#[test]
fn batch_emits_valid_trace_and_stats_json() {
    let dir = std::env::temp_dir().join(format!("rzen-cli-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.json");
    let stats = dir.join("stats.json");

    let out = Command::new(env!("CARGO_BIN_EXE_rzen-cli"))
        .args([
            "batch",
            spec_path().to_str().unwrap(),
            "--jobs",
            "2",
            "--trace-out",
            trace.to_str().unwrap(),
            "--stats-json",
            stats.to_str().unwrap(),
            "--metrics",
        ])
        .output()
        .expect("rzen-cli must run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "batch failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The trace is a valid JSON array of Chrome trace events covering the
    // BDD, SAT, bitblast, and engine subsystems.
    let trace_text = std::fs::read_to_string(&trace).unwrap();
    rzen_obs::json::validate(&trace_text).expect("trace must be valid JSON");
    assert!(trace_text.trim_start().starts_with('['));
    for span in [
        "\"bdd.solve\"",
        "\"sat.solve\"",
        "\"bitblast.compile\"",
        "\"engine.query\"",
        "\"engine.batch\"",
    ] {
        assert!(trace_text.contains(span), "trace missing {span}");
    }
    assert!(trace_text.contains("\"ph\":\"X\""), "no duration spans");

    // The stats file is a valid JSON object with results, aggregated
    // stats, and the metrics snapshot.
    let stats_text = std::fs::read_to_string(&stats).unwrap();
    rzen_obs::json::validate(&stats_text).expect("stats must be valid JSON");
    for key in [
        "\"results\":",
        "\"stats\":",
        "\"metrics\":",
        "\"latency_p50_us\":",
    ] {
        assert!(stats_text.contains(key), "stats missing {key}");
    }
    assert!(
        stats_text.contains("\"bdd.mk.calls\""),
        "metrics snapshot absent"
    );

    // --metrics prints the registry and the phase report to stdout.
    assert!(stdout.contains("bdd.mk.calls"));
    assert!(stdout.contains("engine.batch"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rzen_trace_env_var_enables_tracing_and_exports() {
    let dir = std::env::temp_dir().join(format!("rzen-cli-env-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("env-trace.json");

    let out = Command::new(env!("CARGO_BIN_EXE_rzen-cli"))
        .env("RZEN_TRACE", trace.to_str().unwrap())
        .args(["batch", spec_path().to_str().unwrap(), "--jobs", "1"])
        .output()
        .expect("rzen-cli must run");
    assert!(
        out.status.success(),
        "batch failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace_text = std::fs::read_to_string(&trace).expect("RZEN_TRACE path must be written");
    rzen_obs::json::validate(&trace_text).expect("trace must be valid JSON");
    assert!(trace_text.contains("\"engine.batch\""));

    std::fs::remove_dir_all(&dir).ok();
}
