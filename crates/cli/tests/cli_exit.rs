//! Exit-behavior contract of the CLI: unknown subcommands and flags fail
//! fast with usage on stderr and a nonzero status, `--version`/`--help`
//! succeed, and a typo'd command never produces a misleading
//! cannot-read-spec error.

use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_rzen-cli");
const SPEC: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/fig3.net");

fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(BIN).args(args).output().expect("spawn");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

#[test]
fn version_prints_and_succeeds() {
    for flag in ["--version", "-V"] {
        let (code, stdout, _) = run(&[flag]);
        assert_eq!(code, 0);
        assert!(
            stdout.starts_with("rzen-cli ") && stdout.trim().len() > "rzen-cli ".len(),
            "bad version line: {stdout:?}"
        );
    }
}

#[test]
fn help_prints_usage_to_stdout_and_succeeds() {
    let (code, stdout, _) = run(&["--help"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("usage: rzen-cli"));
    assert!(stdout.contains("serve"), "usage must document serve");
}

#[test]
fn no_arguments_fails_with_usage_on_stderr() {
    let (code, stdout, stderr) = run(&[]);
    assert_ne!(code, 0);
    assert!(stderr.contains("usage: rzen-cli"));
    assert!(stdout.is_empty(), "usage errors belong on stderr");
}

#[test]
fn unknown_subcommand_fails_before_touching_the_spec() {
    // The spec path doesn't exist; a typo'd command must report the typo,
    // not a confusing file error.
    let (code, _, stderr) = run(&["raech", "/nonexistent.net"]);
    assert_ne!(code, 0);
    assert!(
        stderr.contains("unknown command") && stderr.contains("raech"),
        "stderr: {stderr:?}"
    );
    assert!(stderr.contains("usage: rzen-cli"));
    assert!(!stderr.contains("cannot read"), "stderr: {stderr:?}");
}

#[test]
fn unknown_flags_fail_nonzero() {
    let (code, _, stderr) = run(&["batch", SPEC, "--warp-speed"]);
    assert_ne!(code, 0);
    assert!(stderr.contains("--warp-speed"), "stderr: {stderr:?}");

    let (code, _, stderr) = run(&["serve", SPEC, "--warp-speed"]);
    assert_ne!(code, 0);
    assert!(stderr.contains("--warp-speed"), "stderr: {stderr:?}");
}
