//! `rzen` — the command-line network verifier.
//!
//! Load a network spec (see [`spec`] for the format) and run queries:
//!
//! ```text
//! rzen-cli reach  SPEC SRC DST            # find a delivered packet (SAT per path)
//! rzen-cli drops  SPEC SRC DST [PREFIX]   # find a dropped packet (composition bugs);
//!                                     # PREFIX restricts the destination
//! rzen-cli hsa    SPEC SRC DST            # exact reachable-set size (transformers)
//! rzen-cli paths  SPEC SRC DST            # enumerate simple paths
//! rzen-cli show   SPEC                    # print the parsed network
//! rzen-cli batch  SPEC [--jobs N] [--timeout-ms MS] [--backend bdd|smt|portfolio]
//!                                     # all-pairs reach+drops over the edge
//!                                     # ports, solved by the parallel
//!                                     # portfolio engine with a stats table
//! ```
//!
//! `SRC`/`DST` are `device:port` endpoints. Example:
//!
//! ```text
//! cargo run --release -p rzen-cli --bin rzen-cli -- reach fig3.net u1:1 u3:2
//! ```

#![warn(missing_docs)]

pub use rzen_net::spec;

/// Heap attribution needs the counting allocator installed at the binary
/// level; while profiling is disabled its cost is one relaxed atomic
/// load per allocator call.
#[global_allocator]
static ALLOC: rzen_obs::CountingAlloc = rzen_obs::CountingAlloc;

use rzen::{TransformerSpace, ZenFunction};
use rzen_net::analyses::{anteater, hsa};
use rzen_net::device::forward_along;
use rzen_net::headers::{HeaderFields, PacketFields};
use rzen_net::ip::fmt_ip;

/// The usage text, shared by `--help` (stdout, exit 0) and error paths
/// (stderr, exit 2).
fn usage_text() -> String {
    [
        "usage: rzen-cli <reach|drops|hsa|paths|show> SPEC [SRC DST]",
        "       rzen-cli delta SPEC DELTA.ndjson [--out FILE]",
        "       rzen-cli batch SPEC [--jobs N] [--timeout-ms MS] [--backend bdd|smt|portfolio]",
        "                       [--sessions on|off] [--trace-out FILE]",
        "                       [--stats-json FILE] [--verdicts-json FILE] [--metrics]",
        "                       [--profile-out FILE] [--sample-hz N]",
        "       rzen-cli serve SPEC [--addr HOST:PORT] [--jobs N] [--backlog N]",
        "                       [--loop epoll|threads] [--shards N] [--idle-timeout-ms MS]",
        "                       [--timeout-ms MS] [--sessions on|off] [--backend ...]",
        "                       [--flight-recorder-size N] [--sample-hz N]",
        "       rzen-cli --version | --help",
        "  SRC/DST are device:port endpoints, e.g. u1:1",
        "  delta applies an NDJSON op sequence (set-acl, set-route, link-up/down,",
        "  add/remove-device) to the spec and reports the per-device fingerprint",
        "  moves; --out FILE writes the patched spec (\"-\" for stdout)",
        "  --sessions on|off  reuse per-worker solver sessions across queries (default off)",
        "  --trace-out FILE   write a Chrome trace-event JSON file (chrome://tracing)",
        "  --stats-json FILE  write the batch report + metrics snapshot as JSON",
        "  --verdicts-json FILE  write just the verdicts (stable across modes) as JSON",
        "  --metrics          print the metrics registry and slow table after the batch",
        "  --profile-out FILE run the batch under the CPU profiler and write folded",
        "                     stacks (or a flamegraph SVG when FILE ends in .svg)",
        "  --sample-hz N      profiler sample rate (default 99; /debug/profile too)",
        "  --flight-recorder-size N  ring capacity of the serve flight recorder",
        "  --loop epoll|threads  connection layer: one epoll reactor + engine shards,",
        "                     or thread-per-connection (default epoll where supported)",
        "  --shards N         engine shards for --loop epoll (default: --jobs)",
        "  --idle-timeout-ms MS  close client connections silent for MS milliseconds",
        "  serve answers NDJSON queries on a TCP socket, plus HTTP GET /healthz,",
        "  GET /metrics (Prometheus format), GET /debug/requests|slow|trace?ms=N,",
        "  GET /debug/profile?ms=N&view=cpu|heap&format=folded|svg,",
        "  and POST /model (spec hot-swap); SIGTERM drains gracefully",
        "  RZEN_TRACE=1|FILE  enable tracing from the environment (FILE also exports)",
    ]
    .join("\n")
}

fn usage() -> ! {
    eprintln!("{}", usage_text());
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn describe(p: &rzen_net::headers::Header) -> String {
    format!(
        "dst={} src={} dport={} sport={} proto={}",
        fmt_ip(p.dst_ip),
        fmt_ip(p.src_ip),
        p.dst_port,
        p.src_port,
        p.protocol
    )
}

fn main() {
    // RZEN_TRACE=1 enables span recording; RZEN_TRACE=<path> also names a
    // Chrome-trace export file (an explicit --trace-out flag wins).
    let env_trace = rzen_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--version" | "-V") => {
            println!("rzen-cli {}", env!("CARGO_PKG_VERSION"));
            return;
        }
        Some("--help" | "-h") => {
            println!("{}", usage_text());
            return;
        }
        _ => {}
    }
    let (cmd, path) = match (args.first(), args.get(1)) {
        (Some(c), Some(p)) => (c.as_str(), p),
        _ => usage(),
    };
    // Validate the subcommand before touching the filesystem: a typo'd
    // command must exit with usage, not a confusing spec-read error.
    const COMMANDS: &[&str] = &[
        "reach", "drops", "hsa", "paths", "show", "batch", "serve", "delta",
    ];
    if !COMMANDS.contains(&cmd) {
        eprintln!("error: unknown command {cmd:?}");
        usage();
    }
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));

    if cmd == "serve" {
        run_serve(&text, &args[2..]);
        return;
    }
    let spec = spec::parse(&text).unwrap_or_else(|e| fail(&e));

    if cmd == "batch" {
        run_batch(&spec, &args[2..], env_trace);
        return;
    }

    if cmd == "delta" {
        run_delta(&spec, &args[2..]);
        return;
    }

    if cmd == "show" {
        println!(
            "{} devices, {} links",
            spec.net.devices.len(),
            spec.net.links.len()
        );
        for (i, d) in spec.net.devices.iter().enumerate() {
            let ports: Vec<String> = d.interfaces.iter().map(|x| x.id.to_string()).collect();
            println!("  [{i}] {} ports {{{}}}", d.name, ports.join(", "));
        }
        for l in &spec.net.links {
            println!(
                "  {}:{} -> {}:{}",
                spec.net.devices[l.from_device].name,
                l.from_intf,
                spec.net.devices[l.to_device].name,
                l.to_intf
            );
        }
        return;
    }

    let (src, dst) = match (args.get(2), args.get(3)) {
        (Some(s), Some(d)) => (
            spec.endpoint(s).unwrap_or_else(|e| fail(&e)),
            spec.endpoint(d).unwrap_or_else(|e| fail(&e)),
        ),
        _ => usage(),
    };

    match cmd {
        "paths" => {
            let paths = spec.net.paths(src.0, src.1, dst.0, dst.1);
            println!("{} simple path(s)", paths.len());
            for p in &paths {
                let names: Vec<String> = p
                    .iter()
                    .map(|h| format!("[in {} out {}]", h.intf_in.id, h.intf_out.id))
                    .collect();
                println!("  {}", names.join(" -> "));
            }
        }
        "reach" => match anteater::reachable(&spec.net, src.0, src.1, dst.0, dst.1) {
            Some(w) => {
                println!("REACHABLE via a {}-hop path", w.path.len());
                println!("  witness: {}", describe(&w.packet.overlay_header));
            }
            None => println!("UNREACHABLE: no packet is delivered on any simple path"),
        },
        "drops" => {
            // A packet that enters but reaches the destination on NO
            // path (a true blackhole) — the composition-bug query of the
            // paper's §2. An optional destination prefix narrows the
            // search to traffic that *should* be delivered.
            let dst_prefix: Option<rzen_net::ip::Prefix> = args
                .get(4)
                .map(|p| p.parse().unwrap_or_else(|e: String| fail(&e)));
            let paths = spec.net.paths(src.0, src.1, dst.0, dst.1);
            if paths.is_empty() {
                println!("NO PATHS: the endpoints are not connected");
                return;
            }
            let n_paths = paths.len();
            let f = ZenFunction::new(move |p| {
                let mut delivered = rzen::Zen::bool(false);
                for path in &paths {
                    delivered = delivered.or(forward_along(path, p).is_some());
                }
                delivered
            });
            match f.find(
                |p, delivered| {
                    let base = p.underlay_header().is_none().and(!delivered);
                    match dst_prefix {
                        Some(pre) => base.and(pre.matches(p.overlay_header().dst_ip())),
                        None => base,
                    }
                },
                &rzen::FindOptions::bdd(),
            ) {
                Some(w) => {
                    println!("DROPPED on all {n_paths} path(s):");
                    println!("  witness: {}", describe(&w.overlay_header));
                }
                None => println!("NO DROPS: every matching packet is delivered on some path"),
            }
        }
        "hsa" => {
            let space = TransformerSpace::new();
            let set = hsa::reachable_set(&spec.net, &space, src.0, src.1, dst.0);
            if set.is_empty() {
                println!("UNREACHABLE (exact set is empty)");
            } else {
                println!("reachable packet set: 2^{:.1} packets", set.count().log2());
                if let Some(sample) = set.element() {
                    println!("  sample: {}", describe(&sample.overlay_header));
                }
            }
        }
        _ => usage(),
    }
}

/// `delta`: apply an NDJSON op sequence to the spec offline and report what
/// moved — touched devices, per-device fingerprint churn, and the composite
/// model identity before and after. `--out FILE` writes the patched spec.
fn run_delta(spec: &spec::Spec, flags: &[String]) {
    let delta_path = match flags.first() {
        Some(p) if !p.starts_with("--") => p.clone(),
        _ => usage(),
    };
    let mut out: Option<String> = None;
    let mut i = 1;
    while i < flags.len() {
        match flags[i].as_str() {
            "--out" => {
                let v = flags.get(i + 1).unwrap_or_else(|| fail("--out needs FILE"));
                out = Some(v.clone());
                i += 2;
            }
            other => fail(&format!("unknown delta flag {other:?}")),
        }
    }

    let text = std::fs::read_to_string(&delta_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {delta_path}: {e}")));
    let ops = rzen_delta::parse_ops(&text).unwrap_or_else(|e| fail(&e));
    if ops.is_empty() {
        fail("delta file contains no ops");
    }

    let fp_before = rzen_delta::composite_fingerprint(&spec.net);
    let leaves_before: Vec<(String, u64)> = spec
        .net
        .devices
        .iter()
        .enumerate()
        .map(|(i, d)| (d.name.clone(), rzen_delta::device_fingerprint(&spec.net, i)))
        .collect();

    let mut patched = spec.clone();
    let applied = rzen_delta::apply_all(&mut patched, &ops).unwrap_or_else(|e| fail(&e));
    let fp_after = rzen_delta::composite_fingerprint(&patched.net);

    println!(
        "applied {} op(s); touched: {}",
        applied.steps.len(),
        if applied.touched.is_empty() {
            "(none)".to_string()
        } else {
            applied.touched.join(", ")
        }
    );
    println!("model: {fp_before:016x} -> {fp_after:016x}");
    // Per-device leaf hashes, matched by name: indices can shift when
    // devices are added or removed mid-sequence.
    for (i, d) in patched.net.devices.iter().enumerate() {
        let new_fp = rzen_delta::device_fingerprint(&patched.net, i);
        match leaves_before.iter().find(|(n, _)| *n == d.name) {
            Some((_, old_fp)) if *old_fp == new_fp => {}
            Some((_, old_fp)) => println!("  {}: {old_fp:016x} -> {new_fp:016x}", d.name),
            None => println!("  {}: (new) {new_fp:016x}", d.name),
        }
    }
    for (name, old_fp) in &leaves_before {
        if !patched.net.devices.iter().any(|d| d.name == *name) {
            println!("  {name}: {old_fp:016x} -> (removed)");
        }
    }

    if let Some(path) = out {
        let rendered = spec::serialize(&patched).unwrap_or_else(|e| fail(&e));
        if path == "-" {
            print!("{rendered}");
        } else {
            std::fs::write(&path, rendered)
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
            println!("wrote patched spec to {path}");
        }
    }
}

/// `batch`: all-pairs reach + drops over the spec's edge ports, run by the
/// parallel portfolio engine.
fn run_batch(spec: &spec::Spec, flags: &[String], env_trace: Option<String>) {
    use rzen_engine::{Engine, EngineConfig, Query, QueryBackend, Verdict};

    let mut cfg = EngineConfig {
        jobs: 4,
        ..Default::default()
    };
    let mut trace_out: Option<String> = None;
    let mut stats_json: Option<String> = None;
    let mut verdicts_json: Option<String> = None;
    let mut profile_out: Option<String> = None;
    let mut sample_hz: u32 = rzen_obs::profile::DEFAULT_SAMPLE_HZ;
    let mut show_metrics = false;
    let mut i = 0;
    while i < flags.len() {
        match flags[i].as_str() {
            "--profile-out" => {
                let v = flags
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--profile-out needs FILE"));
                profile_out = Some(v.clone());
                i += 2;
            }
            "--sample-hz" => {
                let v = flags
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--sample-hz needs N"));
                sample_hz = v
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --sample-hz {v:?}: {e}")));
                if sample_hz == 0 {
                    fail("--sample-hz must be at least 1");
                }
                i += 2;
            }
            "--trace-out" => {
                let v = flags
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--trace-out needs FILE"));
                trace_out = Some(v.clone());
                i += 2;
            }
            "--stats-json" => {
                let v = flags
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--stats-json needs FILE"));
                stats_json = Some(v.clone());
                i += 2;
            }
            "--metrics" => {
                show_metrics = true;
                i += 1;
            }
            "--verdicts-json" => {
                let v = flags
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--verdicts-json needs FILE"));
                verdicts_json = Some(v.clone());
                i += 2;
            }
            "--sessions" => {
                let v = flags
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--sessions needs on|off"));
                cfg.sessions = match v.as_str() {
                    "on" => true,
                    "off" => false,
                    other => fail(&format!("bad --sessions {other:?} (on|off)")),
                };
                i += 2;
            }
            "--jobs" => {
                let v = flags.get(i + 1).unwrap_or_else(|| fail("--jobs needs N"));
                cfg.jobs = v
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --jobs {v:?}: {e}")));
                if cfg.jobs == 0 {
                    fail("--jobs must be at least 1");
                }
                i += 2;
            }
            "--timeout-ms" => {
                let v = flags
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--timeout-ms needs MS"));
                let ms: u64 = v
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --timeout-ms {v:?}: {e}")));
                cfg.timeout = Some(std::time::Duration::from_millis(ms));
                i += 2;
            }
            "--backend" => {
                let v = flags
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--backend needs bdd|smt|portfolio"));
                cfg.backend = match v.as_str() {
                    "bdd" => QueryBackend::Bdd,
                    "smt" => QueryBackend::Smt,
                    "portfolio" => QueryBackend::Portfolio,
                    other => fail(&format!("unknown backend {other:?} (bdd|smt|portfolio)")),
                };
                i += 2;
            }
            other => fail(&format!("unknown batch flag {other:?}")),
        }
    }

    // An explicit --trace-out turns tracing on by itself; when both the
    // flag and `RZEN_TRACE=<path>` name a file, the flag wins.
    let trace_path = trace_out.or(env_trace);
    if trace_path.is_some() {
        rzen_obs::trace::set_enabled(true);
    }

    let edges = spec.edge_ports();
    if edges.len() < 2 {
        fail("batch needs at least two edge ports (interfaces not used by any link)");
    }
    let mut queries = Vec::new();
    let mut labels = Vec::new();
    for &src in &edges {
        for &dst in &edges {
            if src == dst {
                continue;
            }
            queries.push(Query::Reach {
                net: spec.net.clone(),
                src,
                dst,
            });
            labels.push(format!(
                "reach {} -> {}",
                spec.endpoint_name(src),
                spec.endpoint_name(dst)
            ));
            queries.push(Query::Drops {
                net: spec.net.clone(),
                src,
                dst,
            });
            labels.push(format!(
                "drops {} -> {}",
                spec.endpoint_name(src),
                spec.endpoint_name(dst)
            ));
        }
    }

    println!(
        "{} edge ports, {} queries, {} workers",
        edges.len(),
        queries.len(),
        cfg.jobs
    );
    if profile_out.is_some() {
        rzen_obs::profile::reset();
        rzen_obs::profile::start(sample_hz);
    }
    let engine = Engine::new(cfg);
    let report = engine.run_batch(&queries);
    if let Some(path) = &profile_out {
        rzen_obs::profile::stop();
        let folded = rzen_obs::profile::cpu_folded();
        let samples: u64 = folded.iter().map(|(_, n)| n).sum();
        let out = if path.ends_with(".svg") {
            rzen_obs::flame::flamegraph_svg(
                &format!("CPU view · {samples} wall-clock span samples"),
                "samples",
                &folded,
            )
        } else {
            rzen_obs::profile::render_folded_cpu()
        };
        std::fs::write(path, out).unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        println!(
            "cpu profile -> {path} ({} stacks, {samples} samples at {sample_hz} Hz)",
            folded.len()
        );
    }
    for (r, label) in report.results.iter().zip(&labels) {
        let verdict = match &r.verdict {
            Verdict::Sat(_) => "SAT",
            Verdict::Unsat => "unsat",
            Verdict::Timeout => "TIMEOUT",
            Verdict::Cancelled => "cancelled",
            Verdict::Error(_) => "ERROR",
        };
        let via = if r.cache_hit {
            " (cache)".to_string()
        } else {
            match r.winner {
                Some(rzen::Backend::Bdd) => " (bdd)".to_string(),
                Some(rzen::Backend::Smt) => " (smt)".to_string(),
                None => String::new(),
            }
        };
        let detail = match &r.verdict {
            Verdict::Sat(rzen_engine::Witness::Packet(p)) => {
                format!("  witness {}", describe(&p.overlay_header))
            }
            _ => String::new(),
        };
        println!("  {label:<24} {verdict}{via}{detail}");
    }
    println!("{}", report.stats);

    if let Some(path) = &stats_json {
        std::fs::write(path, report.to_json())
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        println!("stats json -> {path}");
    }
    if let Some(path) = &verdicts_json {
        // Only the verdicts: latencies, winners, and session counters may
        // legitimately differ between runs (and between --sessions modes),
        // so this file is byte-stable for diffing mode against mode.
        let mut out = String::from("{\"verdicts\":[");
        for (i, r) in report.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let v = match &r.verdict {
                Verdict::Sat(_) => "sat",
                Verdict::Unsat => "unsat",
                Verdict::Timeout => "timeout",
                Verdict::Cancelled => "cancelled",
                Verdict::Error(_) => "error",
            };
            out.push_str(&format!(
                "{{\"index\":{},\"kind\":\"{}\",\"verdict\":\"{v}\"}}",
                r.index, r.kind
            ));
        }
        out.push_str("]}\n");
        std::fs::write(path, out).unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        println!("verdicts json -> {path}");
    }
    if rzen_obs::trace::enabled() {
        let events = rzen_obs::trace::take_events();
        if let Some(path) = &trace_path {
            std::fs::write(path, rzen_obs::export::chrome_trace(&events))
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
            println!("chrome trace -> {path} ({} events)", events.len());
        }
        if show_metrics {
            print!("{}", rzen_obs::export::phase_report(&events));
        }
    }
    if show_metrics {
        print!("{}", rzen_obs::metrics::registry().render_text());
        print!("{}", rzen_obs::flight::render_slow_text());
    }
}

/// `serve`: run the TCP query server until SIGTERM/ctrl-c, then drain
/// and flush a final metrics (and, when tracing, Chrome-trace) snapshot.
fn run_serve(spec_text: &str, flags: &[String]) {
    use std::io::Write as _;

    let mut cfg = rzen_serve::ServerConfig {
        addr: "127.0.0.1:7878".to_string(),
        handle_signals: true,
        // The CLI prefers the reactor; `start` falls back to threads on
        // platforms where the raw epoll syscalls aren't wired up.
        loop_mode: rzen_serve::LoopMode::Epoll,
        ..Default::default()
    };
    let mut i = 0;
    while i < flags.len() {
        match flags[i].as_str() {
            "--addr" => {
                let v = flags
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--addr needs HOST:PORT"));
                cfg.addr = v.clone();
                i += 2;
            }
            "--jobs" => {
                let v = flags.get(i + 1).unwrap_or_else(|| fail("--jobs needs N"));
                cfg.jobs = v
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --jobs {v:?}: {e}")));
                if cfg.jobs == 0 {
                    fail("--jobs must be at least 1");
                }
                i += 2;
            }
            "--backlog" => {
                let v = flags
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--backlog needs N"));
                cfg.backlog = v
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --backlog {v:?}: {e}")));
                i += 2;
            }
            "--timeout-ms" => {
                let v = flags
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--timeout-ms needs MS"));
                let ms: u64 = v
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --timeout-ms {v:?}: {e}")));
                cfg.timeout = Some(std::time::Duration::from_millis(ms));
                i += 2;
            }
            "--sessions" => {
                let v = flags
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--sessions needs on|off"));
                cfg.sessions = match v.as_str() {
                    "on" => true,
                    "off" => false,
                    other => fail(&format!("bad --sessions {other:?} (on|off)")),
                };
                i += 2;
            }
            "--backend" => {
                let v = flags
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--backend needs bdd|smt|portfolio"));
                cfg.backend = match v.as_str() {
                    "bdd" => rzen_engine::QueryBackend::Bdd,
                    "smt" => rzen_engine::QueryBackend::Smt,
                    "portfolio" => rzen_engine::QueryBackend::Portfolio,
                    other => fail(&format!("unknown backend {other:?} (bdd|smt|portfolio)")),
                };
                i += 2;
            }
            "--loop" => {
                let v = flags
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--loop needs epoll|threads"));
                cfg.loop_mode = match v.as_str() {
                    "epoll" => rzen_serve::LoopMode::Epoll,
                    "threads" => rzen_serve::LoopMode::Threads,
                    other => fail(&format!("bad --loop {other:?} (epoll|threads)")),
                };
                i += 2;
            }
            "--shards" => {
                let v = flags.get(i + 1).unwrap_or_else(|| fail("--shards needs N"));
                cfg.shards = v
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --shards {v:?}: {e}")));
                if cfg.shards == 0 {
                    fail("--shards must be at least 1");
                }
                i += 2;
            }
            "--idle-timeout-ms" => {
                let v = flags
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--idle-timeout-ms needs MS"));
                let ms: u64 = v
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --idle-timeout-ms {v:?}: {e}")));
                if ms == 0 {
                    fail("--idle-timeout-ms must be at least 1");
                }
                cfg.idle_timeout = Some(std::time::Duration::from_millis(ms));
                i += 2;
            }
            "--debug-ops" => {
                cfg.debug_ops = true;
                i += 1;
            }
            "--sample-hz" => {
                let v = flags
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--sample-hz needs N"));
                cfg.sample_hz = v
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --sample-hz {v:?}: {e}")));
                if cfg.sample_hz == 0 {
                    fail("--sample-hz must be at least 1");
                }
                i += 2;
            }
            "--flight-recorder-size" => {
                let v = flags
                    .get(i + 1)
                    .unwrap_or_else(|| fail("--flight-recorder-size needs N"));
                let n: usize = v
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("bad --flight-recorder-size {v:?}: {e}")));
                if n == 0 {
                    fail("--flight-recorder-size must be at least 1");
                }
                rzen_obs::flight::set_capacity(n);
                i += 2;
            }
            other => fail(&format!("unknown serve flag {other:?}")),
        }
    }

    let model = rzen_serve::Model::parse(spec_text).unwrap_or_else(|e| fail(&e));
    let handle =
        rzen_serve::start(cfg, model).unwrap_or_else(|e| fail(&format!("cannot bind: {e}")));
    // Exact bound address on a flushed line: CI and scripts parse this to
    // learn the port when --addr used :0.
    println!("listening on {}", handle.addr());
    let _ = std::io::stdout().flush();
    handle.join();

    // Final observability snapshot after the drain: every in-flight span
    // is closed by now, so the export is complete.
    eprint!("{}", rzen_obs::metrics::registry().render_text());
    if rzen_obs::trace::enabled() {
        if let Ok(path) = std::env::var("RZEN_TRACE") {
            if path != "1" {
                let events = rzen_obs::trace::take_events();
                std::fs::write(&path, rzen_obs::export::chrome_trace(&events))
                    .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
                eprintln!("chrome trace -> {path} ({} events)", events.len());
            }
        }
    }
    println!("drained; bye");
}
