//! Cofactoring and Graphviz export.

use crate::hash::{FastHashMap, FastHashSet};
use crate::manager::{Bdd, BddManager};

impl BddManager {
    /// The cofactor of `f` with variable `var` fixed to `val`.
    pub fn restrict(&mut self, f: Bdd, var: u32, val: bool) -> Bdd {
        let mut cache: FastHashMap<u32, u32> = FastHashMap::default();
        Bdd(self.restrict_rec(f.0, var, val, &mut cache))
    }

    fn restrict_rec(
        &mut self,
        f: u32,
        var: u32,
        val: bool,
        cache: &mut FastHashMap<u32, u32>,
    ) -> u32 {
        if f <= 1 {
            return f;
        }
        let n = self.node(f);
        if n.var > var {
            // Ordered: `var` cannot occur below this level.
            return f;
        }
        if n.var == var {
            return if val { n.hi } else { n.lo };
        }
        if let Some(&r) = cache.get(&f) {
            return r;
        }
        let lo = self.restrict_rec(n.lo, var, val, cache);
        let hi = self.restrict_rec(n.hi, var, val, cache);
        let r = self.mk(n.var, lo, hi);
        cache.insert(f, r);
        r
    }

    /// Render the BDD rooted at `f` in Graphviz dot format (solid = high
    /// edge, dashed = low edge). `var_name` labels the levels.
    pub fn to_dot(&self, f: Bdd, var_name: impl Fn(u32) -> String) -> String {
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        out.push_str("  nF [label=\"0\", shape=box];\n  nT [label=\"1\", shape=box];\n");
        let mut seen: FastHashSet<u32> = FastHashSet::default();
        let mut stack = vec![f.0];
        while let Some(id) = stack.pop() {
            if id <= 1 || !seen.insert(id) {
                continue;
            }
            let n = self.node(id);
            out.push_str(&format!("  n{} [label=\"{}\"];\n", id, var_name(n.var)));
            let tgt = |x: u32| {
                if x == 0 {
                    "nF".to_string()
                } else if x == 1 {
                    "nT".to_string()
                } else {
                    format!("n{x}")
                }
            };
            out.push_str(&format!("  n{} -> {} [style=dashed];\n", id, tgt(n.lo)));
            out.push_str(&format!("  n{} -> {};\n", id, tgt(n.hi)));
            stack.push(n.lo);
            stack.push(n.hi);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{BDD_FALSE, BDD_TRUE};

    #[test]
    fn restrict_is_cofactor() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.and(x, y);
        assert_eq!(m.restrict(f, 0, true), y);
        assert_eq!(m.restrict(f, 0, false), BDD_FALSE);
        let g = m.or(x, y);
        assert_eq!(m.restrict(g, 1, true), BDD_TRUE);
        // Restricting an absent variable is the identity.
        assert_eq!(m.restrict(f, 7, true), f);
    }

    #[test]
    fn shannon_expansion_roundtrip() {
        let mut m = BddManager::new();
        let vars: Vec<Bdd> = (0..4).map(|i| m.var(i)).collect();
        let t1 = m.xor(vars[0], vars[1]);
        let t2 = m.and(vars[2], vars[3]);
        let f = m.or(t1, t2);
        // f = (x0 ∧ f|x0=1) ∨ (¬x0 ∧ f|x0=0)
        let hi = m.restrict(f, 0, true);
        let lo = m.restrict(f, 0, false);
        let rebuilt = m.ite(vars[0], hi, lo);
        assert_eq!(rebuilt, f);
    }

    #[test]
    fn dot_output_mentions_all_nodes() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.xor(x, y);
        let dot = m.to_dot(f, |v| format!("x{v}"));
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("nT"));
        assert_eq!(dot.matches("label=\"x1\"").count(), 2); // two x1 nodes in xor
    }
}
