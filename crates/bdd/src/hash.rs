//! A small, fast, non-cryptographic hasher for the unique table and the
//! operation caches.
//!
//! The BDD unique table is the hottest data structure in the whole framework:
//! every `mk` call hashes a `(var, lo, hi)` triple. The default SipHash is
//! needlessly slow for that, and pulling in an external hasher crate would
//! violate the dependency budget, so we implement a multiply-xor hasher in
//! the spirit of FxHash here. It is not DoS-resistant; all keys are
//! internally generated node ids, so that is fine.

use std::hash::{BuildHasher, Hasher};

/// 64-bit multiply-xor hasher (FxHash-style).
#[derive(Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// `BuildHasher` producing the fast multiply-xor hasher.
#[derive(Clone, Copy, Default)]
pub struct FastHasherBuilder;

impl BuildHasher for FastHasherBuilder {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher::default()
    }
}

/// A `HashMap` keyed with the fast hasher.
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, FastHasherBuilder>;
/// A `HashSet` keyed with the fast hasher.
pub type FastHashSet<K> = std::collections::HashSet<K, FastHasherBuilder>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes_mostly() {
        // Sanity: hashing sequential keys should not collapse to few buckets.
        let mut seen = FastHashSet::default();
        for i in 0u64..10_000 {
            let mut h = FastHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert!(seen.len() > 9_990);
    }

    #[test]
    fn triple_hashing_disperses() {
        let mut seen = FastHashSet::default();
        for v in 0u32..20 {
            for lo in 0u32..20 {
                for hi in 0u32..20 {
                    let mut h = FastHasher::default();
                    h.write_u32(v);
                    h.write_u32(lo);
                    h.write_u32(hi);
                    seen.insert(h.finish());
                }
            }
        }
        assert_eq!(seen.len(), 20 * 20 * 20);
    }

    #[test]
    fn write_bytes_matches_incremental_padding() {
        let mut a = FastHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FastHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 0, 0, 0, 0, 0]));
        assert_eq!(a.finish(), b.finish());
    }
}
