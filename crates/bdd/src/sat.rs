//! Model extraction, counting, evaluation, and support computation.

use crate::hash::{FastHashMap, FastHashSet};
use crate::manager::{Bdd, BddManager, TERMINAL_LEVEL};

impl BddManager {
    /// The set of variables `f` depends on, sorted ascending.
    pub fn support(&self, f: Bdd) -> Vec<u32> {
        let mut vars = FastHashSet::default();
        let mut seen = FastHashSet::default();
        let mut stack = vec![f.0];
        while let Some(n) = stack.pop() {
            if n <= 1 || !seen.insert(n) {
                continue;
            }
            let node = self.node(n);
            vars.insert(node.var);
            stack.push(node.lo);
            stack.push(node.hi);
        }
        let mut out: Vec<u32> = vars.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Evaluate `f` under a total assignment.
    pub fn eval(&self, f: Bdd, assignment: impl Fn(u32) -> bool) -> bool {
        let mut cur = f.0;
        while cur > 1 {
            let n = self.node(cur);
            cur = if assignment(n.var) { n.hi } else { n.lo };
        }
        cur == 1
    }

    /// Number of satisfying assignments over variables `0..nvars`.
    ///
    /// Returned as `f64` because counts are astronomically large for wide
    /// packet spaces (2^104 for a 5-tuple header); exact counting is not
    /// needed by any analysis, only ratios and zero-checks.
    pub fn sat_count(&self, f: Bdd, nvars: u32) -> f64 {
        let vars: Vec<u32> = (0..nvars).collect();
        self.sat_count_over(f, &vars)
    }

    /// Number of satisfying assignments over an explicit variable set, which
    /// must include the support of `f`.
    pub fn sat_count_over(&self, f: Bdd, vars: &[u32]) -> f64 {
        let mut sorted = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let pos: FastHashMap<u32, u32> = sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let n = sorted.len() as u32;
        let mut cache: FastHashMap<u32, f64> = FastHashMap::default();
        let top_pos = self.count_pos(f.0, &pos, n);
        let c = self.sat_count_rec(f.0, &pos, n, &mut cache);
        c * 2f64.powi(top_pos as i32)
    }

    fn count_pos(&self, f: u32, pos: &FastHashMap<u32, u32>, n: u32) -> u32 {
        let var = self.node(f).var;
        if var == TERMINAL_LEVEL {
            n
        } else {
            *pos.get(&var)
                .expect("sat_count: support not covered by vars")
        }
    }

    fn sat_count_rec(
        &self,
        f: u32,
        pos: &FastHashMap<u32, u32>,
        n: u32,
        cache: &mut FastHashMap<u32, f64>,
    ) -> f64 {
        if f == 0 {
            return 0.0;
        }
        if f == 1 {
            return 1.0;
        }
        if let Some(&c) = cache.get(&f) {
            return c;
        }
        let node = self.node(f);
        let my_pos = self.count_pos(f, pos, n);
        let lo_pos = self.count_pos(node.lo, pos, n);
        let hi_pos = self.count_pos(node.hi, pos, n);
        let lo =
            self.sat_count_rec(node.lo, pos, n, cache) * 2f64.powi((lo_pos - my_pos - 1) as i32);
        let hi =
            self.sat_count_rec(node.hi, pos, n, cache) * 2f64.powi((hi_pos - my_pos - 1) as i32);
        let c = lo + hi;
        cache.insert(f, c);
        c
    }

    /// Find one satisfying (partial) assignment, as `(var, value)` pairs for
    /// the variables along a path from the root to the `true` terminal.
    /// Variables absent from the result are don't-cares. Returns `None` iff
    /// `f` is unsatisfiable.
    pub fn any_sat(&self, f: Bdd) -> Option<Vec<(u32, bool)>> {
        if f.0 == 0 {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f.0;
        while cur > 1 {
            let n = self.node(cur);
            // Prefer the low branch arbitrarily; either works since the BDD
            // is reduced (no child is the false terminal on *both* sides
            // unless the node itself is false).
            if n.lo != 0 {
                path.push((n.var, false));
                cur = n.lo;
            } else {
                path.push((n.var, true));
                cur = n.hi;
            }
        }
        debug_assert_eq!(cur, 1);
        Some(path)
    }

    /// Find one satisfying assignment, completed to a total assignment over
    /// `0..nvars` (don't-care variables default to `false`).
    pub fn any_sat_total(&self, f: Bdd, nvars: u32) -> Option<Vec<bool>> {
        let partial = self.any_sat(f)?;
        let mut total = vec![false; nvars as usize];
        for (v, b) in partial {
            total[v as usize] = b;
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{BDD_FALSE, BDD_TRUE};

    #[test]
    fn support_of_expression() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let z = m.var(5);
        let f = m.and(x, z);
        assert_eq!(m.support(f), vec![0, 5]);
        assert_eq!(m.support(BDD_TRUE), Vec::<u32>::new());
    }

    #[test]
    fn eval_follows_paths() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.xor(x, y);
        assert!(!m.eval(f, |_| false));
        assert!(m.eval(f, |v| v == 0));
        assert!(m.eval(f, |v| v == 1));
        assert!(!m.eval(f, |_| true));
    }

    #[test]
    fn sat_count_basics() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        assert_eq!(m.sat_count(BDD_TRUE, 3), 8.0);
        assert_eq!(m.sat_count(BDD_FALSE, 3), 0.0);
        assert_eq!(m.sat_count(x, 2), 2.0);
        let a = m.and(x, y);
        assert_eq!(m.sat_count(a, 2), 1.0);
        let o = m.or(x, y);
        assert_eq!(m.sat_count(o, 2), 3.0);
        let xo = m.xor(x, y);
        assert_eq!(m.sat_count(xo, 2), 2.0);
    }

    #[test]
    fn sat_count_over_sparse_vars() {
        let mut m = BddManager::new();
        let a = m.var(10);
        let b = m.var(20);
        let f = m.or(a, b);
        assert_eq!(m.sat_count_over(f, &[10, 20]), 3.0);
        assert_eq!(m.sat_count_over(f, &[10, 20, 30]), 6.0);
    }

    #[test]
    fn any_sat_finds_model() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let ny = m.not(y);
        let f = m.and(x, ny);
        let model = m.any_sat(f).unwrap();
        let get = |v: u32| model.iter().find(|&&(mv, _)| mv == v).map(|&(_, b)| b);
        assert_eq!(get(0), Some(true));
        assert_eq!(get(1), Some(false));
        assert!(m.any_sat(BDD_FALSE).is_none());
        assert_eq!(m.any_sat(BDD_TRUE), Some(vec![]));
    }

    #[test]
    fn any_sat_total_defaults_dont_cares() {
        let mut m = BddManager::new();
        let y = m.var(1);
        let total = m.any_sat_total(y, 3).unwrap();
        assert_eq!(total, vec![false, true, false]);
    }

    #[test]
    fn any_sat_model_evaluates_true() {
        let mut m = BddManager::new();
        let vs: Vec<Bdd> = (0..6).map(|i| m.var(i)).collect();
        let mut f = BDD_TRUE;
        for (i, &v) in vs.iter().enumerate() {
            let lit = if i % 2 == 0 { v } else { m.not(v) };
            f = m.and(f, lit);
        }
        let total = m.any_sat_total(f, 6).unwrap();
        assert!(m.eval(f, |v| total[v as usize]));
    }
}
