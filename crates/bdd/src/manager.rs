//! The BDD manager: node arena, unique table, and core Boolean operations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::hash::FastHashMap;

/// Point-in-time counters for a [`BddManager`], for benchmarking and the
/// query engine's observability layer.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BddStats {
    /// Total nodes in the arena (including the two terminals).
    pub nodes: usize,
    /// Entries in the unique (hash-consing) table.
    pub unique_entries: usize,
    /// Probes of the operation (computed) caches.
    pub cache_lookups: u64,
    /// Probes that hit.
    pub cache_hits: u64,
}

impl BddStats {
    /// Computed-cache hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }
}

/// A handle to a BDD node. Handles are plain 32-bit indices into the owning
/// [`BddManager`]'s arena, so they are `Copy` and comparing two handles for
/// equality decides semantic equivalence of the functions they denote
/// (canonicity of ROBDDs).
///
/// A `Bdd` is only meaningful together with the manager that created it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

/// The constant `false` function.
pub const BDD_FALSE: Bdd = Bdd(0);
/// The constant `true` function.
pub const BDD_TRUE: Bdd = Bdd(1);

/// Level assigned to the two terminal nodes; greater than every real
/// variable, so "top variable" comparisons need no special cases.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

#[derive(Clone, Copy)]
pub(crate) struct Node {
    pub(crate) var: u32,
    pub(crate) lo: u32,
    pub(crate) hi: u32,
}

/// A manager owning a forest of shared, reduced, ordered BDDs.
///
/// The integer index of a variable is its level in the global order:
/// variable 0 is the topmost. Callers pick the order by choosing indices.
/// Nodes are never garbage collected (network verification workloads build
/// monotonically and managers are short-lived); [`BddManager::clear_caches`]
/// drops the memoization tables if memory pressure matters.
pub struct BddManager {
    pub(crate) nodes: Vec<Node>,
    unique: FastHashMap<(u32, u32, u32), u32>,
    cache_and: FastHashMap<(u32, u32), u32>,
    cache_or: FastHashMap<(u32, u32), u32>,
    cache_xor: FastHashMap<(u32, u32), u32>,
    cache_not: FastHashMap<u32, u32>,
    cache_ite: FastHashMap<(u32, u32, u32), u32>,
    pub(crate) cache_exists: FastHashMap<(u32, u32), u32>,
    pub(crate) cache_and_exists: FastHashMap<(u32, u32, u32), u32>,
    pub(crate) cache_replace: FastHashMap<(u32, u32), u32>,
    pub(crate) varmaps: Vec<Vec<u32>>,
    pub(crate) varmap_index: FastHashMap<Vec<u32>, u32>,
    pub(crate) cubes: Vec<Vec<u32>>,
    pub(crate) cube_index: FastHashMap<Vec<u32>, u32>,
    num_vars: u32,
    /// Cooperative cancellation flag shared with the caller; polled in
    /// [`BddManager::mk`], the single choke point every operation funnels
    /// through.
    interrupt: Option<Arc<AtomicBool>>,
    /// Wall-clock cutoff with the same effect as the interrupt flag.
    deadline: Option<Instant>,
    /// Latched once the budget is observed exhausted: recursive operations
    /// unwind immediately (returning an arbitrary node) and stop writing
    /// to the operation caches.
    pub(crate) interrupted: bool,
    /// Call counter gating the (comparatively expensive) budget poll.
    mk_tick: u32,
    /// Last observed unique-table capacity, for resize trace events.
    obs_unique_cap: usize,
    cache_lookups: u64,
    cache_hits: u64,
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Create a manager with no variables.
    pub fn new() -> Self {
        let nodes = vec![
            Node {
                var: TERMINAL_LEVEL,
                lo: 0,
                hi: 0,
            },
            Node {
                var: TERMINAL_LEVEL,
                lo: 1,
                hi: 1,
            },
        ];
        BddManager {
            nodes,
            unique: FastHashMap::default(),
            cache_and: FastHashMap::default(),
            cache_or: FastHashMap::default(),
            cache_xor: FastHashMap::default(),
            cache_not: FastHashMap::default(),
            cache_ite: FastHashMap::default(),
            cache_exists: FastHashMap::default(),
            cache_and_exists: FastHashMap::default(),
            cache_replace: FastHashMap::default(),
            varmaps: Vec::new(),
            varmap_index: FastHashMap::default(),
            cubes: Vec::new(),
            cube_index: FastHashMap::default(),
            num_vars: 0,
            interrupt: None,
            deadline: None,
            interrupted: false,
            mk_tick: 0,
            obs_unique_cap: 0,
            cache_lookups: 0,
            cache_hits: 0,
        }
    }

    /// Install a cooperative budget: when the flag is raised by another
    /// thread, or the deadline passes, running operations unwind quickly.
    ///
    /// **Contract:** once [`BddManager::interrupted`] reports `true`, any
    /// `Bdd` handles returned by operations that were in flight are
    /// meaningless and the manager should be discarded (callers that
    /// rebuild per query, like the batch engine, simply drop it). The
    /// unique table and caches themselves are never corrupted — writes are
    /// suppressed while interrupted — so pre-existing handles stay valid.
    pub fn set_budget(&mut self, interrupt: Option<Arc<AtomicBool>>, deadline: Option<Instant>) {
        self.interrupt = interrupt;
        self.deadline = deadline;
        self.interrupted = false;
    }

    /// Has the budget installed by [`BddManager::set_budget`] been
    /// observed exhausted?
    pub fn interrupted(&self) -> bool {
        self.interrupted
    }

    /// Current substrate counters.
    pub fn stats(&self) -> BddStats {
        BddStats {
            nodes: self.nodes.len(),
            unique_entries: self.unique.len(),
            cache_lookups: self.cache_lookups,
            cache_hits: self.cache_hits,
        }
    }

    #[cold]
    fn poll_budget(&mut self) {
        if let Some(flag) = &self.interrupt {
            if flag.load(Ordering::Relaxed) {
                self.interrupted = true;
                return;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.interrupted = true;
            }
        }
    }

    /// Number of variables allocated so far (one past the highest index used).
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Total number of nodes in the arena (including both terminals).
    pub fn arena_size(&self) -> usize {
        self.nodes.len()
    }

    /// Drop all memoization caches (unique table is kept — it is required
    /// for canonicity).
    pub fn clear_caches(&mut self) {
        self.cache_and.clear();
        self.cache_or.clear();
        self.cache_xor.clear();
        self.cache_not.clear();
        self.cache_ite.clear();
        self.cache_exists.clear();
        self.cache_and_exists.clear();
        self.cache_replace.clear();
    }

    #[inline]
    pub(crate) fn node(&self, b: u32) -> Node {
        self.nodes[b as usize]
    }

    /// The level (variable index) labelling the root of `b`;
    /// `u32::MAX` for terminals.
    #[inline]
    pub fn level(&self, b: Bdd) -> u32 {
        self.nodes[b.0 as usize].var
    }

    /// The low (else) child. Panics on terminals.
    pub fn low(&self, b: Bdd) -> Bdd {
        assert!(!self.is_terminal(b), "terminals have no children");
        Bdd(self.nodes[b.0 as usize].lo)
    }

    /// The high (then) child. Panics on terminals.
    pub fn high(&self, b: Bdd) -> Bdd {
        assert!(!self.is_terminal(b), "terminals have no children");
        Bdd(self.nodes[b.0 as usize].hi)
    }

    /// Is `b` one of the two constant functions?
    #[inline]
    pub fn is_terminal(&self, b: Bdd) -> bool {
        b.0 <= 1
    }

    /// Hash-consing constructor: find-or-create the node `(var, lo, hi)`,
    /// applying the ROBDD reduction rule `lo == hi ⇒ child`.
    #[inline]
    pub(crate) fn mk(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        // Budget poll: `mk` is the choke point every operation funnels
        // through, so a counter-gated check here bounds cancellation
        // latency without touching the per-op hot paths.
        self.mk_tick = self.mk_tick.wrapping_add(1);
        if self.mk_tick & 0x0FFF == 0 && !self.interrupted {
            self.poll_budget();
        }
        // Trace gate: when tracing is disabled this is exactly one relaxed
        // atomic load and a branch — the hot-path overhead contract that
        // `tests/obs.rs` asserts.
        if rzen_obs::trace::enabled() {
            self.trace_mk();
        }
        if lo == hi {
            return lo;
        }
        debug_assert!(var < self.nodes[lo as usize].var && var < self.nodes[hi as usize].var);
        let key = (var, lo, hi);
        if let Some(&id) = self.unique.get(&key) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert(key, id);
        id
    }

    /// Trace-only bookkeeping for `mk`: counts calls and emits an instant
    /// event whenever the unique table reallocated since the last call
    /// (the "resize storm" signal). Reached only while tracing is enabled.
    fn trace_mk(&mut self) {
        rzen_obs::counter!(
            "bdd.mk.calls",
            "hash-consing constructor calls (traced runs)"
        )
        .inc();
        let cap = self.unique.capacity();
        if cap != self.obs_unique_cap {
            rzen_obs::trace::instant2(
                "bdd.unique.resize",
                "capacity",
                cap as u64,
                "entries",
                self.unique.len() as u64,
            );
            self.obs_unique_cap = cap;
        }
    }

    /// The positive literal of variable `v`.
    pub fn var(&mut self, v: u32) -> Bdd {
        self.num_vars = self.num_vars.max(v + 1);
        Bdd(self.mk(v, 0, 1))
    }

    /// The negative literal of variable `v`.
    pub fn nvar(&mut self, v: u32) -> Bdd {
        self.num_vars = self.num_vars.max(v + 1);
        Bdd(self.mk(v, 1, 0))
    }

    /// A constant function.
    pub fn constant(&self, b: bool) -> Bdd {
        if b {
            BDD_TRUE
        } else {
            BDD_FALSE
        }
    }

    /// Logical negation.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        Bdd(self.not_rec(f.0))
    }

    fn not_rec(&mut self, f: u32) -> u32 {
        match f {
            0 => 1,
            1 => 0,
            _ => {
                if self.interrupted {
                    return 0;
                }
                self.cache_lookups += 1;
                if let Some(&r) = self.cache_not.get(&f) {
                    self.cache_hits += 1;
                    return r;
                }
                let n = self.node(f);
                let lo = self.not_rec(n.lo);
                let hi = self.not_rec(n.hi);
                let r = self.mk(n.var, lo, hi);
                if !self.interrupted {
                    self.cache_not.insert(f, r);
                }
                r
            }
        }
    }

    /// Logical conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Bdd(self.and_rec(f.0, g.0))
    }

    fn and_rec(&mut self, f: u32, g: u32) -> u32 {
        // Terminal and trivial cases.
        if f == g {
            return f;
        }
        match (f, g) {
            (0, _) | (_, 0) => return 0,
            (1, x) | (x, 1) => return x,
            _ => {}
        }
        if self.interrupted {
            return 0;
        }
        let key = if f < g { (f, g) } else { (g, f) };
        self.cache_lookups += 1;
        if let Some(&r) = self.cache_and.get(&key) {
            self.cache_hits += 1;
            return r;
        }
        let nf = self.node(f);
        let ng = self.node(g);
        let var = nf.var.min(ng.var);
        let (flo, fhi) = if nf.var == var {
            (nf.lo, nf.hi)
        } else {
            (f, f)
        };
        let (glo, ghi) = if ng.var == var {
            (ng.lo, ng.hi)
        } else {
            (g, g)
        };
        let lo = self.and_rec(flo, glo);
        let hi = self.and_rec(fhi, ghi);
        let r = self.mk(var, lo, hi);
        if !self.interrupted {
            self.cache_and.insert(key, r);
        }
        r
    }

    /// Logical disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Bdd(self.or_rec(f.0, g.0))
    }

    fn or_rec(&mut self, f: u32, g: u32) -> u32 {
        if f == g {
            return f;
        }
        match (f, g) {
            (1, _) | (_, 1) => return 1,
            (0, x) | (x, 0) => return x,
            _ => {}
        }
        if self.interrupted {
            return 0;
        }
        let key = if f < g { (f, g) } else { (g, f) };
        self.cache_lookups += 1;
        if let Some(&r) = self.cache_or.get(&key) {
            self.cache_hits += 1;
            return r;
        }
        let nf = self.node(f);
        let ng = self.node(g);
        let var = nf.var.min(ng.var);
        let (flo, fhi) = if nf.var == var {
            (nf.lo, nf.hi)
        } else {
            (f, f)
        };
        let (glo, ghi) = if ng.var == var {
            (ng.lo, ng.hi)
        } else {
            (g, g)
        };
        let lo = self.or_rec(flo, glo);
        let hi = self.or_rec(fhi, ghi);
        let r = self.mk(var, lo, hi);
        if !self.interrupted {
            self.cache_or.insert(key, r);
        }
        r
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Bdd(self.xor_rec(f.0, g.0))
    }

    fn xor_rec(&mut self, f: u32, g: u32) -> u32 {
        if f == g {
            return 0;
        }
        match (f, g) {
            (0, x) | (x, 0) => return x,
            (1, x) | (x, 1) => return self.not_rec(x),
            _ => {}
        }
        if self.interrupted {
            return 0;
        }
        let key = if f < g { (f, g) } else { (g, f) };
        self.cache_lookups += 1;
        if let Some(&r) = self.cache_xor.get(&key) {
            self.cache_hits += 1;
            return r;
        }
        let nf = self.node(f);
        let ng = self.node(g);
        let var = nf.var.min(ng.var);
        let (flo, fhi) = if nf.var == var {
            (nf.lo, nf.hi)
        } else {
            (f, f)
        };
        let (glo, ghi) = if ng.var == var {
            (ng.lo, ng.hi)
        } else {
            (g, g)
        };
        let lo = self.xor_rec(flo, glo);
        let hi = self.xor_rec(fhi, ghi);
        let r = self.mk(var, lo, hi);
        if !self.interrupted {
            self.cache_xor.insert(key, r);
        }
        r
    }

    /// If-then-else: `f ? g : h`, the universal ternary connective.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        Bdd(self.ite_rec(f.0, g.0, h.0))
    }

    fn ite_rec(&mut self, f: u32, g: u32, h: u32) -> u32 {
        // Terminal cases.
        match f {
            1 => return g,
            0 => return h,
            _ => {}
        }
        if g == h {
            return g;
        }
        if g == 1 && h == 0 {
            return f;
        }
        if g == 0 && h == 1 {
            return self.not_rec(f);
        }
        // Delegate the two-operand shapes to the cheaper specialized ops so
        // their caches are shared.
        if h == 0 {
            return self.and_rec(f, g);
        }
        if g == 1 {
            return self.or_rec(f, h);
        }
        if self.interrupted {
            return 0;
        }
        let key = (f, g, h);
        self.cache_lookups += 1;
        if let Some(&r) = self.cache_ite.get(&key) {
            self.cache_hits += 1;
            return r;
        }
        let nf = self.node(f);
        let ng = self.node(g);
        let nh = self.node(h);
        let var = nf.var.min(ng.var).min(nh.var);
        let (flo, fhi) = if nf.var == var {
            (nf.lo, nf.hi)
        } else {
            (f, f)
        };
        let (glo, ghi) = if ng.var == var {
            (ng.lo, ng.hi)
        } else {
            (g, g)
        };
        let (hlo, hhi) = if nh.var == var {
            (nh.lo, nh.hi)
        } else {
            (h, h)
        };
        let lo = self.ite_rec(flo, glo, hlo);
        let hi = self.ite_rec(fhi, ghi, hhi);
        let r = self.mk(var, lo, hi);
        if !self.interrupted {
            self.cache_ite.insert(key, r);
        }
        r
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let nf = self.not(f);
        self.or(nf, g)
    }

    /// Biconditional `f ↔ g`.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// Difference `f ∧ ¬g`.
    pub fn diff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// Decide whether `f → g` is a tautology (i.e. `f ∧ ¬g` is unsat).
    pub fn implies_check(&mut self, f: Bdd, g: Bdd) -> bool {
        self.diff(f, g) == BDD_FALSE
    }

    /// Number of distinct nodes reachable from `f` (a size measure).
    pub fn node_count(&self, f: Bdd) -> usize {
        let mut seen = crate::hash::FastHashSet::default();
        let mut stack = vec![f.0];
        while let Some(n) = stack.pop() {
            if n <= 1 || !seen.insert(n) {
                continue;
            }
            let node = self.node(n);
            stack.push(node.lo);
            stack.push(node.hi);
        }
        seen.len() + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        let m = BddManager::new();
        assert_eq!(m.constant(true), BDD_TRUE);
        assert_eq!(m.constant(false), BDD_FALSE);
        assert!(m.is_terminal(BDD_TRUE));
    }

    #[test]
    fn var_canonical() {
        let mut m = BddManager::new();
        assert_eq!(m.var(3), m.var(3));
        assert_ne!(m.var(3), m.var(4));
        assert_eq!(m.num_vars(), 5);
    }

    #[test]
    fn and_or_identities() {
        let mut m = BddManager::new();
        let x = m.var(0);
        assert_eq!(m.and(x, BDD_TRUE), x);
        assert_eq!(m.and(x, BDD_FALSE), BDD_FALSE);
        assert_eq!(m.or(x, BDD_FALSE), x);
        assert_eq!(m.or(x, BDD_TRUE), BDD_TRUE);
        let nx = m.not(x);
        assert_eq!(m.and(x, nx), BDD_FALSE);
        assert_eq!(m.or(x, nx), BDD_TRUE);
    }

    #[test]
    fn de_morgan() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let a = m.and(x, y);
        let na = m.not(a);
        let nx = m.not(x);
        let ny = m.not(y);
        let o = m.or(nx, ny);
        assert_eq!(na, o);
    }

    #[test]
    fn xor_via_ite() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let ny = m.not(y);
        let xor1 = m.xor(x, y);
        let xor2 = m.ite(x, ny, y);
        assert_eq!(xor1, xor2);
    }

    #[test]
    fn ite_special_cases() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        assert_eq!(m.ite(BDD_TRUE, x, y), x);
        assert_eq!(m.ite(BDD_FALSE, x, y), y);
        assert_eq!(m.ite(x, BDD_TRUE, BDD_FALSE), x);
        let nx = m.not(x);
        assert_eq!(m.ite(x, BDD_FALSE, BDD_TRUE), nx);
        assert_eq!(m.ite(x, y, y), y);
    }

    #[test]
    fn reduction_rule() {
        let mut m = BddManager::new();
        let x = m.var(0);
        // x ? y-or-not-y : true  ==  true
        let y = m.var(1);
        let ny = m.not(y);
        let t = m.or(y, ny);
        assert_eq!(m.ite(x, t, BDD_TRUE), BDD_TRUE);
    }

    #[test]
    fn implies_and_iff() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let a = m.and(x, y);
        assert!(m.implies_check(a, x));
        assert!(!m.implies_check(x, a));
        let i1 = m.iff(x, y);
        let i2 = m.iff(y, x);
        assert_eq!(i1, i2);
    }

    #[test]
    fn node_count_counts_shared_dag() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.xor(x, y);
        // xor over 2 vars: 1 root + 2 children + 2 terminals.
        assert_eq!(m.node_count(f), 5);
    }

    #[test]
    fn clear_caches_preserves_semantics() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let a = m.and(x, y);
        m.clear_caches();
        let a2 = m.and(x, y);
        assert_eq!(a, a2);
    }

    #[test]
    fn stats_counters_move() {
        let mut m = BddManager::new();
        let vars: Vec<Bdd> = (0..8).map(|i| m.var(i)).collect();
        let mut f = BDD_TRUE;
        for w in vars.windows(2) {
            let x = m.xor(w[0], w[1]);
            f = m.and(f, x);
        }
        // Repeat the same ops so the computed caches actually hit.
        let mut g = BDD_TRUE;
        for w in vars.windows(2) {
            let x = m.xor(w[0], w[1]);
            g = m.and(g, x);
        }
        assert_eq!(f, g);
        let s = m.stats();
        assert!(s.nodes > 2);
        assert!(s.unique_entries > 0);
        assert!(s.cache_lookups > 0);
        assert!(s.cache_hits > 0);
        assert!(s.cache_hit_rate() > 0.0 && s.cache_hit_rate() <= 1.0);
    }

    #[test]
    fn pre_raised_interrupt_latches_and_unwinds() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let mut m = BddManager::new();
        let vars: Vec<Bdd> = (0..16).map(|i| m.var(i)).collect();

        let flag = Arc::new(AtomicBool::new(true));
        m.set_budget(Some(flag.clone()), None);
        assert!(!m.interrupted(), "set_budget resets the latch");

        // Enough mk() traffic to cross the poll gate.
        let mut f = BDD_FALSE;
        for _ in 0..64 {
            for w in vars.windows(2) {
                let x = m.xor(w[0], w[1]);
                f = m.or(f, x);
            }
            m.clear_caches();
            if m.interrupted() {
                break;
            }
        }
        assert!(m.interrupted(), "poll in mk() must observe the raised flag");

        // Clearing the budget restores normal operation on a fresh manager
        // state, and pre-existing handles still evaluate correctly.
        m.set_budget(None, None);
        assert!(!m.interrupted());
        let x = m.var(0);
        let y = m.var(1);
        let a = m.and(x, y);
        assert!(m.eval(a, |_| true));
        assert!(!m.eval(a, |v| v == 0));
    }

    #[test]
    fn expired_deadline_interrupts() {
        use std::time::Instant;

        let mut m = BddManager::new();
        let vars: Vec<Bdd> = (0..16).map(|i| m.var(i)).collect();
        m.set_budget(None, Some(Instant::now()));
        let mut f = BDD_FALSE;
        for _ in 0..64 {
            for w in vars.windows(2) {
                let x = m.xor(w[0], w[1]);
                f = m.or(f, x);
            }
            m.clear_caches();
            if m.interrupted() {
                break;
            }
        }
        assert!(m.interrupted());
    }
}
