//! Quantification and relational products.
//!
//! These operations are the engine behind rzen's state-set transformers:
//! `transform_forward(S) = rename(∃X. S(X) ∧ R(X,Y))` is one `and_exists`
//! (the classic pre/post *image* computation, cf. the model-checking
//! literature) followed by one `replace`.

use crate::cube::Cube;
use crate::manager::{Bdd, BddManager};

impl BddManager {
    /// Existential quantification `∃ vars. f`.
    pub fn exists(&mut self, f: Bdd, vars: Cube) -> Bdd {
        let _span = rzen_obs::span!("bdd.exists", "root" => f.0);
        Bdd(self.exists_rec(f.0, vars))
    }

    /// Universal quantification `∀ vars. f`.
    pub fn forall(&mut self, f: Bdd, vars: Cube) -> Bdd {
        let _span = rzen_obs::span!("bdd.forall", "root" => f.0);
        // ∀x.f = ¬∃x.¬f
        let nf = self.not(f);
        let e = self.exists(nf, vars);
        self.not(e)
    }

    fn exists_rec(&mut self, f: u32, vars: Cube) -> u32 {
        if f <= 1 {
            return f;
        }
        let n = self.node(f);
        if !self.cube_has_var_geq(vars, n.var) {
            // No quantified variable occurs in f.
            return f;
        }
        if self.interrupted {
            return 0;
        }
        let key = (f, vars.0);
        if let Some(&r) = self.cache_exists.get(&key) {
            return r;
        }
        let lo = self.exists_rec(n.lo, vars);
        let r = if self.cube_contains(vars, n.var) {
            if lo == 1 {
                1
            } else {
                let hi = self.exists_rec(n.hi, vars);
                self.or_raw(lo, hi)
            }
        } else {
            let hi = self.exists_rec(n.hi, vars);
            self.mk(n.var, lo, hi)
        };
        if !self.interrupted {
            self.cache_exists.insert(key, r);
        }
        r
    }

    /// The relational product `∃ vars. f ∧ g`, computed in one pass without
    /// materializing the (often much larger) conjunction `f ∧ g`.
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, vars: Cube) -> Bdd {
        let _span = rzen_obs::span!("bdd.and_exists", "f" => f.0, "g" => g.0);
        Bdd(self.and_exists_rec(f.0, g.0, vars))
    }

    fn and_exists_rec(&mut self, f: u32, g: u32, vars: Cube) -> u32 {
        if f == 0 || g == 0 {
            return 0;
        }
        if f == 1 {
            return self.exists_rec(g, vars);
        }
        if g == 1 || f == g {
            return self.exists_rec(f, vars);
        }
        let (f, g) = if f < g { (f, g) } else { (g, f) };
        let nf = self.node(f);
        let ng = self.node(g);
        let var = nf.var.min(ng.var);
        if !self.cube_has_var_geq(vars, var) {
            return self.and_raw(f, g);
        }
        if self.interrupted {
            return 0;
        }
        let key = (f, g, vars.0);
        if let Some(&r) = self.cache_and_exists.get(&key) {
            return r;
        }
        let (flo, fhi) = if nf.var == var {
            (nf.lo, nf.hi)
        } else {
            (f, f)
        };
        let (glo, ghi) = if ng.var == var {
            (ng.lo, ng.hi)
        } else {
            (g, g)
        };
        let r = if self.cube_contains(vars, var) {
            let lo = self.and_exists_rec(flo, glo, vars);
            if lo == 1 {
                1
            } else {
                let hi = self.and_exists_rec(fhi, ghi, vars);
                self.or_raw(lo, hi)
            }
        } else {
            let lo = self.and_exists_rec(flo, glo, vars);
            let hi = self.and_exists_rec(fhi, ghi, vars);
            self.mk(var, lo, hi)
        };
        if !self.interrupted {
            self.cache_and_exists.insert(key, r);
        }
        r
    }

    #[inline]
    fn or_raw(&mut self, f: u32, g: u32) -> u32 {
        self.or(Bdd(f), Bdd(g)).0
    }

    #[inline]
    fn and_raw(&mut self, f: u32, g: u32) -> u32 {
        self.and(Bdd(f), Bdd(g)).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::{BDD_FALSE, BDD_TRUE};

    #[test]
    fn exists_removes_variable() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.and(x, y);
        let c = m.cube(&[0]);
        // ∃x. x∧y = y
        assert_eq!(m.exists(f, c), y);
    }

    #[test]
    fn exists_of_tautology_pair() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let nx = m.not(x);
        let c = m.cube(&[0]);
        // ∃x. x = true; ∃x. ¬x = true
        assert_eq!(m.exists(x, c), BDD_TRUE);
        assert_eq!(m.exists(nx, c), BDD_TRUE);
    }

    #[test]
    fn exists_unrelated_var_is_identity() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.xor(x, y);
        let c = m.cube(&[5]);
        m.var(5);
        assert_eq!(m.exists(f, c), f);
    }

    #[test]
    fn forall_dual() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.or(x, y);
        let cx = m.cube(&[0]);
        // ∀x. x∨y = y
        assert_eq!(m.forall(f, cx), y);
        // ∀x. x = false
        assert_eq!(m.forall(x, cx), BDD_FALSE);
    }

    #[test]
    fn and_exists_equals_exists_of_and() {
        let mut m = BddManager::new();
        let vars: Vec<Bdd> = (0..4).map(|i| m.var(i)).collect();
        let f = {
            let a = m.xor(vars[0], vars[1]);
            m.or(a, vars[2])
        };
        let g = {
            let b = m.and(vars[1], vars[3]);
            m.iff(b, vars[0])
        };
        let c = m.cube(&[1, 3]);
        let direct = {
            let fg = m.and(f, g);
            m.exists(fg, c)
        };
        assert_eq!(m.and_exists(f, g, c), direct);
    }

    #[test]
    fn exists_multiple_vars() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        let xy = m.and(x, y);
        let f = m.and(xy, z);
        let c = m.cube(&[0, 1, 2]);
        assert_eq!(m.exists(f, c), BDD_TRUE);
        let empty = m.cube(&[]);
        assert_eq!(m.exists(f, empty), f);
    }
}
