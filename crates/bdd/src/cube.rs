//! Interned variable sets ("cubes") used as quantification domains.
//!
//! Quantification (`exists`, `forall`, `and_exists`) is memoized per
//! `(node, cube)` pair, so the set of quantified variables needs a stable,
//! cheap identity. The manager interns each distinct sorted variable set once
//! and hands out a small [`Cube`] id.

use crate::manager::BddManager;

/// An interned, sorted set of BDD variables, used to specify which variables
/// a quantifier eliminates. Obtain one from [`BddManager::cube`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Cube(pub(crate) u32);

impl BddManager {
    /// Intern the given variable set (duplicates are removed, order is
    /// irrelevant) and return its id.
    pub fn cube(&mut self, vars: &[u32]) -> Cube {
        let mut sorted: Vec<u32> = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        if let Some(&id) = self.cube_index.get(&sorted) {
            return Cube(id);
        }
        let id = self.cubes.len() as u32;
        self.cubes.push(sorted.clone());
        self.cube_index.insert(sorted, id);
        Cube(id)
    }

    /// The variables in a cube, sorted ascending.
    pub fn cube_vars(&self, c: Cube) -> &[u32] {
        &self.cubes[c.0 as usize]
    }

    pub(crate) fn cube_contains(&self, c: Cube, var: u32) -> bool {
        self.cubes[c.0 as usize].binary_search(&var).is_ok()
    }

    /// Does the cube contain any variable at or below (i.e. with index >=)
    /// the given level? Used to stop quantifier recursion early.
    pub(crate) fn cube_has_var_geq(&self, c: Cube, level: u32) -> bool {
        self.cubes[c.0 as usize]
            .last()
            .is_some_and(|&max| max >= level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_and_sorts() {
        let mut m = BddManager::new();
        let a = m.cube(&[3, 1, 2, 1]);
        let b = m.cube(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(m.cube_vars(a), &[1, 2, 3]);
    }

    #[test]
    fn distinct_sets_distinct_ids() {
        let mut m = BddManager::new();
        let a = m.cube(&[1, 2]);
        let b = m.cube(&[1, 3]);
        assert_ne!(a, b);
    }

    #[test]
    fn contains_and_geq() {
        let mut m = BddManager::new();
        let c = m.cube(&[2, 5, 9]);
        assert!(m.cube_contains(c, 5));
        assert!(!m.cube_contains(c, 4));
        assert!(m.cube_has_var_geq(c, 9));
        assert!(!m.cube_has_var_geq(c, 10));
        let empty = m.cube(&[]);
        assert!(!m.cube_has_var_geq(empty, 0));
    }
}
