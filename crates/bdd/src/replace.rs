//! Variable replacement (renaming) — the "BDD substitution operation" of
//! the paper's §6.
//!
//! rzen allocates separate variable blocks for the input and output spaces of
//! a state-set transformer, and converts sets between blocks at runtime with
//! [`BddManager::replace`]. When the mapping preserves variable order (the
//! common case: blocks are interleaved), renaming is a linear-time recursive
//! rewrite; otherwise it falls back to the general quantification-based
//! substitution `∃src. f ∧ ⋀ᵢ (srcᵢ ↔ dstᵢ)`.

use crate::manager::{Bdd, BddManager};

/// An interned variable mapping. Obtain one from [`BddManager::varmap`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VarMap(pub(crate) u32);

impl BddManager {
    /// Intern a variable mapping given as (source, target) pairs. Variables
    /// not mentioned map to themselves. Sources must be distinct.
    pub fn varmap(&mut self, pairs: &[(u32, u32)]) -> VarMap {
        let max = pairs
            .iter()
            .flat_map(|&(s, t)| [s, t])
            .max()
            .map_or(0, |m| m + 1);
        let mut table: Vec<u32> = (0..max).collect();
        for &(src, dst) in pairs {
            assert_eq!(
                table[src as usize], src,
                "duplicate source variable {src} in varmap"
            );
            table[src as usize] = dst;
        }
        if let Some(&id) = self.varmap_index.get(&table) {
            return VarMap(id);
        }
        let id = self.varmaps.len() as u32;
        self.varmaps.push(table.clone());
        self.varmap_index.insert(table, id);
        VarMap(id)
    }

    #[inline]
    fn map_var(&self, m: VarMap, v: u32) -> u32 {
        let t = &self.varmaps[m.0 as usize];
        t.get(v as usize).copied().unwrap_or(v)
    }

    /// Rename the variables of `f` according to `map`.
    ///
    /// Targets of non-identity entries must not occur in the support of `f`
    /// (renaming into occupied variables is ambiguous); this is checked in
    /// debug builds.
    pub fn replace(&mut self, f: Bdd, map: VarMap) -> Bdd {
        let support = self.support(f);
        debug_assert!(
            {
                let targets: Vec<u32> = support
                    .iter()
                    .filter(|&&v| self.map_var(map, v) != v)
                    .map(|&v| self.map_var(map, v))
                    .collect();
                targets.iter().all(|t| !support.contains(t))
            },
            "replace target overlaps support"
        );
        // Fast path: the mapping is order-preserving on the support.
        let monotone = support
            .windows(2)
            .all(|w| self.map_var(map, w[0]) < self.map_var(map, w[1]));
        if monotone {
            return Bdd(self.replace_rec(f.0, map));
        }
        // General path: substitution by constrain-and-quantify.
        let mut constraint = crate::manager::BDD_TRUE;
        let mut sources = Vec::new();
        for &v in &support {
            let t = self.map_var(map, v);
            if t != v {
                sources.push(v);
                let sv = self.var(v);
                let tv = self.var(t);
                let eq = self.iff(sv, tv);
                constraint = self.and(constraint, eq);
            }
        }
        let cube = self.cube(&sources);
        self.and_exists(f, constraint, cube)
    }

    fn replace_rec(&mut self, f: u32, map: VarMap) -> u32 {
        if f <= 1 {
            return f;
        }
        if self.interrupted {
            return 0;
        }
        let key = (f, map.0);
        if let Some(&r) = self.cache_replace.get(&key) {
            return r;
        }
        let n = self.node(f);
        let lo = self.replace_rec(n.lo, map);
        let hi = self.replace_rec(n.hi, map);
        let v = self.map_var(map, n.var);
        let r = self.mk(v, lo, hi);
        if !self.interrupted {
            self.cache_replace.insert(key, r);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_single_var() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let map = m.varmap(&[(0, 1)]);
        assert_eq!(m.replace(x, map), y);
    }

    #[test]
    fn rename_shift_block() {
        let mut m = BddManager::new();
        // interleaved blocks: evens are inputs, odds outputs.
        let x0 = m.var(0);
        let x2 = m.var(2);
        let f = m.and(x0, x2);
        let map = m.varmap(&[(0, 1), (2, 3)]);
        let y1 = m.var(1);
        let y3 = m.var(3);
        let expect = m.and(y1, y3);
        assert_eq!(m.replace(f, map), expect);
    }

    #[test]
    fn identity_map_is_noop() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.xor(x, y);
        let map = m.varmap(&[]);
        assert_eq!(m.replace(f, map), f);
    }

    #[test]
    fn non_monotone_rename_falls_back() {
        let mut m = BddManager::new();
        // f over vars {0,1}; swap-like rename to {3,2}: 0->3, 1->2 is not
        // order preserving (0<1 but 3>2).
        let x = m.var(0);
        let y = m.var(1);
        m.var(2);
        m.var(3);
        // f = x ∧ ¬y
        let ny = m.not(y);
        let f = m.and(x, ny);
        let map = m.varmap(&[(0, 3), (1, 2)]);
        let g = m.replace(f, map);
        // expected: var3 ∧ ¬var2
        let v3 = m.var(3);
        let v2 = m.var(2);
        let nv2 = m.not(v2);
        let expect = m.and(v3, nv2);
        assert_eq!(g, expect);
    }

    #[test]
    fn replace_preserves_sat_count() {
        let mut m = BddManager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.or(x, y);
        let map = m.varmap(&[(0, 4), (1, 5)]);
        let g = m.replace(f, map);
        assert_eq!(m.sat_count(f, 2), m.sat_count_over(g, &[4, 5]));
    }
}
