//! # rzen-bdd — reduced ordered binary decision diagrams
//!
//! A freestanding ROBDD package written for the rzen network-verification
//! framework. It is the substrate behind rzen's BDD solver backend and its
//! state-set transformer abstraction, and is also used directly by the
//! hand-optimized baseline verifier (`rzen-baselines`).
//!
//! Design goals follow the paper's requirements (Beckett & Mahajan,
//! HotNets '20, §6):
//!
//! * **Hash-consed nodes** in a flat arena with a unique table, so structural
//!   equality is pointer equality and `Bdd` handles are `Copy` 32-bit ids.
//! * **Operation caches** for the binary operators and `ite`, so each
//!   operation is polynomial in the sizes of its operands.
//! * **Quantification and relational products** (`exists`, `forall`,
//!   `and_exists`) for pre/post image computation used by state-set
//!   transformers.
//! * **Order-preserving variable replacement** (`replace`) implementing the
//!   paper's "convert between the sets of variables dynamically at runtime
//!   using a BDD substitution operation".
//!
//! Variable order is fixed at allocation time: the integer index of a
//! variable *is* its level in the order. Callers that need a good order (such
//! as rzen's interaction analysis, which interleaves variables compared for
//! equality) choose it by allocating variables in the desired sequence.
//!
//! ## Example
//!
//! ```
//! use rzen_bdd::BddManager;
//!
//! let mut m = BddManager::new();
//! let x = m.var(0);
//! let y = m.var(1);
//! let xy = m.and(x, y);
//! let or = m.or(x, y);
//! assert!(m.implies_check(xy, or));
//! assert_eq!(m.sat_count(xy, 2), 1.0);
//! ```

mod cube;
mod export;
mod hash;
mod manager;
mod quant;
mod replace;
mod sat;

pub use cube::Cube;
pub use hash::{FastHashMap, FastHashSet, FastHasherBuilder};
pub use manager::{Bdd, BddManager, BddStats, BDD_FALSE, BDD_TRUE};
pub use replace::VarMap;
