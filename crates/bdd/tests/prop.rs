//! Property-based tests for the BDD package: random Boolean formulas over a
//! small variable set are built both as BDDs and as naive truth tables; the
//! two representations must agree on every assignment, on satisfiability
//! counts, and under quantification.

use proptest::prelude::*;
use rzen_bdd::{Bdd, BddManager, BDD_FALSE, BDD_TRUE};

const NVARS: u32 = 5;

/// A formula AST we can evaluate both ways.
#[derive(Clone, Debug)]
enum Formula {
    Var(u32),
    Const(bool),
    Not(Box<Formula>),
    And(Box<Formula>, Box<Formula>),
    Or(Box<Formula>, Box<Formula>),
    Xor(Box<Formula>, Box<Formula>),
    Ite(Box<Formula>, Box<Formula>, Box<Formula>),
}

fn formula_strategy() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        (0..NVARS).prop_map(Formula::Var),
        any::<bool>().prop_map(Formula::Const),
    ];
    leaf.prop_recursive(4, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| Formula::Not(Box::new(f))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Formula::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Formula::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Formula::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

fn eval_formula(f: &Formula, assignment: u32) -> bool {
    match f {
        Formula::Var(v) => assignment & (1 << v) != 0,
        Formula::Const(b) => *b,
        Formula::Not(a) => !eval_formula(a, assignment),
        Formula::And(a, b) => eval_formula(a, assignment) && eval_formula(b, assignment),
        Formula::Or(a, b) => eval_formula(a, assignment) || eval_formula(b, assignment),
        Formula::Xor(a, b) => eval_formula(a, assignment) ^ eval_formula(b, assignment),
        Formula::Ite(c, a, b) => {
            if eval_formula(c, assignment) {
                eval_formula(a, assignment)
            } else {
                eval_formula(b, assignment)
            }
        }
    }
}

fn build_bdd(m: &mut BddManager, f: &Formula) -> Bdd {
    match f {
        Formula::Var(v) => m.var(*v),
        Formula::Const(b) => m.constant(*b),
        Formula::Not(a) => {
            let x = build_bdd(m, a);
            m.not(x)
        }
        Formula::And(a, b) => {
            let x = build_bdd(m, a);
            let y = build_bdd(m, b);
            m.and(x, y)
        }
        Formula::Or(a, b) => {
            let x = build_bdd(m, a);
            let y = build_bdd(m, b);
            m.or(x, y)
        }
        Formula::Xor(a, b) => {
            let x = build_bdd(m, a);
            let y = build_bdd(m, b);
            m.xor(x, y)
        }
        Formula::Ite(c, a, b) => {
            let x = build_bdd(m, c);
            let y = build_bdd(m, a);
            let z = build_bdd(m, b);
            m.ite(x, y, z)
        }
    }
}

proptest! {
    #[test]
    fn bdd_matches_truth_table(f in formula_strategy()) {
        let mut m = BddManager::new();
        for v in 0..NVARS { m.var(v); }
        let b = build_bdd(&mut m, &f);
        for a in 0..(1u32 << NVARS) {
            let expect = eval_formula(&f, a);
            let got = m.eval(b, |v| a & (1 << v) != 0);
            prop_assert_eq!(got, expect, "assignment {:05b}", a);
        }
    }

    #[test]
    fn sat_count_matches_enumeration(f in formula_strategy()) {
        let mut m = BddManager::new();
        for v in 0..NVARS { m.var(v); }
        let b = build_bdd(&mut m, &f);
        let expect = (0..(1u32 << NVARS)).filter(|&a| eval_formula(&f, a)).count();
        prop_assert_eq!(m.sat_count(b, NVARS), expect as f64);
    }

    #[test]
    fn any_sat_is_sound_and_complete(f in formula_strategy()) {
        let mut m = BddManager::new();
        for v in 0..NVARS { m.var(v); }
        let b = build_bdd(&mut m, &f);
        let exists = (0..(1u32 << NVARS)).any(|a| eval_formula(&f, a));
        match m.any_sat_total(b, NVARS) {
            None => prop_assert!(!exists),
            Some(total) => {
                prop_assert!(exists);
                let mut a = 0u32;
                for (v, &bit) in total.iter().enumerate() {
                    if bit { a |= 1 << v; }
                }
                prop_assert!(eval_formula(&f, a));
            }
        }
    }

    #[test]
    fn exists_matches_enumeration(f in formula_strategy(), qvar in 0..NVARS) {
        let mut m = BddManager::new();
        for v in 0..NVARS { m.var(v); }
        let b = build_bdd(&mut m, &f);
        let c = m.cube(&[qvar]);
        let e = m.exists(b, c);
        for a in 0..(1u32 << NVARS) {
            let a0 = a & !(1 << qvar);
            let a1 = a | (1 << qvar);
            let expect = eval_formula(&f, a0) || eval_formula(&f, a1);
            let got = m.eval(e, |v| a & (1 << v) != 0);
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn forall_matches_enumeration(f in formula_strategy(), qvar in 0..NVARS) {
        let mut m = BddManager::new();
        for v in 0..NVARS { m.var(v); }
        let b = build_bdd(&mut m, &f);
        let c = m.cube(&[qvar]);
        let e = m.forall(b, c);
        for a in 0..(1u32 << NVARS) {
            let a0 = a & !(1 << qvar);
            let a1 = a | (1 << qvar);
            let expect = eval_formula(&f, a0) && eval_formula(&f, a1);
            let got = m.eval(e, |v| a & (1 << v) != 0);
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn and_exists_matches_two_step(f in formula_strategy(), g in formula_strategy()) {
        let mut m = BddManager::new();
        for v in 0..NVARS { m.var(v); }
        let bf = build_bdd(&mut m, &f);
        let bg = build_bdd(&mut m, &g);
        let c = m.cube(&[0, 2, 4]);
        let one_step = m.and_exists(bf, bg, c);
        let conj = m.and(bf, bg);
        let two_step = m.exists(conj, c);
        prop_assert_eq!(one_step, two_step);
    }

    #[test]
    fn replace_shift_preserves_semantics(f in formula_strategy()) {
        let mut m = BddManager::new();
        // Allocate the shifted block too.
        for v in 0..(2 * NVARS) { m.var(v); }
        let b = build_bdd(&mut m, &f);
        let pairs: Vec<(u32, u32)> = (0..NVARS).map(|v| (v, v + NVARS)).collect();
        let map = m.varmap(&pairs);
        let shifted = m.replace(b, map);
        for a in 0..(1u32 << NVARS) {
            let expect = eval_formula(&f, a);
            let got = m.eval(shifted, |v| v >= NVARS && (a & (1 << (v - NVARS))) != 0);
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn tautology_check_consistent(f in formula_strategy()) {
        let mut m = BddManager::new();
        for v in 0..NVARS { m.var(v); }
        let b = build_bdd(&mut m, &f);
        let taut = (0..(1u32 << NVARS)).all(|a| eval_formula(&f, a));
        let unsat = (0..(1u32 << NVARS)).all(|a| !eval_formula(&f, a));
        prop_assert_eq!(b == BDD_TRUE, taut);
        prop_assert_eq!(b == BDD_FALSE, unsat);
    }
}
