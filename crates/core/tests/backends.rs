//! Cross-backend differential tests: the same model must behave
//! identically under the interpreter, the compiled VM, the BDD solver,
//! the SAT solver, and (soundly) the ternary evaluator. This is the
//! paper's central claim — one model, many analyses — as an executable
//! invariant.

use proptest::prelude::*;
use rzen::{zif, Backend, FindOptions, Zen, ZenFunction};

/// A small typed expression AST over an input pair (u8, u8) that we can
/// build into a model.
#[derive(Clone, Debug)]
enum Prog {
    InA,
    InB,
    Const(u8),
    Add(Box<Prog>, Box<Prog>),
    Sub(Box<Prog>, Box<Prog>),
    Mul(Box<Prog>, Box<Prog>),
    And(Box<Prog>, Box<Prog>),
    Or(Box<Prog>, Box<Prog>),
    Xor(Box<Prog>, Box<Prog>),
    Shl(Box<Prog>, Box<Prog>),
    Shr(Box<Prog>, Box<Prog>),
    IfLt(Box<Prog>, Box<Prog>, Box<Prog>, Box<Prog>),
    IfEq(Box<Prog>, Box<Prog>, Box<Prog>, Box<Prog>),
}

fn prog_strategy() -> impl Strategy<Value = Prog> {
    let leaf = prop_oneof![
        Just(Prog::InA),
        Just(Prog::InB),
        any::<u8>().prop_map(Prog::Const),
    ];
    leaf.prop_recursive(4, 48, 4, |inner| {
        let b = inner.clone();
        prop_oneof![
            (inner.clone(), b.clone()).prop_map(|(x, y)| Prog::Add(Box::new(x), Box::new(y))),
            (inner.clone(), b.clone()).prop_map(|(x, y)| Prog::Sub(Box::new(x), Box::new(y))),
            (inner.clone(), b.clone()).prop_map(|(x, y)| Prog::Mul(Box::new(x), Box::new(y))),
            (inner.clone(), b.clone()).prop_map(|(x, y)| Prog::And(Box::new(x), Box::new(y))),
            (inner.clone(), b.clone()).prop_map(|(x, y)| Prog::Or(Box::new(x), Box::new(y))),
            (inner.clone(), b.clone()).prop_map(|(x, y)| Prog::Xor(Box::new(x), Box::new(y))),
            (inner.clone(), b.clone()).prop_map(|(x, y)| Prog::Shl(Box::new(x), Box::new(y))),
            (inner.clone(), b.clone()).prop_map(|(x, y)| Prog::Shr(Box::new(x), Box::new(y))),
            (inner.clone(), b.clone(), b.clone(), b.clone()).prop_map(|(c1, c2, t, e)| {
                Prog::IfLt(Box::new(c1), Box::new(c2), Box::new(t), Box::new(e))
            }),
            (inner.clone(), b.clone(), b.clone(), b).prop_map(|(c1, c2, t, e)| {
                Prog::IfEq(Box::new(c1), Box::new(c2), Box::new(t), Box::new(e))
            }),
        ]
    })
}

/// Reference semantics in plain Rust.
fn run_native(p: &Prog, a: u8, b: u8) -> u8 {
    match p {
        Prog::InA => a,
        Prog::InB => b,
        Prog::Const(c) => *c,
        Prog::Add(x, y) => run_native(x, a, b).wrapping_add(run_native(y, a, b)),
        Prog::Sub(x, y) => run_native(x, a, b).wrapping_sub(run_native(y, a, b)),
        Prog::Mul(x, y) => run_native(x, a, b).wrapping_mul(run_native(y, a, b)),
        Prog::And(x, y) => run_native(x, a, b) & run_native(y, a, b),
        Prog::Or(x, y) => run_native(x, a, b) | run_native(y, a, b),
        Prog::Xor(x, y) => run_native(x, a, b) ^ run_native(y, a, b),
        Prog::Shl(x, y) => {
            let amt = run_native(y, a, b);
            if amt >= 8 {
                0
            } else {
                run_native(x, a, b) << amt
            }
        }
        Prog::Shr(x, y) => {
            let amt = run_native(y, a, b);
            if amt >= 8 {
                0
            } else {
                run_native(x, a, b) >> amt
            }
        }
        Prog::IfLt(c1, c2, t, e) => {
            if run_native(c1, a, b) < run_native(c2, a, b) {
                run_native(t, a, b)
            } else {
                run_native(e, a, b)
            }
        }
        Prog::IfEq(c1, c2, t, e) => {
            if run_native(c1, a, b) == run_native(c2, a, b) {
                run_native(t, a, b)
            } else {
                run_native(e, a, b)
            }
        }
    }
}

/// Build the same program as a Zen expression.
fn build_zen(p: &Prog, a: Zen<u8>, b: Zen<u8>) -> Zen<u8> {
    match p {
        Prog::InA => a,
        Prog::InB => b,
        Prog::Const(c) => Zen::val(*c),
        Prog::Add(x, y) => build_zen(x, a, b) + build_zen(y, a, b),
        Prog::Sub(x, y) => build_zen(x, a, b) - build_zen(y, a, b),
        Prog::Mul(x, y) => build_zen(x, a, b) * build_zen(y, a, b),
        Prog::And(x, y) => build_zen(x, a, b) & build_zen(y, a, b),
        Prog::Or(x, y) => build_zen(x, a, b) | build_zen(y, a, b),
        Prog::Xor(x, y) => build_zen(x, a, b) ^ build_zen(y, a, b),
        Prog::Shl(x, y) => build_zen(x, a, b) << build_zen(y, a, b),
        Prog::Shr(x, y) => build_zen(x, a, b) >> build_zen(y, a, b),
        Prog::IfLt(c1, c2, t, e) => zif(
            build_zen(c1, a, b).lt(build_zen(c2, a, b)),
            build_zen(t, a, b),
            build_zen(e, a, b),
        ),
        Prog::IfEq(c1, c2, t, e) => zif(
            build_zen(c1, a, b).eq(build_zen(c2, a, b)),
            build_zen(t, a, b),
            build_zen(e, a, b),
        ),
    }
}

fn as_function(p: &Prog) -> ZenFunction<(u8, u8), u8> {
    let p = p.clone();
    ZenFunction::new(move |input: Zen<(u8, u8)>| build_zen(&p, input.item1(), input.item2()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interpreter (simulation) and bytecode VM agree with native Rust.
    #[test]
    fn simulate_and_compile_match_native(p in prog_strategy(),
                                         inputs in prop::collection::vec((any::<u8>(), any::<u8>()), 4)) {
        let f = as_function(&p);
        let compiled = f.compile(0);
        for (a, b) in inputs {
            let expect = run_native(&p, a, b);
            prop_assert_eq!(f.evaluate(&(a, b)), expect);
            prop_assert_eq!(compiled.call(&(a, b)), expect);
        }
    }

    /// Both solver backends find correct witnesses and agree on
    /// satisfiability, checked against exhaustive enumeration.
    #[test]
    fn solvers_match_enumeration(p in prog_strategy(), target in any::<u8>()) {
        let f = as_function(&p);
        let exists = (0..=255u16).any(|a| (0..=255u16).step_by(17).any(|b| {
            run_native(&p, a as u8, b as u8) == target
        }));
        // Constrain b to multiples of 17 so enumeration stays fast and the
        // predicate is non-trivial.
        for backend in [Backend::Bdd, Backend::Smt] {
            let opts = FindOptions { backend, ..FindOptions::default() };
            let found = f.find(
                |input, out| {
                    let b = input.item2();
                    let is_mult = (0..=255u16).step_by(17)
                        .map(|k| b.eq(Zen::val(k as u8)))
                        .reduce(|x, y| x.or(y))
                        .unwrap();
                    out.eq(Zen::val(target)).and(is_mult)
                },
                &opts,
            );
            match found {
                Some((a, b)) => {
                    prop_assert!(b % 17 == 0);
                    prop_assert_eq!(run_native(&p, a, b), target, "backend {:?}", backend);
                }
                None => prop_assert!(!exists, "backend {:?} missed a witness", backend),
            }
        }
    }

    /// The ternary evaluator is sound: with fully-known inputs it is
    /// exact; with unknown inputs, whenever it claims a definite result,
    /// that result matches the concrete semantics for every input.
    #[test]
    fn ternary_is_sound(p in prog_strategy(), a in any::<u8>(), b in any::<u8>()) {
        // Fully concrete: must be exact.
        let expr = build_zen(&p, Zen::val(a), Zen::val(b));
        let t = rzen::with_ctx(|ctx| rzen::backend::ternary::eval(ctx, expr.expr_id(), None));
        let conc = rzen::with_ctx(|ctx| t.concrete(ctx));
        let expect = run_native(&p, a, b);
        prop_assert_eq!(conc, Some(rzen::Value::int(rzen::Sort::bv(8), expect as u64)));

        // Partially known (b unknown): definite output bits must hold for
        // every b.
        let sym_b = Zen::<u8>::symbolic(0);
        let expr = build_zen(&p, Zen::val(a), sym_b);
        let t = rzen::with_ctx(|ctx| rzen::backend::ternary::eval(ctx, expr.expr_id(), None));
        if let Some(v) = rzen::with_ctx(|ctx| t.concrete(ctx)) {
            // Output is fully determined: check against a few concrete b.
            for b in [0u8, 1, 17, 255] {
                prop_assert_eq!(v.as_bits() as u8, run_native(&p, a, b));
            }
        }
    }
}

#[test]
fn find_agreement_on_structured_model() {
    // A model with structs, options and comparisons, checked on both
    // backends for the same verification outcome.
    let f = ZenFunction::new(|x: Zen<u32>| {
        let masked = x & 0xFFFF_0000u32;
        zif(
            masked.eq(Zen::val(0x0A00_0000)),
            Zen::some(x),
            Zen::<Option<u32>>::none(0),
        )
    });
    for backend in [Backend::Bdd, Backend::Smt] {
        let opts = FindOptions {
            backend,
            ..FindOptions::default()
        };
        let w = f.find(|_, out| out.is_some(), &opts).unwrap();
        assert_eq!(w & 0xFFFF_0000, 0x0A00_0000, "{backend:?}");
        assert!(f
            .find(
                |x, out| out.is_some().and(x.lt(Zen::val(0x0A00_0000))),
                &opts
            )
            .is_none());
    }
}

#[test]
fn ordering_ablation_same_answers() {
    // Disabling the interaction analysis must not change results, only
    // performance. (u16, not u32: without interleaving, equality of two
    // sequentially-ordered w-bit variables needs O(2^w) BDD nodes — the
    // blowup the paper's §6 heuristic exists to avoid.)
    let f = ZenFunction::new(|p: Zen<(u16, u16)>| p.item1().eq(p.item2()));
    let with = FindOptions {
        ordering_analysis: true,
        ..FindOptions::bdd()
    };
    let without = FindOptions {
        ordering_analysis: false,
        ..FindOptions::bdd()
    };
    let (a1, b1) = f.find(|_, out| out, &with).unwrap();
    let (a2, b2) = f.find(|_, out| out, &without).unwrap();
    assert_eq!(a1, b1);
    assert_eq!(a2, b2);
}

#[test]
fn compiled_function_handles_structs_and_lists() {
    let f = ZenFunction::new(|l: Zen<Vec<u16>>| l.fold(Zen::val(0u16), |acc, x| acc + x));
    let compiled = f.compile(4);
    assert_eq!(compiled.call(&vec![1, 2, 3]), 6);
    assert_eq!(compiled.call(&vec![]), 0);
    assert_eq!(compiled.call(&vec![10, 20, 30, 40]), 100);
    // Lists longer than the bound are truncated by the compiled shape.
    assert_eq!(compiled.call(&vec![1, 1, 1, 1, 1]), 4);
    assert!(compiled.size() > 0);
}

#[test]
fn generate_inputs_covers_branches() {
    // A 4-way decision ladder: expect one input per branch.
    let f = ZenFunction::new(|x: Zen<u8>| {
        zif(
            x.lt(Zen::val(10)),
            Zen::val(0u8),
            zif(
                x.lt(Zen::val(100)),
                Zen::val(1u8),
                zif(x.lt(Zen::val(200)), Zen::val(2u8), Zen::val(3u8)),
            ),
        )
    });
    let inputs = f.generate_inputs(&FindOptions::smt(), 16);
    let classes: std::collections::BTreeSet<u8> = inputs.iter().map(|&x| f.evaluate(&x)).collect();
    assert_eq!(classes, (0..=3).collect());
}
