//! API-surface tests: multi-argument functions, input generation edge
//! cases, folding-off equivalence, rendering, and compiled functions over
//! composite types.

use rzen::{pair, zif, Backend, FindOptions, ZMap, Zen, ZenFunction, ZenFunction2, ZenFunction3};

#[test]
fn two_argument_functions() {
    let f = ZenFunction2::new(|a: Zen<u8>, b: Zen<u8>| a + b);
    assert_eq!(f.evaluate(&200, &100), 44); // wraps
    let (a, b) = f
        .find(
            |a, b, out| {
                out.eq(Zen::val(0))
                    .and(a.ne(Zen::val(0)))
                    .and(b.ne(Zen::val(0)))
            },
            &FindOptions::bdd(),
        )
        .unwrap();
    assert_eq!(a.wrapping_add(b), 0);
    assert_ne!(a, 0);
}

#[test]
fn three_argument_functions() {
    let f = ZenFunction3::new(|a: Zen<u8>, b: Zen<u8>, c: Zen<bool>| zif(c, a, b));
    assert_eq!(f.evaluate(&1, &2, &true), 1);
    assert_eq!(f.evaluate(&1, &2, &false), 2);
    let w = f.find(
        |a, _, c, out| c.and(out.eq(Zen::val(9))).and(a.eq(Zen::val(9))),
        &FindOptions::smt(),
    );
    let (a, _, c) = w.unwrap();
    assert!(c);
    assert_eq!(a, 9);
}

#[test]
fn find_over_map_inputs() {
    // Find a map binding key 3 to a value above 100.
    let f = ZenFunction::new(|m: Zen<ZMap<u8, u16>>| m.get(Zen::val(3)).value_or(Zen::val(0)));
    for opts in [FindOptions::bdd(), FindOptions::smt()] {
        let m = f
            .find(|_, out| out.gt(Zen::val(100)), &opts.with_list_bound(2))
            .expect("such a map exists");
        assert!(*m.get(&3).unwrap() > 100);
    }
}

#[test]
fn generate_inputs_respects_limit_and_dedups() {
    let f = ZenFunction::new(|x: Zen<u8>| zif(x.lt(Zen::val(128)), Zen::val(0u8), Zen::val(1u8)));
    let inputs = f.generate_inputs(&FindOptions::smt(), 1);
    assert_eq!(inputs.len(), 1);
    let inputs = f.generate_inputs(&FindOptions::smt(), 100);
    // Two branches → two distinct inputs, no duplicates.
    assert_eq!(inputs.len(), 2);
    let classes: std::collections::BTreeSet<u8> = inputs.iter().map(|&x| f.evaluate(&x)).collect();
    assert_eq!(classes.len(), 2);
}

#[test]
fn generate_inputs_skips_infeasible_paths() {
    // The inner branch condition contradicts the outer one: only 3 of
    // the 4 paths are feasible.
    let f = ZenFunction::new(|x: Zen<u8>| {
        zif(
            x.lt(Zen::val(10)),
            zif(x.gt(Zen::val(200)), Zen::val(0u8), Zen::val(1u8)), // 0 infeasible
            zif(x.gt(Zen::val(200)), Zen::val(2u8), Zen::val(3u8)),
        )
    });
    let inputs = f.generate_inputs(&FindOptions::smt(), 16);
    let classes: std::collections::BTreeSet<u8> = inputs.iter().map(|&x| f.evaluate(&x)).collect();
    assert_eq!(classes, [1u8, 2, 3].into_iter().collect());
}

#[test]
fn generate_inputs_on_branch_free_model() {
    let f = ZenFunction::new(|x: Zen<u8>| x + 1u8);
    let inputs = f.generate_inputs(&FindOptions::smt(), 8);
    assert_eq!(inputs.len(), 1); // single trivial path
}

#[test]
fn folding_off_preserves_semantics() {
    let run = |fold: bool| -> (u8, Option<(u8, u8)>) {
        rzen::set_folding(fold);
        let f = ZenFunction2::new(|a: Zen<u8>, b: Zen<u8>| {
            let s = (a + b) * 2u8;
            zif(s.lt(Zen::val(10)), s + 0u8, s & 0xFEu8)
        });
        let sim = f.evaluate(&3, &1);
        let found = f.find(
            |_, _, out| out.eq(Zen::val(8)),
            &FindOptions {
                backend: Backend::Smt,
                ..FindOptions::default()
            },
        );
        rzen::set_folding(true);
        (sim, found)
    };
    let (sim_on, found_on) = run(true);
    let (sim_off, found_off) = run(false);
    assert_eq!(sim_on, sim_off);
    assert_eq!(found_on.is_some(), found_off.is_some());
    // Both witnesses genuinely produce 8.
    for (a, b) in [found_on, found_off].into_iter().flatten() {
        assert_eq!(a.wrapping_add(b).wrapping_mul(2) & 0xFE, 8);
    }
}

#[test]
fn compiled_function_on_tuples_and_options() {
    let f = ZenFunction::new(|t: Zen<(u8, Option<u16>)>| {
        t.item2().value_or(Zen::val(7u16)) + (Zen::val(0u16))
    });
    let c = f.compile(0);
    assert_eq!(c.call(&(1, Some(300))), 300);
    assert_eq!(c.call(&(1, None)), 7);
}

#[test]
fn render_produces_readable_models() {
    rzen::reset_ctx();
    let x = Zen::<u16>::symbolic(0);
    let model = zif(x.lt(Zen::val(100)), x * 2u16, x);
    let s = rzen::render(model);
    assert!(s.contains("if ("), "{s}");
    assert!(s.contains("* 2"), "{s}");
}

#[test]
fn verify_on_pair_model() {
    // a ≤ max(a,b) for all a, b.
    let max =
        ZenFunction::new(|p: Zen<(u32, u32)>| zif(p.item1().ge(p.item2()), p.item1(), p.item2()));
    assert!(max
        .verify(
            |p, out| out.ge(p.item1()).and(out.ge(p.item2())),
            &FindOptions::bdd()
        )
        .is_ok());
    // And the claim max == a is refutable.
    assert!(max
        .verify(|p, out| out.eq(p.item1()), &FindOptions::bdd())
        .is_err());
}

#[test]
fn pair_and_tuple_builders() {
    let f = ZenFunction::new(|x: Zen<u8>| pair(x, x + 1u8).item2());
    assert_eq!(f.evaluate(&4), 5);
}

#[test]
fn signed_models_roundtrip_through_solvers() {
    let f = ZenFunction::new(|x: Zen<i16>| x.lt(Zen::val(0)));
    for opts in [FindOptions::bdd(), FindOptions::smt()] {
        let w = f.find(|_, out| out, &opts).unwrap();
        assert!(w < 0);
        let w = f
            .find(|x, out| (!out).and(x.gt(Zen::val(1000))), &opts)
            .unwrap();
        assert!(w > 1000);
    }
}

#[test]
fn u64_solver_roundtrip() {
    let f = ZenFunction::new(|x: Zen<u64>| x + u64::MAX); // == x - 1
    assert_eq!(f.evaluate(&5), 4);
    for opts in [FindOptions::bdd(), FindOptions::smt()] {
        let w = f.find(|_, out| out.eq(Zen::val(u64::MAX)), &opts).unwrap();
        assert_eq!(w, 0);
    }
}

#[test]
fn casts_widen_and_truncate() {
    // Widening: u8 -> u16 zero-extends.
    let f = ZenFunction::new(|x: Zen<u8>| x.cast::<u16>() + 1u16);
    assert_eq!(f.evaluate(&0xFF), 0x100);
    // Sign-extension: i8 -> i16.
    let g = ZenFunction::new(|x: Zen<i8>| x.cast::<i16>());
    assert_eq!(g.evaluate(&-2), -2);
    // Narrowing truncates.
    let h = ZenFunction::new(|x: Zen<u16>| x.cast::<u8>());
    assert_eq!(h.evaluate(&0x1234), 0x34);
    // Re-typing at same width changes comparison semantics.
    let r = ZenFunction::new(|x: Zen<u8>| x.cast::<i8>().lt(Zen::val(0)));
    assert!(r.evaluate(&0x80));
    assert!(!r.evaluate(&0x7F));
}

#[test]
fn casts_agree_across_backends() {
    // Sum two ports in a wider type to avoid wrap, then verify overflow
    // behaviour precisely — the kind of model casts exist for.
    let f = ZenFunction::new(|p: Zen<(u8, u8)>| p.item1().cast::<u16>() + p.item2().cast::<u16>());
    let compiled = f.compile(0);
    for (a, b) in [(200u8, 100u8), (255, 255), (0, 0)] {
        let expect = a as u16 + b as u16;
        assert_eq!(f.evaluate(&(a, b)), expect);
        assert_eq!(compiled.call(&(a, b)), expect);
    }
    for opts in [FindOptions::bdd(), FindOptions::smt()] {
        let (a, b) = f
            .find(|_, out| out.eq(Zen::val(510u16)), &opts)
            .expect("255 + 255 reaches 510");
        assert_eq!((a, b), (255, 255));
        assert!(f.find(|_, out| out.gt(Zen::val(510u16)), &opts).is_none());
    }
}

#[test]
fn cast_roundtrip_with_ternary() {
    rzen::reset_ctx();
    let x = Zen::<u8>::val(0xAB);
    let e = x.cast::<u32>().cast::<u8>();
    let t = rzen::with_ctx(|ctx| rzen::backend::ternary::eval(ctx, e.expr_id(), None));
    let v = rzen::with_ctx(|ctx| t.concrete(ctx));
    assert_eq!(v, Some(rzen::Value::int(rzen::Sort::bv(8), 0xAB)));
}

#[test]
fn list_bound_zero_means_only_empty_lists() {
    let f = ZenFunction::new(|l: Zen<Vec<u8>>| l.is_empty());
    // With bound 0 the only symbolic list is empty: no counterexample.
    assert!(f
        .find(|_, out| !out, &FindOptions::bdd().with_list_bound(0))
        .is_none());
    let w = f
        .find(|_, out| out, &FindOptions::smt().with_list_bound(0))
        .unwrap();
    assert!(w.is_empty());
}

#[test]
fn nil_list_operations_are_total() {
    let f = ZenFunction::new(|_: Zen<bool>| {
        let nil = Zen::<Vec<u16>>::nil();
        nil.tail().length() + nil.length() + nil.retain(|_| Zen::bool(true)).length()
    });
    assert_eq!(f.evaluate(&true), 0);
    let g = ZenFunction::new(|_: Zen<bool>| Zen::<Vec<u16>>::nil().head());
    assert_eq!(g.evaluate(&true), None);
    let h = ZenFunction::new(|_: Zen<bool>| Zen::<Vec<u16>>::nil().contains(Zen::val(3)));
    assert!(!h.evaluate(&true));
}

#[test]
fn shift_by_full_width_and_beyond() {
    let f = ZenFunction2::new(|x: Zen<u8>, s: Zen<u8>| x << s);
    assert_eq!(f.evaluate(&0xFF, &8), 0);
    assert_eq!(f.evaluate(&0xFF, &200), 0);
    let g = ZenFunction2::new(|x: Zen<i8>, s: Zen<i8>| x >> s);
    assert_eq!(g.evaluate(&-1, &100), -1); // arithmetic fill
                                           // Solver agreement on the saturating semantics.
    for opts in [FindOptions::bdd(), FindOptions::smt()] {
        let w = f.find(
            |x, s, out| {
                x.eq(Zen::val(1))
                    .and(s.ge(Zen::val(8)))
                    .and(out.ne(Zen::val(0)))
            },
            &opts,
        );
        assert!(w.is_none(), "shifting past the width always yields zero");
    }
}

#[test]
fn deeply_nested_options() {
    let f = ZenFunction::new(|o: Zen<Option<Option<u8>>>| {
        o.value_or(Zen::none(0)).value_or(Zen::val(42))
    });
    assert_eq!(f.evaluate(&Some(Some(7))), 7);
    assert_eq!(f.evaluate(&Some(None)), 42);
    assert_eq!(f.evaluate(&None), 42);
    // Solvers can distinguish the three shapes.
    let w = f
        .find(
            |o, out| {
                o.is_some()
                    .and(o.value().is_none())
                    .and(out.eq(Zen::val(42)))
            },
            &FindOptions::bdd(),
        )
        .unwrap();
    assert_eq!(w, Some(None));
}

#[test]
fn empty_map_lookups() {
    let f =
        ZenFunction::new(|_: Zen<bool>| Zen::<ZMap<u8, u8>>::empty().get(Zen::val(1)).is_none());
    assert!(f.evaluate(&true));
}
