//! State-set and transformer semantics, checked against brute-force
//! enumeration on small domains.

use rzen::{zen_struct, zif, TransformerSpace, Zen, ZenFunction};

#[test]
fn set_algebra() {
    let space = TransformerSpace::new();
    let evens = space.set_of::<u8>(|x| (x & 1u8).eq(Zen::val(0)));
    let small = space.set_of::<u8>(|x| x.lt(Zen::val(10)));
    assert_eq!(evens.count(), 128.0);
    assert_eq!(small.count(), 10.0);
    assert_eq!(evens.intersect(&small).count(), 5.0);
    assert_eq!(evens.union(&small).count(), 128.0 + 5.0);
    assert_eq!(evens.minus(&small).count(), 123.0);
    assert_eq!(evens.complement().count(), 128.0);
    assert!(space.empty::<u8>().is_empty());
    assert!(space.full::<u8>().is_full());
    assert!(evens.intersect(&evens.complement()).is_empty());
    assert!(small.subset_of(&space.full::<u8>()));
    assert!(!evens.subset_of(&small));
}

#[test]
fn singleton_and_element() {
    let space = TransformerSpace::new();
    let s = space.singleton::<u8>(&42);
    assert_eq!(s.count(), 1.0);
    assert_eq!(s.element(), Some(42));
    assert_eq!(space.empty::<u8>().element(), None);
}

#[test]
fn forward_image_matches_enumeration() {
    let f = ZenFunction::new(|x: Zen<u8>| (x >> 1u8) + 3u8);
    let space = TransformerSpace::new();
    let t = f.transformer(&space);
    let input = space.set_of::<u8>(|x| x.lt(Zen::val(16)));
    let image = t.transform_forward(&input);
    // Brute force: {f(x) | x < 16}
    let expect: std::collections::BTreeSet<u8> =
        (0u8..16).map(|x| (x >> 1).wrapping_add(3)).collect();
    assert_eq!(image.count(), expect.len() as f64);
    for y in expect {
        let single = space.singleton::<u8>(&y);
        assert!(!image.intersect(&single).is_empty(), "missing {y}");
    }
}

#[test]
fn reverse_image_matches_enumeration() {
    let f = ZenFunction::new(|x: Zen<u8>| x & 0x0Fu8);
    let space = TransformerSpace::new();
    let t = f.transformer(&space);
    let target = space.singleton::<u8>(&5);
    let pre = t.transform_reverse(&target);
    // Brute force: {x | x & 0x0F == 5} — 16 values.
    assert_eq!(pre.count(), 16.0);
    let expect: Vec<u8> = (0u8..=255).filter(|x| x & 0x0F == 5).collect();
    for x in expect {
        assert!(!pre.intersect(&space.singleton(&x)).is_empty());
    }
}

// Pointwise duality: y ∈ fwd({x}) ⟺ x ∈ rev({y}).
#[test]
fn forward_reverse_duality() {
    let f = ZenFunction::new(|x: Zen<u8>| (x * 3u8) ^ 0x5Au8);
    let space = TransformerSpace::new();
    let t = f.transformer(&space);
    for x in [0u8, 1, 17, 200, 255] {
        let y_set = t.transform_forward(&space.singleton(&x));
        let y = y_set.element().expect("image of a singleton is nonempty");
        assert_eq!(y_set.count(), 1.0);
        let back = t.transform_reverse(&space.singleton(&y));
        assert!(!back.intersect(&space.singleton(&x)).is_empty());
    }
}

#[test]
fn transformer_on_struct_type() {
    zen_struct! {
        pub struct Hdr : HdrFields {
            dst, with_dst: u16;
            ttl, with_ttl: u8;
        }
    }
    // A hop: decrement TTL; drop (ttl = 0 stays 0) modeled by saturation.
    let hop = ZenFunction::new(|h: Zen<Hdr>| {
        let new_ttl = zif(h.ttl().eq(Zen::val(0)), Zen::val(0u8), h.ttl() - 1u8);
        h.with_ttl(new_ttl)
    });
    let space = TransformerSpace::new();
    let t = hop.transformer(&space);
    let alive = space.set_of::<Hdr>(|h| h.ttl().gt(Zen::val(0)));
    let after = t.transform_forward(&alive);
    // After one hop from ttl>0, ttl can be anything in 0..=254.
    let can_be_254 = after.intersect(&space.set_of::<Hdr>(|h| h.ttl().eq(Zen::val(254))));
    assert!(!can_be_254.is_empty());
    let can_be_255 = after.intersect(&space.set_of::<Hdr>(|h| h.ttl().eq(Zen::val(255))));
    assert!(can_be_255.is_empty());
    // dst is untouched: forward of dst=7 keeps dst=7.
    let d7 = space.set_of::<Hdr>(|h| h.dst().eq(Zen::val(7)));
    let img = t.transform_forward(&d7);
    assert!(img.subset_of(&d7.union(&space.empty())));
}

#[test]
fn transformer_type_change() {
    // Packet -> bool transformer (a filter predicate as a function).
    let f = ZenFunction::new(|x: Zen<u16>| x.lt(Zen::val(100)));
    let space = TransformerSpace::new();
    let t = f.transformer(&space);
    let all = space.full::<u16>();
    let img = t.transform_forward(&all);
    // Image must be {true, false}.
    assert_eq!(img.count(), 2.0);
    let pre_true = t.transform_reverse(&space.singleton(&true));
    assert_eq!(pre_true.count(), 100.0);
    let pre_false = t.transform_reverse(&space.singleton(&false));
    assert_eq!(pre_false.count(), 65436.0);
}

#[test]
fn relation_eq_detects_equivalence() {
    let f1 = ZenFunction::new(|x: Zen<u8>| x + 2u8);
    let f2 = ZenFunction::new(|x: Zen<u8>| (x + 1u8) + 1u8);
    let f3 = ZenFunction::new(|x: Zen<u8>| x + 3u8);
    let space = TransformerSpace::new();
    let t1 = f1.transformer(&space);
    let t2 = f2.transformer(&space);
    let t3 = f3.transformer(&space);
    assert!(t1.relation_eq(&t2));
    assert!(!t1.relation_eq(&t3));
}

#[test]
fn fixpoint_reachability() {
    // "Unbounded model checking": iterate a transformer to a fixpoint.
    // f(x) = x+2 mod 16 (masked); from {0}, reachable = evens in 0..16.
    let f = ZenFunction::new(|x: Zen<u8>| (x + 2u8) & 0x0Fu8);
    let space = TransformerSpace::new();
    let t = f.transformer(&space);
    let reach = t.fixpoint(&space.singleton::<u8>(&0));
    assert_eq!(reach.count(), 8.0);
    assert!(!reach.intersect(&space.singleton(&14)).is_empty());
    assert!(reach.intersect(&space.singleton(&13)).is_empty());
    // reaches() agrees, for both positive and negative queries.
    assert!(t.reaches(&space.singleton(&0), &space.singleton(&14)));
    assert!(!t.reaches(&space.singleton(&0), &space.singleton(&13)));
}

#[test]
fn fixpoint_of_identity_is_initial() {
    let f = ZenFunction::new(|x: Zen<u8>| x + 0u8);
    let space = TransformerSpace::new();
    let t = f.transformer(&space);
    let init = space.set_of::<u8>(|x| x.lt(Zen::val(5)));
    assert!(t.fixpoint(&init).set_eq(&init));
}

#[test]
fn fixpoint_saturates_to_cycle() {
    // A TTL-decrement that wraps: every state reaches every state.
    let f = ZenFunction::new(|x: Zen<u8>| x - 1u8);
    let space = TransformerSpace::new();
    let t = f.transformer(&space);
    let reach = t.fixpoint(&space.singleton::<u8>(&7));
    assert!(reach.is_full());
}

#[test]
fn sets_over_options() {
    let space = TransformerSpace::new();
    // Sets over Option<u8> operate on the raw bit space (flag + payload).
    let some_set = space.set_of::<Option<u8>>(|o| o.is_some());
    let none_set = space.set_of::<Option<u8>>(|o| o.is_none());
    assert_eq!(some_set.count(), 256.0);
    assert_eq!(none_set.count(), 256.0); // 256 raw states share has=false
    assert!(some_set.intersect(&none_set).is_empty());
    assert_eq!(none_set.element(), Some(None));
    let s = some_set
        .intersect(&space.set_of::<Option<u8>>(|o| o.value_or(Zen::val(0)).eq(Zen::val(9))));
    assert_eq!(s.element(), Some(Some(9)));
}
