//! Frontend semantics: structs, options, tuples, lists, maps, operators,
//! and sort unification.

use rzen::{pair, zen_struct, zif, FindOptions, ZMap, Zen, ZenFunction, ZenType};

zen_struct! {
    pub struct Point : PointFields {
        x, with_x: u32;
        y, with_y: u32;
        tagged, with_tagged: bool;
    }
}

fn eval<A: ZenType, R: ZenType>(f: impl Fn(Zen<A>) -> Zen<R> + 'static, a: &A) -> R {
    ZenFunction::new(f).evaluate(a)
}

#[test]
fn arithmetic_operators() {
    assert_eq!(eval(|x: Zen<u32>| x + 5u32, &10), 15);
    assert_eq!(eval(|x: Zen<u32>| x - 5u32, &3), 3u32.wrapping_sub(5));
    assert_eq!(eval(|x: Zen<u8>| x * 3u8, &100), 100u8.wrapping_mul(3));
    assert_eq!(eval(|x: Zen<u32>| x & 0xF0u32, &0xAB), 0xA0);
    assert_eq!(eval(|x: Zen<u32>| x | 0x0Fu32, &0xA0), 0xAF);
    assert_eq!(eval(|x: Zen<u32>| x ^ 0xFFu32, &0xA5), 0x5A);
    assert_eq!(eval(|x: Zen<u32>| x << 4u32, &0x0F), 0xF0);
    assert_eq!(eval(|x: Zen<u32>| x >> 4u32, &0xF0), 0x0F);
}

#[test]
fn signed_arithmetic() {
    assert_eq!(eval(|x: Zen<i32>| x + (-5i32), &3), -2);
    assert_eq!(eval(|x: Zen<i8>| x >> 1i8, &-2), -1);
    assert!(eval(|x: Zen<i32>| x.lt(Zen::val(0)), &-1));
    assert!(!eval(|x: Zen<u32>| x.lt(Zen::val(1)), &u32::MAX));
}

#[test]
fn comparisons() {
    assert!(eval(|x: Zen<u16>| x.le(Zen::val(7)), &7));
    assert!(!eval(|x: Zen<u16>| x.lt(Zen::val(7)), &7));
    assert!(eval(|x: Zen<u16>| x.ge(Zen::val(7)), &7));
    assert!(eval(|x: Zen<u16>| x.gt(Zen::val(6)), &7));
    assert!(eval(|x: Zen<u16>| x.ne(Zen::val(6)), &7));
}

#[test]
fn boolean_connectives() {
    assert!(eval(|b: Zen<bool>| b.or(!b), &false));
    assert!(!eval(|b: Zen<bool>| b.and(!b), &true));
    assert!(eval(|b: Zen<bool>| b.implies(b), &false));
    assert!(eval(|b: Zen<bool>| b.iff(b), &true));
}

#[test]
fn conditionals() {
    let f = ZenFunction::new(|x: Zen<u32>| zif(x.lt(Zen::val(10)), x + 1u32, x - 1u32));
    assert_eq!(f.evaluate(&5), 6);
    assert_eq!(f.evaluate(&15), 14);
}

#[test]
fn struct_projection_and_update() {
    let p = Point {
        x: 3,
        y: 4,
        tagged: true,
    };
    assert_eq!(eval(|z: Zen<Point>| z.x(), &p), 3);
    assert_eq!(eval(|z: Zen<Point>| z.y(), &p), 4);
    assert!(eval(|z: Zen<Point>| z.tagged(), &p));
    let moved = eval(|z: Zen<Point>| z.with_x(z.y()).with_y(z.x()), &p);
    assert_eq!(
        moved,
        Point {
            x: 4,
            y: 3,
            tagged: true
        }
    );
}

#[test]
fn struct_create_and_eq() {
    let f = ZenFunction::new(|z: Zen<Point>| {
        let rebuilt = Point::create(z.x(), z.y(), z.tagged());
        rebuilt.eq(z)
    });
    assert!(f.evaluate(&Point {
        x: 1,
        y: 2,
        tagged: false
    }));
}

#[test]
fn tuples_roundtrip() {
    let f = ZenFunction::new(|t: Zen<(u8, u16)>| t.item1());
    assert_eq!(f.evaluate(&(9u8, 300u16)), 9);
    let g = ZenFunction::new(|t: Zen<(u8, u16)>| pair(t.item1(), t.item2()).item2());
    assert_eq!(g.evaluate(&(9u8, 300u16)), 300);
}

#[test]
fn options_basics() {
    assert!(eval(|o: Zen<Option<u8>>| o.is_some(), &Some(4)));
    assert!(eval(|o: Zen<Option<u8>>| o.is_none(), &None));
    assert_eq!(
        eval(|o: Zen<Option<u8>>| o.value_or(Zen::val(9)), &Some(4)),
        4
    );
    assert_eq!(eval(|o: Zen<Option<u8>>| o.value_or(Zen::val(9)), &None), 9);
}

#[test]
fn option_map_and_filter() {
    let inc = ZenFunction::new(|o: Zen<Option<u8>>| o.map(|v| v + 1u8));
    assert_eq!(inc.evaluate(&Some(4)), Some(5));
    assert_eq!(inc.evaluate(&None), None);
    let keep_even = ZenFunction::new(|o: Zen<Option<u8>>| o.filter(|v| (v & 1u8).eq(Zen::val(0))));
    assert_eq!(keep_even.evaluate(&Some(4)), Some(4));
    assert_eq!(keep_even.evaluate(&Some(5)), None);
    assert_eq!(keep_even.evaluate(&None), None);
}

#[test]
fn option_equality_ignores_dead_payload() {
    // None == None must hold even when one side was built by mapping.
    let f = ZenFunction::new(|o: Zen<Option<u8>>| {
        let none1: Zen<Option<u8>> = Zen::none(0);
        let mapped = o.filter(|_| Zen::bool(false));
        mapped.eq(none1)
    });
    assert!(f.evaluate(&Some(77)));
    assert!(f.evaluate(&None));
}

#[test]
fn list_length_and_membership() {
    let f = ZenFunction::new(|l: Zen<Vec<u32>>| l.length());
    assert_eq!(f.evaluate(&vec![1, 2, 3]), 3);
    assert_eq!(f.evaluate(&vec![]), 0);
    let c = ZenFunction::new(|l: Zen<Vec<u32>>| l.contains(Zen::val(7)));
    assert!(c.evaluate(&vec![1, 7, 3]));
    assert!(!c.evaluate(&vec![1, 2, 3]));
    assert!(!c.evaluate(&vec![]));
}

#[test]
fn list_cons_head_tail() {
    let f = ZenFunction::new(|l: Zen<Vec<u8>>| l.cons(Zen::val(9)).head().value_or(Zen::val(0)));
    assert_eq!(f.evaluate(&vec![1, 2]), 9);
    let t = ZenFunction::new(|l: Zen<Vec<u8>>| l.tail().length());
    assert_eq!(t.evaluate(&vec![1, 2, 3]), 2);
    assert_eq!(t.evaluate(&vec![]), 0);
    let h = ZenFunction::new(|l: Zen<Vec<u8>>| l.head());
    assert_eq!(h.evaluate(&vec![5, 6]), Some(5));
    assert_eq!(h.evaluate(&vec![]), None);
}

#[test]
fn list_case_matches_paper_semantics() {
    // case of nil => 0 | cons(h, t) => h + length(t)
    let f = ZenFunction::new(|l: Zen<Vec<u8>>| {
        l.case(
            || Zen::val(0u8),
            |h, t| {
                let len8 = zif(t.is_empty(), Zen::val(0u8), Zen::val(1u8));
                h + len8
            },
        )
    });
    assert_eq!(f.evaluate(&vec![]), 0);
    assert_eq!(f.evaluate(&vec![10]), 10);
    assert_eq!(f.evaluate(&vec![10, 20]), 11);
}

#[test]
fn list_fold_any_all() {
    let sum = ZenFunction::new(|l: Zen<Vec<u8>>| l.fold(Zen::val(0u8), |acc, x| acc + x));
    assert_eq!(sum.evaluate(&vec![1, 2, 3]), 6);
    assert_eq!(sum.evaluate(&vec![]), 0);
    let any_big = ZenFunction::new(|l: Zen<Vec<u8>>| l.any(|x| x.gt(Zen::val(100))));
    assert!(any_big.evaluate(&vec![1, 200]));
    assert!(!any_big.evaluate(&vec![1, 2]));
    let all_small = ZenFunction::new(|l: Zen<Vec<u8>>| l.all(|x| x.lt(Zen::val(100))));
    assert!(all_small.evaluate(&vec![1, 2]));
    assert!(!all_small.evaluate(&vec![1, 200]));
    assert!(all_small.evaluate(&vec![]));
}

#[test]
fn list_map_preserves_length() {
    let f = ZenFunction::new(|l: Zen<Vec<u8>>| {
        let doubled = l.map(|x| x * 2u8);
        doubled.fold(Zen::val(0u8), |acc, x| acc + x)
    });
    assert_eq!(f.evaluate(&vec![1, 2, 3]), 12);
}

#[test]
fn list_at_symbolic_index() {
    let f = ZenFunction2::new(|l: Zen<Vec<u8>>, i: Zen<u16>| l.at(i).value_or(Zen::val(255)));
    assert_eq!(f.evaluate(&vec![10, 20, 30], &1), 20);
    assert_eq!(f.evaluate(&vec![10, 20, 30], &5), 255);
}

use rzen::ZenFunction2;

#[test]
fn list_equality_respects_length_only_prefix() {
    // Lists with different slot counts but the same content are equal.
    let f = ZenFunction::new(|l: Zen<Vec<u8>>| {
        let grown = l.cons(Zen::val(9)).tail(); // same content, more slots
        grown.eq(l)
    });
    assert!(f.evaluate(&vec![1, 2, 3]));
    assert!(f.evaluate(&vec![]));
}

#[test]
fn zif_unifies_list_sorts() {
    // Branches with different slot counts merge.
    let f = ZenFunction2::new(|l: Zen<Vec<u8>>, b: Zen<bool>| {
        let extended = l.cons(Zen::val(1));
        zif(b, extended, l).length()
    });
    assert_eq!(f.evaluate(&vec![5, 6], &true), 3);
    assert_eq!(f.evaluate(&vec![5, 6], &false), 2);
}

#[test]
fn map_get_set_semantics() {
    let f = ZenFunction::new(|m: Zen<ZMap<u8, u16>>| {
        m.set(Zen::val(1), Zen::val(100))
            .get(Zen::val(1))
            .value_or(Zen::val(0))
    });
    let mut m = ZMap::new();
    m.set(1u8, 7u16);
    // Most recent binding wins.
    assert_eq!(f.evaluate(&m), 100);

    let g = ZenFunction::new(|m: Zen<ZMap<u8, u16>>| m.get(Zen::val(2)).is_some());
    assert!(!g.evaluate(&m));
    m.set(2, 9);
    assert!(g.evaluate(&m));
}

#[test]
fn map_shadowing_head_wins() {
    let mut m: ZMap<u8, u16> = ZMap::new();
    m.set(1, 10);
    m.set(1, 20); // shadows
    let f = ZenFunction::new(|m: Zen<ZMap<u8, u16>>| m.get(Zen::val(1)).value_or(Zen::val(0)));
    assert_eq!(f.evaluate(&m), 20);
    assert_eq!(*m.get(&1).unwrap(), 20);
}

#[test]
fn find_with_lists() {
    // Find a list of length exactly 3 that contains 42.
    let f = ZenFunction::new(|l: Zen<Vec<u8>>| {
        l.length().eq(Zen::val(3)).and(l.contains(Zen::val(42)))
    });
    for opts in [FindOptions::bdd(), FindOptions::smt()] {
        let found = f
            .find(|_, out| out, &opts.with_list_bound(4))
            .expect("should find a witness");
        assert_eq!(found.len(), 3);
        assert!(found.contains(&42));
    }
}

#[test]
fn find_unsat_returns_none() {
    let f = ZenFunction::new(|x: Zen<u8>| x.lt(Zen::val(0)));
    assert!(f.find(|_, out| out, &FindOptions::bdd()).is_none());
    assert!(f.find(|_, out| out, &FindOptions::smt()).is_none());
}

#[test]
fn verify_reports_counterexample() {
    let f = ZenFunction::new(|x: Zen<u8>| x + 1u8);
    // Claim: x + 1 > x — false at 255 (wrap).
    let r = f.verify(|x, out| out.gt(x), &FindOptions::bdd());
    assert_eq!(r, Err(255));
    // Claim: x + 1 != x — true everywhere.
    assert!(f.verify(|x, out| out.ne(x), &FindOptions::smt()).is_ok());
}

#[test]
fn nested_struct_in_option_in_struct() {
    zen_struct! {
        pub struct Wrapper : WrapperFields {
            inner, with_inner: Option<Point>;
            count, with_count: u8;
        }
    }
    let w = Wrapper {
        inner: Some(Point {
            x: 1,
            y: 2,
            tagged: true,
        }),
        count: 3,
    };
    let f = ZenFunction::new(|z: Zen<Wrapper>| {
        z.inner()
            .value_or(Point::create(Zen::val(0), Zen::val(0), Zen::bool(false)))
            .x()
    });
    assert_eq!(f.evaluate(&w), 1);
    let g = ZenFunction::new(|z: Zen<Wrapper>| z.inner().is_none());
    assert!(g.evaluate(&Wrapper {
        inner: None,
        count: 0
    }));
}

#[test]
fn symbolic_list_respects_bound() {
    let f = ZenFunction::new(|l: Zen<Vec<u8>>| l.length().le(Zen::val(2)));
    // With bound 2 every symbolic list has length <= 2: no counterexample.
    assert!(f
        .find(|_, out| !out, &FindOptions::bdd().with_list_bound(2))
        .is_none());
    // With bound 4 a longer list exists.
    assert!(f
        .find(|_, out| !out, &FindOptions::bdd().with_list_bound(4))
        .is_some());
}

#[test]
fn list_retain_filters_in_order() {
    let f = ZenFunction::new(|l: Zen<Vec<u8>>| l.retain(|x| (x & 1u8).eq(Zen::val(0))));
    assert_eq!(f.evaluate(&vec![1, 2, 3, 4, 5, 6]), vec![2, 4, 6]);
    assert_eq!(f.evaluate(&vec![1, 3, 5]), Vec::<u8>::new());
    assert_eq!(f.evaluate(&vec![]), Vec::<u8>::new());
    assert_eq!(f.evaluate(&vec![2, 2]), vec![2, 2]);
}

#[test]
fn list_append_concatenates() {
    let f = ZenFunction2::new(|a: Zen<Vec<u8>>, b: Zen<Vec<u8>>| a.append(b));
    assert_eq!(f.evaluate(&vec![1, 2], &vec![3, 4]), vec![1, 2, 3, 4]);
    assert_eq!(f.evaluate(&vec![], &vec![3]), vec![3]);
    assert_eq!(f.evaluate(&vec![1], &vec![]), vec![1]);
}

#[test]
fn find_over_retained_list() {
    // Find a list whose even-only projection has length exactly 2.
    let f = ZenFunction::new(|l: Zen<Vec<u8>>| l.retain(|x| (x & 1u8).eq(Zen::val(0))).length());
    let w = f
        .find(
            |_, n| n.eq(Zen::val(2)),
            &FindOptions::smt().with_list_bound(3),
        )
        .unwrap();
    assert_eq!(w.iter().filter(|x| *x % 2 == 0).count(), 2);
}
