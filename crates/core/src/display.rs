//! Human-readable rendering of expressions (debugging aid).
//!
//! Expression DAGs can be enormous (a 15,000-line ACL model), so the
//! renderer is budgeted: beyond a node budget it falls back to `…` and
//! shared subexpressions render as `#id` references after their first
//! occurrence.

use rzen_bdd::FastHashSet;

use crate::ctx::{with_ctx, Context};
use crate::ir::{Bv2, CmpOp, Expr, ExprId};
use crate::lang::Zen;

/// Render an expression with the default budget (200 nodes).
pub fn render<T>(e: Zen<T>) -> String {
    render_budgeted(e.expr_id(), 200)
}

/// Render an expression id with an explicit node budget.
pub fn render_budgeted(e: ExprId, budget: usize) -> String {
    with_ctx(|ctx| {
        let mut r = Renderer {
            ctx,
            seen: FastHashSet::default(),
            budget,
        };
        let mut out = String::new();
        r.go(e, &mut out);
        out
    })
}

struct Renderer<'c> {
    ctx: &'c Context,
    seen: FastHashSet<u32>,
    budget: usize,
}

impl Renderer<'_> {
    fn go(&mut self, e: ExprId, out: &mut String) {
        if self.budget == 0 {
            out.push('…');
            return;
        }
        self.budget -= 1;
        // Share-aware: repeated non-leaf nodes print as references.
        let leaf = matches!(
            self.ctx.expr(e),
            Expr::Var(_) | Expr::ConstBool(_) | Expr::ConstInt { .. }
        );
        if !leaf && !self.seen.insert(e.0) {
            out.push_str(&format!("#{}", e.0));
            return;
        }
        match self.ctx.expr(e) {
            Expr::Var(v) => out.push_str(&format!("v{}", v.index())),
            Expr::ConstBool(b) => out.push_str(if *b { "true" } else { "false" }),
            Expr::ConstInt { bits, .. } => out.push_str(&format!("{bits}")),
            Expr::Not(a) => {
                out.push('!');
                self.go(*a, out);
            }
            Expr::And(a, b) => self.binary(*a, "&&", *b, out),
            Expr::Or(a, b) => self.binary(*a, "||", *b, out),
            Expr::BvNot(a) => {
                out.push('~');
                self.go(*a, out);
            }
            Expr::Bv(op, a, b) => {
                let sym = match op {
                    Bv2::Add => "+",
                    Bv2::Sub => "-",
                    Bv2::Mul => "*",
                    Bv2::And => "&",
                    Bv2::Or => "|",
                    Bv2::Xor => "^",
                    Bv2::Shl => "<<",
                    Bv2::Shr => ">>",
                };
                self.binary(*a, sym, *b, out);
            }
            Expr::Eq(a, b) => self.binary(*a, "==", *b, out),
            Expr::Cmp(op, a, b) => {
                let sym = match op {
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                };
                self.binary(*a, sym, *b, out);
            }
            Expr::If(c, t, f) => {
                out.push_str("if ");
                self.go(*c, out);
                out.push_str(" then ");
                self.go(*t, out);
                out.push_str(" else ");
                self.go(*f, out);
            }
            Expr::MakeStruct(id, fs) => {
                let (name, fields): (String, Vec<String>) = {
                    let info = self.ctx.struct_info(*id);
                    (
                        info.name.clone(),
                        info.fields.iter().map(|f| f.0.clone()).collect(),
                    )
                };
                out.push_str(&name);
                out.push('{');
                for (i, (&f, fname)) in fs.iter().zip(&fields).enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(fname);
                    out.push_str(": ");
                    self.go(f, out);
                }
                out.push('}');
            }
            Expr::Cast(a, to) => {
                out.push_str("cast<");
                out.push_str(&format!("{to:?}"));
                out.push_str(">(");
                self.go(*a, out);
                out.push(')');
            }
            Expr::GetField(a, idx) => {
                self.go(*a, out);
                let fname = {
                    let crate::sorts::Sort::Struct(id) = self.ctx.sort_of(*a) else {
                        unreachable!()
                    };
                    self.ctx.struct_info(id).fields[*idx as usize].0.clone()
                };
                out.push('.');
                out.push_str(&fname);
            }
        }
    }

    fn binary(&mut self, a: ExprId, sym: &str, b: ExprId, out: &mut String) {
        out.push('(');
        self.go(a, out);
        out.push(' ');
        out.push_str(sym);
        out.push(' ');
        self.go(b, out);
        out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::zif;

    #[test]
    fn renders_basic_shapes() {
        crate::reset_ctx();
        let x = Zen::<u8>::symbolic(0);
        let e = zif(x.lt(Zen::val(10)), x + 1u8, x - 1u8);
        let s = render(e);
        assert!(s.contains("if"), "{s}");
        assert!(s.contains('<'), "{s}");
        assert!(s.contains("v0"), "{s}");
    }

    #[test]
    fn respects_budget() {
        crate::reset_ctx();
        let mut e = Zen::<u16>::symbolic(0);
        for i in 0..100u16 {
            e = zif(e.lt(Zen::val(i)), e + 1u16, e);
        }
        let s = render_budgeted(e.expr_id(), 20);
        assert!(s.contains('…'));
        assert!(s.len() < 4000);
    }

    #[test]
    fn shares_repeated_subterms() {
        crate::reset_ctx();
        let x = Zen::<u8>::symbolic(0);
        let heavy = (x + 1u8) * 3u8;
        let both = heavy.eq(heavy + 0u8); // same node twice (+0 folds away)
        let s = render(both);
        // The second occurrence is a reference.
        assert!(s.contains('#') || s == "true", "{s}");
    }

    #[test]
    fn renders_struct_fields_by_name() {
        crate::reset_ctx();
        let o = Zen::<Option<u8>>::symbolic(0);
        // The whole option renders as a named struct literal. (A field
        // projection like `is_some()` folds straight to the underlying
        // variable, so there is no `.has` node to print.)
        let s = render(o);
        assert!(s.contains("Option{"), "{s}");
        assert!(s.contains("has:"), "{s}");
        assert!(s.contains("val:"), "{s}");
    }
}
