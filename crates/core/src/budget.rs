//! Cooperative solve budgets: cancellation flags and wall-clock deadlines
//! threaded through both solver substrates.
//!
//! A [`Budget`] is cheap to clone (it shares one atomic flag), `Send`, and
//! observed *cooperatively*: the BDD manager polls it inside its
//! hash-consing choke point and the CDCL solver polls it on conflict and
//! decision boundaries, so cancellation latency is bounded by a few
//! thousand substrate steps rather than by query size.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation token plus an optional wall-clock deadline.
///
/// Clones share the same flag: raising [`Budget::cancel`] on any clone
/// cancels every solve that was handed one. This is what lets a backend
/// portfolio race two solvers and stop the loser the moment one finishes.
#[derive(Clone, Debug)]
pub struct Budget {
    cancel: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl Budget {
    /// A budget that never expires on its own (it can still be
    /// [`Budget::cancel`]led).
    pub fn unlimited() -> Self {
        Budget {
            cancel: Arc::new(AtomicBool::new(false)),
            deadline: None,
        }
    }

    /// A budget expiring `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Budget {
            cancel: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + timeout),
        }
    }

    /// A budget expiring at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Budget {
            cancel: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Raise the cancellation flag. Every solve sharing this budget (or a
    /// clone of it) unwinds at its next poll point.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Has the flag been raised or the deadline passed?
    pub fn is_exhausted(&self) -> bool {
        if self.cancel.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Did the wall-clock deadline pass? Distinguishes `Timeout` from
    /// explicit `Cancelled` after a solve comes back unknown.
    pub fn deadline_passed(&self) -> bool {
        matches!(self.deadline, Some(d) if Instant::now() >= d)
    }

    /// The shared flag, for installing into a solver substrate.
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        self.cancel.clone()
    }

    /// The deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Wall-clock time left before the deadline (`None` for an unlimited
    /// budget, zero once the deadline has passed). Lets a serving layer
    /// decide whether a queued request is still worth starting.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = Budget::unlimited();
        let b = a.clone();
        assert!(!a.is_exhausted());
        b.cancel();
        assert!(a.is_exhausted());
        assert!(!a.deadline_passed());
    }

    #[test]
    fn deadline_exhausts() {
        let b = Budget::with_deadline(Instant::now());
        assert!(b.is_exhausted());
        assert!(b.deadline_passed());
        assert_eq!(b.remaining(), Some(Duration::ZERO));
        let c = Budget::with_timeout(Duration::from_secs(3600));
        assert!(!c.is_exhausted());
        assert!(c.remaining().unwrap() > Duration::from_secs(3000));
        assert_eq!(Budget::unlimited().remaining(), None);
    }
}
