//! Concrete runtime values of the Zen language.

use crate::sorts::{Sort, StructId};

/// A concrete value, the result of simulating (concretely evaluating) a
/// Zen expression or of decoding a solver model.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A bitvector, stored as its raw bits (masked to the sort's width;
    /// for signed sorts the bit pattern is two's complement).
    Int {
        /// The bitvector sort (width and signedness).
        sort: Sort,
        /// Raw bits, zero-extended to 64.
        bits: u64,
    },
    /// A struct: one value per field, in field order.
    Struct(StructId, Vec<Value>),
}

impl Value {
    /// Build a bitvector value, masking the bits to the width.
    pub fn int(sort: Sort, bits: u64) -> Value {
        assert!(sort.is_bitvec());
        Value::Int {
            sort,
            bits: bits & sort.mask(),
        }
    }

    /// The sort of this value.
    pub fn sort(&self) -> Sort {
        match self {
            Value::Bool(_) => Sort::Bool,
            Value::Int { sort, .. } => *sort,
            Value::Struct(id, _) => Sort::Struct(*id),
        }
    }

    /// Extract a boolean; panics on other variants.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected Bool, got {other:?}"),
        }
    }

    /// Extract raw bitvector bits; panics on other variants.
    pub fn as_bits(&self) -> u64 {
        match self {
            Value::Int { bits, .. } => *bits,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// Extract bits sign-extended to `i64` according to the sort.
    pub fn as_signed(&self) -> i64 {
        match self {
            Value::Int {
                sort: Sort::BitVec { width, .. },
                bits,
            } => sign_extend(*bits, *width),
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// Extract struct fields; panics on other variants.
    pub fn fields(&self) -> &[Value] {
        match self {
            Value::Struct(_, fs) => fs,
            other => panic!("expected Struct, got {other:?}"),
        }
    }
}

/// Sign-extend the low `width` bits of `bits` to a full `i64`.
pub fn sign_extend(bits: u64, width: u8) -> i64 {
    debug_assert!((1..=64).contains(&width));
    let shift = 64 - width as u32;
    ((bits << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_masks_to_width() {
        let v = Value::int(Sort::bv(8), 0x1FF);
        assert_eq!(v.as_bits(), 0xFF);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sign_extend(0xFF, 8), -1);
        assert_eq!(sign_extend(0x7F, 8), 127);
        assert_eq!(sign_extend(0x80, 8), -128);
        assert_eq!(sign_extend(u64::MAX, 64), -1);
        assert_eq!(sign_extend(1, 1), -1);
        assert_eq!(sign_extend(0, 1), 0);
    }

    #[test]
    fn as_signed_uses_sort_width() {
        let v = Value::int(Sort::bv_signed(16), 0xFFFF);
        assert_eq!(v.as_signed(), -1);
        let v = Value::int(Sort::bv_signed(16), 0x7FFF);
        assert_eq!(v.as_signed(), 32767);
    }

    #[test]
    fn sorts_of_values() {
        assert_eq!(Value::Bool(true).sort(), Sort::Bool);
        assert_eq!(Value::int(Sort::bv(32), 7).sort(), Sort::bv(32));
    }
}
