//! # rzen — an intermediate verification language for network modeling
//!
//! A Rust implementation of the compositional network-modeling framework
//! of Beckett & Mahajan, *A General Framework for Compositional Network
//! Modeling* (HotNets '20). Network functionality is modeled once, as
//! ordinary Rust functions over typed symbolic values (`Zen<T>`), and the
//! same model is then analyzed by multiple interchangeable backends:
//!
//! * **Simulation** — models are executable; pass concrete values and get
//!   concrete results ([`ZenFunction::evaluate`]), or compile them to a
//!   bytecode VM for repeated execution ([`ZenFunction::compile`]).
//! * **Find / bounded model checking** — search for an input satisfying a
//!   predicate on the input/output pair ([`ZenFunction::find`]), with a
//!   BDD solver or a bitblasting SAT ("SMT-style") solver.
//! * **State set transformers** — lift a model to a relation on sets of
//!   values, supporting forward and reverse image computation
//!   ([`ZenFunction::transformer`]) — the primitive behind HSA-style
//!   reachability and other set-based analyses.
//! * **Test generation** — derive high-coverage concrete inputs from the
//!   model's decision structure ([`ZenFunction::generate_inputs`]).
//! * **Ternary abstract interpretation** — a fast approximate evaluator
//!   over three-valued bits ([`backend::ternary`]).
//!
//! ## Quick example
//!
//! ```
//! use rzen::{Zen, ZenFunction, FindOptions, zen_struct};
//!
//! zen_struct! {
//!     pub struct Packet : PacketFields {
//!         dst_port, with_dst_port: u16;
//!         src_port, with_src_port: u16;
//!     }
//! }
//!
//! // A model: does the firewall accept the packet?
//! let accept = ZenFunction::new(|p: Zen<Packet>| {
//!     p.dst_port().eq(Zen::val(443)).or(p.dst_port().eq(Zen::val(80)))
//! });
//!
//! // Simulate it.
//! assert!(accept.evaluate(&Packet { dst_port: 443, src_port: 1000 }));
//!
//! // Verify: find an accepted packet with a low source port.
//! let example = accept
//!     .find(|p, out| out.and(p.src_port().lt(Zen::val(10))), &FindOptions::default())
//!     .expect("should exist");
//! assert!(example.dst_port == 443 || example.dst_port == 80);
//! assert!(example.src_port < 10);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod budget;
pub mod ctx;
pub mod display;
mod function;
mod geninputs;
pub mod ir;
mod lang;
mod semantics;
pub mod session;
pub mod sorts;
pub mod stateset;
mod value;

pub use backend::SolveOutcome;
pub use budget::Budget;
pub use ctx::{reset_ctx, set_folding, with_ctx};
pub use display::render;
pub use function::{
    Backend, FindOptions, FindOutcome, FindReport, ZenFunction, ZenFunction2, ZenFunction3,
};
pub use ir::ExprId;
pub use lang::zstruct::{__make_user_struct, __register_user_struct, __user_struct_value};
pub use lang::{pair, triple, zif, ZMap, Zen, ZenInt, ZenType};
pub use session::{SessionStats, SolverSession};
pub use sorts::Sort;
pub use stateset::{StateSet, StateSetTransformer, TransformerSpace};
pub use value::Value;
