//! The thread-local expression context.
//!
//! All expressions built through the `Zen<T>` frontend are interned here.
//! Each thread owns one context, so `Zen<T>` handles are `Copy` but not
//! `Send` — they are indices into this thread's arena. This mirrors the C#
//! implementation's use of a global hash-consing table while staying
//! idiomatic in Rust (no locks on the hot path).

use std::cell::RefCell;

use rzen_bdd::FastHashMap;

use crate::ir::Expr;
use crate::sorts::{Sort, StructId, StructInfo, StructKey};

/// The expression arena, struct-sort registry, and variable table for one
/// thread. Access it through [`with_ctx`]; most users never touch it
/// directly — the `Zen<T>` API does.
pub struct Context {
    pub(crate) exprs: Vec<Expr>,
    pub(crate) sorts_of: Vec<Sort>,
    pub(crate) const_flags: Vec<bool>,
    pub(crate) cons: FastHashMap<Expr, u32>,
    pub(crate) structs: Vec<StructInfo>,
    pub(crate) struct_keys: Vec<StructKey>,
    pub(crate) struct_index: FastHashMap<StructKey, StructId>,
    pub(crate) var_sorts: Vec<Sort>,
    /// Whether eager constant folding and algebraic simplification are
    /// applied at node creation. On by default; the `fold_ablation` bench
    /// turns it off to measure its effect.
    pub fold: bool,
}

impl Context {
    fn new() -> Self {
        Context {
            exprs: Vec::new(),
            sorts_of: Vec::new(),
            const_flags: Vec::new(),
            cons: FastHashMap::default(),
            structs: Vec::new(),
            struct_keys: Vec::new(),
            struct_index: FastHashMap::default(),
            var_sorts: Vec::new(),
            fold: true,
        }
    }

    /// Register a struct sort under a key, or return the existing id if the
    /// key was registered before. The layout must match on re-registration.
    pub fn register_struct(&mut self, key: StructKey, info: StructInfo) -> StructId {
        if let Some(&id) = self.struct_index.get(&key) {
            debug_assert_eq!(
                self.structs[id.0 as usize].fields, info.fields,
                "struct key re-registered with a different layout"
            );
            return id;
        }
        let id = StructId(self.structs.len() as u32);
        self.structs.push(info);
        self.struct_keys.push(key.clone());
        self.struct_index.insert(key, id);
        id
    }

    /// Layout of a registered struct sort.
    pub fn struct_info(&self, id: StructId) -> &StructInfo {
        &self.structs[id.0 as usize]
    }

    /// The key under which a struct sort was registered (reveals whether it
    /// is a list, option, tuple, or user type).
    pub fn struct_key(&self, id: StructId) -> &StructKey {
        &self.struct_keys[id.0 as usize]
    }

    /// Total number of primitive bits in a sort when flattened (used by the
    /// solver backends).
    pub fn sort_bits(&self, sort: Sort) -> u32 {
        match sort {
            Sort::Bool => 1,
            Sort::BitVec { width, .. } => width as u32,
            Sort::Struct(id) => {
                let field_sorts: Vec<Sort> =
                    self.struct_info(id).fields.iter().map(|f| f.1).collect();
                field_sorts.into_iter().map(|s| self.sort_bits(s)).sum()
            }
        }
    }

    /// Number of interned expressions (diagnostics).
    pub fn num_exprs(&self) -> usize {
        self.exprs.len()
    }

    /// Number of allocated symbolic variables (diagnostics).
    pub fn num_vars(&self) -> usize {
        self.var_sorts.len()
    }
}

thread_local! {
    static CTX: RefCell<Context> = RefCell::new(Context::new());
}

/// Run a closure with exclusive access to this thread's context.
///
/// The closure must not call back into any `rzen` API that itself uses the
/// context (all public frontend operations are leaf operations, so this
/// only matters if you work with the context directly).
pub fn with_ctx<R>(f: impl FnOnce(&mut Context) -> R) -> R {
    CTX.with(|c| f(&mut c.borrow_mut()))
}

/// Discard the entire thread-local context: all expressions, variables,
/// and struct registrations.
///
/// Every outstanding `Zen<T>` handle on this thread is invalidated — using
/// one afterwards is a logic error (it will panic or silently refer to a
/// different expression). Intended for long-running processes and benchmark
/// loops that build many independent models and would otherwise grow the
/// arena without bound.
pub fn reset_ctx() {
    CTX.with(|c| *c.borrow_mut() = Context::new());
}

/// Enable or disable eager folding (see [`Context::fold`]); returns the
/// previous setting.
pub fn set_folding(on: bool) -> bool {
    with_ctx(|ctx| std::mem::replace(&mut ctx.fold, on))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struct_registration_is_idempotent() {
        reset_ctx();
        let info = || StructInfo {
            name: "Pair".into(),
            fields: vec![("a".into(), Sort::bv(8)), ("b".into(), Sort::Bool)],
        };
        let (id1, id2) = with_ctx(|ctx| {
            (
                ctx.register_struct(StructKey::Named("pair".into()), info()),
                ctx.register_struct(StructKey::Named("pair".into()), info()),
            )
        });
        assert_eq!(id1, id2);
    }

    #[test]
    fn sort_bits_flattens() {
        reset_ctx();
        with_ctx(|ctx| {
            let inner = ctx.register_struct(
                StructKey::Named("inner".into()),
                StructInfo {
                    name: "Inner".into(),
                    fields: vec![("x".into(), Sort::bv(32)), ("f".into(), Sort::Bool)],
                },
            );
            let outer = ctx.register_struct(
                StructKey::Named("outer".into()),
                StructInfo {
                    name: "Outer".into(),
                    fields: vec![
                        ("i".into(), Sort::Struct(inner)),
                        ("y".into(), Sort::bv(16)),
                    ],
                },
            );
            assert_eq!(ctx.sort_bits(Sort::Struct(outer)), 32 + 1 + 16);
            assert_eq!(ctx.sort_bits(Sort::Bool), 1);
        });
    }

    #[test]
    fn reset_clears_everything() {
        with_ctx(|ctx| {
            ctx.mk_bool(true);
        });
        reset_ctx();
        assert_eq!(with_ctx(|ctx| ctx.num_exprs()), 0);
    }
}
