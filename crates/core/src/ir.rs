//! The hash-consed intermediate representation.
//!
//! This is the abstract language of the paper's Fig. 9: constants,
//! logical/arithmetic/bitwise operators, object creation and field access,
//! and conditionals. Lists and options do not appear here — they are
//! lowered to struct sorts by the frontend (the paper's `adapt` mechanism).
//!
//! Expressions are interned in a thread-local arena ([`crate::ctx`]) with
//! eager constant folding and algebraic simplification, so semantically
//! trivial expressions never materialize and structurally equal expressions
//! share one node. `ExprId` equality is therefore cheap structural equality.

use crate::ctx::Context;
use crate::sorts::{Sort, StructId};
use crate::value::Value;

/// Index of an interned expression in the thread-local context.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ExprId(pub(crate) u32);

/// Index of a symbolic variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The variable's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Binary bitvector operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Bv2 {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (shifting past the width yields zero).
    Shl,
    /// Right shift (logical for unsigned sorts, arithmetic for signed).
    Shr,
}

/// Comparison operators other than equality. Signedness comes from the
/// operand sort.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
}

/// An interned expression node.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// A symbolic variable (always of primitive sort: the frontend creates
    /// composite symbolic values as structs of primitive variables).
    Var(VarId),
    /// A boolean constant.
    ConstBool(bool),
    /// A bitvector constant.
    ConstInt {
        /// The bitvector sort.
        sort: Sort,
        /// Raw bits (masked to the width).
        bits: u64,
    },
    /// Boolean negation.
    Not(ExprId),
    /// Boolean conjunction.
    And(ExprId, ExprId),
    /// Boolean disjunction.
    Or(ExprId, ExprId),
    /// Bitwise complement.
    BvNot(ExprId),
    /// A binary bitvector operation.
    Bv(Bv2, ExprId, ExprId),
    /// Equality, over any sort (structs compare field-wise).
    Eq(ExprId, ExprId),
    /// An order comparison over bitvectors.
    Cmp(CmpOp, ExprId, ExprId),
    /// Conditional.
    If(ExprId, ExprId, ExprId),
    /// Struct construction.
    MakeStruct(StructId, Box<[ExprId]>),
    /// Struct field projection.
    GetField(ExprId, u32),
    /// Bitvector width/signedness conversion: widening zero-extends
    /// unsigned sources and sign-extends signed sources; narrowing
    /// truncates.
    Cast(ExprId, Sort),
}

impl Context {
    /// The sort of an expression.
    pub fn sort_of(&self, e: ExprId) -> Sort {
        self.sorts_of[e.0 as usize]
    }

    /// Is the expression a compile-time constant?
    pub fn is_const(&self, e: ExprId) -> bool {
        self.const_flags[e.0 as usize]
    }

    /// Look at an interned node.
    pub fn expr(&self, e: ExprId) -> &Expr {
        &self.exprs[e.0 as usize]
    }

    /// The sort of a variable.
    pub fn var_sort(&self, v: VarId) -> Sort {
        self.var_sorts[v.0 as usize]
    }

    fn intern(&mut self, expr: Expr, sort: Sort) -> ExprId {
        if let Some(&id) = self.cons.get(&expr) {
            return ExprId(id);
        }
        let konst = match &expr {
            Expr::Var(_) => false,
            Expr::ConstBool(_) | Expr::ConstInt { .. } => true,
            Expr::Not(a) | Expr::BvNot(a) | Expr::GetField(a, _) | Expr::Cast(a, _) => {
                self.is_const(*a)
            }
            Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Bv(_, a, b)
            | Expr::Eq(a, b)
            | Expr::Cmp(_, a, b) => self.is_const(*a) && self.is_const(*b),
            Expr::If(c, t, e) => self.is_const(*c) && self.is_const(*t) && self.is_const(*e),
            Expr::MakeStruct(_, fs) => fs.iter().all(|f| self.is_const(*f)),
        };
        let id = self.exprs.len() as u32;
        self.exprs.push(expr.clone());
        self.sorts_of.push(sort);
        self.const_flags.push(konst);
        self.cons.insert(expr, id);
        ExprId(id)
    }

    /// Allocate a fresh symbolic variable of a primitive sort.
    pub fn mk_var(&mut self, sort: Sort) -> ExprId {
        assert!(
            !matches!(sort, Sort::Struct(_)),
            "variables must be of primitive sort; composite symbolics are \
             built as structs of primitive variables"
        );
        let v = VarId(self.var_sorts.len() as u32);
        self.var_sorts.push(sort);
        self.intern(Expr::Var(v), sort)
    }

    /// A boolean constant.
    pub fn mk_bool(&mut self, b: bool) -> ExprId {
        self.intern(Expr::ConstBool(b), Sort::Bool)
    }

    /// A bitvector constant (bits are masked to the width).
    pub fn mk_int(&mut self, sort: Sort, bits: u64) -> ExprId {
        assert!(sort.is_bitvec(), "mk_int needs a bitvector sort");
        self.intern(
            Expr::ConstInt {
                sort,
                bits: bits & sort.mask(),
            },
            sort,
        )
    }

    /// Boolean negation, with folding.
    pub fn mk_not(&mut self, a: ExprId) -> ExprId {
        assert_eq!(self.sort_of(a), Sort::Bool, "not: operand must be Bool");
        match *self.expr(a) {
            Expr::ConstBool(b) => self.mk_bool(!b),
            Expr::Not(inner) => inner,
            _ => self.intern(Expr::Not(a), Sort::Bool),
        }
    }

    /// Boolean conjunction, with folding.
    pub fn mk_and(&mut self, a: ExprId, b: ExprId) -> ExprId {
        assert_eq!(self.sort_of(a), Sort::Bool, "and: operands must be Bool");
        assert_eq!(self.sort_of(b), Sort::Bool, "and: operands must be Bool");
        if self.fold {
            if let Expr::ConstBool(x) = *self.expr(a) {
                return if x { b } else { self.mk_bool(false) };
            }
            if let Expr::ConstBool(x) = *self.expr(b) {
                return if x { a } else { self.mk_bool(false) };
            }
            if a == b {
                return a;
            }
            if self.is_complement(a, b) {
                return self.mk_bool(false);
            }
        }
        let (a, b) = (a.min(b), a.max(b));
        self.intern(Expr::And(a, b), Sort::Bool)
    }

    /// Boolean disjunction, with folding.
    pub fn mk_or(&mut self, a: ExprId, b: ExprId) -> ExprId {
        assert_eq!(self.sort_of(a), Sort::Bool, "or: operands must be Bool");
        assert_eq!(self.sort_of(b), Sort::Bool, "or: operands must be Bool");
        if self.fold {
            if let Expr::ConstBool(x) = *self.expr(a) {
                return if x { self.mk_bool(true) } else { b };
            }
            if let Expr::ConstBool(x) = *self.expr(b) {
                return if x { self.mk_bool(true) } else { a };
            }
            if a == b {
                return a;
            }
            if self.is_complement(a, b) {
                return self.mk_bool(true);
            }
        }
        let (a, b) = (a.min(b), a.max(b));
        self.intern(Expr::Or(a, b), Sort::Bool)
    }

    fn is_complement(&self, a: ExprId, b: ExprId) -> bool {
        matches!(*self.expr(a), Expr::Not(x) if x == b)
            || matches!(*self.expr(b), Expr::Not(x) if x == a)
    }

    /// Bitwise complement.
    pub fn mk_bvnot(&mut self, a: ExprId) -> ExprId {
        let sort = self.sort_of(a);
        assert!(sort.is_bitvec(), "bvnot: operand must be a bitvector");
        match *self.expr(a) {
            Expr::ConstInt { bits, .. } => self.mk_int(sort, !bits),
            Expr::BvNot(inner) => inner,
            _ => self.intern(Expr::BvNot(a), sort),
        }
    }

    /// A binary bitvector operation, with folding and identity
    /// simplification.
    pub fn mk_bv(&mut self, op: Bv2, a: ExprId, b: ExprId) -> ExprId {
        let sort = self.sort_of(a);
        assert!(sort.is_bitvec(), "{op:?}: operands must be bitvectors");
        assert_eq!(sort, self.sort_of(b), "{op:?}: operand sorts must match");
        if self.fold {
            let ca = self.const_bits(a);
            let cb = self.const_bits(b);
            if let (Some(x), Some(y)) = (ca, cb) {
                return self.mk_int(sort, crate::semantics::bv_bin(op, sort, x, y));
            }
            // Identities (conservative: only ones valid for all operands).
            if let Some(y) = cb {
                match op {
                    Bv2::Add | Bv2::Sub | Bv2::Or | Bv2::Xor | Bv2::Shl | Bv2::Shr if y == 0 => {
                        return a
                    }
                    Bv2::Mul if y == 1 => return a,
                    Bv2::Mul if y == 0 => return self.mk_int(sort, 0),
                    Bv2::And if y == 0 => return self.mk_int(sort, 0),
                    Bv2::And if y == sort.mask() => return a,
                    Bv2::Or if y == sort.mask() => return self.mk_int(sort, sort.mask()),
                    _ => {}
                }
            }
            if let Some(x) = ca {
                match op {
                    Bv2::Add | Bv2::Or | Bv2::Xor if x == 0 => return b,
                    Bv2::Mul if x == 1 => return b,
                    Bv2::Mul if x == 0 => return self.mk_int(sort, 0),
                    Bv2::And if x == 0 => return self.mk_int(sort, 0),
                    Bv2::And if x == sort.mask() => return b,
                    _ => {}
                }
            }
            if a == b {
                match op {
                    Bv2::And | Bv2::Or => return a,
                    Bv2::Xor | Bv2::Sub => return self.mk_int(sort, 0),
                    _ => {}
                }
            }
        }
        // Canonicalize commutative operators for better sharing.
        let (a, b) = match op {
            Bv2::Add | Bv2::Mul | Bv2::And | Bv2::Or | Bv2::Xor => (a.min(b), a.max(b)),
            _ => (a, b),
        };
        self.intern(Expr::Bv(op, a, b), sort)
    }

    fn const_bits(&self, e: ExprId) -> Option<u64> {
        match *self.expr(e) {
            Expr::ConstInt { bits, .. } => Some(bits),
            _ => None,
        }
    }

    /// Equality over any sort (structs compare all fields).
    pub fn mk_eq(&mut self, a: ExprId, b: ExprId) -> ExprId {
        assert_eq!(
            self.sort_of(a),
            self.sort_of(b),
            "eq: operand sorts must match ({:?} vs {:?})",
            self.sort_of(a),
            self.sort_of(b)
        );
        if self.fold {
            if a == b {
                return self.mk_bool(true);
            }
            if self.is_const(a) && self.is_const(b) {
                let va = self.eval_const(a);
                let vb = self.eval_const(b);
                return self.mk_bool(va == vb);
            }
            // Push a comparison against a constant through a conditional
            // spine: Eq(If(c,t,e), k) = If(c, Eq(t,k), Eq(e,k)). For the
            // ubiquitous "which rule matched" pattern this turns a
            // comparison of a deep value-mux into the first-match Boolean
            // structure a hand-written encoding would use. Iterative:
            // rule chains are tens of thousands deep.
            let (spine, konst) = if self.is_const(b) { (a, b) } else { (b, a) };
            if self.is_const(konst) && matches!(self.expr(spine), Expr::If(..)) {
                let mut conds = Vec::new();
                let mut cur = spine;
                while let Expr::If(c, t, e) = *self.expr(cur) {
                    conds.push((c, t));
                    cur = e;
                }
                let mut acc = self.mk_eq_nofold_spine(cur, konst);
                for (c, t) in conds.into_iter().rev() {
                    let teq = self.mk_eq_nofold_spine(t, konst);
                    acc = self.mk_if(c, teq, acc);
                }
                return acc;
            }
        }
        let (a, b) = (a.min(b), a.max(b));
        self.intern(Expr::Eq(a, b), Sort::Bool)
    }

    /// Equality used while expanding a conditional spine: applies the
    /// constant foldings but not the spine rewrite again (the operand is a
    /// branch leaf, which may itself be another — shallower — spine; one
    /// level of recursion per nested spine is fine).
    fn mk_eq_nofold_spine(&mut self, a: ExprId, k: ExprId) -> ExprId {
        if a == k {
            return self.mk_bool(true);
        }
        if self.is_const(a) && self.is_const(k) {
            let va = self.eval_const(a);
            let vk = self.eval_const(k);
            return self.mk_bool(va == vk);
        }
        let (a, b) = (a.min(k), a.max(k));
        self.intern(Expr::Eq(a, b), Sort::Bool)
    }

    /// An order comparison over bitvectors.
    pub fn mk_cmp(&mut self, op: CmpOp, a: ExprId, b: ExprId) -> ExprId {
        let sort = self.sort_of(a);
        assert!(sort.is_bitvec(), "{op:?}: operands must be bitvectors");
        assert_eq!(sort, self.sort_of(b), "{op:?}: operand sorts must match");
        if self.fold {
            if let (Some(x), Some(y)) = (self.const_bits(a), self.const_bits(b)) {
                return self.mk_bool(crate::semantics::bv_cmp(op, sort, x, y));
            }
            if a == b {
                return self.mk_bool(op == CmpOp::Le);
            }
        }
        self.intern(Expr::Cmp(op, a, b), Sort::Bool)
    }

    /// Conditional, with branch folding.
    pub fn mk_if(&mut self, c: ExprId, t: ExprId, e: ExprId) -> ExprId {
        assert_eq!(self.sort_of(c), Sort::Bool, "if: condition must be Bool");
        let sort = self.sort_of(t);
        assert_eq!(sort, self.sort_of(e), "if: branch sorts must match");
        if self.fold {
            if let Expr::ConstBool(b) = *self.expr(c) {
                return if b { t } else { e };
            }
            if t == e {
                return t;
            }
            if sort == Sort::Bool {
                // Lower boolean conditionals to connectives: gives the
                // backends simpler circuits and enables further folding.
                if let Expr::ConstBool(tb) = *self.expr(t) {
                    return if tb {
                        self.mk_or(c, e)
                    } else {
                        let nc = self.mk_not(c);
                        self.mk_and(nc, e)
                    };
                }
                if let Expr::ConstBool(eb) = *self.expr(e) {
                    return if eb {
                        let nc = self.mk_not(c);
                        self.mk_or(nc, t)
                    } else {
                        self.mk_and(c, t)
                    };
                }
            }
        }
        self.intern(Expr::If(c, t, e), sort)
    }

    /// Struct construction. Field sorts are checked against the registered
    /// layout.
    pub fn mk_struct(&mut self, id: StructId, fields: Vec<ExprId>) -> ExprId {
        {
            let info = self.struct_info(id);
            assert_eq!(
                info.fields.len(),
                fields.len(),
                "make_struct {}: wrong number of fields",
                info.name
            );
        }
        for (i, &f) in fields.iter().enumerate() {
            let expect = self.struct_info(id).fields[i].1;
            assert_eq!(
                self.sort_of(f),
                expect,
                "make_struct {}: field {} sort mismatch",
                self.struct_info(id).name,
                self.struct_info(id).fields[i].0
            );
        }
        self.intern(
            Expr::MakeStruct(id, fields.into_boxed_slice()),
            Sort::Struct(id),
        )
    }

    /// Struct field projection, folding through `MakeStruct`.
    pub fn mk_get(&mut self, e: ExprId, idx: u32) -> ExprId {
        let Sort::Struct(id) = self.sort_of(e) else {
            panic!("get_field: operand is not a struct");
        };
        let info = self.struct_info(id);
        assert!(
            (idx as usize) < info.fields.len(),
            "get_field {}: index {} out of range",
            info.name,
            idx
        );
        let field_sort = info.fields[idx as usize].1;
        if self.fold {
            if let Expr::MakeStruct(_, fs) = self.expr(e) {
                return fs[idx as usize];
            }
        }
        self.intern(Expr::GetField(e, idx), field_sort)
    }

    /// Bitvector conversion to another width/signedness (the paper's
    /// host-language numeric conversions). Widening zero-extends unsigned
    /// sources and sign-extends signed sources; narrowing truncates.
    pub fn mk_cast(&mut self, e: ExprId, to: Sort) -> ExprId {
        let from = self.sort_of(e);
        assert!(
            from.is_bitvec() && to.is_bitvec(),
            "cast: bitvector sorts only"
        );
        if from == to {
            return e;
        }
        if self.fold {
            if let Expr::ConstInt { bits, .. } = *self.expr(e) {
                let out = crate::semantics::bv_cast(from, to, bits);
                return self.mk_int(to, out);
            }
            // Collapse chained casts when the middle keeps all the bits.
            if let Expr::Cast(inner, _) = *self.expr(e) {
                let inner_sort = self.sort_of(inner);
                let (Sort::BitVec { width: wi, .. }, Sort::BitVec { width: wm, .. }) =
                    (inner_sort, from)
                else {
                    unreachable!()
                };
                if wm >= wi {
                    // No information was lost at the middle step; but the
                    // extension kind still depends on the middle sort, so
                    // only collapse when the signedness agrees.
                    if matches!(
                        (inner_sort, from),
                        (
                            Sort::BitVec { signed: a, .. },
                            Sort::BitVec { signed: b, .. }
                        ) if a == b
                    ) {
                        return self.mk_cast(inner, to);
                    }
                }
            }
        }
        self.intern(Expr::Cast(e, to), to)
    }

    /// Functional field update `e[idx := v]`, lowered to projection and
    /// reconstruction.
    pub fn mk_with(&mut self, e: ExprId, idx: u32, v: ExprId) -> ExprId {
        let Sort::Struct(id) = self.sort_of(e) else {
            panic!("with_field: operand is not a struct");
        };
        let n = self.struct_info(id).fields.len();
        let mut fields = Vec::with_capacity(n);
        for i in 0..n as u32 {
            if i == idx {
                fields.push(v);
            } else {
                fields.push(self.mk_get(e, i));
            }
        }
        self.mk_struct(id, fields)
    }

    /// The default ("zero") constant of a sort: `false`, `0`, or a struct of
    /// defaults. Used to pad list slots beyond the length (the list
    /// canonicity invariant, see `lang::list`).
    pub fn mk_default(&mut self, sort: Sort) -> ExprId {
        match sort {
            Sort::Bool => self.mk_bool(false),
            Sort::BitVec { .. } => self.mk_int(sort, 0),
            Sort::Struct(id) => {
                let field_sorts: Vec<Sort> =
                    self.struct_info(id).fields.iter().map(|f| f.1).collect();
                let fields = field_sorts
                    .into_iter()
                    .map(|s| self.mk_default(s))
                    .collect();
                self.mk_struct(id, fields)
            }
        }
    }

    /// Lift a concrete [`Value`] to a constant expression.
    pub fn mk_const_value(&mut self, v: &Value) -> ExprId {
        match v {
            Value::Bool(b) => self.mk_bool(*b),
            Value::Int { sort, bits } => self.mk_int(*sort, *bits),
            Value::Struct(id, fields) => {
                let fs = fields.iter().map(|f| self.mk_const_value(f)).collect();
                self.mk_struct(*id, fs)
            }
        }
    }

    /// Evaluate a constant expression to a [`Value`]. Panics if the
    /// expression contains variables (check [`Context::is_const`] first).
    pub fn eval_const(&self, e: ExprId) -> Value {
        assert!(self.is_const(e), "eval_const on non-constant expression");
        match self.expr(e).clone() {
            Expr::Var(_) => unreachable!(),
            Expr::ConstBool(b) => Value::Bool(b),
            Expr::ConstInt { sort, bits } => Value::Int { sort, bits },
            Expr::Not(a) => Value::Bool(!self.eval_const(a).as_bool()),
            Expr::And(a, b) => {
                Value::Bool(self.eval_const(a).as_bool() && self.eval_const(b).as_bool())
            }
            Expr::Or(a, b) => {
                Value::Bool(self.eval_const(a).as_bool() || self.eval_const(b).as_bool())
            }
            Expr::BvNot(a) => {
                let sort = self.sort_of(a);
                Value::int(sort, !self.eval_const(a).as_bits())
            }
            Expr::Bv(op, a, b) => {
                let sort = self.sort_of(a);
                let x = self.eval_const(a).as_bits();
                let y = self.eval_const(b).as_bits();
                Value::int(sort, crate::semantics::bv_bin(op, sort, x, y))
            }
            Expr::Eq(a, b) => Value::Bool(self.eval_const(a) == self.eval_const(b)),
            Expr::Cmp(op, a, b) => {
                let sort = self.sort_of(a);
                let x = self.eval_const(a).as_bits();
                let y = self.eval_const(b).as_bits();
                Value::Bool(crate::semantics::bv_cmp(op, sort, x, y))
            }
            Expr::If(c, t, e2) => {
                if self.eval_const(c).as_bool() {
                    self.eval_const(t)
                } else {
                    self.eval_const(e2)
                }
            }
            Expr::MakeStruct(id, fs) => {
                Value::Struct(id, fs.iter().map(|&f| self.eval_const(f)).collect())
            }
            Expr::GetField(a, idx) => self.eval_const(a).fields()[idx as usize].clone(),
            Expr::Cast(a, to) => {
                let from = self.sort_of(a);
                let bits = self.eval_const(a).as_bits();
                Value::int(to, crate::semantics::bv_cast(from, to, bits))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{reset_ctx, with_ctx};

    fn bv8(ctx: &mut Context, v: u64) -> ExprId {
        ctx.mk_int(Sort::bv(8), v)
    }

    #[test]
    fn constant_folding_arithmetic() {
        reset_ctx();
        with_ctx(|ctx| {
            let a = bv8(ctx, 200);
            let b = bv8(ctx, 100);
            let s = ctx.mk_bv(Bv2::Add, a, b);
            assert_eq!(
                *ctx.expr(s),
                Expr::ConstInt {
                    sort: Sort::bv(8),
                    bits: 44
                }
            );
        });
    }

    #[test]
    fn identity_simplifications() {
        reset_ctx();
        with_ctx(|ctx| {
            let x = ctx.mk_var(Sort::bv(8));
            let zero = bv8(ctx, 0);
            let ones = bv8(ctx, 0xFF);
            assert_eq!(ctx.mk_bv(Bv2::Add, x, zero), x);
            assert_eq!(ctx.mk_bv(Bv2::And, x, ones), x);
            assert_eq!(ctx.mk_bv(Bv2::And, x, zero), zero);
            assert_eq!(ctx.mk_bv(Bv2::Or, x, zero), x);
            assert_eq!(ctx.mk_bv(Bv2::Xor, x, x), zero);
            assert_eq!(ctx.mk_bv(Bv2::Sub, x, x), zero);
            let one = bv8(ctx, 1);
            assert_eq!(ctx.mk_bv(Bv2::Mul, x, one), x);
        });
    }

    #[test]
    fn boolean_simplifications() {
        reset_ctx();
        with_ctx(|ctx| {
            let x = ctx.mk_var(Sort::Bool);
            let t = ctx.mk_bool(true);
            let f = ctx.mk_bool(false);
            assert_eq!(ctx.mk_and(x, t), x);
            assert_eq!(ctx.mk_and(x, f), f);
            assert_eq!(ctx.mk_or(x, f), x);
            assert_eq!(ctx.mk_or(x, t), t);
            let nx = ctx.mk_not(x);
            assert_eq!(ctx.mk_not(nx), x);
            assert_eq!(ctx.mk_and(x, nx), f);
            assert_eq!(ctx.mk_or(x, nx), t);
        });
    }

    #[test]
    fn if_folding() {
        reset_ctx();
        with_ctx(|ctx| {
            let c = ctx.mk_var(Sort::Bool);
            let t = ctx.mk_bool(true);
            let f = ctx.mk_bool(false);
            let a = bv8(ctx, 1);
            let b = bv8(ctx, 2);
            assert_eq!(ctx.mk_if(t, a, b), a);
            assert_eq!(ctx.mk_if(f, a, b), b);
            assert_eq!(ctx.mk_if(c, a, a), a);
            // Boolean conditionals lower to connectives.
            assert_eq!(ctx.mk_if(c, t, f), c);
            let nc = ctx.mk_not(c);
            assert_eq!(ctx.mk_if(c, f, t), nc);
        });
    }

    #[test]
    fn eq_spine_rewrite_produces_first_match_structure() {
        reset_ctx();
        with_ctx(|ctx| {
            // if c1 then 1 else if c2 then 2 else 0, compared against 2.
            let c1 = ctx.mk_var(Sort::Bool);
            let c2 = ctx.mk_var(Sort::Bool);
            let v0 = bv8(ctx, 0);
            let v1 = bv8(ctx, 1);
            let v2 = bv8(ctx, 2);
            let inner = ctx.mk_if(c2, v2, v0);
            let spine = ctx.mk_if(c1, v1, inner);
            let q = ctx.mk_eq(spine, v2);
            // Expected: !c1 && c2.
            let nc1 = ctx.mk_not(c1);
            let expect = ctx.mk_and(nc1, c2);
            assert_eq!(q, expect);
        });
    }

    #[test]
    fn eq_same_node_is_true() {
        reset_ctx();
        with_ctx(|ctx| {
            let x = ctx.mk_var(Sort::bv(16));
            let t = ctx.mk_bool(true);
            assert_eq!(ctx.mk_eq(x, x), t);
        });
    }

    #[test]
    fn cmp_folding() {
        reset_ctx();
        with_ctx(|ctx| {
            let a = bv8(ctx, 3);
            let b = bv8(ctx, 7);
            let t = ctx.mk_bool(true);
            let f = ctx.mk_bool(false);
            assert_eq!(ctx.mk_cmp(CmpOp::Lt, a, b), t);
            assert_eq!(ctx.mk_cmp(CmpOp::Lt, b, a), f);
            let x = ctx.mk_var(Sort::bv(8));
            assert_eq!(ctx.mk_cmp(CmpOp::Le, x, x), t);
            assert_eq!(ctx.mk_cmp(CmpOp::Lt, x, x), f);
        });
    }

    #[test]
    fn get_field_through_make_struct() {
        reset_ctx();
        with_ctx(|ctx| {
            let id = ctx.register_struct(
                crate::sorts::StructKey::Named("p".into()),
                crate::sorts::StructInfo {
                    name: "P".into(),
                    fields: vec![("a".into(), Sort::bv(8)), ("b".into(), Sort::Bool)],
                },
            );
            let a = ctx.mk_var(Sort::bv(8));
            let b = ctx.mk_var(Sort::Bool);
            let s = ctx.mk_struct(id, vec![a, b]);
            assert_eq!(ctx.mk_get(s, 0), a);
            assert_eq!(ctx.mk_get(s, 1), b);
            // with_field rebuilds with the replacement in place.
            let c = ctx.mk_var(Sort::Bool);
            let s2 = ctx.mk_with(s, 1, c);
            assert_eq!(ctx.mk_get(s2, 0), a);
            assert_eq!(ctx.mk_get(s2, 1), c);
        });
    }

    #[test]
    fn defaults_are_zero_values() {
        reset_ctx();
        with_ctx(|ctx| {
            let d = ctx.mk_default(Sort::bv(32));
            assert_eq!(ctx.eval_const(d), Value::int(Sort::bv(32), 0));
            let d = ctx.mk_default(Sort::Bool);
            assert_eq!(ctx.eval_const(d), Value::Bool(false));
        });
    }

    #[test]
    fn hash_consing_dedups() {
        reset_ctx();
        with_ctx(|ctx| {
            let x = ctx.mk_var(Sort::bv(8));
            let y = ctx.mk_var(Sort::bv(8));
            let e1 = ctx.mk_bv(Bv2::Add, x, y);
            let e2 = ctx.mk_bv(Bv2::Add, x, y);
            let e3 = ctx.mk_bv(Bv2::Add, y, x); // commutative canonicalization
            assert_eq!(e1, e2);
            assert_eq!(e1, e3);
        });
    }

    #[test]
    #[should_panic(expected = "sorts must match")]
    fn sort_mismatch_panics() {
        reset_ctx();
        with_ctx(|ctx| {
            let a = ctx.mk_int(Sort::bv(8), 1);
            let b = ctx.mk_int(Sort::bv(16), 1);
            ctx.mk_bv(Bv2::Add, a, b);
        });
    }
}
