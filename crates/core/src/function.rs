//! `ZenFunction`: the handle through which models are analyzed.
//!
//! Mirrors the paper's API surface: `Function(...)` wraps a model,
//! `Find` searches for an input satisfying a property of the input/output
//! pair (§4), `Transformer` lifts the model to a set transformer (§4),
//! `GenerateInputs` derives test inputs (§8), and `Compile` produces an
//! efficient executable implementation (§8).

use std::rc::Rc;

use crate::backend::compile::{bind_value, compile, Program};
use crate::backend::interp::{eval, Env};
use crate::backend::SolveOutcome;
use crate::budget::Budget;
use crate::ctx::with_ctx;
use crate::ir::ExprId;
use crate::lang::{Zen, ZenType};
use crate::session::SolverSession;
use crate::stateset::{StateSetTransformer, TransformerSpace};

/// Which solver pipeline `find` uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Compile to a binary decision diagram (with the §6 variable-ordering
    /// interaction analysis) and pick a satisfying path.
    Bdd,
    /// Bitblast to CNF and run the CDCL SAT solver — the paper's SMT
    /// pipeline ("theory of bitvectors, then bitblast to SAT").
    Smt,
}

/// Options for [`ZenFunction::find`] and related symbolic queries.
#[derive(Clone, Copy, Debug)]
pub struct FindOptions {
    /// Solver backend.
    pub backend: Backend,
    /// Maximum symbolic list length (the paper's "optional parameter to
    /// the Find function" controlling list size).
    pub list_bound: u16,
    /// Whether the BDD backend runs the variable-ordering interaction
    /// analysis (disable only to measure the ablation).
    pub ordering_analysis: bool,
}

impl Default for FindOptions {
    fn default() -> Self {
        FindOptions {
            backend: Backend::Bdd,
            list_bound: 4,
            ordering_analysis: true,
        }
    }
}

impl FindOptions {
    /// Options selecting the BDD backend.
    pub fn bdd() -> Self {
        FindOptions {
            backend: Backend::Bdd,
            ..Default::default()
        }
    }

    /// Options selecting the SAT/SMT backend.
    pub fn smt() -> Self {
        FindOptions {
            backend: Backend::Smt,
            ..Default::default()
        }
    }

    /// Set the list bound.
    pub fn with_list_bound(mut self, bound: u16) -> Self {
        self.list_bound = bound;
        self
    }
}

/// Outcome of a budgeted [`ZenFunction::find_budgeted`] query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FindOutcome<A> {
    /// An input satisfying the predicate.
    Found(A),
    /// No satisfying input exists (up to the list bound).
    Unsat,
    /// The budget ran out before the solver reached a verdict.
    Cancelled,
}

/// A budgeted find result together with the substrate counters of
/// whichever solver ran.
#[derive(Clone, Debug)]
pub struct FindReport<A> {
    /// The verdict.
    pub outcome: FindOutcome<A>,
    /// CDCL search statistics (SMT backend only).
    pub sat_stats: Option<rzen_sat::Stats>,
    /// BDD manager counters (BDD backend only).
    pub bdd_stats: Option<rzen_bdd::BddStats>,
}

/// A unary model: a function from `Zen<A>` to `Zen<R>` that the library
/// can simulate, verify, transform, and compile. Use tuple inputs (or
/// [`ZenFunction2`]/[`ZenFunction3`]) for multiple arguments.
pub struct ZenFunction<A, R> {
    f: Rc<dyn Fn(Zen<A>) -> Zen<R>>,
}

impl<A, R> Clone for ZenFunction<A, R> {
    fn clone(&self) -> Self {
        ZenFunction { f: self.f.clone() }
    }
}

impl<A: ZenType, R: ZenType> ZenFunction<A, R> {
    /// Wrap a model.
    pub fn new(f: impl Fn(Zen<A>) -> Zen<R> + 'static) -> Self {
        ZenFunction { f: Rc::new(f) }
    }

    /// Apply to a symbolic argument (building the expression).
    pub fn apply(&self, x: Zen<A>) -> Zen<R> {
        (self.f)(x)
    }

    /// Simulate: run the model on a concrete input. This is exact — list
    /// sizes follow the input, no bound applies.
    pub fn evaluate(&self, a: &A) -> R {
        let out = (self.f)(Zen::constant(a));
        let v = with_ctx(|ctx| eval(ctx, out.id, &Env::new()));
        R::from_value(&v)
    }

    /// Find an input for which `pred(input, output)` holds, or `None` if
    /// no such input exists (up to the list bound).
    pub fn find(
        &self,
        pred: impl FnOnce(Zen<A>, Zen<R>) -> Zen<bool>,
        opts: &FindOptions,
    ) -> Option<A> {
        match self.find_budgeted(pred, opts, &Budget::unlimited()).outcome {
            FindOutcome::Found(a) => Some(a),
            FindOutcome::Unsat => None,
            FindOutcome::Cancelled => unreachable!("unlimited budget cannot cancel"),
        }
    }

    /// [`ZenFunction::find`] under a cooperative [`Budget`]. A raised flag
    /// or expired deadline yields [`FindOutcome::Cancelled`] — never a
    /// wrong verdict — and the report carries the substrate counters of
    /// the backend that ran.
    pub fn find_budgeted(
        &self,
        pred: impl FnOnce(Zen<A>, Zen<R>) -> Zen<bool>,
        opts: &FindOptions,
        budget: &Budget,
    ) -> FindReport<A> {
        let input = Zen::<A>::symbolic(opts.list_bound);
        let out = (self.f)(input);
        let cond = pred(input, out);
        let (solved, sat_stats, bdd_stats) = match opts.backend {
            Backend::Bdd => {
                let (o, s) = with_ctx(|ctx| {
                    crate::backend::bdd::solve_budgeted(
                        ctx,
                        cond.id,
                        opts.ordering_analysis,
                        budget,
                    )
                });
                (o, None, Some(s))
            }
            Backend::Smt => {
                let (o, s) =
                    with_ctx(|ctx| crate::backend::smt::solve_budgeted(ctx, cond.id, budget));
                (o, Some(s), None)
            }
        };
        let outcome = match solved {
            SolveOutcome::Sat(env) => {
                let v = with_ctx(|ctx| eval(ctx, input.id, &env));
                FindOutcome::Found(A::from_value(&v))
            }
            SolveOutcome::Unsat => FindOutcome::Unsat,
            SolveOutcome::Cancelled => FindOutcome::Cancelled,
        };
        FindReport {
            outcome,
            sat_stats,
            bdd_stats,
        }
    }

    /// [`ZenFunction::find_budgeted`] through a long-lived
    /// [`SolverSession`]: the symbolic input, compiled circuit nodes, and
    /// solver state (learnt clauses / BDD tables) persist across calls on
    /// the same session. `opts.backend` is ignored — the session's backend
    /// rules. See [`crate::session`] for the thread-affinity contract.
    pub fn find_in_session(
        &self,
        pred: impl FnOnce(Zen<A>, Zen<R>) -> Zen<bool>,
        opts: &FindOptions,
        budget: &Budget,
        session: &mut SolverSession,
    ) -> FindReport<A> {
        // Reuse the session's symbolic input for this (type, bound): the
        // hash-consed arena then shares every model sub-DAG with earlier
        // queries over the same model, which is what the session's caches
        // key on.
        let input = Zen::<A>::from_id(
            session.input_for((std::any::TypeId::of::<A>(), opts.list_bound), || {
                Zen::<A>::symbolic(opts.list_bound).id
            }),
        );
        let out = (self.f)(input);
        let cond = pred(input, out);
        let (solved, sat_stats, bdd_stats) =
            with_ctx(|ctx| session.solve(ctx, cond.id, opts.ordering_analysis, budget));
        let outcome = match solved {
            SolveOutcome::Sat(env) => {
                let v = with_ctx(|ctx| eval(ctx, input.id, &env));
                FindOutcome::Found(A::from_value(&v))
            }
            SolveOutcome::Unsat => FindOutcome::Unsat,
            SolveOutcome::Cancelled => FindOutcome::Cancelled,
        };
        FindReport {
            outcome,
            sat_stats,
            bdd_stats,
        }
    }

    /// Decide whether `pred(input, output)` holds for **all** inputs
    /// (up to the list bound); returns a counterexample input otherwise.
    pub fn verify(
        &self,
        pred: impl FnOnce(Zen<A>, Zen<R>) -> Zen<bool>,
        opts: &FindOptions,
    ) -> Result<(), A> {
        match self.find(|a, r| !pred(a, r), opts) {
            None => Ok(()),
            Some(cex) => Err(cex),
        }
    }

    /// Lift the model to a state-set transformer in `space` (§4
    /// "Computing with sets").
    pub fn transformer(&self, space: &TransformerSpace) -> StateSetTransformer<A, R> {
        space.transformer(self)
    }

    /// Generate concrete inputs covering the model's decision structure
    /// (§8 "Testing implementations").
    pub fn generate_inputs(&self, opts: &FindOptions, max_inputs: usize) -> Vec<A> {
        crate::geninputs::generate_inputs(self, opts, max_inputs)
    }

    /// Compile to a register bytecode program for fast repeated concrete
    /// execution (§8 "Synthesizing implementations"). Lists are truncated
    /// to `list_bound` elements.
    pub fn compile(&self, list_bound: u16) -> CompiledFunction<A, R> {
        let input = Zen::<A>::symbolic(list_bound);
        let out = (self.f)(input);
        let prog = with_ctx(|ctx| compile(ctx, out.id));
        CompiledFunction {
            prog,
            input_shape: input.id,
            _t: std::marker::PhantomData,
        }
    }
}

/// A model compiled to a register program. Created by
/// [`ZenFunction::compile`].
pub struct CompiledFunction<A, R> {
    prog: Program,
    input_shape: ExprId,
    _t: std::marker::PhantomData<fn(&A) -> R>,
}

impl<A: ZenType, R: ZenType> CompiledFunction<A, R> {
    /// Execute on a concrete input.
    pub fn call(&self, a: &A) -> R {
        let v = a.to_value();
        let mut env = Env::new();
        with_ctx(|ctx| bind_value(ctx, self.input_shape, &v, &mut env));
        let out = self.prog.run(&env);
        R::from_value(&out)
    }

    /// Number of VM instructions (diagnostics).
    pub fn size(&self) -> usize {
        self.prog.len()
    }
}

/// A binary model, represented internally over a pair input.
pub struct ZenFunction2<A, B, R> {
    inner: ZenFunction<(A, B), R>,
}

impl<A: ZenType, B: ZenType, R: ZenType> ZenFunction2<A, B, R> {
    /// Wrap a two-argument model.
    pub fn new(f: impl Fn(Zen<A>, Zen<B>) -> Zen<R> + 'static) -> Self {
        ZenFunction2 {
            inner: ZenFunction::new(move |p: Zen<(A, B)>| f(p.item1(), p.item2())),
        }
    }

    /// The underlying unary function over the tuple input.
    pub fn as_unary(&self) -> &ZenFunction<(A, B), R> {
        &self.inner
    }

    /// Simulate on concrete inputs.
    pub fn evaluate(&self, a: &A, b: &B) -> R {
        self.inner.evaluate(&(a.clone(), b.clone()))
    }

    /// Find inputs satisfying a property of inputs and output.
    pub fn find(
        &self,
        pred: impl FnOnce(Zen<A>, Zen<B>, Zen<R>) -> Zen<bool>,
        opts: &FindOptions,
    ) -> Option<(A, B)> {
        self.inner.find(|p, r| pred(p.item1(), p.item2(), r), opts)
    }
}

/// A ternary model, represented internally over a triple input.
pub struct ZenFunction3<A, B, C, R> {
    inner: ZenFunction<(A, B, C), R>,
}

impl<A: ZenType, B: ZenType, C: ZenType, R: ZenType> ZenFunction3<A, B, C, R> {
    /// Wrap a three-argument model.
    pub fn new(f: impl Fn(Zen<A>, Zen<B>, Zen<C>) -> Zen<R> + 'static) -> Self {
        ZenFunction3 {
            inner: ZenFunction::new(move |p: Zen<(A, B, C)>| f(p.item1(), p.item2(), p.item3())),
        }
    }

    /// The underlying unary function over the triple input.
    pub fn as_unary(&self) -> &ZenFunction<(A, B, C), R> {
        &self.inner
    }

    /// Simulate on concrete inputs.
    pub fn evaluate(&self, a: &A, b: &B, c: &C) -> R {
        self.inner.evaluate(&(a.clone(), b.clone(), c.clone()))
    }

    /// Find inputs satisfying a property of inputs and output.
    pub fn find(
        &self,
        pred: impl FnOnce(Zen<A>, Zen<B>, Zen<C>, Zen<R>) -> Zen<bool>,
        opts: &FindOptions,
    ) -> Option<(A, B, C)> {
        self.inner
            .find(|p, r| pred(p.item1(), p.item2(), p.item3(), r), opts)
    }
}
